"""Transport degradation: shared planes → pickled copies → serial.

The contract: chaos-injected shm failures (export or attach) never
abort ``validate_many_parallel`` and never change a verdict — reports
stay byte-identical to the serial path on every tier, on both plane
backends, and the downgrade is visible in :func:`transport_stats`.
"""

import os

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.devtools import chaos
from repro.engine import parallel
from repro.engine.batch import BatchValidator
from repro.engine.parallel import (
    reset_transport_stats,
    transport_stats,
    validate_many_parallel,
)
from repro.errors import WorkerCrash
from repro.types import Round, Schedule


@pytest.fixture(autouse=True)
def _clean_injection_state(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()
    reset_transport_stats()
    yield
    chaos.reset()
    reset_transport_stats()


@pytest.fixture(scope="module")
def sh():
    return construct_base(4, 2)


def _corpus(sh):
    """9 schedules (>= MIN_PARALLEL_SCHEDULES), including failures, so
    verdicts and error strings both have to survive each transport."""
    base = broadcast_schedule(sh, 0)
    bad_source = Schedule(source=77, rounds=list(base.rounds))
    dropped = Schedule(source=0, rounds=list(base.rounds))
    dropped.rounds[0] = Round(())
    return [
        base,
        broadcast_schedule(sh, 3),
        bad_source,
        broadcast_schedule(sh, 5),
        dropped,
        broadcast_schedule(sh, 9),
        broadcast_schedule(sh, 12),
        broadcast_schedule(sh, 7),
        broadcast_schedule(sh, 1),
    ]


def _tuples(reports):
    return [
        (r.ok, r.errors, r.rounds, r.informed_per_round, r.max_call_length)
        for r in reports
    ]


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return set()


class TestExportFallback:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_failed_export_degrades_one_plane(self, sh, backend, monkeypatch):
        corpus = _corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        monkeypatch.setenv("REPRO_CHAOS", "export-fail:nth=0")
        para = validate_many_parallel(
            sh.graph, corpus, sh.k, jobs=2, backend=backend
        )
        assert _tuples(para) == _tuples(serial)
        stats = transport_stats()
        assert stats["shared"] == 1  # still the shared tier overall
        assert stats["inline_planes"] == 1  # exactly the injected plane
        assert stats["pickle"] == 0 and stats["serial_fallback"] == 0

    def test_every_export_failing_still_matches_serial(self, sh, monkeypatch):
        corpus = _corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        monkeypatch.setenv("REPRO_CHAOS", "export-fail:all")
        before = _shm_names()
        para = validate_many_parallel(sh.graph, corpus, sh.k, jobs=2)
        assert _tuples(para) == _tuples(serial)
        assert _shm_names() <= before  # nothing half-exported leaks
        stats = transport_stats()
        assert stats["shared"] == 1
        assert stats["inline_planes"] >= 2  # graph planes + stack planes


class TestAttachFallback:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_attach_failure_degrades_to_pickle_tier(
        self, sh, backend, monkeypatch
    ):
        corpus = _corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        monkeypatch.setenv("REPRO_CHAOS", "attach-fail:all")
        para = validate_many_parallel(
            sh.graph, corpus, sh.k, jobs=2, backend=backend
        )
        assert _tuples(para) == _tuples(serial)
        stats = transport_stats()
        assert stats["shared"] == 0  # the shared tier failed...
        assert stats["pickle"] == 1  # ...and the pickled tier carried it
        assert stats["serial_fallback"] == 0


class TestSerialFallback:
    def test_all_parallel_tiers_failing_degrades_to_serial(
        self, sh, monkeypatch
    ):
        corpus = _corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)

        def _doomed_pool(*args, **kwargs):
            raise WorkerCrash("every worker died", attempts=3)

        monkeypatch.setattr(parallel, "fan_out", _doomed_pool)
        para = validate_many_parallel(sh.graph, corpus, sh.k, jobs=2)
        assert _tuples(para) == _tuples(serial)
        stats = transport_stats()
        assert stats["shared"] == 0 and stats["pickle"] == 0
        assert stats["serial_fallback"] == 1
