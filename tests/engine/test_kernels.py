"""Engine kernels ≡ legacy set-based primitives (unit-level pinning)."""

import random

import pytest

from repro.engine.kernels import GraphKernels, PenaltyState
from repro.graphs.generators import random_connected_graph, random_tree
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import balanced_ternary_core_tree, path_graph, star
from repro.schedulers import legacy
from repro.util.bits import mask_from_indices

GRAPHS = [
    ("path9", path_graph(9)),
    ("star7", star(7)),
    ("q3", hypercube(3)),
    ("tern2", balanced_ternary_core_tree(2)),
    ("rtree16", random_tree(16, seed=4)),
    ("rconn12", random_connected_graph(12, 6, seed=9)),
]


def random_used_edges(graph, rng, fraction=0.3):
    edges = list(graph.edges())
    count = int(len(edges) * fraction)
    return set(rng.sample(edges, count)) if count else set()


def used_mask_of(kern, used):
    return mask_from_indices(kern.edge_id(u, v) for u, v in used)


class TestEdgeIds:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    def test_edge_ids_bijective(self, name, graph):
        kern = GraphKernels(graph)
        ids = {kern.edge_id(u, v) for u, v in graph.edges()}
        assert ids == set(range(kern.n_edges))
        assert kern.n_edges == graph.n_edges

    def test_path_edges_mask(self):
        g = path_graph(5)
        kern = GraphKernels(g)
        mask = kern.path_edges_mask((0, 1, 2, 3))
        assert mask.bit_count() == 3
        assert (mask >> kern.edge_id(3, 4)) & 1 == 0


class TestReachablePaths:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_legacy(self, name, graph, k):
        rng = random.Random(sum(map(ord, name)) + 17 * k)
        kern = GraphKernels(graph)
        for _trial in range(5):
            used = random_used_edges(graph, rng)
            caller = rng.randrange(graph.n_vertices)
            expected = legacy.reachable_paths(graph, caller, k, set(used))
            got = kern.reachable_paths(caller, k, used_mask_of(kern, used))
            assert got == expected


class TestEnumeratePaths:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_legacy(self, name, graph, k):
        rng = random.Random(sum(map(ord, name)) + 17 * k)
        kern = GraphKernels(graph)
        n = graph.n_vertices
        for _trial in range(5):
            used = random_used_edges(graph, rng)
            caller = rng.randrange(n)
            targets = {v for v in range(n) if v != caller and rng.random() < 0.5}
            expected = legacy.enumerate_paths(graph, caller, k, set(used), targets)
            got = kern.enumerate_paths(
                caller, k, used_mask_of(kern, used), mask_from_indices(targets)
            )
            assert got == expected


class TestComponents:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    def test_matches_legacy(self, name, graph):
        rng = random.Random(sum(map(ord, name)))
        kern = GraphKernels(graph)
        n = graph.n_vertices
        for _trial in range(8):
            informed = {v for v in range(n) if rng.random() < 0.4} | {0}
            summary = kern.components(mask_from_indices(informed))
            expected = legacy.uninformed_components(graph, informed)
            got = [
                (set(summary.members(label).tolist()), None)
                for label in range(summary.n_components)
            ]
            assert [c for c, _ in got] == [c for c, _ in expected]
            assert summary.sizes == [len(c) for c, _ in expected]
            assert summary.boundaries == [len(b) for _, b in expected]

    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("rounds_left", [0, 1, 2, 5])
    def test_penalty_and_capacity_match_legacy(self, name, graph, rounds_left):
        rng = random.Random(sum(map(ord, name)) + 17 * rounds_left)
        kern = GraphKernels(graph)
        n = graph.n_vertices
        for _trial in range(8):
            informed = {v for v in range(n) if rng.random() < 0.4} | {0}
            mask = mask_from_indices(informed)
            assert kern.component_penalty(mask, rounds_left) == pytest.approx(
                legacy.component_penalty(graph, informed, rounds_left)
            )
            assert kern.capacity_ok(mask, rounds_left) == legacy.capacity_ok(
                graph, frozenset(informed), rounds_left
            )


class TestPenaltyState:
    @pytest.mark.parametrize("name,graph", GRAPHS)
    @pytest.mark.parametrize("rounds_left", [1, 3])
    def test_probe_equals_full_recompute(self, name, graph, rounds_left):
        rng = random.Random(sum(map(ord, name)) + 17 * rounds_left)
        kern = GraphKernels(graph)
        n = graph.n_vertices
        for _trial in range(5):
            informed = {v for v in range(n) if rng.random() < 0.3} | {0}
            if len(informed) == n:
                continue
            mask = mask_from_indices(informed)
            pstate = PenaltyState(kern, mask, rounds_left)
            for v in range(n):
                if v in informed:
                    continue
                assert pstate.probe(v) == pytest.approx(
                    kern.component_penalty(mask | (1 << v), rounds_left)
                ), f"probe({v}) diverged ({name}, informed={sorted(informed)})"

    @pytest.mark.parametrize("name,graph", GRAPHS)
    def test_commit_sequence_tracks_recompute(self, name, graph):
        rng = random.Random(sum(map(ord, name)))
        kern = GraphKernels(graph)
        n = graph.n_vertices
        mask = 1 << 0
        pstate = PenaltyState(kern, mask, 3)
        uninformed = [v for v in range(1, n)]
        rng.shuffle(uninformed)
        for v in uninformed[: n // 2]:
            pstate.commit(v)
            mask |= 1 << v
            assert pstate.total == pytest.approx(kern.component_penalty(mask, 3))
            assert pstate.informed == mask


class TestGreedyRngParameter:
    def test_explicit_rng_reproducible(self):
        from repro.schedulers.greedy import heuristic_line_broadcast

        g = balanced_ternary_core_tree(2)
        runs = []
        for _ in range(2):
            sched = heuristic_line_broadcast(
                g, 1, 4, restarts=50, rng=random.Random(123)
            )
            assert sched is not None
            runs.append([tuple(c.path for c in r) for r in sched.rounds])
        assert runs[0] == runs[1]

    def test_module_global_random_untouched(self):
        """The scheduler must not consume or reseed the module-global
        ``random`` stream (reproducibility across interleaved callers)."""
        from repro.schedulers.greedy import heuristic_line_broadcast

        random.seed(99)
        before = random.getstate()
        heuristic_line_broadcast(path_graph(8), 0, seed=3, restarts=20)
        assert random.getstate() == before
