"""The compiled-kernel facade: byte-identical to the NumPy twins.

The kernels are check-for-check translations, so the pin here is
*identity*: every verdict, error string, and statistic must match the
pure-NumPy path on valid and corrupted inputs alike.  Forcing the
facade on without numba exercises the same ``*_py`` functions numba
would compile, which is exactly the contract under test.
"""

import os
import random
import subprocess
import sys
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.engine import native
from repro.engine.batch import BatchValidator
from repro.engine.kernels import GraphKernels
from repro.engine.native import (
    _set_enabled_for_testing,
    mask_to_words,
    native_enabled,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph
from repro.model.validator_fast import FastValidator
from repro.types import Call, Round, Schedule
from repro.util.bits import mask_from_indices


@contextmanager
def facade(flag):
    _set_enabled_for_testing(flag)
    try:
        yield
    finally:
        _set_enabled_for_testing(None)


def _report_tuple(rep):
    return (rep.ok, rep.errors, rep.rounds, rep.informed_per_round, rep.max_call_length)


def _corpus(sh):
    """Fresh valid + corrupted schedules (fresh objects per call: frames
    cache their screen verdicts, which would let one engine's results
    leak into the other's run)."""
    base = broadcast_schedule(sh, 0)
    first = base.rounds[0].calls

    def with_round(idx, calls):
        out = Schedule(source=0, rounds=list(base.rounds))
        out.rounds[idx] = Round(tuple(calls))
        return out

    return [
        base,
        broadcast_schedule(sh, sh.n_vertices - 1),
        with_round(0, first + (first[0],)),  # duplicate call (V4/V5/V6)
        with_round(0, ()),  # dropped round -> incomplete
        with_round(1, base.rounds[1].calls + (Call.via((0, 15)),)),  # non-edge
        Schedule(source=99, rounds=list(base.rounds)),  # bad source
        Schedule(source=0, rounds=list(base.rounds[:-1])),  # truncated
        Schedule(source=0, rounds=list(base.rounds) + [base.rounds[-1]]),
    ]


class TestFacadeToggle:
    def test_forcing_overrides_import_selection(self):
        with facade(True):
            assert native_enabled() is True
        with facade(False):
            assert native_enabled() is False
        assert native_enabled() is native.NATIVE_COMPILED

    def test_repro_native_zero_vetoes_compilation(self):
        env = {**os.environ, "REPRO_NATIVE": "0", "PYTHONPATH": "src"}
        code = (
            "from repro.engine.native import NATIVE_COMPILED, native_enabled; "
            "assert NATIVE_COMPILED is False; assert native_enabled() is False"
        )
        subprocess.run([sys.executable, "-c", code], env=env, check=True)


class TestMaskToWords:
    def test_zero_and_small_masks(self):
        np.testing.assert_array_equal(mask_to_words(0, 10), [0])
        np.testing.assert_array_equal(mask_to_words(0b1011, 10), [11])

    def test_multi_word_masks(self):
        words = mask_to_words(1 << 64, 65)
        np.testing.assert_array_equal(words, [0, 1])
        # round-trip: word w bit b <-> mask bit 64*w + b
        mask = (1 << 130) | (1 << 63) | 1
        words = mask_to_words(mask, 131)
        got = sum(int(w) << (64 * i) for i, w in enumerate(words))
        assert got == mask


class TestFastValidatorIdentity:
    @pytest.mark.parametrize("vertex_disjoint", [False, True])
    def test_reports_identical_on_mixed_corpus(self, vertex_disjoint):
        sh = construct_base(4, 2)
        with facade(True):
            on = [
                _report_tuple(
                    FastValidator(sh.graph).validate(
                        s, sh.k, vertex_disjoint=vertex_disjoint
                    )
                )
                for s in _corpus(sh)
            ]
        with facade(False):
            off = [
                _report_tuple(
                    FastValidator(sh.graph).validate(
                        s, sh.k, vertex_disjoint=vertex_disjoint
                    )
                )
                for s in _corpus(sh)
            ]
        assert on == off
        assert on[0][0] is True  # the valid schedule stayed valid
        assert any(not ok for ok, *_ in on)  # and corruption was rejected

    def test_frame_inputs_identical(self):
        sh = construct_base(5, 3)
        with facade(True):
            on = [
                _report_tuple(
                    FastValidator(sh.graph).validate(
                        broadcast_schedule(sh, s).to_frame(), sh.k
                    )
                )
                for s in range(0, sh.n_vertices, 5)
            ]
        with facade(False):
            off = [
                _report_tuple(
                    FastValidator(sh.graph).validate(
                        broadcast_schedule(sh, s).to_frame(), sh.k
                    )
                )
                for s in range(0, sh.n_vertices, 5)
            ]
        assert on == off
        assert all(ok for ok, *_ in on)


class TestBatchValidatorIdentity:
    @pytest.mark.parametrize("vertex_disjoint", [False, True])
    def test_stacked_reports_identical(self, vertex_disjoint):
        sh = construct_base(4, 2)
        with facade(True):
            on = [
                _report_tuple(r)
                for r in BatchValidator(sh.graph).validate_many(
                    _corpus(sh), sh.k, vertex_disjoint=vertex_disjoint
                )
            ]
        with facade(False):
            off = [
                _report_tuple(r)
                for r in BatchValidator(sh.graph).validate_many(
                    _corpus(sh), sh.k, vertex_disjoint=vertex_disjoint
                )
            ]
        assert on == off
        assert any(not ok for ok, *_ in on)


class TestReachableIdentity:
    @pytest.mark.parametrize(
        "graph", [path_graph(9), hypercube(3), hypercube(4)], ids=["path9", "q3", "q4"]
    )
    def test_bfs_identical_under_used_masks(self, graph):
        kern = GraphKernels(graph)
        rng = random.Random(7)
        edges = list(graph.edges())
        for trial in range(8):
            used = rng.sample(edges, len(edges) // 3) if len(edges) >= 3 else []
            mask = mask_from_indices(kern.edge_id(u, v) for u, v in used)
            caller = rng.randrange(graph.n_vertices)
            k = rng.randrange(1, graph.n_vertices)
            with facade(True):
                on = kern.reachable(caller, k, mask)
            with facade(False):
                off = kern.reachable(caller, k, mask)
            assert on == off
