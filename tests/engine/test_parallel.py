"""Parallel stacked validation ≡ serial, byte for byte.

The contract under test: ``validate_many(jobs=N)`` returns the same
reports — verdicts, exact error strings, statistics, input order — as
the serial path, with all schedule planes crossing to workers through
shared memory and no segment surviving the call.
"""

import os

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.engine import parallel
from repro.engine.batch import BatchValidator
from repro.engine.parallel import MIN_PARALLEL_SCHEDULES, validate_many_parallel
from repro.types import Call, Round, Schedule


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return set()


def _report_tuple(rep):
    return (rep.ok, rep.errors, rep.rounds, rep.informed_per_round, rep.max_call_length)


def _mixed_corpus(sh):
    """12 schedules: valid, corrupted, and layout-diverse (so grouping,
    slicing, and input-order reassembly are all exercised)."""
    base = broadcast_schedule(sh, 0)
    first = base.rounds[0].calls

    def with_round(idx, calls):
        out = Schedule(source=0, rounds=list(base.rounds))
        out.rounds[idx] = Round(tuple(calls))
        return out

    return [
        base,
        with_round(0, first + (first[0],)),  # duplicate call
        broadcast_schedule(sh, 5),
        with_round(0, ()),  # dropped round
        Schedule(source=0, rounds=list(base.rounds[:-1])),  # short layout
        broadcast_schedule(sh, 9),
        with_round(1, base.rounds[1].calls + (Call.via((0, 15)),)),  # non-edge
        Schedule(source=99, rounds=list(base.rounds)),  # bad source
        broadcast_schedule(sh, 3),
        Schedule(source=0, rounds=list(base.rounds) + [base.rounds[-1]]),
        broadcast_schedule(sh, 12),
        broadcast_schedule(sh, 7),
    ]


@pytest.fixture(scope="module")
def sh():
    return construct_base(4, 2)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("vertex_disjoint", [False, True])
    def test_mixed_corpus_identical_reports(self, sh, vertex_disjoint):
        corpus = _mixed_corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(
            corpus, sh.k, vertex_disjoint=vertex_disjoint
        )
        para = validate_many_parallel(
            sh.graph, corpus, sh.k, jobs=2, vertex_disjoint=vertex_disjoint
        )
        assert [_report_tuple(r) for r in para] == [_report_tuple(r) for r in serial]
        # the corpus must actually carry error strings across processes
        assert any(r.errors for r in serial)

    def test_validate_many_jobs_kwarg_routes_here(self, sh):
        corpus = _mixed_corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        para = BatchValidator(sh.graph).validate_many(corpus, sh.k, jobs=2)
        assert [_report_tuple(r) for r in para] == [_report_tuple(r) for r in serial]

    def test_mmap_backend_identical(self, sh):
        corpus = _mixed_corpus(sh)
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        para = validate_many_parallel(sh.graph, corpus, sh.k, jobs=2, backend="mmap")
        assert [_report_tuple(r) for r in para] == [_report_tuple(r) for r in serial]

    def test_require_minimum_time_forwarded(self, sh):
        padded = broadcast_schedule(sh, 0)
        padded.rounds.append(Round(()))
        corpus = [padded] * MIN_PARALLEL_SCHEDULES
        para = validate_many_parallel(
            sh.graph, corpus, sh.k, jobs=2, require_minimum_time=False
        )
        assert all(r.ok for r in para)


class TestSerialFallback:
    def test_small_inputs_never_spawn(self, sh, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise AssertionError("small input must not fan out")

        monkeypatch.setattr(parallel, "fan_out", _no_pool)
        corpus = _mixed_corpus(sh)[: MIN_PARALLEL_SCHEDULES - 1]
        serial = BatchValidator(sh.graph).validate_many(corpus, sh.k)
        para = validate_many_parallel(sh.graph, corpus, sh.k, jobs=4)
        assert [_report_tuple(r) for r in para] == [_report_tuple(r) for r in serial]

    def test_jobs_one_never_spawns(self, sh, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise AssertionError("jobs=1 must not fan out")

        monkeypatch.setattr(parallel, "fan_out", _no_pool)
        corpus = _mixed_corpus(sh)
        para = validate_many_parallel(sh.graph, corpus, sh.k, jobs=1)
        assert len(para) == len(corpus)


class TestNoLeaks:
    def test_no_segments_survive_the_call(self, sh):
        before = _shm_names()
        validate_many_parallel(sh.graph, _mixed_corpus(sh), sh.k, jobs=2)
        assert _shm_names() <= before

    def test_no_segments_survive_a_worker_crash(self, sh, monkeypatch):
        def _boom(*args, **kwargs):
            raise RuntimeError("pool exploded")

        monkeypatch.setattr(parallel, "fan_out", _boom)
        before = _shm_names()
        with pytest.raises(RuntimeError, match="pool exploded"):
            validate_many_parallel(sh.graph, _mixed_corpus(sh), sh.k, jobs=2)
        assert _shm_names() <= before
