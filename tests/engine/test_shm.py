"""The zero-copy plane store: handles, registries, and leak guarantees.

Leak tests enumerate ``/dev/shm`` directly — the acceptance criterion
is that no segment survives a normal exit *or* an exception escaping
the managed block.
"""

import pickle

import numpy as np
import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.core.params import theorem5_m_star
from repro.engine.shm import (
    PlaneRegistry,
    default_backend,
    detach_all,
)
from repro.graphs.base import Graph
from repro.graphs.specs import graph_from_spec
from repro.model.validator_fast import FastValidator


def _shm_names():
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-POSIX dev box: nothing to leak-check
        return set()


@pytest.fixture(autouse=True)
def _detached():
    yield
    detach_all()


@pytest.fixture(params=["shm", "mmap"])
def backend(request):
    return request.param


def _frame(n=17, source=3):
    sh = construct_base(5, theorem5_m_star(5))
    return broadcast_schedule(sh, source).to_frame()


class TestPlaneHandle:
    def test_roundtrip_both_backends(self, backend):
        arr = np.arange(23, dtype=np.int64) * 7
        with PlaneRegistry(backend) as reg:
            handle = reg.export(arr)
            view = handle.attach()
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
            assert view.dtype == np.int64

    def test_2d_and_empty_planes(self, backend):
        mat = np.arange(12, dtype=np.int64).reshape(3, 4)
        empty = np.empty(0, dtype=np.int64)
        with PlaneRegistry(backend) as reg:
            hm, he = reg.export(mat), reg.export(empty)
            np.testing.assert_array_equal(hm.attach(), mat)
            assert he.attach().size == 0

    def test_handle_pickles_small(self, backend):
        big = np.zeros(100_000, dtype=np.int64)
        with PlaneRegistry(backend) as reg:
            handle = reg.export(big)
            blob = pickle.dumps(handle)
            assert len(blob) < 1_000  # names + dtype + shape, never data
            clone = pickle.loads(blob)
            assert clone.attach().shape == big.shape

    def test_identity_dedup(self, backend):
        arr = np.arange(9, dtype=np.int64)
        with PlaneRegistry(backend) as reg:
            assert reg.export(arr) == reg.export(arr)

    def test_exported_arrays_are_pinned_against_address_reuse(self, backend):
        # Regression: dedup is keyed on id(arr), and CPython reuses a
        # dead array's address for later allocations.  The registry must
        # pin every exported array, or rebinding a loop variable (as
        # validate_many_parallel does per layout group) makes export
        # return a stale handle for a *different* array.
        with PlaneRegistry(backend) as reg:
            handles, expected = [], []
            for i in range(50):
                arr = np.full(64, i, dtype=np.int64)
                handles.append(reg.export(arr))
                expected.append(arr.copy())
                del arr  # without the pin, the next iteration likely
                # allocates at the same address and dedups wrongly
            assert len({h.name for h in handles}) == len(handles)
            for handle, want in zip(handles, expected):
                np.testing.assert_array_equal(handle.attach(), want)

    def test_noncontiguous_input_dedups_by_original_identity(self, backend):
        arr = np.arange(24, dtype=np.int64).reshape(4, 6)[:, ::2]
        assert not arr.flags.c_contiguous
        with PlaneRegistry(backend) as reg:
            handle = reg.export(arr)
            assert reg.export(arr) == handle  # keyed on arr, not the copy
            np.testing.assert_array_equal(handle.attach(), arr)

    def test_closed_registry_rejects_export(self, backend):
        reg = PlaneRegistry(backend)
        reg.close()
        with pytest.raises(RuntimeError, match="closed"):
            reg.export(np.arange(3, dtype=np.int64))

    def test_close_is_idempotent(self, backend):
        reg = PlaneRegistry(backend)
        reg.export(np.arange(3, dtype=np.int64))
        reg.close()
        reg.close()


class TestFrameAndGraphHandles:
    def test_frame_attach_equals_original(self, backend):
        frame = _frame()
        with PlaneRegistry(backend) as reg:
            clone = reg.export_frame(frame).attach()
            assert clone == frame
            assert clone.source == frame.source
            np.testing.assert_array_equal(clone.path_verts, frame.path_verts)

    def test_frame_planes_attach_zero_copy(self, backend):
        frame = _frame()
        with PlaneRegistry(backend) as reg:
            handle = reg.export_frame(frame)
            clone = handle.attach()
            again = handle.attach()
            # both frames view the same attached base buffer — no copy
            # per attach (ascontiguousarray kept the shared view as-is)
            assert clone.path_verts.base is not None
            assert again.path_verts.base is not None

    def test_graph_attach_equals_original(self, backend):
        graph = graph_from_spec("hypercube:4")
        with PlaneRegistry(backend) as reg:
            clone = reg.export_graph(graph).attach()
            assert clone.frozen
            assert clone == graph
            indptr, indices = clone.csr_arrays()
            np.testing.assert_array_equal(indptr, graph.csr_arrays()[0])
            assert not indptr.flags.writeable and not indices.flags.writeable

    def test_attached_frame_validates_identically(self, backend):
        sh = construct_base(5, theorem5_m_star(5))
        frame = broadcast_schedule(sh, 3).to_frame()
        with PlaneRegistry(backend) as reg:
            graph = reg.export_graph(sh.graph).attach()
            clone = reg.export_frame(frame).attach()
            # FastValidator directly: the engine cache would pin the
            # attached graph (and its shared views) past the registry.
            a = FastValidator(sh.graph).validate(frame, sh.k)
            b = FastValidator(graph).validate(clone, sh.k)
            assert (a.ok, a.errors, a.informed_per_round, a.max_call_length) == (
                b.ok,
                b.errors,
                b.informed_per_round,
                b.max_call_length,
            )


class TestGraphFromCsr:
    def test_roundtrip(self):
        graph = graph_from_spec("hypercube:4")
        clone = Graph.from_csr(*graph.csr_arrays())
        assert clone == graph and clone.frozen

    def test_readonly_arrays_become_the_csr_cache(self):
        graph = graph_from_spec("hypercube:3")
        indptr, indices = graph.csr_arrays()
        clone = Graph.from_csr(indptr, indices)
        assert clone.csr_arrays()[0] is indptr
        assert clone.csr_arrays()[1] is indices

    def test_bad_shapes_rejected(self):
        from repro.types import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            Graph.from_csr(np.array([1, 2]), np.array([0]))
        with pytest.raises(InvalidParameterError):
            Graph.from_csr(np.array([0, 2]), np.array([1]))


class TestNoLeaks:
    def test_normal_exit_leaves_no_segments(self):
        before = _shm_names()
        with PlaneRegistry("shm") as reg:
            reg.export(np.arange(1000, dtype=np.int64))
            reg.export_frame(_frame())
        assert _shm_names() <= before

    def test_exception_exit_leaves_no_segments(self):
        before = _shm_names()
        with pytest.raises(RuntimeError, match="boom"):
            with PlaneRegistry("shm") as reg:
                reg.export(np.arange(1000, dtype=np.int64))
                raise RuntimeError("boom")
        assert _shm_names() <= before

    def test_mmap_backend_removes_tempdir(self, tmp_path):
        import os

        reg = PlaneRegistry("mmap")
        reg.export(np.arange(10, dtype=np.int64))
        tmpdir = reg._tmpdir
        assert tmpdir is not None and os.path.isdir(tmpdir)
        reg.close()
        assert not os.path.exists(tmpdir)


class TestBackendSelection:
    def test_env_forces_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "mmap")
        assert default_backend() == "mmap"
        monkeypatch.setenv("REPRO_SHM", "shm")
        assert default_backend() == "shm"

    def test_probe_returns_a_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert default_backend() in ("shm", "mmap")

    def test_invalid_env_value_raises(self, monkeypatch):
        # A typo must not silently fall through to the probe when
        # tests/CI meant to force a backend.
        monkeypatch.setenv("REPRO_SHM", "map")
        with pytest.raises(ValueError, match="REPRO_SHM"):
            default_backend()
