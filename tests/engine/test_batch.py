"""Unit tests for the batch all-sources engine (`repro.engine.batch`)."""

import numpy as np
import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.engine.batch import (
    BatchValidator,
    all_sources_schedules,
    coset_representatives,
    flatten_schedule,
    stack_schedules,
    translation_group,
    validate_all_sources,
)
from repro.model.validator import validate_broadcast
from repro.types import Call, InvalidParameterError, Round, Schedule


def _instances():
    return [
        construct_base(4, 2),
        construct_base(5, 3),
        construct(3, 7, (2, 4)),
    ]


class TestTranslationGroup:
    def test_contains_identity_and_free_dimensions(self):
        sh = construct_base(5, 2)
        group = set(translation_group(sh).tolist())
        assert 0 in group
        # translations supported above the last threshold are always in T
        for t in range(1 << (sh.n - sh.thresholds[-1])):
            assert (t << sh.thresholds[-1]) in group

    @pytest.mark.parametrize("sh", _instances(), ids=lambda s: f"n{s.n}k{s.k}")
    def test_subgroup_and_edge_preservation(self, sh):
        group = translation_group(sh)
        members = set(group.tolist())
        for a in group[:8]:
            for b in group[:8]:
                assert int(a ^ b) in members
        edges = sh.graph.edge_set()
        for t in group.tolist():
            assert {(min(u ^ t, v ^ t), max(u ^ t, v ^ t)) for u, v in edges} == edges

    @pytest.mark.parametrize("sh", _instances(), ids=lambda s: f"n{s.n}k{s.k}")
    def test_cosets_partition_the_vertices(self, sh):
        group = translation_group(sh)
        reps = coset_representatives(sh.n_vertices, group)
        seen = set()
        for r in reps:
            coset = {int(r ^ t) for t in group.tolist()}
            assert not (coset & seen)
            seen |= coset
        assert seen == set(range(sh.n_vertices))
        assert len(reps) * group.size == sh.n_vertices


class TestAllSourcesSchedules:
    @pytest.mark.parametrize("sh", _instances(), ids=lambda s: f"n{s.n}k{s.k}")
    def test_translated_equals_direct_generation(self, sh):
        stacks = all_sources_schedules(sh)
        assert sum(s.n_schedules for s in stacks) == sh.n_vertices
        for stack in stacks:
            for i in range(stack.n_schedules):
                src = int(stack.sources[i])
                assert stack.to_schedule(i, sort_calls=True) == broadcast_schedule(
                    sh, src
                )

    def test_restricted_sources(self):
        sh = construct_base(6, 3)
        wanted = [0, 7, 63]
        stacks = all_sources_schedules(sh, sources=wanted)
        got = sorted(int(s) for stack in stacks for s in stack.sources)
        assert got == wanted

    def test_row_index_and_missing_source(self):
        sh = construct_base(4, 2)
        (stack, *_rest) = all_sources_schedules(sh, sources=[3])
        assert int(stack.sources[stack.row_index(3)]) == 3
        with pytest.raises(InvalidParameterError):
            stack.row_index(5)

    def test_out_of_range_sources_rejected(self):
        """Same error class and message shape as broadcast_schedule."""
        sh = construct_base(4, 2)
        for bad in ([sh.n_vertices], [-1], [0, 99]):
            with pytest.raises(InvalidParameterError, match="out of range"):
                all_sources_schedules(sh, sources=bad)
            with pytest.raises(InvalidParameterError, match="out of range"):
                validate_all_sources(sh, sources=bad)

    def test_generator_sources_accepted(self):
        sh = construct_base(4, 2)
        outcome = validate_all_sources(sh, sources=iter([2, 7]))
        assert outcome.sources == [2, 7]
        assert outcome.all_ok


class TestStackSchedules:
    def test_groups_by_layout_and_roundtrips(self):
        sh = construct_base(4, 2)
        scheds = [broadcast_schedule(sh, s) for s in range(sh.n_vertices)]
        stacks = stack_schedules(scheds)
        assert sum(s.n_schedules for s in stacks) == len(scheds)
        by_source = {
            int(stack.sources[i]): stack.to_schedule(i)
            for stack in stacks
            for i in range(stack.n_schedules)
        }
        for sched in scheds:
            assert by_source[sched.source] == sched

    def test_flatten_layout_key_discriminates(self):
        sh = construct_base(4, 2)
        a = broadcast_schedule(sh, 0)
        b = Schedule(source=0, rounds=list(a.rounds[:-1]))
        la, _ = flatten_schedule(a)
        lb, _ = flatten_schedule(b)
        assert la.key() != lb.key()


class TestBatchValidator:
    def test_valid_schedules_match_reference(self):
        sh = construct_base(5, 2)
        g = sh.graph
        scheds = [broadcast_schedule(sh, s) for s in range(g.n_vertices)]
        reports = BatchValidator(g).validate_many(scheds, 2)
        for sched, rep in zip(scheds, reports):
            ref = validate_broadcast(g, sched, 2)
            assert rep.ok and ref.ok
            assert rep.errors == ref.errors == []
            assert rep.rounds == ref.rounds
            assert rep.informed_per_round == ref.informed_per_round
            assert rep.max_call_length == ref.max_call_length

    def test_corruptions_match_reference(self):
        sh = construct_base(4, 2)
        g = sh.graph
        base = broadcast_schedule(sh, 0)

        def with_round(idx, calls):
            out = Schedule(source=0, rounds=list(base.rounds))
            out.rounds[idx] = Round(tuple(calls))
            return out

        first = base.rounds[0].calls
        corrupted = [
            base,
            with_round(0, first + (first[0],)),  # duplicate call
            with_round(0, ()),  # dropped round → incomplete
            with_round(0, first + (Call.via((0, 15)),)),  # non-edge
            Schedule(source=99, rounds=list(base.rounds)),  # bad source
            Schedule(source=0, rounds=list(base.rounds) + [base.rounds[-1]]),
        ]
        for vertex_disjoint in (False, True):
            reports = BatchValidator(g).validate_many(
                corrupted, 2, vertex_disjoint=vertex_disjoint
            )
            for sched, rep in zip(corrupted, reports):
                ref = validate_broadcast(g, sched, 2, vertex_disjoint=vertex_disjoint)
                assert rep.ok == ref.ok
                assert rep.errors == ref.errors
                assert rep.rounds == ref.rounds
                assert rep.informed_per_round == ref.informed_per_round
                assert rep.max_call_length == ref.max_call_length

    def test_require_minimum_time_off(self):
        sh = construct_base(4, 2)
        g = sh.graph
        padded = broadcast_schedule(sh, 0)
        padded.rounds.append(Round(()))
        [rep] = BatchValidator(g).validate_many([padded], 2, require_minimum_time=False)
        ref = validate_broadcast(g, padded, 2, require_minimum_time=False)
        assert rep.ok == ref.ok is True
        assert rep.informed_per_round == ref.informed_per_round

    def test_validate_stacked_empty(self):
        sh = construct_base(4, 2)
        stacks = all_sources_schedules(sh, sources=[])
        assert stacks == []

    def test_out_of_range_path_vertex_raises_like_reference(self):
        """A path vertex ≥ N (or < 0) raises the reference's
        InvalidParameterError from all three validators — never a raw
        numpy IndexError from the fancy-indexed batch arrays."""
        from repro.model.validator_fast import FastValidator

        sh = construct_base(3, 1)
        g = sh.graph
        for v in (g.n_vertices, -1):
            sched = Schedule(source=0)
            sched.append_round([Call.via((0, v))])
            messages = set()
            for fn in (
                lambda: validate_broadcast(g, sched, 2),
                lambda: FastValidator(g).validate(sched, 2),
                lambda: BatchValidator(g).validate_many([sched], 2),
            ):
                with pytest.raises(InvalidParameterError) as exc:
                    fn()
                messages.add(str(exc.value))
            assert len(messages) == 1


class TestValidateAllSources:
    @pytest.mark.parametrize("sh", _instances(), ids=lambda s: f"n{s.n}k{s.k}")
    def test_matches_per_source_loop(self, sh):
        outcome = validate_all_sources(sh)
        assert outcome.sources == list(range(sh.n_vertices))
        assert outcome.n_fallback == 0
        for s in range(0, sh.n_vertices, max(1, sh.n_vertices // 8)):
            sched = broadcast_schedule(sh, s)
            ref = validate_broadcast(sh.graph, sched, sh.k)
            i = outcome.sources.index(s)
            assert outcome.ok[i] == ref.ok
            assert outcome.rounds[i] == len(sched.rounds)
            assert outcome.max_call_lengths[i] == ref.max_call_length

    def test_source_order_follows_request(self):
        sh = construct_base(5, 2)
        outcome = validate_all_sources(sh, sources=[9, 0, 4])
        assert outcome.sources == [9, 0, 4]
        assert outcome.all_ok

    def test_coset_stats(self):
        sh = construct_base(5, 2)
        outcome = validate_all_sources(sh)
        group = translation_group(sh)
        assert outcome.n_cosets == sh.n_vertices // group.size
        assert outcome.n_stacks >= 1


class TestStackedRepresentation:
    def test_flat_rows_are_xor_translations_within_cosets(self):
        sh = construct_base(4, 2)
        group = set(translation_group(sh).tolist())
        checked = 0
        for stack in all_sources_schedules(sh):
            base = stack.flat[0]
            base_src = int(stack.sources[0])
            for i in range(stack.n_schedules):
                t = int(stack.sources[i]) ^ base_src
                if t in group:  # same coset as row 0 (stacks can merge cosets)
                    assert np.array_equal(stack.flat[i], base ^ t)
                    checked += 1
        assert checked > 1
