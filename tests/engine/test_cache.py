"""Tests for the process-wide kernel cache (`repro.engine.cache`)."""

import gc

from repro.engine.batch import BatchValidator
from repro.engine.cache import (
    batch_validator_for,
    cache_info,
    clear_cache,
    fast_validator_for,
    kernels_for,
)
from repro.engine.kernels import GraphKernels
from repro.graphs.base import Graph
from repro.graphs.hypercube import hypercube
from repro.model.validator_fast import FastValidator


class TestKernelCache:
    def test_frozen_graph_shares_one_instance(self):
        g = hypercube(3)
        assert kernels_for(g) is kernels_for(g)
        assert fast_validator_for(g) is fast_validator_for(g)
        assert batch_validator_for(g) is batch_validator_for(g)

    def test_distinct_graphs_get_distinct_entries(self):
        g1, g2 = hypercube(3), hypercube(3)
        assert kernels_for(g1) is not kernels_for(g2)

    def test_returned_types(self):
        g = hypercube(2)
        assert isinstance(kernels_for(g), GraphKernels)
        assert isinstance(fast_validator_for(g), FastValidator)
        assert isinstance(batch_validator_for(g), BatchValidator)

    def test_batch_validator_shares_fast_validator(self):
        g = hypercube(3)
        assert batch_validator_for(g).fast is fast_validator_for(g)

    def test_unfrozen_graphs_are_never_cached(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert not g.frozen
        k1, k2 = kernels_for(g), kernels_for(g)
        assert k1 is not k2  # fresh object per call; mutation stays safe
        assert not hasattr(g, "_repro_engine_cache")

    def test_eviction_on_garbage_collection(self):
        clear_cache()
        g = hypercube(3)
        kernels_for(g)
        assert cache_info()["entries"] == 1
        del g
        gc.collect()
        assert cache_info()["entries"] == 0
        assert cache_info()["evictions"] >= 1

    def test_clear_cache(self):
        g = hypercube(2)
        kernels_for(g)
        assert clear_cache() >= 1
        assert cache_info()["entries"] == 0
        # entries rebuild transparently afterwards
        assert kernels_for(g) is kernels_for(g)

    def test_hit_counters(self):
        clear_cache()
        g = hypercube(2)
        kernels_for(g)
        kernels_for(g)
        info = cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1


class TestCacheUsers:
    def test_scheduler_and_simulator_share_the_validator(self):
        from repro.model.simulator import LineNetworkSimulator
        from repro.schedulers.greedy import heuristic_line_broadcast

        g = hypercube(3)
        sched = heuristic_line_broadcast(g, 0, 2, seed=0)
        assert sched is not None
        sim = LineNetworkSimulator(g, 2)
        assert sim.broadcast_completes(sched)
        assert sim._fast_validator is fast_validator_for(g)
