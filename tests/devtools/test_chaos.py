"""The chaos harness: spec parsing and deterministic injection hooks."""

import json

import pytest

from repro.devtools import chaos
from repro.devtools.chaos import ChaosPolicy
from repro.types import InvalidParameterError


@pytest.fixture(autouse=True)
def _clean_chaos_state(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()
    yield
    chaos.reset()


class TestParse:
    def test_kill_event(self):
        policy = ChaosPolicy.parse("kill:chunk=3")
        assert policy.chunk_actions(3, 0) == (True, 0.0)
        assert policy.chunk_actions(3, 1) == (False, 0.0)  # retry survives
        assert policy.chunk_actions(2, 0) == (False, 0.0)

    def test_kill_on_specific_attempt(self):
        policy = ChaosPolicy.parse("kill:chunk=1:attempt=2")
        assert policy.chunk_actions(1, 0) == (False, 0.0)
        assert policy.chunk_actions(1, 2) == (True, 0.0)

    def test_delay_event(self):
        policy = ChaosPolicy.parse("delay:chunk=0:ms=250")
        kill, delay = policy.chunk_actions(0, 0)
        assert not kill and delay == 0.25
        _, delay_retry = policy.chunk_actions(0, 3)
        assert delay_retry == 0.25  # any attempt when attempt= omitted

    def test_multiple_events(self):
        policy = ChaosPolicy.parse("kill:chunk=2; delay:chunk=2:ms=100")
        assert policy.chunk_actions(2, 0) == (True, 0.1)

    def test_attach_fail_by_worker_and_all(self):
        by_slot = ChaosPolicy.parse("attach-fail:worker=1")
        assert by_slot.fails_attach(1)
        assert not by_slot.fails_attach(0)
        assert not by_slot.fails_attach(None)
        everywhere = ChaosPolicy.parse("attach-fail:all")
        assert everywhere.fails_attach(0) and everywhere.fails_attach(None)

    def test_export_fail_nth_and_all(self):
        policy = ChaosPolicy.parse("export-fail:nth=2")
        assert [policy.fails_export(n) for n in range(4)] == [
            False,
            False,
            True,
            False,
        ]
        assert ChaosPolicy.parse("export-fail:all").fails_export(17)

    def test_corrupt_cache_nth(self):
        policy = ChaosPolicy.parse("corrupt-cache:nth=1")
        assert not policy.corrupts_cache(0)
        assert policy.corrupts_cache(1)

    def test_seed_event(self):
        assert ChaosPolicy.parse("seed=9").seed == 9
        assert ChaosPolicy.parse("kill:chunk=0;seed=4").seed == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown event kind"):
            ChaosPolicy.parse("explode:chunk=1")

    def test_malformed_param_rejected(self):
        with pytest.raises(InvalidParameterError, match="malformed"):
            ChaosPolicy.parse("kill:chunk")

    def test_non_integer_param_rejected(self):
        with pytest.raises(InvalidParameterError, match="integer"):
            ChaosPolicy.parse("kill:chunk=abc")


class TestProcessHooks:
    def test_inactive_without_env(self):
        assert chaos.active_policy() is None
        assert not chaos.should_fail_attach()
        assert not chaos.should_fail_export()

    def test_policy_cached_until_spec_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill:chunk=0")
        first = chaos.active_policy()
        assert first is chaos.active_policy()
        monkeypatch.setenv("REPRO_CHAOS", "kill:chunk=1")
        second = chaos.active_policy()
        assert second is not first

    def test_worker_slot_gates_attach_failures(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "attach-fail:worker=0")
        assert not chaos.should_fail_attach()  # parent: slot is None
        chaos.set_worker_slot(0)
        assert chaos.should_fail_attach()
        chaos.set_worker_slot(1)
        assert not chaos.should_fail_attach()

    def test_export_counter_advances(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "export-fail:nth=1")
        assert not chaos.should_fail_export()
        assert chaos.should_fail_export()
        assert not chaos.should_fail_export()

    def test_corrupt_cache_entry_scribbles_the_nth_read(
        self, monkeypatch, tmp_path
    ):
        entry = tmp_path / "entry.json"
        entry.write_text(json.dumps({"digest": "abc", "row": {}}))
        monkeypatch.setenv("REPRO_CHAOS", "corrupt-cache:nth=1")
        chaos.corrupt_cache_entry(entry)  # nth=0: untouched
        json.loads(entry.read_text())
        chaos.corrupt_cache_entry(entry)  # nth=1: torn
        with pytest.raises(json.JSONDecodeError):
            json.loads(entry.read_text())

    def test_on_chunk_noop_without_policy(self):
        chaos.on_chunk(0, 0)  # must not raise or sleep

    def test_probabilistic_gate_is_deterministic(self):
        policy = ChaosPolicy.parse("kill:chunk=0:p=0.5;seed=3")
        first = policy.chunk_actions(0, 0)
        assert first == policy.chunk_actions(0, 0)
        # p=0 never fires, p=1 always does
        assert not ChaosPolicy.parse("kill:chunk=0:p=0.0").chunk_actions(0, 0)[0]
        assert ChaosPolicy.parse("kill:chunk=0:p=1.0").chunk_actions(0, 0)[0]
