"""Fixture tests for every lint rule: a known-bad snippet is flagged
with the right rule id and line, and its known-good twin passes.

Each fixture is written to a path shaped like the real tree (rules
scope themselves by path fragments such as ``repro/engine/``), then run
through :func:`lint_file` with exactly one rule.
"""

import textwrap

import pytest

from repro.devtools.analyzer import (
    UNUSED_SUPPRESSION_ID,
    lint_file,
    lint_paths,
)
from repro.devtools.registry import get_rule, rule_ids


def run_rule(tmp_path, source, rule_id, relpath="repro/somemod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, [get_rule(rule_id)])


def assert_flagged(violations, rule_id, line):
    assert [(v.rule_id, v.line) for v in violations] == [(rule_id, line)], (violations)


class TestRL001GlobalRNG:
    def test_module_global_random_flagged(self, tmp_path):
        bad = """\
            import random


            def pick():
                return random.random()
            """
        assert_flagged(run_rule(tmp_path, bad, "RL001"), "RL001", 5)

    def test_unseeded_random_instance_flagged(self, tmp_path):
        bad = """\
            import random

            rng = random.Random()
            """
        assert_flagged(run_rule(tmp_path, bad, "RL001"), "RL001", 3)

    def test_seeded_random_instance_passes(self, tmp_path):
        good = """\
            import random

            rng = random.Random(7)
            """
        assert run_rule(tmp_path, good, "RL001") == []

    def test_numpy_module_global_flagged(self, tmp_path):
        bad = """\
            import numpy as np


            def noise(n):
                return np.random.rand(n)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL001"), "RL001", 5)

    def test_seeded_default_rng_passes(self, tmp_path):
        good = """\
            import numpy as np


            def noise(n, seed):
                return np.random.default_rng(seed).random(n)
            """
        assert run_rule(tmp_path, good, "RL001") == []

    def test_local_variable_named_random_passes(self, tmp_path):
        good = """\
            def pick(random):
                return random.random()
            """
        assert run_rule(tmp_path, good, "RL001") == []

    def test_test_files_exempt(self, tmp_path):
        bad = """\
            import random


            def pick():
                return random.random()
            """
        assert run_rule(tmp_path, bad, "RL001", "repro/test_pick.py") == []


class TestRL002JsonSortKeys:
    def test_unsorted_dumps_flagged(self, tmp_path):
        bad = """\
            import json


            def save(d):
                return json.dumps(d, indent=1)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL002"), "RL002", 5)

    def test_sorted_dumps_passes(self, tmp_path):
        good = """\
            import json


            def save(d):
                return json.dumps(d, indent=1, sort_keys=True)
            """
        assert run_rule(tmp_path, good, "RL002") == []

    def test_from_import_alias_resolved(self, tmp_path):
        bad = """\
            from json import dumps as jd


            def save(d):
                return jd(d)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL002"), "RL002", 5)

    def test_suppression_silences(self, tmp_path):
        suppressed = """\
            import json


            def save(d):
                return json.dumps(d)  # repro-lint: disable=RL002 (pinned v1)
            """
        assert run_rule(tmp_path, suppressed, "RL002") == []

    def test_unused_suppression_flagged(self, tmp_path):
        stale = """\
            import json


            def save(d):
                return json.dumps(d, sort_keys=True)  # repro-lint: disable=RL002
            """
        violations = run_rule(tmp_path, stale, "RL002")
        assert_flagged(violations, UNUSED_SUPPRESSION_ID, 5)
        assert "RL002" in violations[0].message


class TestRL003FrozenMutation:
    def test_setattr_on_non_self_flagged(self, tmp_path):
        bad = """\
            def attach(frame, layout):
                object.__setattr__(frame, "_layout", layout)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL003"), "RL003", 2)

    def test_setattr_on_self_passes(self, tmp_path):
        good = """\
            class Frozen:
                def __init__(self):
                    object.__setattr__(self, "x", 1)
            """
        assert run_rule(tmp_path, good, "RL003") == []

    def test_foreign_rounds_append_flagged(self, tmp_path):
        bad = """\
            def merge(schedule, extra):
                schedule.rounds.append(extra)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL003"), "RL003", 2)

    def test_own_rounds_append_passes(self, tmp_path):
        good = """\
            class Builder:
                def add(self, r):
                    self.rounds.append(r)
            """
        assert run_rule(tmp_path, good, "RL003") == []

    def test_rounds_assignment_flagged(self, tmp_path):
        bad = """\
            def clobber(schedule):
                schedule.rounds = []
            """
        assert_flagged(run_rule(tmp_path, bad, "RL003"), "RL003", 2)

    def test_builder_modules_exempt(self, tmp_path):
        bad = """\
            def attach(frame, layout):
                object.__setattr__(frame, "_layout", layout)
            """
        assert run_rule(tmp_path, bad, "RL003", "repro/frame.py") == []


class TestRL004RegistryEntryPoints:
    def test_strategy_import_outside_package_flagged(self, tmp_path):
        bad = """\
            from repro.schedulers.greedy import heuristic_line_broadcast
            """
        violations = run_rule(tmp_path, bad, "RL004", "repro/analysis/foo.py")
        assert_flagged(violations, "RL004", 1)

    def test_facade_import_passes(self, tmp_path):
        good = """\
            from repro.schedulers import heuristic_line_broadcast
            """
        assert run_rule(tmp_path, good, "RL004", "repro/analysis/foo.py") == []

    def test_import_inside_owning_package_passes(self, tmp_path):
        ok = """\
            from repro.schedulers.greedy import heuristic_line_broadcast
            """
        assert run_rule(tmp_path, ok, "RL004", "repro/schedulers/foo.py") == []

    def test_registry_module_exempt_everywhere(self, tmp_path):
        ok = """\
            from repro.schedulers.registry import run_scheduler
            """
        assert run_rule(tmp_path, ok, "RL004", "repro/analysis/foo.py") == []

    def test_experiment_module_import_flagged(self, tmp_path):
        bad = """\
            import repro.analysis.exp_theorems
            """
        assert_flagged(
            run_rule(tmp_path, bad, "RL004", "repro/core/foo.py"), "RL004", 1
        )


class TestRL005FanOutPicklable:
    def test_lambda_flagged(self, tmp_path):
        bad = """\
            from repro.analysis.runner import fan_out


            def go(tasks):
                return fan_out(lambda t: t, tasks, 2)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL005"), "RL005", 5)

    def test_nested_function_flagged(self, tmp_path):
        bad = """\
            from repro.analysis.runner import fan_out


            def go(tasks):
                def work(t):
                    return t

                return fan_out(work, tasks, 2)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL005"), "RL005", 8)

    def test_bound_method_flagged(self, tmp_path):
        bad = """\
            from repro.analysis.runner import fan_out


            class Runner:
                def go(self, tasks):
                    return fan_out(self.work, tasks, 2)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL005"), "RL005", 6)

    def test_module_level_function_passes(self, tmp_path):
        good = """\
            from repro.analysis.runner import fan_out


            def work(t):
                return t


            def go(tasks):
                return fan_out(work, tasks, 2)
            """
        assert run_rule(tmp_path, good, "RL005") == []


class TestRL006WallClock:
    def test_time_time_flagged(self, tmp_path):
        bad = """\
            import time


            def stamp():
                return time.time()
            """
        assert_flagged(run_rule(tmp_path, bad, "RL006"), "RL006", 5)

    def test_datetime_now_flagged(self, tmp_path):
        bad = """\
            from datetime import datetime


            def stamp():
                return datetime.now().isoformat()
            """
        assert_flagged(run_rule(tmp_path, bad, "RL006"), "RL006", 5)

    def test_perf_counter_passes(self, tmp_path):
        good = """\
            import time


            def measure():
                return time.perf_counter()
            """
        assert run_rule(tmp_path, good, "RL006") == []


class TestRL007WriteableArrayEscape:
    BAD = """\
        import numpy as np


        class Cache:
            def __init__(self, n):
                self._buf = np.zeros(n)

            def data(self):
                return self._buf
        """

    def test_writeable_internal_array_flagged(self, tmp_path):
        violations = run_rule(tmp_path, self.BAD, "RL007", "repro/engine/c.py")
        assert_flagged(violations, "RL007", 9)
        assert "_buf" in violations[0].message

    def test_out_of_scope_files_exempt(self, tmp_path):
        assert run_rule(tmp_path, self.BAD, "RL007", "repro/analysis/c.py") == []

    def test_setflags_frozen_passes(self, tmp_path):
        good = """\
            import numpy as np


            class Cache:
                def __init__(self, n):
                    self._buf = np.zeros(n)
                    self._buf.setflags(write=False)

                def data(self):
                    return self._buf
            """
        assert run_rule(tmp_path, good, "RL007", "repro/engine/c.py") == []

    def test_copy_passes(self, tmp_path):
        good = """\
            import numpy as np


            class Cache:
                def __init__(self, n):
                    self._buf = np.zeros(n)

                def data(self):
                    return self._buf.copy()
            """
        assert run_rule(tmp_path, good, "RL007", "repro/engine/c.py") == []

    def test_local_frozen_before_store_passes(self, tmp_path):
        good = """\
            import numpy as np


            class Cache:
                def __init__(self, n):
                    buf = np.zeros(n)
                    buf.setflags(write=False)
                    self._buf = buf

                def data(self):
                    return self._buf
            """
        assert run_rule(tmp_path, good, "RL007", "repro/engine/c.py") == []


class TestRL008SetIteration:
    def test_for_over_set_call_flagged(self, tmp_path):
        bad = """\
            def collect(xs):
                out = []
                for x in set(xs):
                    out.append(x)
                return out
            """
        assert_flagged(run_rule(tmp_path, bad, "RL008"), "RL008", 3)

    def test_sorted_wrap_passes(self, tmp_path):
        good = """\
            def collect(xs):
                out = []
                for x in sorted(set(xs)):
                    out.append(x)
                return out
            """
        assert run_rule(tmp_path, good, "RL008") == []

    def test_comprehension_over_set_variable_flagged(self, tmp_path):
        bad = """\
            def collect():
                items = {1, 2, 3}
                return [x for x in items]
            """
        assert_flagged(run_rule(tmp_path, bad, "RL008"), "RL008", 3)

    def test_order_insensitive_consumers_pass(self, tmp_path):
        good = """\
            def total():
                return sum(x for x in {1, 2, 3})
            """
        assert run_rule(tmp_path, good, "RL008") == []

    def test_list_over_set_flagged(self, tmp_path):
        bad = """\
            def collect(xs):
                return list(set(xs))
            """
        assert_flagged(run_rule(tmp_path, bad, "RL008"), "RL008", 2)

    def test_membership_tests_pass(self, tmp_path):
        good = """\
            def has(xs, y):
                pool = set(xs)
                return y in pool
            """
        assert run_rule(tmp_path, good, "RL008") == []


class TestRL009ShmManagedRegistry:
    def test_from_import_creation_flagged(self, tmp_path):
        bad = """\
            from multiprocessing.shared_memory import SharedMemory


            def scratch(n):
                return SharedMemory(create=True, size=n)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL009"), "RL009", 5)

    def test_module_attribute_creation_flagged(self, tmp_path):
        bad = """\
            from multiprocessing import shared_memory


            def scratch(n):
                return shared_memory.SharedMemory(create=True, size=n)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL009"), "RL009", 5)

    def test_shareable_list_flagged(self, tmp_path):
        bad = """\
            from multiprocessing import shared_memory

            sl = shared_memory.ShareableList([1, 2, 3])
            """
        assert_flagged(run_rule(tmp_path, bad, "RL009"), "RL009", 3)

    def test_engine_shm_module_exempt(self, tmp_path):
        good = """\
            from multiprocessing import shared_memory


            def export(n):
                return shared_memory.SharedMemory(create=True, size=n)
            """
        assert (
            run_rule(tmp_path, good, "RL009", relpath="repro/engine/shm.py") == []
        )

    def test_registry_usage_passes(self, tmp_path):
        good = """\
            from repro.engine.shm import PlaneRegistry


            def export(arr):
                with PlaneRegistry() as reg:
                    return reg.export(arr)
            """
        assert run_rule(tmp_path, good, "RL009") == []

    def test_unrelated_shared_memory_name_passes(self, tmp_path):
        good = """\
            class SharedMemory:
                pass


            def scratch():
                return SharedMemory()
            """
        assert run_rule(tmp_path, good, "RL009") == []


class TestRL010FaultHandlingBoundaries:
    def test_ad_hoc_sleep_retry_loop_flagged(self, tmp_path):
        bad = """\
            import time


            def fetch(fn):
                for _ in range(3):
                    try:
                        return fn()
                    except ValueError:
                        time.sleep(0.5)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL010"), "RL010", 9)

    def test_broad_except_exception_flagged(self, tmp_path):
        bad = """\
            def run(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """
        assert_flagged(run_rule(tmp_path, bad, "RL010"), "RL010", 4)

    def test_bare_except_flagged(self, tmp_path):
        bad = """\
            def run(fn):
                try:
                    return fn()
                except:  # noqa: E722
                    return None
            """
        assert_flagged(run_rule(tmp_path, bad, "RL010"), "RL010", 4)

    def test_broad_catch_in_tuple_flagged(self, tmp_path):
        bad = """\
            def run(fn):
                try:
                    return fn()
                except (ValueError, Exception):
                    return None
            """
        assert_flagged(run_rule(tmp_path, bad, "RL010"), "RL010", 4)

    def test_specific_exceptions_pass(self, tmp_path):
        good = """\
            def run(fn):
                try:
                    return fn()
                except (ValueError, OSError):
                    return None
            """
        assert run_rule(tmp_path, good, "RL010") == []

    def test_retry_module_boundary_passes(self, tmp_path):
        good = """\
            import time


            def pause(seconds):
                time.sleep(seconds)
            """
        assert run_rule(tmp_path, good, "RL010", "repro/util/retry.py") == []

    def test_errors_module_boundary_passes(self, tmp_path):
        good = """\
            def capture(fn):
                try:
                    return "ok", fn()
                except Exception as exc:
                    return "error", str(exc)
            """
        assert run_rule(tmp_path, good, "RL010", "repro/errors.py") == []

    def test_chaos_module_boundary_passes(self, tmp_path):
        good = """\
            import time


            def on_chunk(delay):
                time.sleep(delay)
            """
        assert run_rule(tmp_path, good, "RL010", "repro/devtools/chaos.py") == []

    def test_local_sleep_name_passes(self, tmp_path):
        good = """\
            def wait(times):
                def sleep(x):
                    return x
                return [sleep(t) for t in times]
            """
        assert run_rule(tmp_path, good, "RL010") == []


class TestRL011CorpusFormatContainment:
    def test_struct_unpack_flagged(self, tmp_path):
        bad = """\
            import struct


            def sniff(buf):
                return struct.unpack("<8sII16s", buf[:32])
            """
        assert_flagged(run_rule(tmp_path, bad, "RL011"), "RL011", 5)

    def test_mmap_flagged(self, tmp_path):
        bad = """\
            import mmap


            def load(fh):
                return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            """
        assert_flagged(run_rule(tmp_path, bad, "RL011"), "RL011", 5)

    def test_np_memmap_flagged(self, tmp_path):
        bad = """\
            import numpy as np


            def load(path):
                return np.memmap(path, dtype="<i8")
            """
        assert_flagged(run_rule(tmp_path, bad, "RL011"), "RL011", 5)

    def test_corpus_package_exempt(self, tmp_path):
        good = """\
            import mmap
            import struct


            def load(fh):
                struct.unpack("<QQ8s", fh.read(24))
                return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            """
        assert (
            run_rule(tmp_path, good, "RL011", relpath="repro/corpus/reader.py")
            == []
        )

    def test_engine_shm_memmap_exempt(self, tmp_path):
        good = """\
            import numpy as np


            def attach(path):
                return np.memmap(path, dtype="<i8")
            """
        assert (
            run_rule(tmp_path, good, "RL011", relpath="repro/engine/shm.py")
            == []
        )

    def test_reader_usage_passes(self, tmp_path):
        good = """\
            from repro.corpus import CorpusReader


            def frames(path):
                with CorpusReader(path) as reader:
                    return reader.n_frames
            """
        assert run_rule(tmp_path, good, "RL011") == []

    def test_unrelated_struct_name_passes(self, tmp_path):
        good = """\
            class struct:
                @staticmethod
                def unpack(fmt, buf):
                    return ()


            def sniff(buf):
                return struct.unpack("x", buf)
            """
        assert run_rule(tmp_path, good, "RL011") == []


class TestEveryRuleHasFixture:
    def test_all_registered_rules_are_exercised_above(self):
        exercised = {
            name.removeprefix("TestRL")[:3]
            for name in globals()
            if name.startswith("TestRL")
        }
        assert {f"RL{suffix}" for suffix in exercised} == set(rule_ids())

    def test_at_least_eight_rules_registered(self):
        assert len(rule_ids()) >= 8


class TestSelfApplication:
    def test_repro_lint_src_is_clean(self, repo_root):
        report = lint_paths([repo_root / "src"])
        assert report.violations == [], [str(v) for v in report.violations]
        assert report.n_files > 50
        assert len(report.rule_ids) >= 8


@pytest.fixture
def repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[2]
