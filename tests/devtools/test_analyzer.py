"""Framework-level tests: registry contract, discovery, suppressions,
report determinism and formats."""

import json
import textwrap

import pytest

from repro.devtools.analyzer import format_text, lint_file, lint_paths
from repro.devtools.registry import all_rules, get_rule, rule
from repro.types import InvalidParameterError


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


BAD_JSON = """\
    import json


    def save(d):
        return json.dumps(d)
    """


class TestRegistry:
    def test_rules_are_sorted_by_id(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rl002").rule_id == "RL002"

    def test_unknown_rule_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="unknown lint rule"):
            get_rule("RL999")

    def test_double_registration_rejected(self):
        with pytest.raises(InvalidParameterError, match="registered twice"):

            @rule("RL001", "dup", "duplicate id")
            def duplicate(ctx):
                return []

    def test_malformed_rule_id_rejected(self):
        with pytest.raises(InvalidParameterError, match="rule id"):

            @rule("X1", "bad", "bad id shape")
            def bad_id(ctx):
                return []

    def test_unknown_severity_rejected(self):
        with pytest.raises(InvalidParameterError, match="severity"):

            @rule("RL900", "bad", "bad severity", severity="fatal")
            def bad_severity(ctx):
                return []

    def test_every_rule_has_a_docstring_and_summary(self):
        for spec in all_rules():
            assert spec.summary
            assert spec.fn.__doc__


class TestDiscoveryAndErrors:
    def test_directory_walk_finds_nested_files(self, tmp_path):
        write(tmp_path, "pkg/a.py", BAD_JSON)
        write(tmp_path, "pkg/sub/b.py", BAD_JSON)
        report = lint_paths([tmp_path])
        assert report.n_files == 2
        assert [v.rule_id for v in report.violations] == ["RL002", "RL002"]

    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        write(tmp_path, "__pycache__/junk.py", BAD_JSON)
        write(tmp_path, ".hidden/junk.py", BAD_JSON)
        assert lint_paths([tmp_path]).n_files == 0

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no such file"):
            lint_paths([tmp_path / "nope"])

    def test_non_python_file_raises(self, tmp_path):
        target = tmp_path / "data.json"
        target.write_text("{}")
        with pytest.raises(InvalidParameterError, match="not a Python file"):
            lint_paths([target])

    def test_syntax_error_raises_cleanly(self, tmp_path):
        path = write(tmp_path, "broken.py", "def f(:\n")
        with pytest.raises(InvalidParameterError, match="syntax error"):
            lint_paths([path])

    def test_unknown_rule_filter_raises(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="unknown lint rule"):
            lint_paths([tmp_path], rule_id="RL999")

    def test_duplicate_paths_deduplicated(self, tmp_path):
        path = write(tmp_path, "a.py", BAD_JSON)
        report = lint_paths([path, path, tmp_path])
        assert report.n_files == 1


class TestSuppressions:
    def test_multi_id_suppression(self, tmp_path):
        source = """\
            import json
            import time


            def f(d):
                return json.dumps(d), time.time()  # repro-lint: disable=RL002,RL006
            """
        path = write(tmp_path, "m.py", source)
        rules = [get_rule("RL002"), get_rule("RL006")]
        assert lint_file(path, rules) == []

    def test_suppression_only_covers_its_line(self, tmp_path):
        source = """\
            import json

            # repro-lint: disable=RL002


            def f(d):
                return json.dumps(d)
            """
        path = write(tmp_path, "m.py", source)
        violations = lint_file(path, [get_rule("RL002")])
        rule_ids = sorted(v.rule_id for v in violations)
        # the real violation still fires AND the stale comment is flagged
        assert rule_ids == ["RL000", "RL002"]

    def test_rule_filter_ignores_other_rules_suppressions(self, tmp_path):
        source = """\
            import json


            def f(d):
                return json.dumps(d, sort_keys=True)  # repro-lint: disable=RL006
            """
        path = write(tmp_path, "m.py", source)
        # RL006 did not run, so its suppression must not be called unused
        assert lint_file(path, [get_rule("RL002")]) == []


class TestReport:
    def test_violations_sorted_deterministically(self, tmp_path):
        write(tmp_path, "b.py", BAD_JSON)
        write(tmp_path, "a.py", BAD_JSON)
        report = lint_paths([tmp_path])
        paths = [v.path for v in report.violations]
        assert paths == sorted(paths)

    def test_json_report_is_sorted_and_parseable(self, tmp_path):
        write(tmp_path, "a.py", BAD_JSON)
        report = lint_paths([tmp_path])
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["files"] == 1
        assert payload["violations"][0]["rule"] == "RL002"
        # the linter holds itself to RL002: sorted keys
        assert report.to_json() == json.dumps(payload, indent=2, sort_keys=True)

    def test_text_report_shape(self, tmp_path):
        write(tmp_path, "a.py", BAD_JSON)
        report = lint_paths([tmp_path])
        text = format_text(report)
        assert "a.py:5:" in text
        assert "RL002" in text
        assert text.endswith("1 violation in 1 file")

    def test_clean_text_report(self, tmp_path):
        write(tmp_path, "a.py", "x = 1\n")
        assert format_text(lint_paths([tmp_path])) == "clean: 1 file checked"
