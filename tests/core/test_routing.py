"""Unit tests for reach_and_flip (Remark 1 routing)."""

import pytest

from repro.core.construct import construct, construct_base
from repro.core.routing import reach_and_flip, relay_candidates
from repro.domination.labeling import paper_example_labeling_q2
from repro.types import ConstructionError
from repro.util.bits import flip_dim


def paper_g42():
    return construct_base(
        4, 2, labeling=paper_example_labeling_q2(), partition=[(3,), (4,)]
    )


class TestBaseRouting:
    def test_direct_edge_when_owned(self):
        sh = paper_g42()
        # 0000 (label c1) owns dim 3
        assert reach_and_flip(sh, 0b0000, 3) == (0b0000, 0b0100)

    def test_relay_when_not_owned(self):
        sh = paper_g42()
        # 0000 does not own dim 4; paper's Example 4 relays through 0010
        path = reach_and_flip(sh, 0b0000, 4)
        assert path == (0b0000, 0b0010, 0b1010)

    def test_core_dims_always_direct(self):
        sh = paper_g42()
        for u in (0b0000, 0b0111, 0b1010):
            for dim in (1, 2):
                assert reach_and_flip(sh, u, dim) == (u, flip_dim(u, dim))

    def test_path_is_valid_in_graph(self):
        sh = paper_g42()
        g = sh.graph
        for u in range(16):
            for dim in range(1, 5):
                path = reach_and_flip(sh, u, dim)
                assert g.path_is_valid(path)

    def test_length_at_most_two_for_base(self):
        sh = construct_base(10, 3)
        for u in range(0, 1024, 13):
            for dim in range(4, 11):
                assert len(reach_and_flip(sh, u, dim)) - 1 <= 2

    def test_endpoint_flips_dim_and_preserves_upper_bits(self):
        sh = construct_base(10, 3)
        for u in (0, 517, 1023):
            for dim in range(4, 11):
                path = reach_and_flip(sh, u, dim)
                z = path[-1]
                # bits >= dim agree with u except bit dim flipped
                assert (z >> dim) == (u >> dim)
                assert (z >> (dim - 1)) & 1 == 1 - ((u >> (dim - 1)) & 1)


class TestRecursiveRouting:
    @pytest.mark.parametrize(
        "k,n,thr", [(3, 7, (2, 4)), (4, 9, (2, 4, 6)), (5, 11, (2, 4, 6, 8))]
    )
    def test_length_at_most_level(self, k, n, thr):
        sh = construct(k, n, thr)
        for u in range(0, sh.n_vertices, max(1, sh.n_vertices // 64)):
            for dim in range(sh.base_dims + 1, n + 1):
                level = sh.level_owning(dim)
                path = reach_and_flip(sh, u, dim)
                assert len(path) - 1 <= level.t

    @pytest.mark.parametrize("k,n,thr", [(3, 7, (2, 4)), (4, 9, (2, 4, 6))])
    def test_paths_valid_and_flip_semantics(self, k, n, thr):
        sh = construct(k, n, thr)
        g = sh.graph
        for u in range(0, sh.n_vertices, 17):
            for dim in range(1, n + 1):
                path = reach_and_flip(sh, u, dim)
                assert g.path_is_valid(path)
                z = path[-1]
                assert (z >> dim) == (u >> dim)
                assert (z >> (dim - 1)) & 1 == 1 - ((u >> (dim - 1)) & 1)
                # all intermediate motion is below the owning threshold
                level = sh.level_owning(dim)
                if level is not None:
                    for v in path[:-1]:
                        assert (v >> level.threshold) == (u >> level.threshold)


class TestRelayCandidates:
    def test_candidates_fix_label(self):
        sh = paper_g42()
        level = sh.levels[0]
        cands = relay_candidates(sh, 0b0000, 4)
        needed = level.dim_owner[4]
        for e in cands:
            assert level.label_of(flip_dim(0b0000, e)) == needed

    def test_core_dim_rejected(self):
        sh = paper_g42()
        with pytest.raises(ConstructionError):
            relay_candidates(sh, 0, 1)

    def test_deterministic_tie_break_matches_fig4(self):
        """The largest-relay rule reproduces both Example 4 relays."""
        sh = paper_g42()
        assert reach_and_flip(sh, 0b0000, 4)[1] == 0b0010  # not 0001
        assert reach_and_flip(sh, 0b1010, 3)[1] == 0b1011  # not 1000
