"""Tests for Theorem 1's tree k-mlbg wrapper."""

import pytest

from repro.core.bounds import theorem1_minimum_k
from repro.core.tree_mlbg import (
    theorem1_k,
    theorem1_tree,
    theorem1_tree_broadcast,
    verify_theorem1_instance,
)
from repro.graphs.trees import ternary_core_tree_order
from repro.model.validator import minimum_broadcast_rounds
from repro.types import InvalidParameterError


class TestStructure:
    @pytest.mark.parametrize("h", [1, 2, 3, 4, 5])
    def test_k_equals_2h(self, h):
        assert theorem1_k(h) == 2 * h

    def test_theorem1_threshold_consistent_with_tree(self):
        """Theorem 1: for N = 3·2^h − 2 the threshold k = 2⌈log₂((N+2)/3)⌉
        equals 2h — the tree family exactly realizes the bound."""
        for h in range(1, 10):
            assert theorem1_minimum_k(ternary_core_tree_order(h)) == 2 * h

    def test_rejects_h0(self):
        with pytest.raises(InvalidParameterError):
            theorem1_k(0)


class TestBroadcast:
    def test_constructive_path(self):
        tree = theorem1_tree(3)
        sched = theorem1_tree_broadcast(tree, 5, h=3, k=6)
        assert len(sched.rounds) == minimum_broadcast_rounds(tree.n_vertices)

    def test_search_path_small(self):
        tree = theorem1_tree(1)
        sched = theorem1_tree_broadcast(tree, 1, k=2)
        assert len(sched.rounds) == 2

    def test_heuristic_path(self):
        tree = theorem1_tree(3)
        sched = theorem1_tree_broadcast(tree, 0, exact_limit=4, restarts=200)
        assert len(sched.rounds) == minimum_broadcast_rounds(tree.n_vertices)


class TestVerifyInstance:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_reports(self, h):
        rep = verify_theorem1_instance(h, sources=[0, 1, 2])
        assert rep["h"] == h
        assert rep["max_degree"] <= 3
        assert rep["diameter"] <= 2 * h
        assert rep["n_vertices"] == ternary_core_tree_order(h)

    def test_full_source_coverage_small(self):
        rep = verify_theorem1_instance(2)
        assert rep["sources_checked"] == 10
