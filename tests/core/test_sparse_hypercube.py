"""Unit tests for the SparseHypercube structure and its flat edge rule."""

import pytest

from repro.core.construct import construct, construct_base
from repro.core.sparse_hypercube import Level
from repro.domination.labeling import (
    best_available_labeling,
    paper_example_labeling_q2,
)
from repro.graphs.hypercube import hypercube
from repro.types import InvalidParameterError


class TestLevelValidation:
    def make_level(self, **overrides):
        kwargs = dict(
            t=2,
            top=4,
            threshold=2,
            block_lo=0,
            labeling=paper_example_labeling_q2(),
            partition=((3,), (4,)),
        )
        kwargs.update(overrides)
        return Level(**kwargs)

    def test_valid_level(self):
        level = self.make_level()
        assert level.block_len == 2
        assert level.num_labels == 2
        assert list(level.rule2_dims) == [3, 4]

    def test_partition_must_cover_dims(self):
        with pytest.raises(InvalidParameterError):
            self.make_level(partition=((3,), (5,)))

    def test_partition_count_must_match_labels(self):
        with pytest.raises(InvalidParameterError):
            self.make_level(partition=((3, 4),))

    def test_partition_balance_enforced(self):
        lab = best_available_labeling(2)
        with pytest.raises(InvalidParameterError):
            Level(
                t=2, top=6, threshold=2, block_lo=0, labeling=lab,
                partition=((3, 4, 5), (6,)),
            )

    def test_labeling_block_length_must_match(self):
        with pytest.raises(InvalidParameterError):
            self.make_level(threshold=3, partition=((4,), (4,)))

    def test_dim_owner(self):
        level = self.make_level()
        assert level.dim_owner == {3: 0, 4: 1}

    def test_block_value_and_label(self):
        level = self.make_level()
        assert level.block_value(0b1011) == 0b11
        assert level.label_of(0b1011) == level.labeling.label_of(0b11)

    def test_owns_edge(self):
        level = self.make_level()
        # suffix 00 has label c1 (label 0) owning dim 3
        assert level.owns_edge(0b0000, 3)
        assert not level.owns_edge(0b0000, 4)
        # suffix 01 has label c2 (label 1) owning dim 4
        assert level.owns_edge(0b0001, 4)

    def test_owns_edge_rejects_foreign_dim(self):
        with pytest.raises(InvalidParameterError):
            self.make_level().owns_edge(0, 2)


class TestSparseHypercubeStructure:
    def test_is_spanning_subgraph_of_cube(self):
        sh = construct_base(5, 2)
        g = sh.graph
        q = hypercube(5)
        assert g.n_vertices == q.n_vertices
        assert g.is_subgraph_of(q)

    def test_connected(self):
        for sh in (construct_base(5, 2), construct(3, 7, (2, 4))):
            assert sh.graph.is_connected()

    def test_edge_rule_matches_graph(self):
        sh = construct(3, 7, (2, 4))
        g = sh.graph
        for u in range(0, 128, 7):
            for dim in range(1, 8):
                v = u ^ (1 << (dim - 1))
                assert g.has_edge(u, v) == sh.has_edge_rule(u, dim)

    def test_rule_symmetry(self):
        """Rule-2 edges are consistent: both endpoints agree."""
        sh = construct(3, 7, (2, 4))
        for u in range(128):
            for dim in range(sh.base_dims + 1, 8):
                v = u ^ (1 << (dim - 1))
                assert sh.has_edge_rule(u, dim) == sh.has_edge_rule(v, dim)

    def test_degree_formula_matches_graph(self):
        for args in [(2, 5, (2,)), (2, 8, (3,)), (3, 7, (2, 4)), (4, 9, (2, 4, 6))]:
            k, n, thr = args
            sh = construct(k, n, thr)
            assert sh.degree_formula() == sh.graph.max_degree()

    def test_degree_of_vertex_matches_graph(self):
        sh = construct(3, 7, (2, 4))
        g = sh.graph
        for u in range(0, 128, 11):
            assert sh.degree_of(u) == g.degree(u)

    def test_edge_count_formula_matches_graph(self):
        for args in [(2, 5, (2,)), (3, 7, (2, 4))]:
            k, n, thr = args
            sh = construct(k, n, thr)
            assert sh.edge_count_formula() == sh.graph.n_edges

    def test_level_owning(self):
        sh = construct(3, 7, (2, 4))
        assert sh.level_owning(1) is None
        assert sh.level_owning(2) is None
        assert sh.level_owning(3).t == 2
        assert sh.level_owning(4).t == 2
        assert sh.level_owning(5).t == 3
        assert sh.level_owning(7).t == 3
        with pytest.raises(InvalidParameterError):
            sh.level_owning(8)

    def test_thresholds_must_increase(self):
        with pytest.raises(InvalidParameterError):
            construct(3, 7, (4, 2))
        with pytest.raises(InvalidParameterError):
            construct(3, 7, (2, 7))

    def test_describe_mentions_parameters(self):
        sh = construct_base(5, 2)
        text = sh.describe()
        assert "n=5" in text and "k=2" in text

    def test_label_summary_shape(self):
        sh = construct(3, 7, (2, 4))
        rows = sh.label_summary()
        assert len(rows) == 2
        assert rows[0]["level"] == 2 and rows[1]["level"] == 3
