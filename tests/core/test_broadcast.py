"""Tests for Broadcast_2 / Broadcast_k (Theorems 4 and 6, machine-checked)."""

import pytest

from repro.core.broadcast import broadcast_2, broadcast_k, broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.domination.labeling import paper_example_labeling_q2
from repro.model.validator import validate_broadcast
from repro.types import InvalidParameterError


def paper_g42():
    return construct_base(
        4, 2, labeling=paper_example_labeling_q2(), partition=[(3,), (4,)]
    )


class TestFig4Reproduction:
    def test_first_round_matches_paper(self):
        """Example 4: 0000 calls 1010 through 0010."""
        sched = broadcast_schedule(paper_g42(), 0)
        calls = sched.rounds[0].calls
        assert len(calls) == 1
        assert calls[0].path == (0b0000, 0b0010, 0b1010)

    def test_second_round_matches_paper(self):
        """Example 4: 0000→0100 (direct) and 1010→1111 via 1011."""
        sched = broadcast_schedule(paper_g42(), 0)
        calls = sched.rounds[1].calls
        paths = {c.path for c in calls}
        assert (0b0000, 0b0100) in paths
        assert (0b1010, 0b1011, 0b1111) in paths

    def test_phase2_fills_subcubes(self):
        """Final two rounds inform each 2-subcube via direct calls."""
        sched = broadcast_schedule(paper_g42(), 0)
        for rnd in sched.rounds[2:]:
            assert all(c.length == 1 for c in rnd)


class TestTheorem4:
    """Broadcast_2 is a valid minimum-time 2-line scheme, all sources."""

    @pytest.mark.parametrize(
        "n,m", [(2, 1), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3), (6, 4)]
    )
    def test_all_sources_minimum_time(self, n, m):
        sh = construct_base(n, m)
        g = sh.graph
        for s in range(g.n_vertices):
            sched = broadcast_2(sh, s)
            rep = validate_broadcast(g, sched, 2)
            assert rep.ok, (n, m, s, rep.errors[:3])
            assert len(sched.rounds) == n

    def test_exact_doubling(self):
        """N = 2^n: the informed count must exactly double every round."""
        sh = construct_base(6, 2)
        sched = broadcast_schedule(sh, 17)
        rep = validate_broadcast(sh.graph, sched, 2)
        assert rep.informed_per_round == [2, 4, 8, 16, 32, 64]

    def test_broadcast_2_rejects_k3_construction(self):
        sh = construct(3, 7, (2, 4))
        with pytest.raises(InvalidParameterError):
            broadcast_2(sh, 0)

    def test_source_range_check(self):
        with pytest.raises(InvalidParameterError):
            broadcast_schedule(construct_base(4, 2), 16)


class TestTheorem6:
    """Broadcast_k is a valid minimum-time k-line scheme."""

    @pytest.mark.parametrize(
        "k,n,thr",
        [
            (3, 5, (2, 3)),
            (3, 7, (2, 4)),
            (4, 7, (2, 4, 5)),
            (4, 9, (2, 4, 6)),
            (5, 9, (1, 3, 5, 7)),
        ],
    )
    def test_all_sources_minimum_time(self, k, n, thr):
        sh = construct(k, n, thr)
        g = sh.graph
        for s in range(g.n_vertices):
            sched = broadcast_k(sh, s)
            rep = validate_broadcast(g, sched, k)
            assert rep.ok, (k, n, thr, s, rep.errors[:3])
            assert len(sched.rounds) == n

    def test_call_length_profile(self):
        """Rounds for level-t dims may use calls up to length t; core
        rounds are all direct."""
        k, n, thr = 4, 9, (2, 4, 6)
        sh = construct(k, n, thr)
        sched = broadcast_schedule(sh, 0)
        # rounds are dims n..1 in order; dims 1..2 are the last two rounds
        for rnd in sched.rounds[-sh.base_dims :]:
            assert all(c.length == 1 for c in rnd)
        assert sched.max_call_length() <= k

    def test_property1_monotonicity(self):
        """Property 1: a valid k-line scheme is a valid (k+1)-line scheme."""
        sh = construct(3, 7, (2, 4))
        sched = broadcast_schedule(sh, 99)
        for k in (3, 4, 5, 10):
            assert validate_broadcast(sh.graph, sched, k).ok

    def test_schedule_covers_every_vertex_exactly_once(self):
        sh = construct(3, 7, (2, 4))
        sched = broadcast_schedule(sh, 0)
        receivers = [c.receiver for rnd in sched.rounds for c in rnd]
        assert len(receivers) == len(set(receivers)) == sh.n_vertices - 1

    def test_phase1_prefix_doubling_invariant(self):
        """After the round for dimension i, the informed set realizes every
        pattern of bits n..i exactly once (Theorem 4's proof invariant)."""
        sh = construct_base(6, 2)
        sched = broadcast_schedule(sh, 45)
        informed = {45}
        for idx, rnd in enumerate(sched.rounds[: 6 - 2]):
            dim = 6 - idx  # rounds go n down to m+1
            informed |= {c.receiver for c in rnd}
            prefixes = [u >> (dim - 1) for u in informed]
            assert sorted(prefixes) == list(range(1 << (6 - dim + 1)))


class TestCallOrderPinned:
    """broadcast_schedule keeps ``informed`` sorted across rounds instead
    of re-sorting per round; the emitted call order must stay the
    deterministic ascending-caller order of the original implementation."""

    def test_rounds_are_in_ascending_caller_order(self):
        for sh in (construct_base(6, 3), construct(3, 7, (2, 4))):
            for source in (0, 1, sh.n_vertices - 1, 45 % sh.n_vertices):
                sched = broadcast_schedule(sh, source)
                for rnd in sched.rounds:
                    sources = [c.source for c in rnd]
                    assert sources == sorted(sources)

    def test_matches_per_round_resort_reference(self):
        """Recompute the schedule with the pre-fix per-round ``sorted()``
        logic and pin exact equality."""
        from repro.core.broadcast import phase1_round_calls
        from repro.core.routing import reach_and_flip
        from repro.types import Call, Schedule
        from repro.util.bits import flip_dim

        def reference(sh, source):
            schedule = Schedule(source=source)
            informed = [source]
            for dim in range(sh.n, sh.base_dims, -1):
                calls = [Call.via(reach_and_flip(sh, w, dim)) for w in sorted(informed)]
                schedule.append_round(calls)
                informed.extend(c.receiver for c in calls)
            for dim in range(sh.base_dims, 0, -1):
                calls = [Call.direct(w, flip_dim(w, dim)) for w in sorted(informed)]
                schedule.append_round(calls)
                informed.extend(c.receiver for c in calls)
            return schedule

        for sh in (construct_base(5, 2), construct(3, 7, (2, 4))):
            for source in (0, 3, sh.n_vertices - 1):
                assert broadcast_schedule(sh, source) == reference(sh, source)

    def test_phase1_round_calls_iterates_in_given_order(self):
        sh = construct_base(4, 2)
        sched = broadcast_schedule(sh, 0)
        first = sched.rounds[0].calls
        # callers [0] then [0, r] sorted — the function must not re-sort,
        # so a reversed informed list yields reversed call order
        informed = [0, first[0].receiver]
        from repro.core.broadcast import phase1_round_calls

        forward = phase1_round_calls(sh, informed, sh.n - 1)
        backward = phase1_round_calls(sh, list(reversed(informed)), sh.n - 1)
        assert [c.source for c in forward] == [c.source for c in reversed(backward)]
