"""Unit tests for parameter selection (Theorems 5, 7; Section 4 remark)."""

import math

import pytest

from repro.core.params import (
    ceil_root_of_power,
    default_thresholds,
    degree_formula_for_thresholds,
    improved_params_k3,
    isqrt_ceil,
    optimized_params,
    theorem5_m_star,
    theorem7_params,
)
from repro.types import InvalidParameterError


class TestIntegerRoots:
    def test_isqrt_ceil(self):
        assert isqrt_ceil(0) == 0
        assert isqrt_ceil(1) == 1
        assert isqrt_ceil(2) == 2
        assert isqrt_ceil(4) == 2
        assert isqrt_ceil(5) == 3
        assert isqrt_ceil(10**12) == 10**6

    def test_ceil_root_of_power_exact_cubes(self):
        assert ceil_root_of_power(27, 1, 3) == 3
        assert ceil_root_of_power(27, 2, 3) == 9
        assert ceil_root_of_power(28, 1, 3) == 4

    def test_ceil_root_matches_float_when_safe(self):
        for base in range(1, 60):
            for num, den in [(1, 2), (1, 3), (2, 3), (3, 4)]:
                exact = ceil_root_of_power(base, num, den)
                assert (exact - 1) ** den < base**num <= exact**den

    def test_zero_base(self):
        assert ceil_root_of_power(0, 1, 3) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            ceil_root_of_power(4, 1, 0)
        with pytest.raises(InvalidParameterError):
            isqrt_ceil(-1)


class TestTheorem5MStar:
    @pytest.mark.parametrize("n", list(range(2, 100)))
    def test_in_valid_range(self, n):
        m = theorem5_m_star(n)
        assert 1 <= m < n

    def test_formula(self):
        # m* = ⌈√(2n+4)⌉ − 2
        assert theorem5_m_star(10) == math.ceil(math.sqrt(24)) - 2
        assert theorem5_m_star(2) == isqrt_ceil(8) - 2 == 1

    def test_rejects_n1(self):
        with pytest.raises(InvalidParameterError):
            theorem5_m_star(1)


class TestTheorem7Params:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_strictly_increasing_below_n(self, k):
        for n in range(k + 1, 70, 3):
            thr = theorem7_params(k, n)
            assert len(thr) == k - 1
            seq = (0,) + thr + (n,)
            assert all(a < b for a, b in zip(seq, seq[1:]))

    def test_formula_k3(self):
        # n_i* = ⌈(n-k)^{i/k}⌉ + i - 1
        n, k = 12, 3
        m = n - k
        assert theorem7_params(k, n) == (
            ceil_root_of_power(m, 1, 3),
            ceil_root_of_power(m, 2, 3) + 1,
        )

    def test_rejects_bad_regimes(self):
        with pytest.raises(InvalidParameterError):
            theorem7_params(2, 10)
        with pytest.raises(InvalidParameterError):
            theorem7_params(3, 3)


class TestImprovedK3:
    @pytest.mark.parametrize("n", list(range(4, 80, 5)))
    def test_valid_thresholds(self, n):
        n1, n2 = improved_params_k3(n)
        assert 1 <= n1 < n2 < n

    def test_asymptotic_wins_eventually(self):
        """The improved parameters beat the analytic n_i* for large n
        (coefficient 3·∛4 ≈ 4.76 vs Theorem 7's 5 ᵏ√·-ish)."""
        n = 512
        d_improved = degree_formula_for_thresholds(n, improved_params_k3(n))
        d_analytic = degree_formula_for_thresholds(n, theorem7_params(3, n))
        assert d_improved <= d_analytic

    def test_rejects_tiny_n(self):
        with pytest.raises(InvalidParameterError):
            improved_params_k3(3)


class TestDegreeFormula:
    def test_matches_paper_g153(self):
        assert degree_formula_for_thresholds(15, (3,)) == 6

    def test_matches_built_graphs(self):
        from repro.core.construct import construct

        for k, n, thr in [(2, 6, (2,)), (3, 8, (2, 5)), (4, 9, (2, 4, 6))]:
            sh = construct(k, n, thr)
            assert degree_formula_for_thresholds(n, thr) == sh.graph.max_degree()

    def test_rejects_non_increasing(self):
        with pytest.raises(InvalidParameterError):
            degree_formula_for_thresholds(10, (4, 4))


class TestOptimizedParams:
    def test_never_worse_than_analytic(self):
        for k, n in [(2, 20), (3, 20), (3, 33), (4, 25)]:
            d_opt = degree_formula_for_thresholds(n, optimized_params(k, n))
            d_ana = degree_formula_for_thresholds(n, default_thresholds(k, n))
            assert d_opt <= d_ana

    def test_hill_climb_path(self):
        # force the hill-climbing branch with a tiny exhaustive limit
        thr = optimized_params(3, 30, exhaustive_limit=1)
        d = degree_formula_for_thresholds(30, thr)
        assert d <= degree_formula_for_thresholds(30, default_thresholds(3, 30))

    def test_deterministic(self):
        assert optimized_params(3, 24) == optimized_params(3, 24)

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            optimized_params(1, 10)
        with pytest.raises(InvalidParameterError):
            optimized_params(3, 3)
