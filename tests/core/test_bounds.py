"""Unit tests for the paper's bounds (Theorems 1, 2, 3, 5, 7; corollaries)."""

import math

import pytest

from repro.core.bounds import (
    asymptotic_upper_coefficient,
    ball_size_bound,
    cycle_exclusion_holds,
    degree_lower_bound,
    lower_bound_theorem2,
    lower_bound_theorem3,
    moore_degree_lower_bound,
    theorem1_minimum_k,
    upper_bound_corollary1,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.params import (
    default_thresholds,
    degree_formula_for_thresholds,
    theorem5_m_star,
    theorem7_params,
)
from repro.types import InvalidParameterError


class TestBallBound:
    def test_small_cases(self):
        assert ball_size_bound(0, 2) == 0
        assert ball_size_bound(1, 3) == 1
        # Δ=3, k=2: 3 + 3·2 = 9
        assert ball_size_bound(3, 2) == 9

    def test_matches_theorem2_expansions(self):
        # k=3: Δ³ − Δ² + Δ (paper's expansion)
        for d in range(2, 8):
            assert ball_size_bound(d, 3) == d**3 - d**2 + d
        # k=4: Δ⁴ − 2Δ³ + 2Δ²
        for d in range(2, 8):
            assert ball_size_bound(d, 4) == d**4 - 2 * d**3 + 2 * d**2

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            ball_size_bound(3, 0)


class TestLowerBounds:
    def test_theorem2_closed_form(self):
        assert lower_bound_theorem2(16, 2) == 4
        assert lower_bound_theorem2(17, 2) == 5
        assert lower_bound_theorem2(27, 3) == 3
        assert lower_bound_theorem2(16, 4) == 2

    def test_theorem2_wrong_k(self):
        with pytest.raises(InvalidParameterError):
            lower_bound_theorem2(16, 5)

    def test_moore_at_least_closed_form(self):
        """The exact ball bound dominates the Theorem-2 relaxation."""
        for n in range(2, 80, 3):
            for k in (2, 3, 4):
                assert moore_degree_lower_bound(n, k) >= lower_bound_theorem2(n, k)

    def test_moore_is_tight_definition(self):
        for n in range(2, 40):
            for k in (2, 3):
                d = moore_degree_lower_bound(n, k)
                assert ball_size_bound(d, k) >= n
                if d > 1:
                    assert ball_size_bound(d - 1, k) < n

    def test_theorem3_cycle_case_from_paper(self):
        """Paper: k=5, n=6 gives 2^{n-1}=32 > kn=30."""
        assert cycle_exclusion_holds(6, 5)
        assert not cycle_exclusion_holds(5, 5)  # 16 < 25

    def test_theorem3_at_least_three(self):
        for n in range(6, 64, 7):
            for k in (5, 6):
                if n > k:
                    assert lower_bound_theorem3(n, k) >= 3

    def test_theorem3_rejects_bad_regime(self):
        with pytest.raises(InvalidParameterError):
            lower_bound_theorem3(10, 4)
        with pytest.raises(InvalidParameterError):
            lower_bound_theorem3(5, 5)

    def test_dispatcher(self):
        assert degree_lower_bound(10, 1) == 10
        assert degree_lower_bound(16, 2) == 4
        assert degree_lower_bound(20, 5) == 3
        # fallback regime n <= k
        assert degree_lower_bound(4, 6) == moore_degree_lower_bound(4, 6)


class TestUpperBounds:
    def test_theorem1_threshold(self):
        # N = 22 = 3·2^3 − 2 → h = 3 → k = 6
        assert theorem1_minimum_k(22) == 6
        assert theorem1_minimum_k(4) == 2
        # one more vertex forces the next h
        assert theorem1_minimum_k(23) == 8

    def test_theorem5_formula(self):
        # n=10: 2⌈√24⌉−4 = 2·5−4 = 6
        assert upper_bound_theorem5(10) == 6
        assert upper_bound_theorem5(1) == 2

    def test_theorem5_bound_holds_for_construction(self):
        """The headline claim of Theorem 5 — machine-checked via the
        degree formula for every n up to 200."""
        for n in range(2, 201):
            d = degree_formula_for_thresholds(n, (theorem5_m_star(n),))
            assert d <= upper_bound_theorem5(n), n

    def test_theorem7_bound_holds_for_construction(self):
        """The headline claim of Theorem 7, k = 3..6, n up to 128."""
        for k in (3, 4, 5, 6):
            for n in range(k + 1, 129):
                d = degree_formula_for_thresholds(n, theorem7_params(k, n))
                assert d <= upper_bound_theorem7(n, k), (k, n)

    def test_construction_beats_hypercube(self):
        """Δ(G) < Δ(Q_n) = n for all n where the construction applies."""
        for n in range(6, 129):
            d = degree_formula_for_thresholds(n, (theorem5_m_star(n),))
            assert d < n

    def test_lower_le_measured_le_upper(self):
        """Sandwich: Theorem 2 ≤ measured Δ ≤ Theorem 5/7 for a sweep."""
        for k in (2, 3, 4):
            for n in range(k + 2, 100, 3):
                thr = default_thresholds(k, n)
                d = degree_formula_for_thresholds(n, thr)
                lo = degree_lower_bound(n, k)
                hi = upper_bound_theorem5(n) if k == 2 else upper_bound_theorem7(n, k)
                assert lo <= d <= hi, (k, n, lo, d, hi)

    def test_corollary1(self):
        assert upper_bound_corollary1(16) == 4 * 4 - 2
        with pytest.raises(InvalidParameterError):
            upper_bound_corollary1(1)

    def test_asymptotic_coefficient_k3(self):
        """Section 4: 3·∛4 = 2·3/∛2 ≈ 4.7623."""
        assert math.isclose(asymptotic_upper_coefficient(3), 3 * 4 ** (1 / 3))
        assert abs(asymptotic_upper_coefficient(3) - 4.7623) < 1e-3

    def test_theorem7_rejects_bad_regime(self):
        with pytest.raises(InvalidParameterError):
            upper_bound_theorem7(10, 2)
        with pytest.raises(InvalidParameterError):
            upper_bound_theorem7(3, 3)
