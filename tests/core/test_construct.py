"""Unit tests for the construction procedures (Sections 3 and 4)."""

import numpy as np
import pytest

from repro.core.construct import (
    construct,
    construct_base,
    construct_rec,
    partition_dimensions,
    recursive_edge_set_reference,
)
from repro.domination.labeling import (
    ConditionALabeling,
    paper_example_labeling_q2,
)
from repro.types import ConstructionError, InvalidParameterError


class TestPartitionDimensions:
    def test_descending_matches_example3(self):
        """Example 3: S = {15..4} into 4 parts, S1 = {15,14,13}, …"""
        parts = partition_dimensions(15, 3, 4)
        assert parts == ((15, 14, 13), (12, 11, 10), (9, 8, 7), (6, 5, 4))

    def test_descending_matches_example6(self):
        """Example 6: S = {7,6,5} into 2 parts, S1 = {7,6}, S2 = {5}."""
        assert partition_dimensions(7, 4, 2) == ((7, 6), (5,))

    def test_ascending_matches_example2(self):
        """Example 2: S = {4,3} with S1 = {3}, S2 = {4}."""
        assert partition_dimensions(4, 2, 2, style="ascending") == ((3,), (4,))

    def test_sizes_differ_by_at_most_one(self):
        for high, low, parts in [(20, 3, 4), (10, 2, 5), (7, 6, 3)]:
            sizes = [len(p) for p in partition_dimensions(high, low, parts)]
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == high - low

    def test_empty_subsets_allowed(self):
        parts = partition_dimensions(4, 2, 4)
        assert sum(len(p) for p in parts) == 2
        assert len(parts) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            partition_dimensions(3, 3, 2)
        with pytest.raises(InvalidParameterError):
            partition_dimensions(4, 2, 0)
        with pytest.raises(InvalidParameterError):
            partition_dimensions(4, 2, 2, style="sideways")


class TestConstructBase:
    def test_g42_paper_instance(self):
        """Example 2 / Fig. 3: the exact instance."""
        sh = construct_base(
            4, 2, labeling=paper_example_labeling_q2(), partition=[(3,), (4,)]
        )
        g = sh.graph
        assert g.n_vertices == 16
        assert g.n_edges == 24
        assert g.max_degree() == 3
        # specific edges from Example 2
        assert g.has_edge(0b0011, 0b0111)  # dim 3 at label c1
        assert not g.has_edge(0b0000, 0b1000)  # dim 4 not owned by c1

    def test_g153_degree(self):
        """Example 3: Δ(G_{15,3}) = 6."""
        assert construct_base(15, 3).degree_formula() == 6

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            construct_base(4, 4)
        with pytest.raises(InvalidParameterError):
            construct_base(4, 0)
        with pytest.raises(InvalidParameterError):
            construct_base(3, 4)

    def test_rejects_labeling_of_wrong_cube(self):
        with pytest.raises(InvalidParameterError):
            construct_base(5, 3, labeling=paper_example_labeling_q2())

    def test_rejects_condition_a_violation(self):
        bad = ConditionALabeling(
            m=2, num_labels=2, labels=np.array([0, 1, 1, 1], dtype=np.int64)
        )
        with pytest.raises(ConstructionError):
            construct_base(4, 2, labeling=bad)

    def test_verify_can_be_skipped(self):
        bad = ConditionALabeling(
            m=2, num_labels=2, labels=np.array([0, 1, 1, 1], dtype=np.int64)
        )
        sh = construct_base(4, 2, labeling=bad, verify_labeling=False)
        assert sh.graph.n_vertices == 16  # builds, even though not a 2-mlbg

    def test_explicit_partition_must_match_label_count(self):
        with pytest.raises(InvalidParameterError):
            construct_base(
                4, 2, labeling=paper_example_labeling_q2(), partition=[(3, 4)]
            )

    def test_default_partition_is_descending(self):
        sh = construct_base(15, 3)
        assert sh.levels[0].partition == (
            (15, 14, 13), (12, 11, 10), (9, 8, 7), (6, 5, 4)
        )


class TestConstructGeneral:
    def test_rec_equals_construct3(self):
        a = construct_rec(7, 4, 2)
        b = construct(3, 7, (2, 4))
        assert a.graph == b.graph

    def test_flat_equals_recursive_reference_k3(self):
        sh = construct(3, 7, (2, 4))
        ref = recursive_edge_set_reference(sh)
        assert ref == sh.graph.edge_set()

    def test_flat_equals_recursive_reference_k4(self):
        sh = construct(4, 8, (2, 4, 6))
        ref = recursive_edge_set_reference(sh)
        assert ref == sh.graph.edge_set()

    def test_level_count(self):
        sh = construct(4, 9, (2, 4, 6))
        assert len(sh.levels) == 3
        assert [lvl.t for lvl in sh.levels] == [2, 3, 4]

    def test_threshold_count_validation(self):
        with pytest.raises(InvalidParameterError):
            construct(3, 7, (2,))
        with pytest.raises(InvalidParameterError):
            construct(1, 7, ())

    def test_per_level_overrides(self):
        sh = construct(
            3,
            7,
            (2, 4),
            labelings=[paper_example_labeling_q2(), None],
            partitions=[[(3,), (4,)], None],
        )
        assert sh.levels[0].partition == ((3,), (4,))
        assert sh.levels[1].partition == ((7, 6), (5,))

    def test_override_length_validation(self):
        with pytest.raises(InvalidParameterError):
            construct(3, 7, (2, 4), labelings=[None])

    def test_subgraph_of_cube_all_k(self):
        from repro.graphs.hypercube import hypercube

        q = hypercube(8)
        for k, thr in [(2, (3,)), (3, (2, 5)), (4, (2, 4, 6))]:
            sh = construct(k, 8, thr)
            assert sh.graph.is_subgraph_of(q)

    def test_degree_decreases_with_k(self):
        """More relay freedom → sparser graphs (on the default params)."""
        from repro.core.params import default_thresholds, degree_formula_for_thresholds

        n = 32
        d2 = degree_formula_for_thresholds(n, default_thresholds(2, n))
        d3 = degree_formula_for_thresholds(n, default_thresholds(3, n))
        assert d3 <= d2 <= n
