"""Tests for the constructive Theorem-1 tree scheme (pump / root-fed)."""

import pytest

from repro.core.tree_scheme import (
    _HeapTree,
    pump_calls,
    rootfed_calls,
    ternary_tree_schedule,
)
from repro.graphs.trees import balanced_ternary_core_tree, complete_binary_tree
from repro.model.validator import minimum_broadcast_rounds, validate_broadcast
from repro.types import Call, InvalidParameterError, Schedule


class TestPumpPrimitive:
    """P(s): helper-fed complete binary tree fills level by level."""

    @pytest.mark.parametrize("s", [0, 1, 2, 3, 4, 5])
    def test_pump_fills_tree_in_s_plus_1_rounds(self, s):
        # helper is vertex 0 of a graph containing helper + the tree
        size = (1 << (s + 1)) - 1
        from repro.graphs.base import Graph

        g = Graph(size + 1)
        g.add_edge(0, 1)  # helper to root
        for local in range(size):
            for child in (2 * local + 1, 2 * local + 2):
                if child < size:
                    g.add_edge(1 + local, 1 + child)
        g.freeze()
        tree = _HeapTree(s, lambda x: 1 + x)
        schedule = Schedule(source=0)
        for i in range(1, s + 2):
            schedule.append_round([Call.via(p) for p in pump_calls(tree, [0], i)])
        rep = validate_broadcast(g, schedule, k=size, require_minimum_time=False)
        assert rep.ok, rep.errors[:3]
        assert len(schedule.rounds) == s + 1

    def test_pump_round_informs_exactly_one_level(self):
        tree = _HeapTree(3, lambda x: x)
        informed = set()
        for i in range(1, 5):
            targets = {p[-1] for p in pump_calls(tree, [-1], i)}
            # level i-1 locals: indices 2^{i-1}-1 .. 2^i-2
            expected = set(range((1 << (i - 1)) - 1, (1 << i) - 1))
            assert targets == expected
            assert not (targets & informed)
            informed |= targets

    def test_pump_round_out_of_range(self):
        tree = _HeapTree(2, lambda x: x)
        with pytest.raises(InvalidParameterError):
            pump_calls(tree, [-1], 4)


class TestRootFedPrimitive:
    """Q(s): root-informed complete binary tree, no helper."""

    @pytest.mark.parametrize("s", [1, 2, 3, 4, 5])
    def test_rootfed_completes_in_s_plus_1_rounds(self, s):
        g = complete_binary_tree(s)
        tree = _HeapTree(s, lambda x: x)
        schedule = Schedule(source=0)
        for j in range(1, s + 2):
            schedule.append_round([Call.via(p) for p in rootfed_calls(tree, j)])
        rep = validate_broadcast(
            g, schedule, k=g.n_vertices, require_minimum_time=False
        )
        assert rep.ok, rep.errors[:3]
        # s+1 == ⌈log2(2^{s+1}−1)⌉: minimum time
        assert len(schedule.rounds) == minimum_broadcast_rounds(g.n_vertices)

    def test_rootfed_trivial_tree(self):
        tree = _HeapTree(0, lambda x: x)
        assert rootfed_calls(tree, 1) == []


class TestTernarySchedule:
    @pytest.mark.parametrize("h", [1, 2, 3, 4, 5, 6])
    def test_every_source_minimum_time(self, h):
        g = balanced_ternary_core_tree(h)
        need = minimum_broadcast_rounds(g.n_vertices)
        for s in range(g.n_vertices):
            sched = ternary_tree_schedule(h, s)
            rep = validate_broadcast(g, sched, 2 * h)
            assert rep.ok, (h, s, rep.errors[:3])
            assert len(sched.rounds) == need

    @pytest.mark.parametrize("h", [2, 3, 4, 5])
    def test_call_lengths_at_most_h(self, h):
        """Stronger than Theorem 1: the scheme never needs calls longer
        than h (the theorem allows 2h)."""
        for s in (0, 1, 5, balanced_ternary_core_tree(h).n_vertices - 1):
            sched = ternary_tree_schedule(h, s)
            assert sched.max_call_length() <= max(2, h)

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            ternary_tree_schedule(0, 0)
        with pytest.raises(InvalidParameterError):
            ternary_tree_schedule(2, 100)
