"""The shared pool policy: chunked fan-out, initializers, persistence.

The determinism contract — results in task order whatever the
chunksize, worker count, or worker recycling — is what the campaign
merge gate ultimately leans on, so it is pinned here directly.
"""

import os

import pytest

from repro.util.pool import WorkerPool, default_chunksize, fan_out

# -- module-level workers (the pool pickles them) ---------------------------

_STATE = {"warm": 0}


def _square(x):
    return x * x


def _tag_pid(x):
    return (x, os.getpid())


def _warm(tag):
    _STATE["warm"] += 1
    _STATE["tag"] = tag


def _read_warm(_x):
    return (_STATE["warm"], _STATE.get("tag"))


def _boom(x):
    if x == 3:
        raise ValueError("task 3 exploded")
    return x


class TestDefaultChunksize:
    def test_four_chunks_per_worker(self):
        assert default_chunksize(32, 2) == 4
        assert default_chunksize(100, 4) == 7

    def test_floor_of_one(self):
        assert default_chunksize(3, 8) == 1
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(5, 0) == 2  # jobs clamped to >= 1


class TestFanOut:
    def test_serial_matches_map(self):
        assert fan_out(_square, [1, 2, 3], 1) == [1, 4, 9]

    def test_parallel_order_determinism_under_chunking(self):
        tasks = list(range(37))  # deliberately not a chunksize multiple
        expected = [x * x for x in tasks]
        for chunksize in (None, 1, 5, 64):
            assert fan_out(_square, tasks, 2, chunksize=chunksize) == expected

    def test_single_task_stays_in_process(self):
        pid = os.getpid()
        [(_, worker_pid)] = fan_out(_tag_pid, [0], 4)
        assert worker_pid == pid

    def test_parallel_uses_worker_processes(self):
        pids = {pid for _, pid in fan_out(_tag_pid, list(range(8)), 2)}
        assert os.getpid() not in pids

    def test_initializer_runs_in_process_when_serial(self):
        _STATE["warm"] = 0
        out = fan_out(_read_warm, [0, 1], 1, initializer=_warm, initargs=("t",))
        assert out == [(1, "t"), (1, "t")]

    def test_initializer_runs_once_per_worker(self):
        # every task must observe an already-warmed worker
        out = fan_out(
            _read_warm, list(range(12)), 2, initializer=_warm, initargs=("w",)
        )
        assert all(count >= 1 and tag == "w" for count, tag in out)

    def test_maxtasksperchild_recycles_workers(self):
        tasks = list(range(16))
        # chunksize 1 + maxtasksperchild 1 = a fresh process per task
        pids = [pid for _, pid in fan_out(
            _tag_pid, tasks, 2, chunksize=1, maxtasksperchild=1
        )]
        assert len(set(pids)) > 2
        # order is still task order
        assert [x for x, _ in fan_out(
            _tag_pid, tasks, 2, chunksize=1, maxtasksperchild=1
        )] == tasks

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3 exploded"):
            fan_out(_boom, list(range(6)), 2, chunksize=1)

    def test_pool_kwarg_conflicts_rejected(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="WorkerPool properties"):
                fan_out(_square, [1, 2], 2, pool=pool, initializer=_warm)


class TestWorkerPool:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            WorkerPool(0)

    def test_persistent_pool_reuses_workers(self):
        # A map may land every chunk on one of the two workers, so the
        # per-map pid sets need not be equal — but both maps must be
        # served by the pool's own (at most 2) persistent processes.
        with WorkerPool(2) as pool:
            first = {pid for _, pid in pool.map(_tag_pid, range(8))}
            second = {pid for _, pid in pool.map(_tag_pid, range(8))}
        assert len(first | second) <= 2
        assert os.getpid() not in first | second

    def test_fan_out_routes_through_given_pool(self):
        with WorkerPool(2) as pool:
            a = {pid for _, pid in fan_out(_tag_pid, list(range(8)), 2, pool=pool)}
            b = {pid for _, pid in fan_out(_tag_pid, list(range(8)), 2, pool=pool)}
        # both fan_outs ran on the pool's own persistent processes
        assert len(a | b) <= 2
        assert os.getpid() not in a | b

    def test_serial_pool_runs_initializer_lazily_once(self):
        _STATE["warm"] = 0
        with WorkerPool(1, initializer=_warm, initargs=("p",)) as pool:
            assert pool.map(_read_warm, [0]) == [(1, "p")]
            assert pool.map(_read_warm, [1]) == [(1, "p")]

    def test_closed_pool_rejects_map(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_square, [1])

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.map(_square, [1, 2])
        pool.close()
        pool.close()
