"""RetryPolicy: bounded attempts, deterministic backoff, deadlines."""

import pytest

from repro.types import InvalidParameterError
from repro.util.retry import (
    DEFAULT_MAX_ATTEMPTS,
    RetryPolicy,
    seeded_jitter,
)


class TestConstruction:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert policy.retries == DEFAULT_MAX_ATTEMPTS - 1
        assert policy.task_timeout is None

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_delays_must_be_nonnegative(self):
        with pytest.raises(InvalidParameterError, match="delays"):
            RetryPolicy(base_delay=-0.1)

    def test_task_timeout_must_be_positive_or_none(self):
        with pytest.raises(InvalidParameterError, match="task_timeout"):
            RetryPolicy(task_timeout=0)

    def test_from_knobs_maps_retries_to_attempts(self):
        assert RetryPolicy.from_knobs(retries=0).max_attempts == 1
        assert RetryPolicy.from_knobs(retries=4).max_attempts == 5
        assert RetryPolicy.from_knobs().max_attempts == DEFAULT_MAX_ATTEMPTS
        assert RetryPolicy.from_knobs(task_timeout=2.5).task_timeout == 2.5

    def test_from_knobs_rejects_negative_retries(self):
        with pytest.raises(InvalidParameterError, match="retries"):
            RetryPolicy.from_knobs(retries=-1)


class TestBackoff:
    def test_deterministic_across_calls(self):
        policy = RetryPolicy(seed=7)
        first = [policy.backoff(a, key="t1") for a in range(1, 5)]
        second = [policy.backoff(a, key="t1") for a in range(1, 5)]
        assert first == second

    def test_seed_and_key_decorrelate(self):
        assert RetryPolicy(seed=1).backoff(1, "x") != RetryPolicy(seed=2).backoff(
            1, "x"
        )
        policy = RetryPolicy()
        assert policy.backoff(1, "a") != policy.backoff(1, "b")

    def test_exponential_envelope_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4)
        for attempt in range(1, 10):
            delay = policy.backoff(attempt, "k")
            nominal = min(0.4, 0.1 * 2 ** (attempt - 1))
            assert 0.5 * nominal <= delay < nominal

    def test_attempt_zero_and_zero_base_are_free(self):
        assert RetryPolicy().backoff(0) == 0.0
        assert RetryPolicy(base_delay=0.0).backoff(3) == 0.0

    def test_jitter_range_and_determinism(self):
        values = {seeded_jitter(0, f"k{i}", 1) for i in range(64)}
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(values) == 64  # sha256: no accidental collisions here
        assert seeded_jitter(3, "k", 2) == seeded_jitter(3, "k", 2)


class TestDeadlines:
    def test_no_timeout_means_no_deadline(self):
        assert RetryPolicy().chunk_deadline(10) is None

    def test_deadline_scales_with_chunk_length(self):
        policy = RetryPolicy(task_timeout=2.0)
        assert policy.chunk_deadline(1) == 2.0
        assert policy.chunk_deadline(5) == 10.0
        assert policy.chunk_deadline(0) == 2.0  # floor: one task's budget
