"""WorkerPool fault paths: crashes, retries, timeouts, quarantine, chaos.

Worker functions are module-level (RL005: submitted callables must be
top-level picklable), and every crash here is deterministic — either a
marker file flips the behavior on retry, or the chaos harness names the
exact chunk to kill.
"""

import os
import signal
import time

import pytest

from repro.devtools import chaos
from repro.errors import TaskTimeout, WorkerCrash
from repro.util.pool import WorkerPool
from repro.util.retry import RetryPolicy

# No backoff sleeps: fault tests exercise the retry *logic*, not the clock.
FAST = RetryPolicy(base_delay=0.0)


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()
    yield
    chaos.reset()


def _double(x):
    return x * 2


def _crash_once(arg):
    """SIGKILL the worker the first time each task runs; succeed after."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _crash_on_seven(value):
    if value == 7:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def _sleep_on_two(value):
    if value == 2:
        time.sleep(30.0)  # far past any test deadline; worker gets killed
    return value


def _log_execution(arg):
    log, value = arg
    with open(log, "a") as fh:
        fh.write(f"{value}\n")
    if value == 5:
        raise ValueError(f"task {value} is broken")
    return value


def _bad_init():
    raise ValueError("warm failed")


class TestCrashRetry:
    def test_killed_worker_chunk_is_rerun(self, tmp_path):
        tasks = [(str(tmp_path / f"marker{i}"), i) for i in range(4)]
        with WorkerPool(2, retry=FAST) as pool:
            out = pool.map(_crash_once, tasks, chunksize=2)
        assert out == [0, 2, 4, 6]
        # every task really did kill a worker once before succeeding
        assert all(os.path.exists(marker) for marker, _ in tasks)

    def test_poison_task_is_quarantined(self):
        retry = RetryPolicy(base_delay=0.0, max_attempts=2)
        with WorkerPool(2, retry=retry) as pool:
            results, faults = pool.map_quarantine(
                _crash_on_seven, [1, 7, 3, 4], chunksize=2
            )
        assert results == [2, None, 6, 8]
        (fault,) = faults
        assert fault.index == 1
        assert fault.kind == "crash"
        assert fault.attempts == 2
        assert isinstance(fault.as_error(), WorkerCrash)

    def test_map_raises_worker_crash_after_budget(self):
        retry = RetryPolicy(base_delay=0.0, max_attempts=2)
        with WorkerPool(2, retry=retry) as pool:
            with pytest.raises(WorkerCrash, match="attempt 2/2"):
                pool.map(_crash_on_seven, [1, 7, 3, 4], chunksize=2)


class TestTimeouts:
    def test_deadline_quarantines_slow_task(self):
        retry = RetryPolicy(base_delay=0.0, max_attempts=1, task_timeout=0.4)
        with WorkerPool(2, retry=retry) as pool:
            results, faults = pool.map_quarantine(
                _sleep_on_two, [0, 1, 2, 3], chunksize=1
            )
        assert results == [0, 1, None, 3]
        (fault,) = faults
        assert fault.kind == "timeout"
        assert "deadline" in fault.message
        assert isinstance(fault.as_error(), TaskTimeout)

    def test_map_raises_task_timeout(self):
        retry = RetryPolicy(base_delay=0.0, max_attempts=1, task_timeout=0.4)
        with WorkerPool(2, retry=retry) as pool:
            with pytest.raises(TaskTimeout, match="deadline"):
                pool.map(_sleep_on_two, [0, 1, 2, 3], chunksize=1)


class TestTaskExceptions:
    def test_task_error_reraises_original_without_retry(self, tmp_path):
        log = str(tmp_path / "executions.log")
        tasks = [(log, 1), (log, 5), (log, 2), (log, 3)]
        with WorkerPool(2, retry=FAST) as pool:
            with pytest.raises(ValueError, match="task 5 is broken"):
                pool.map(_log_execution, tasks, chunksize=1)
        executed = open(log).read().splitlines()
        # deterministic task-code failure: exactly one execution, no retry
        assert executed.count("5") == 1


class TestInitializerFailures:
    def test_serial_initializer_failure_is_not_rerun(self):
        calls = []

        def init():
            calls.append(1)
            raise ValueError("warm failed")

        pool = WorkerPool(1, initializer=init)
        with pytest.raises(ValueError, match="warm failed"):
            pool.map(_double, [1, 2])
        with pytest.raises(RuntimeError, match="failed previously"):
            pool.map(_double, [1, 2])
        assert calls == [1]  # never re-run against half-initialized state

    def test_parallel_initializer_failure_raises_original(self):
        with WorkerPool(2, initializer=_bad_init, retry=FAST) as pool:
            with pytest.raises(ValueError, match="warm failed"):
                pool.map(_double, [1, 2, 3, 4])


class TestGracefulShutdown:
    def test_close_exits_workers_cleanly(self):
        with WorkerPool(2, retry=FAST) as pool:
            assert pool.map(_double, list(range(8))) == [i * 2 for i in range(8)]
            procs = [w.proc for w in pool._workers.values()]
        assert procs  # the map really forked workers
        assert all(proc.exitcode == 0 for proc in procs)

    def test_error_path_terminates_workers(self):
        procs = []
        with pytest.raises(RuntimeError, match="boom"):
            with WorkerPool(2, retry=FAST) as pool:
                pool.map(_double, list(range(8)))
                procs = [w.proc for w in pool._workers.values()]
                raise RuntimeError("boom")
        assert procs
        assert all(not proc.is_alive() for proc in procs)


class TestChaosIntegration:
    def test_malformed_spec_fails_at_pool_construction(self, monkeypatch):
        from repro.types import InvalidParameterError

        monkeypatch.setenv("REPRO_CHAOS", "explode:now")
        with pytest.raises(InvalidParameterError, match="unknown event kind"):
            WorkerPool(1)  # even serial pools must reject a bad spec

    def test_chaos_kill_is_survived_by_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kill:chunk=0")
        with WorkerPool(2, retry=FAST) as pool:
            out = pool.map(_double, [1, 2, 3, 4], chunksize=2)
        assert out == [2, 4, 6, 8]

    def test_chaos_delay_trips_the_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "delay:chunk=0:ms=5000")
        retry = RetryPolicy(base_delay=0.0, max_attempts=1, task_timeout=0.4)
        with WorkerPool(2, retry=retry) as pool:
            results, faults = pool.map_quarantine(
                _double, [1, 2, 3], chunksize=1
            )
        assert results == [None, 4, 6]
        (fault,) = faults
        assert fault.index == 0
        assert fault.kind == "timeout"


class TestOnResultStreaming:
    def test_on_result_sees_every_completed_task(self):
        seen = {}

        def sink(indices, values):
            for idx, value in zip(indices, values):
                seen[idx] = value

        with WorkerPool(2, retry=FAST) as pool:
            out = pool.map(_double, list(range(10)), on_result=sink)
        assert out == [i * 2 for i in range(10)]
        assert seen == {i: i * 2 for i in range(10)}

    def test_quarantined_task_never_streams(self):
        seen = {}

        def sink(indices, values):
            for idx, value in zip(indices, values):
                seen[idx] = value

        retry = RetryPolicy(base_delay=0.0, max_attempts=2)
        with WorkerPool(2, retry=retry) as pool:
            pool.map_quarantine(
                _crash_on_seven, [1, 7, 3, 4], chunksize=2, on_result=sink
            )
        assert 1 not in seen  # the poison index
        assert seen[0] == 2 and seen[2] == 6 and seen[3] == 8
