"""Unit tests for repro.util.bits — the bit-string substrate."""

import numpy as np
import pytest

from repro.util.bits import (
    all_vertices,
    bit,
    bit_positions,
    bits_to_int,
    flip,
    flip_dim,
    flip_dim_array,
    from_bitstring,
    hamming_distance,
    int_to_bits,
    iter_neighbors,
    popcount,
    popcount_array,
    prefix_value,
    suffix_value,
    to_bitstring,
)


class TestBitAccess:
    def test_bit_is_one_indexed_from_lsb(self):
        # u = 0b0110: dim 1 = 0, dim 2 = 1, dim 3 = 1, dim 4 = 0
        assert bit(0b0110, 1) == 0
        assert bit(0b0110, 2) == 1
        assert bit(0b0110, 3) == 1
        assert bit(0b0110, 4) == 0

    def test_bit_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            bit(0, 0)

    def test_flip_is_zero_indexed(self):
        assert flip(0, 0) == 1
        assert flip(0b100, 2) == 0

    def test_flip_dim_matches_paper_operator(self):
        # ⊕_4(⊕_2 0000) = 1010 (Example 4)
        assert flip_dim(flip_dim(0b0000, 2), 4) == 0b1010
        # ⊕_3(⊕_1 1010) = 1111 (Example 4)
        assert flip_dim(flip_dim(0b1010, 1), 3) == 0b1111

    def test_flip_dim_involution(self):
        for u in range(32):
            for i in range(1, 6):
                assert flip_dim(flip_dim(u, i), i) == u

    def test_flip_dim_rejects_zero(self):
        with pytest.raises(ValueError):
            flip_dim(3, 0)


class TestPopcountDistance:
    def test_popcount_small(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 40) - 1) == 40

    def test_hamming_distance_symmetry(self):
        for u, v in [(0, 7), (5, 5), (0b1010, 0b0101)]:
            assert hamming_distance(u, v) == hamming_distance(v, u)

    def test_hamming_distance_values(self):
        assert hamming_distance(0, 0) == 0
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(0b111, 0b110) == 1


class TestAffixes:
    def test_suffix_prefix_partition_vertex(self):
        u = 0b1101101
        for m in range(8):
            assert (prefix_value(u, m) << m) | suffix_value(u, m) == u

    def test_suffix_of_example2_labeling(self):
        # g(0011) uses suffix 11 of length 2
        assert suffix_value(0b0011, 2) == 0b11
        assert suffix_value(0b1110, 2) == 0b10

    def test_negative_suffix_rejected(self):
        with pytest.raises(ValueError):
            suffix_value(3, -1)


class TestStrings:
    def test_to_bitstring_is_paper_order(self):
        # paper writes u_n…u_1, most significant first
        assert to_bitstring(0b1010, 4) == "1010"
        assert to_bitstring(1, 4) == "0001"

    def test_to_bitstring_range_check(self):
        with pytest.raises(ValueError):
            to_bitstring(16, 4)

    def test_roundtrip(self):
        for u in range(64):
            assert from_bitstring(to_bitstring(u, 6)) == u

    def test_from_bitstring_rejects_garbage(self):
        with pytest.raises(ValueError):
            from_bitstring("10a1")
        with pytest.raises(ValueError):
            from_bitstring("")


class TestVectorHelpers:
    def test_int_to_bits_roundtrip(self):
        for u in (0, 1, 0b1011, 0b111111):
            assert bits_to_int(int_to_bits(u, 6)) == u

    def test_int_to_bits_index_is_dimension_minus_one(self):
        v = int_to_bits(0b100, 3)
        assert list(v) == [0, 0, 1]

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    def test_bit_positions(self):
        assert bit_positions(0) == []
        assert bit_positions(0b10110) == [1, 2, 4]

    def test_iter_neighbors_count_and_distance(self):
        u = 0b0110
        nbrs = list(iter_neighbors(u, 4))
        assert len(nbrs) == 4
        assert all(hamming_distance(u, v) == 1 for v in nbrs)
        assert len(set(nbrs)) == 4

    def test_all_vertices(self):
        v = all_vertices(4)
        assert v.shape == (16,)
        assert v[0] == 0 and v[-1] == 15

    def test_all_vertices_bounds(self):
        with pytest.raises(ValueError):
            all_vertices(-1)

    def test_popcount_array_matches_scalar(self):
        a = np.arange(256, dtype=np.uint64)
        vec = popcount_array(a)
        assert all(int(vec[i]) == popcount(i) for i in range(256))

    def test_flip_dim_array_matches_scalar(self):
        a = np.arange(64, dtype=np.uint64)
        out = flip_dim_array(a, 3)
        assert all(int(out[i]) == flip_dim(i, 3) for i in range(64))

    def test_flip_dim_array_rejects_zero(self):
        with pytest.raises(ValueError):
            flip_dim_array(np.arange(4), 0)


class TestMaskHelpers:
    """The engine's bitmask set representation (mask_from_indices & co)."""

    def test_roundtrip(self):
        from repro.util.bits import mask_from_indices, mask_to_indices

        for indices in ([], [0], [3, 1, 4], list(range(70))):
            mask = mask_from_indices(indices)
            assert mask_to_indices(mask) == sorted(set(indices))
            assert mask.bit_count() == len(set(indices))

    def test_iter_bits_ascending(self):
        from repro.util.bits import iter_bits

        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_iter_bits_rejects_negative(self):
        from repro.util.bits import iter_bits

        with pytest.raises(ValueError):
            list(iter_bits(-1))

    def test_duplicates_idempotent(self):
        from repro.util.bits import mask_from_indices

        assert mask_from_indices([2, 2, 2]) == 0b100
