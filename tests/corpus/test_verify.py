"""verify_corpus: digest pass, seeded re-validation, corruption detection."""

import pytest

from repro.corpus import build_corpus, verify_corpus

GRAPH = "hypercube:3"
SCHED = "greedy"
K = 1
SEED = 0


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("verify") / "good.corpus"
    build_corpus(path, GRAPH, SCHED, k=K, seed=SEED)
    return path


class TestVerifyOk:
    def test_good_corpus_passes(self, corpus_path):
        report = verify_corpus(corpus_path, sample=4)
        assert report.ok
        assert report.errors == []
        assert report.n_frames == 8
        assert report.n_groups == 1
        assert report.sections_checked == 7
        assert report.sampled == 4
        assert report.revalidated == 4

    def test_sample_capped_at_corpus_size(self, corpus_path):
        report = verify_corpus(corpus_path, sample=999)
        assert report.sampled == 8
        assert report.revalidated == 8
        assert report.ok

    def test_sample_is_seed_deterministic(self, corpus_path):
        a = verify_corpus(corpus_path, sample=3, seed=7).to_wire()
        b = verify_corpus(corpus_path, sample=3, seed=7).to_wire()
        assert a == b

    def test_wire_payload_shape(self, corpus_path):
        wire = verify_corpus(corpus_path, sample=2).to_wire()
        assert set(wire) == {
            "path",
            "ok",
            "n_frames",
            "n_groups",
            "sections_checked",
            "sampled",
            "revalidated",
            "errors",
        }
        assert wire["ok"] is True

    def test_scheme_corpus_verifies(self, tmp_path):
        path = tmp_path / "scheme.corpus"
        build_corpus(path, "sparse:5:2", "scheme")
        report = verify_corpus(path, sample=6, engine="fast")
        assert report.ok, report.errors
        assert report.revalidated == 6


class TestVerifyCorruption:
    def test_flipped_plane_byte_fails_digest(self, corpus_path, tmp_path):
        data = bytearray(corpus_path.read_bytes())
        data[40] ^= 0xFF  # inside the path_verts section
        bad = tmp_path / "bad.corpus"
        bad.write_bytes(bytes(data))
        report = verify_corpus(bad, sample=4)
        assert not report.ok
        assert any("digest mismatch" in err for err in report.errors)
        # bad bytes short-circuit: no frame is re-validated
        assert report.revalidated == 0
