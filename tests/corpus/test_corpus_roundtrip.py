"""Writer → reader round trips: zero-copy slicing, lookup, engine fit."""

import numpy as np
import pytest

import repro.api as api
from repro.corpus import CorpusReader, CorpusWriter, build_corpus
from repro.errors import (
    CorpusError,
    CorpusFormatError,
    CorpusKeyError,
    error_code,
)
from repro.frame import ScheduleFrame

GRAPH = "hypercube:4"
SCHED = "greedy"
K = 2
SEED = 1


@pytest.fixture(scope="module")
def greedy_corpus(tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus") / "greedy.corpus"
    n = build_corpus(path, GRAPH, SCHED, k=K, seed=SEED)
    assert n == 16
    return path


class TestRoundTrip:
    def test_frames_identical_to_scheduler_output(self, greedy_corpus):
        graph = api.build_graph(GRAPH)
        with CorpusReader(greedy_corpus) as reader:
            assert reader.n_frames == 16
            for source in (0, 5, 15):
                frame = reader.get(GRAPH, SCHED, source, k=K, seed=SEED)
                direct = api.schedule(
                    graph, SCHED, source=source, k=K, seed=SEED
                ).frame
                assert frame == direct

    def test_lookup_miss_is_none(self, greedy_corpus):
        with CorpusReader(greedy_corpus) as reader:
            assert reader.lookup(GRAPH, SCHED, 99, k=K, seed=SEED) is None
            assert reader.lookup(GRAPH, SCHED, 0, k=K, seed=SEED + 1) is None
            assert reader.lookup(GRAPH, "search", 0, k=K, seed=SEED) is None
            assert reader.lookup(GRAPH, SCHED, 0, k=None, seed=SEED) is None

    def test_get_miss_raises_stable_code(self, greedy_corpus):
        with CorpusReader(greedy_corpus) as reader:
            with pytest.raises(CorpusKeyError) as excinfo:
                reader.get(GRAPH, SCHED, 99, k=K, seed=SEED)
            assert error_code(excinfo.value) == "corpus-miss"

    def test_zero_copy_and_read_only(self, greedy_corpus):
        with CorpusReader(greedy_corpus) as reader:
            frame = reader.frame_at(3)
            for plane, section in (
                (frame.path_verts, "path_verts"),
                (frame.call_offsets, "call_offsets"),
                (frame.round_offsets, "round_offsets"),
            ):
                assert not plane.flags.writeable
                assert np.shares_memory(plane, reader.section(section))
            # the cache hands back the same object, not a new slice
            assert reader.frame_at(3) is frame

    def test_stats_payload(self, greedy_corpus):
        with CorpusReader(greedy_corpus) as reader:
            stats = reader.stats()
        assert stats["n_frames"] == 16
        assert stats["n_groups"] == 1
        assert stats["groups"][0] == {
            "graph": GRAPH,
            "scheduler": SCHED,
            "k": K,
            "seed": SEED,
            "lo": 0,
            "hi": 16,
        }


class TestEngineIntegration:
    def test_mmap_frames_validate_on_every_engine(self, greedy_corpus):
        graph = api.build_graph(GRAPH)
        with CorpusReader(greedy_corpus) as reader:
            frame = reader.get(GRAPH, SCHED, 7, k=K, seed=SEED)
            for engine in ("reference", "fast", "batch"):
                report = api.validate(graph, frame, K, engine=engine)
                report = report[0] if isinstance(report, list) else report
                assert report.ok, (engine, report.errors)

    def test_mmap_frames_export_to_shm_planes(self, greedy_corpus):
        from repro.engine.shm import PlaneRegistry

        with CorpusReader(greedy_corpus) as reader:
            frame = reader.frame_at(0)
            with PlaneRegistry() as registry:
                handle = registry.export_frame(frame)
                assert handle is not None


class TestSchemeMode:
    def test_scheme_corpus_all_sources_validate(self, tmp_path):
        path = tmp_path / "scheme.corpus"
        n = build_corpus(path, "sparse:5:2", "scheme")
        assert n == 32
        sh = api.construction("sparse:5:2")
        with CorpusReader(path) as reader:
            sources = reader.section("source")
            assert sources.tolist() == list(range(32))
            for source in (0, 9, 31):
                frame = reader.get("sparse:5:2", "scheme", source)
                assert frame.source == source
                report = api.validate(sh.graph, frame, sh.k, engine="fast")
                assert report.ok, report.errors

    def test_scheme_source_subset(self, tmp_path):
        path = tmp_path / "subset.corpus"
        n = build_corpus(path, "sparse:5:2", "scheme", sources=[3, 1, 8])
        assert n == 3
        with CorpusReader(path) as reader:
            assert reader.section("source").tolist() == [1, 3, 8]


class TestWriterContract:
    def frame(self, source):
        return ScheduleFrame.from_paths(source, [[(source, source + 1)]])

    def test_descending_sources_rejected(self, tmp_path):
        writer = CorpusWriter(tmp_path / "bad.corpus")
        writer.add_frame("g", "s", self.frame(5))
        with pytest.raises(CorpusError, match="strictly ascending"):
            writer.add_frame("g", "s", self.frame(5))

    def test_reopened_group_rejected(self, tmp_path):
        writer = CorpusWriter(tmp_path / "bad.corpus")
        writer.add_frame("g", "s", self.frame(0))
        writer.add_frame("g2", "s", self.frame(0))
        with pytest.raises(CorpusError, match="already written"):
            writer.add_frame("g", "s", self.frame(1))

    def test_add_after_close_rejected(self, tmp_path):
        writer = CorpusWriter(tmp_path / "bad.corpus")
        writer.add_frame("g", "s", self.frame(0))
        writer.close()
        with pytest.raises(CorpusError, match="closed"):
            writer.add_frame("g", "s", self.frame(1))

    def test_multi_group_corpus(self, tmp_path):
        path = tmp_path / "multi.corpus"
        with CorpusWriter(path) as writer:
            writer.add_frame("g", "s", self.frame(0), k=2, seed=0)
            writer.add_frame("g", "s", self.frame(4), k=2, seed=0)
            writer.add_frame("g", "s", self.frame(1), k=2, seed=9)
        with CorpusReader(path) as reader:
            assert reader.n_frames == 3
            assert len(reader.groups) == 2
            assert reader.get("g", "s", 4, k=2, seed=0).source == 4
            assert reader.get("g", "s", 1, k=2, seed=9).source == 1

    def test_failed_build_leaves_no_file(self, tmp_path):
        from repro.types import ReproError

        path = tmp_path / "never.corpus"
        with pytest.raises(ReproError):
            build_corpus(path, GRAPH, SCHED, k=K, seed=SEED, sources=[999])
        assert not path.exists()


class TestReaderRejections:
    def test_not_a_corpus_file(self, tmp_path):
        path = tmp_path / "noise.corpus"
        path.write_bytes(b"x" * 100)
        with pytest.raises(CorpusFormatError, match="magic"):
            CorpusReader(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.corpus"
        path.write_bytes(b"")
        with pytest.raises(CorpusFormatError, match="empty"):
            CorpusReader(path)

    def test_truncated_file(self, greedy_corpus, tmp_path):
        data = greedy_corpus.read_bytes()
        path = tmp_path / "trunc.corpus"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorpusFormatError):
            CorpusReader(path)

    def test_frame_id_out_of_range(self, greedy_corpus):
        with CorpusReader(greedy_corpus) as reader:
            with pytest.raises(CorpusKeyError, match="out of range"):
                reader.frame_at(99)
