"""``repro corpus`` subprocess contract: build, query, verify, stats.

Subprocess tests pin the real entry point including the exit-2 error
contract (one stderr line ``corpus failed [<code>]: ...``, no
traceback), same as tests/integration/test_cli_errors.py.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
        timeout=120,
    )


def assert_clean_failure(proc, *, needle=None):
    assert proc.returncode == 2, (proc.returncode, proc.stderr)
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout
    message_lines = [ln for ln in proc.stderr.splitlines() if ln.strip()]
    assert len(message_lines) == 1, proc.stderr
    if needle is not None:
        assert needle in message_lines[0]


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cli.corpus"
    proc = run_cli(
        "corpus",
        "build",
        "--out",
        str(path),
        "--graph",
        "hypercube:3",
        "--scheduler",
        "greedy",
        "--k",
        "1",
    )
    assert proc.returncode == 0, proc.stderr
    assert "8 frames" in proc.stdout
    return path


class TestBuildQueryStats:
    def test_query_hit_prints_schedule(self, built):
        proc = run_cli(
            "corpus",
            "query",
            str(built),
            "--graph",
            "hypercube:3",
            "--scheduler",
            "greedy",
            "--k",
            "1",
            "--source",
            "5",
        )
        assert proc.returncode == 0, proc.stderr
        assert "source" in proc.stdout

    def test_query_saves_loadable_schedule(self, built, tmp_path):
        out = tmp_path / "frame.json"
        proc = run_cli(
            "corpus",
            "query",
            str(built),
            "--graph",
            "hypercube:3",
            "--scheduler",
            "greedy",
            "--k",
            "1",
            "--source",
            "0",
            "--out",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        from repro.io import load_schedule

        graph, frame, k = load_schedule(str(out))
        assert frame.source == 0
        assert graph.n_vertices == 8
        assert k == 1

    def test_stats_json(self, built):
        proc = run_cli("corpus", "stats", str(built))
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
        assert stats["n_frames"] == 8
        assert stats["format"] == "repro-corpus/1"
        assert stats["groups"][0]["scheduler"] == "greedy"

    def test_verify_ok(self, built):
        proc = run_cli("corpus", "verify", str(built), "--sample", "3")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["ok"] is True
        assert report["revalidated"] == 3


class TestCorpusErrors:
    def test_query_miss_exits_2_with_code(self, built):
        proc = run_cli(
            "corpus",
            "query",
            str(built),
            "--graph",
            "hypercube:3",
            "--scheduler",
            "greedy",
            "--k",
            "1",
            "--source",
            "99",
        )
        assert_clean_failure(proc, needle="corpus failed [corpus-miss]")

    def test_verify_corrupted_exits_2_with_code(self, built, tmp_path):
        data = bytearray(built.read_bytes())
        data[40] ^= 0xFF
        bad = tmp_path / "bad.corpus"
        bad.write_bytes(bytes(data))
        proc = run_cli("corpus", "verify", str(bad))
        assert proc.returncode == 2, (proc.returncode, proc.stderr)
        assert "Traceback" not in proc.stderr
        assert "corpus failed [corpus-integrity-error]" in proc.stderr
        # the report still prints before the failure line
        report = json.loads(proc.stdout)
        assert report["ok"] is False

    def test_not_a_corpus_file_exits_2(self, tmp_path):
        noise = tmp_path / "noise.corpus"
        noise.write_bytes(b"not a corpus at all, far too short header")
        proc = run_cli("corpus", "stats", str(noise))
        assert_clean_failure(proc, needle="corpus failed [corpus-format-error]")

    def test_missing_file_exits_2(self, tmp_path):
        proc = run_cli("corpus", "stats", str(tmp_path / "absent.corpus"))
        assert_clean_failure(proc, needle="corpus failed")

    def test_build_unknown_graph_exits_2(self, tmp_path):
        proc = run_cli(
            "corpus",
            "build",
            "--out",
            str(tmp_path / "x.corpus"),
            "--graph",
            "bogus:3",
        )
        assert_clean_failure(proc, needle="corpus failed")
