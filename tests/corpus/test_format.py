"""Golden byte-pinning and validation for the repro-corpus/1 layout.

Like the io v2 writer tests: the header, trailer, and a complete tiny
corpus file are pinned to exact bytes, so any change to the on-disk
layout is a loud format break (bump CORPUS_VERSION, don't reinterpret
v1 bytes).
"""

import hashlib
import json

import pytest

from repro.corpus import format as corpus_format
from repro.corpus.writer import CorpusWriter
from repro.errors import CorpusFormatError
from repro.frame import ScheduleFrame

HEADER_HEX = "5250434f52505553010000002000000000000000000000000000000000000000"
TRAILER_100_7_HEX = "640000000000000007000000000000005250434f52505553"
GOLDEN_SHA256 = "0bb4b6ad6578a9a0f48c9e19d1cd7cb910a3b490845efcc48f42582226621134"
GOLDEN_SIZE = 1286


def tiny_corpus(path):
    f0 = ScheduleFrame.from_paths(0, [[(0, 1)], [(0, 2), (1, 3)]])
    f1 = ScheduleFrame.from_paths(1, [[(1, 0)], [(1, 3), (0, 2)]])
    with CorpusWriter(path) as writer:
        writer.add_frame("hypercube:2", "greedy", f0, k=1, seed=0)
        writer.add_frame("hypercube:2", "greedy", f1, k=1, seed=0)
    return path


class TestGoldenBytes:
    def test_header_bytes_pinned(self):
        assert corpus_format.pack_header().hex() == HEADER_HEX
        assert len(corpus_format.pack_header()) == corpus_format.HEADER_SIZE

    def test_trailer_bytes_pinned(self):
        assert corpus_format.pack_trailer(100, 7).hex() == TRAILER_100_7_HEX
        assert corpus_format.unpack_trailer(
            corpus_format.pack_trailer(100, 7)
        ) == (100, 7)

    def test_whole_file_pinned(self, tmp_path):
        path = tiny_corpus(tmp_path / "golden.corpus")
        data = path.read_bytes()
        assert len(data) == GOLDEN_SIZE
        assert hashlib.sha256(data).hexdigest() == GOLDEN_SHA256

    def test_sections_are_8_byte_aligned(self, tmp_path):
        path = tiny_corpus(tmp_path / "golden.corpus")
        data = path.read_bytes()
        offset, size = corpus_format.unpack_trailer(data)
        sections, groups, n_frames = corpus_format.decode_footer(
            data[offset : offset + size]
        )
        assert n_frames == 2
        assert [g.key for g in groups] == [("hypercube:2", "greedy", 1, 0)]
        for name in corpus_format.SECTION_NAMES:
            assert sections[name]["offset"] % 8 == 0


class TestHeaderValidation:
    def test_short_buffer_rejected(self):
        with pytest.raises(CorpusFormatError, match="too short"):
            corpus_format.unpack_header(b"RPC")

    def test_bad_magic_rejected(self):
        buf = b"NOTMAGIC" + bytes(corpus_format.HEADER_SIZE - 8)
        with pytest.raises(CorpusFormatError, match="bad magic"):
            corpus_format.unpack_header(buf)

    def test_future_version_rejected(self):
        import struct

        buf = struct.pack(
            "<8sII16s",
            corpus_format.MAGIC,
            corpus_format.CORPUS_VERSION + 1,
            corpus_format.HEADER_SIZE,
            b"\x00" * 16,
        )
        with pytest.raises(CorpusFormatError, match="unsupported corpus version"):
            corpus_format.unpack_header(buf)

    def test_bad_trailer_magic_rejected(self):
        with pytest.raises(CorpusFormatError, match="trailer magic"):
            corpus_format.unpack_trailer(bytes(corpus_format.TRAILER_SIZE))

    def test_error_codes_are_stable(self):
        from repro.errors import error_code

        try:
            corpus_format.unpack_header(b"")
        except CorpusFormatError as exc:
            assert error_code(exc) == "corpus-format-error"


class TestFooterCodec:
    def footer_parts(self):
        sections = {
            name: {"offset": 32 + 8 * i, "count": 1, "sha256": "ab" * 32}
            for i, name in enumerate(corpus_format.SECTION_NAMES)
        }
        groups = [
            corpus_format.GroupInfo(
                graph="hypercube:2", scheduler="greedy", k=None, seed=3, lo=0, hi=1
            )
        ]
        return sections, groups

    def test_round_trip(self):
        sections, groups = self.footer_parts()
        data = corpus_format.encode_footer(sections, groups, 1)
        got_sections, got_groups, n = corpus_format.decode_footer(data)
        assert n == 1
        assert got_sections == sections
        assert got_groups == groups
        assert got_groups[0].k is None  # JSON null round-trips

    def test_footer_is_canonical_json(self):
        sections, groups = self.footer_parts()
        data = corpus_format.encode_footer(sections, groups, 1)
        payload = json.loads(data)
        assert data == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def test_not_json_rejected(self):
        with pytest.raises(CorpusFormatError, match="not valid JSON"):
            corpus_format.decode_footer(b"\xff\xfe")

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(CorpusFormatError, match="format marker"):
            corpus_format.decode_footer(b'{"format":"repro-corpus/99"}')

    def test_missing_section_rejected(self):
        sections, groups = self.footer_parts()
        del sections["source"]
        payload = json.loads(corpus_format.encode_footer(
            {**sections, "source": {"offset": 0, "count": 0, "sha256": ""}},
            groups,
            1,
        ))
        del payload["sections"]["source"]
        data = json.dumps(payload).encode()
        with pytest.raises(CorpusFormatError, match="exactly the sections"):
            corpus_format.decode_footer(data)

    def test_group_out_of_range_rejected(self):
        sections, _ = self.footer_parts()
        groups = [
            corpus_format.GroupInfo(
                graph="g", scheduler="s", k=None, seed=0, lo=0, hi=5
            )
        ]
        data = corpus_format.encode_footer(sections, groups, 1)
        with pytest.raises(CorpusFormatError, match="malformed"):
            corpus_format.decode_footer(data)

    def test_group_missing_field_rejected(self):
        sections, groups = self.footer_parts()
        payload = json.loads(corpus_format.encode_footer(sections, groups, 1))
        del payload["groups"][0]["seed"]
        data = json.dumps(payload).encode()
        with pytest.raises(CorpusFormatError, match="missing field 'seed'"):
            corpus_format.decode_footer(data)
