"""Tests for k-line gossip (§5 future work, experiment E17)."""

import pytest

from repro.core.construct import construct, construct_base
from repro.gossip import (
    Exchange,
    GossipSchedule,
    hypercube_gossip,
    minimum_gossip_rounds,
    sparse_hypercube_gossip,
    validate_gossip,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph
from repro.types import InvalidParameterError, InvalidScheduleError


class TestExchange:
    def test_endpoints_and_edges(self):
        ex = Exchange((0, 1, 3))
        assert ex.endpoints() == (0, 3)
        assert ex.length == 2
        assert ex.edges() == [(0, 1), (1, 3)]

    def test_rejects_degenerate(self):
        with pytest.raises(InvalidScheduleError):
            Exchange((5,))
        with pytest.raises(InvalidScheduleError):
            Exchange((5, 3, 5))


class TestValidator:
    def test_minimum_rounds(self):
        assert minimum_gossip_rounds(1) == 0
        assert minimum_gossip_rounds(16) == 4
        assert minimum_gossip_rounds(17) == 5

    def test_complete_gossip_on_path2(self):
        g = path_graph(2)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1))])
        rep = validate_gossip(g, sched, 1)
        assert rep.ok and rep.complete

    def test_incomplete_detected(self):
        g = path_graph(3)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1))])
        rep = validate_gossip(g, sched, 1)
        assert not rep.ok and not rep.complete

    def test_busy_endpoint_detected(self):
        g = path_graph(3)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1)), Exchange((1, 2))])
        rep = validate_gossip(g, sched, 1)
        assert any("busy" in e for e in rep.errors)

    def test_edge_conflict_detected(self):
        g = path_graph(4)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1, 2)), Exchange((1, 2, 3))])
        rep = validate_gossip(g, sched, 2)
        assert any("edge" in e for e in rep.errors)

    def test_length_bound(self):
        g = path_graph(4)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1, 2, 3))])
        rep = validate_gossip(g, sched, 2)
        assert any("exceeds" in e for e in rep.errors)

    def test_token_replay_and_progress_tracking(self):
        """P4 gossip in 3 rounds; the per-round minimum token counts
        reflect exact (simultaneous) replay."""
        g = path_graph(4)
        sched = GossipSchedule()
        sched.append_round([Exchange((0, 1)), Exchange((2, 3))])
        sched.append_round([Exchange((1, 2))])
        sched.append_round([Exchange((0, 1)), Exchange((2, 3))])
        rep = validate_gossip(g, sched, 1)
        assert rep.ok and rep.complete
        # after r1 everyone has 2 tokens; after r2 the ends still have 2
        assert rep.min_tokens_per_round == [2, 2, 4]


class TestHypercubeGossip:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_dimension_sweep_optimal(self, n):
        g = hypercube(n)
        sched = hypercube_gossip(n)
        rep = validate_gossip(g, sched, 1, require_minimum_time=True)
        assert rep.ok, rep.errors[:3]
        assert rep.complete
        assert sched.num_rounds == n

    def test_exchange_count(self):
        sched = hypercube_gossip(4)
        assert sched.num_exchanges == 4 * 8  # n · 2^{n-1} — every edge once


class TestSparseGossip:
    @pytest.mark.parametrize("n,m", [(3, 1), (4, 2), (5, 2), (6, 3), (8, 3)])
    def test_valid_and_complete(self, n, m):
        sh = construct_base(n, m)
        sched = sparse_hypercube_gossip(sh)
        rep = validate_gossip(sh.graph, sched, 3)
        assert rep.ok, rep.errors[:3]
        assert rep.complete

    def test_round_count_formula(self):
        """rounds = m + Σ_{i>m} (1 + #relay-dim groups)."""
        sh = construct_base(6, 3)
        sched = sparse_hypercube_gossip(sh)
        lam = sh.levels[0].num_labels
        # hamming labeling on m=3: relay dims are distinct per class → λ-1 groups
        assert sched.num_rounds == 3 + (6 - 3) * (1 + (lam - 1))

    def test_max_exchange_length_three(self):
        sh = construct_base(6, 2)
        assert sparse_hypercube_gossip(sh).max_exchange_length() == 3

    def test_rejects_recursive_constructions(self):
        sh = construct(3, 7, (2, 4))
        with pytest.raises(InvalidParameterError):
            sparse_hypercube_gossip(sh)
