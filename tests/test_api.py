"""Tests for the repro.api facade: graph building, scheduling,
engine-selectable validation, certificates, and campaign execution."""

import pytest

from repro import api
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.frame import ScheduleFrame
from repro.graphs.base import Graph
from repro.types import Call, InvalidParameterError, Round, Schedule


class TestBuildGraph:
    def test_spec(self):
        g = api.build_graph("hypercube:3")
        assert g.n_vertices == 8 and g.frozen

    def test_graph_passthrough(self):
        g = api.build_graph("path:5")
        assert api.build_graph(g) is g

    def test_bad_spec(self):
        with pytest.raises(InvalidParameterError):
            api.build_graph("bogus:1")


class TestSchedule:
    def test_result_has_frame_and_frozen_view(self):
        result = api.schedule("hypercube:3", "search", k=1)
        assert result.found and result.valid
        assert isinstance(result.frame, ScheduleFrame)
        assert result.schedule.frozen
        assert result.schedule.to_frame() is result.frame
        assert result.rounds == result.frame.n_rounds == 3

    def test_params_pass_through(self):
        result = api.schedule("path:8", "greedy", seed=1, params={"restarts": 50})
        assert result.stats["restarts"] == 50

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            api.schedule("hypercube:3", "nope")


def _valid_instance():
    sh = construct_base(4, 2)
    return sh.graph, broadcast_schedule(sh, 5), 2


def _corrupt(sched: Schedule) -> Schedule:
    bad = Schedule(source=sched.source, rounds=list(sched.rounds))
    extra = bad.rounds[0].calls[0]
    bad.rounds[1] = Round(bad.rounds[1].calls + (extra,))
    return bad


class TestValidate:
    def test_all_engines_agree_on_valid(self):
        graph, sched, k = _valid_instance()
        reports = [api.validate(graph, sched, k, engine=e) for e in api.ENGINES]
        assert all(r.ok for r in reports)
        for report in reports:
            assert report.informed_per_round == reports[0].informed_per_round

    def test_all_engines_agree_on_corrupt(self):
        graph, sched, k = _valid_instance()
        bad = _corrupt(sched)
        reports = [api.validate(graph, bad, k, engine=e) for e in api.ENGINES]
        assert not any(r.ok for r in reports)
        assert {tuple(r.errors) for r in reports} == {tuple(reports[0].errors)}

    def test_frame_and_schedule_inputs_equivalent(self):
        graph, sched, k = _valid_instance()
        frame = sched.to_frame()
        for engine in api.ENGINES:
            assert api.validate(graph, frame, k, engine=engine).ok

    def test_list_input_returns_reports_in_order(self):
        sh = construct_base(4, 2)
        schedules = [broadcast_schedule(sh, s) for s in (0, 3, 7)]
        schedules[1] = _corrupt(schedules[1])
        reports = api.validate(sh.graph, schedules, 2)
        assert [r.ok for r in reports] == [True, False, True]

    def test_auto_on_unfrozen_graph_uses_reference(self):
        g = Graph(2, [(0, 1)])  # never frozen
        sched = Schedule(source=0)
        sched.append_round([Call.direct(0, 1)])
        assert api.validate(g, sched, 1).ok

    def test_unknown_engine(self):
        graph, sched, k = _valid_instance()
        with pytest.raises(InvalidParameterError):
            api.validate(graph, sched, k, engine="warp")


class TestCertificate:
    def test_roundtrip(self):
        from repro.io import verify_certificate

        sh = construct_base(4, 2)
        cert = api.certificate(sh, sources=[0, 5, 15])
        assert verify_certificate(cert)


class TestRunCampaign:
    def test_rows_come_back(self, tmp_path):
        rows = api.run_campaign(
            "allsources-validation", out_dir=str(tmp_path), cache_dir=None
        )
        assert rows and all(row["valid"] == row["found"] for row in rows)


class TestFramesOf:
    def test_mixed_inputs(self):
        graph, sched, _k = _valid_instance()
        result = api.schedule("hypercube:3", "search", k=1)
        frames = api.frames_of([sched, sched.to_frame(), result])
        assert [f.source for f in frames] == [5, 5, 0]
        assert all(isinstance(f, ScheduleFrame) for f in frames)


class TestConstruction:
    def test_bare_n_uses_theorem5_m_star(self):
        from repro.core.params import theorem5_m_star

        sh = api.construction("sparse:6")
        assert sh.n == 6
        assert sh.thresholds == (theorem5_m_star(6),)

    def test_n_m_is_construct_base(self):
        sh = api.construction("sparse:6:2")
        assert (sh.n, sh.thresholds) == (6, (2,))

    def test_multi_threshold_is_construct_k(self):
        sh = api.construction("sparse:8:2:5")
        assert sh.k == 3
        assert sh.thresholds == (2, 5)

    def test_object_passthrough(self):
        sh = construct_base(5, 2)
        assert api.construction(sh) is sh

    @pytest.mark.parametrize(
        "spec", ["hypercube:4", "sparse", "sparse:x", "sparse:6:y"]
    )
    def test_bad_specs(self, spec):
        with pytest.raises(InvalidParameterError):
            api.construction(spec)


class TestSpecAcceptance:
    """schedule/validate/certificate take textual specs or objects."""

    def test_validate_accepts_spec_string(self):
        graph, sched, k = _valid_instance()
        from_spec = api.validate("sparse:4:2", sched, k)
        from_graph = api.validate(graph, sched, k)
        assert from_spec.ok is from_graph.ok
        assert from_spec.errors == from_graph.errors
        assert from_spec.informed_per_round == from_graph.informed_per_round

    def test_certificate_accepts_spec_string(self):
        from repro.io import verify_certificate

        from_spec = api.certificate("sparse:4:2", sources=[0, 5])
        from_object = api.certificate(construct_base(4, 2), sources=[0, 5])
        assert from_spec == from_object
        assert verify_certificate(from_spec)
