"""In-process service tests: routing, verdicts, coalescing, errors."""

import asyncio
import json

import pytest

import repro.api as api
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.frame import as_frame
from repro.io import certificate_for, dump_certificate, frame_from_dict, frame_to_dict
from repro.service import protocol
from repro.service.app import ReproService
from repro.service.http import HttpRequest, read_request, render_response
from repro.types import InvalidParameterError

GRAPH_SPEC = "sparse:5:2"
K = 2


@pytest.fixture()
def service():
    svc = ReproService(workers=2, coalesce_window=0.002)
    yield svc
    svc.close()


def dispatch(service, method, path, body=b""):
    return asyncio.run(service.dispatch(method, path, body))


def validate_body(frames, **overrides):
    payload = {
        "graph": GRAPH_SPEC,
        "k": K,
        "schedules": [frame_to_dict(f) for f in frames],
    }
    payload.update(overrides)
    return json.dumps(payload).encode()


def broadcast_frames(n):
    sh = construct_base(5, 2)
    return [
        as_frame(broadcast_schedule(sh, s % sh.n_vertices)) for s in range(n)
    ]


def expected_report_wire(frame):
    """Serial api.validate, re-encoded through the same wire codec."""
    report = api.validate(api.build_graph(GRAPH_SPEC), frame, K)
    return protocol.ReportV1(
        ok=report.ok,
        rounds=report.rounds,
        max_call_length=report.max_call_length,
        errors=tuple(report.errors),
    ).to_wire()


class TestRouting:
    def test_healthz(self, service):
        status, body = dispatch(service, "GET", "/v1/healthz")
        assert status == 200
        assert json.loads(body) == {
            "format": protocol.SERVICE_FORMAT,
            "status": "ok",
        }

    def test_unknown_path_is_404(self, service):
        status, body = dispatch(service, "GET", "/v1/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not-found"

    def test_wrong_method_is_405(self, service):
        status, body = dispatch(service, "GET", "/v1/validate")
        assert status == 405
        assert json.loads(body)["error"]["code"] == "method-not-allowed"

    def test_bad_json_is_400(self, service):
        status, body = dispatch(service, "POST", "/v1/validate", b"{nope")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "invalid-parameter"

    def test_workers_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            ReproService(workers=0)


class TestSchedule:
    def test_greedy_round_trip(self, service):
        body = json.dumps(
            {"graph": "hypercube:4", "scheduler": "greedy", "k": 2, "seed": 1}
        ).encode()
        status, payload = dispatch(service, "POST", "/v1/schedule", body)
        assert status == 200
        data = json.loads(payload)
        assert data["format"] == protocol.SERVICE_FORMAT
        assert data["found"] is True
        assert data["valid"] is True
        # the served schedule is an io v2 payload that re-validates locally
        frame = frame_from_dict(data["schedule"])
        assert api.validate("hypercube:4", frame, 2).ok

    def test_unknown_scheduler_is_404(self, service):
        body = json.dumps({"graph": "hypercube:4", "scheduler": "nope"}).encode()
        status, payload = dispatch(service, "POST", "/v1/schedule", body)
        assert status == 404
        assert json.loads(payload)["error"]["code"] == "unknown-name"

    def test_bad_graph_spec_is_400(self, service):
        body = json.dumps({"graph": "bogus:4"}).encode()
        status, payload = dispatch(service, "POST", "/v1/schedule", body)
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid-parameter"


class TestValidate:
    def test_single_matches_serial_api_validate(self, service):
        frame = broadcast_frames(1)[0]
        status, payload = dispatch(
            service, "POST", "/v1/validate", validate_body([frame])
        )
        assert status == 200
        data = json.loads(payload)
        served = protocol.encode_canonical(data["reports"][0])
        assert served == protocol.encode_canonical(expected_report_wire(frame))

    def test_unknown_engine_is_400(self, service):
        frame = broadcast_frames(1)[0]
        status, payload = dispatch(
            service,
            "POST",
            "/v1/validate",
            validate_body([frame], engine="warp"),
        )
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid-parameter"

    def test_explicit_engine_skips_coalescer(self, service):
        frame = broadcast_frames(1)[0]
        status, payload = dispatch(
            service,
            "POST",
            "/v1/validate",
            validate_body([frame], engine="fast"),
        )
        assert status == 200
        assert json.loads(payload)["coalesced"] is False
        assert service._coalescer.requests == 0

    def test_invalid_frame_payload_is_400(self, service):
        status, payload = dispatch(
            service,
            "POST",
            "/v1/validate",
            json.dumps(
                {"graph": GRAPH_SPEC, "k": K, "schedules": [{"bogus": 1}]}
            ).encode(),
        )
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid-parameter"


class TestCoalescing:
    def test_concurrent_requests_share_one_pass(self, service):
        frames = broadcast_frames(6)

        async def burst():
            return await asyncio.gather(
                *(
                    service.dispatch("POST", "/v1/validate", validate_body([f]))
                    for f in frames
                )
            )

        responses = asyncio.run(burst())
        assert service._coalescer.passes == 1
        assert service._coalescer.coalesced_passes == 1
        assert service._coalescer.requests == 6
        for frame, (status, payload) in zip(frames, responses):
            assert status == 200
            data = json.loads(payload)
            assert data["coalesced"] is True
            served = protocol.encode_canonical(data["reports"][0])
            assert served == protocol.encode_canonical(expected_report_wire(frame))

    def test_coalesced_verdicts_byte_identical_to_serial(self, service):
        """Reports come back in arrival order with per-request slicing."""
        frames = broadcast_frames(4)

        async def burst():
            return await asyncio.gather(
                *(
                    service.dispatch(
                        "POST", "/v1/validate", validate_body([f, frames[0]])
                    )
                    for f in frames
                )
            )

        responses = asyncio.run(burst())
        for frame, (status, payload) in zip(frames, responses):
            data = json.loads(payload)
            assert status == 200
            assert len(data["reports"]) == 2
            assert protocol.encode_canonical(
                data["reports"][0]
            ) == protocol.encode_canonical(expected_report_wire(frame))
            assert protocol.encode_canonical(
                data["reports"][1]
            ) == protocol.encode_canonical(expected_report_wire(frames[0]))


class TestCertificate:
    def test_bytes_identical_to_dump_certificate(self, service, tmp_path):
        body = json.dumps(
            {"construction": GRAPH_SPEC, "sources": [0, 5]}
        ).encode()
        status, payload = dispatch(service, "POST", "/v1/certificate", body)
        assert status == 200
        cert = certificate_for(construct_base(5, 2), sources=[0, 5])
        path = tmp_path / "cert.json"
        dump_certificate(cert, str(path))
        assert payload == path.read_bytes()

    def test_bad_construction_is_400(self, service):
        body = json.dumps({"construction": "hypercube:4"}).encode()
        status, payload = dispatch(service, "POST", "/v1/certificate", body)
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "invalid-parameter"


class TestStats:
    def test_counters_and_caches(self, service):
        frame = broadcast_frames(1)[0]
        dispatch(service, "GET", "/v1/healthz")
        dispatch(service, "POST", "/v1/validate", validate_body([frame]))
        dispatch(service, "GET", "/v1/validate")  # 405 -> error counter
        status, payload = dispatch(service, "GET", "/v1/stats")
        assert status == 200
        data = json.loads(payload)
        assert data["format"] == protocol.SERVICE_FORMAT
        assert data["endpoints"]["healthz"]["count"] == 1
        assert data["endpoints"]["validate"]["count"] == 1
        assert data["endpoints"]["validate"]["errors"] == 1
        assert data["endpoints"]["validate"]["seconds"] > 0
        assert data["coalescer"]["passes"] == 1
        assert data["coalescer"]["requests"] == 1
        assert data["graphs_cached"] == 1
        assert {"entries", "hits", "misses"} <= set(data["engine_cache"])

    def test_graph_cache_is_spec_keyed(self, service):
        frame = broadcast_frames(1)[0]
        dispatch(service, "POST", "/v1/validate", validate_body([frame]))
        dispatch(service, "POST", "/v1/validate", validate_body([frame]))
        assert len(service._graphs) == 1
        assert service._graphs[GRAPH_SPEC] is service._graphs[GRAPH_SPEC]


class TestLifecycle:
    def test_drain_waits_for_idle(self, service):
        asyncio.run(service.drain())
        assert service._closing is True

    def test_close_is_idempotent_enough(self):
        svc = ReproService(workers=1)
        svc.close()
        svc.close()


class TestHttpLayer:
    def run_reader(self, data):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(go())

    def test_parses_post_with_body(self):
        raw = (
            b"POST /v1/validate HTTP/1.1\r\n"
            b"Content-Length: 4\r\n"
            b"Connection: close\r\n"
            b"\r\nabcd"
        )
        request = self.run_reader(raw)
        assert request == HttpRequest(
            method="POST",
            path="/v1/validate",
            headers={"content-length": "4", "connection": "close"},
            body=b"abcd",
        )
        assert request.keep_alive is False

    def test_get_defaults_to_keep_alive(self):
        request = self.run_reader(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
        assert request.keep_alive is True
        assert request.body == b""

    def test_clean_eof_returns_none(self):
        assert self.run_reader(b"") is None

    @pytest.mark.parametrize(
        "raw",
        [
            b"GET /v1/healthz\r\n\r\n",  # no HTTP version
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"GET /x HT",  # truncated mid-request
        ],
    )
    def test_malformed_raises(self, raw):
        with pytest.raises(InvalidParameterError):
            self.run_reader(raw)

    def test_render_response_framing(self):
        data = render_response(200, b'{"x":1}', keep_alive=False)
        head, _, body = data.partition(b"\r\n\r\n")
        assert body == b'{"x":1}'
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 7" in head
        assert b"Connection: close" in head
