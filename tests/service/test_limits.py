"""Backpressure and stats surfacing: --max-connections, keep-alive caps,
transport counters in /v1/stats."""

import asyncio
import json

import pytest

from repro.engine.parallel import reset_transport_stats
from repro.service.app import ReproService
from repro.types import InvalidParameterError

HEALTHZ = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"


@pytest.fixture()
def service():
    svc = ReproService(workers=1)
    yield svc
    svc.close()


def dispatch(service, method, path, body=b""):
    return asyncio.run(service.dispatch(method, path, body))


class TestStatsSurfacing:
    def test_transport_stats_shape_pinned(self, service):
        reset_transport_stats()
        status, body = dispatch(service, "GET", "/v1/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["transport"] == {
            "inline_planes": 0,
            "pickle": 0,
            "serial_fallback": 0,
            "shared": 0,
        }

    def test_connections_stats_shape(self):
        svc = ReproService(workers=1, max_connections=7, max_keepalive=3)
        try:
            status, body = dispatch(svc, "GET", "/v1/stats")
            assert status == 200
            assert json.loads(body)["connections"] == {
                "active": 0,
                "max": 7,
                "max_keepalive": 3,
                "rejected": 0,
            }
        finally:
            svc.close()

    def test_limits_validated(self):
        with pytest.raises(InvalidParameterError, match="max-connections"):
            ReproService(workers=1, max_connections=0)
        with pytest.raises(InvalidParameterError, match="max-keepalive"):
            ReproService(workers=1, max_keepalive=0)


async def _read_response(reader):
    header = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in header.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length) if length else b""
    return header, body


class TestConnectionLimit:
    def test_over_limit_gets_503_with_retry_after(self):
        async def scenario():
            svc = ReproService(workers=1, max_connections=1)
            server = await asyncio.start_server(
                svc.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                # first connection occupies the only slot (held open by
                # keep-alive after a completed request)
                r1, w1 = await asyncio.open_connection("127.0.0.1", port)
                w1.write(HEALTHZ)
                await w1.drain()
                h1, b1 = await _read_response(r1)
                assert b"200 OK" in h1

                # second connection is rejected before any request is read,
                # so the 503 arrives without us sending a byte
                r2, w2 = await asyncio.open_connection("127.0.0.1", port)
                h2, b2 = await _read_response(r2)
                assert b"503" in h2.split(b"\r\n")[0]
                assert b"Retry-After: 1" in h2
                assert b"Connection: close" in h2
                assert json.loads(b2)["error"]["code"] == "overloaded"
                assert await r2.read() == b""  # server closed it

                # stats saw the rejection
                status, body = await svc.dispatch("GET", "/v1/stats", b"")
                conn = json.loads(body)["connections"]
                assert conn["rejected"] == 1
                assert conn["active"] == 1

                w1.close()
                w2.close()
                await w1.wait_closed()
                await w2.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                svc.close()

        asyncio.run(scenario())

    def test_slot_frees_after_close(self):
        async def scenario():
            svc = ReproService(workers=1, max_connections=1)
            server = await asyncio.start_server(
                svc.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                r1, w1 = await asyncio.open_connection("127.0.0.1", port)
                w1.write(HEALTHZ)
                await w1.drain()
                await _read_response(r1)
                w1.close()
                await w1.wait_closed()
                await asyncio.sleep(0.05)  # let the handler unwind

                r2, w2 = await asyncio.open_connection("127.0.0.1", port)
                w2.write(HEALTHZ)
                await w2.drain()
                h2, _ = await _read_response(r2)
                assert b"200 OK" in h2
                w2.close()
                await w2.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                svc.close()

        asyncio.run(scenario())


class TestKeepAliveCap:
    def test_connection_closed_after_cap(self):
        async def scenario():
            svc = ReproService(workers=1, max_keepalive=2)
            server = await asyncio.start_server(
                svc.handle_connection, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(HEALTHZ)
                await writer.drain()
                h1, _ = await _read_response(reader)
                assert b"Connection: keep-alive" in h1

                writer.write(HEALTHZ)
                await writer.drain()
                h2, _ = await _read_response(reader)
                assert b"Connection: close" in h2  # cap reached
                assert await reader.read() == b""  # server hung up

                writer.close()
                await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                svc.close()

        asyncio.run(scenario())
