"""The v1 wire format: codecs, decoders, and the error-code status map."""

import hashlib
import json

import pytest

from repro.core.construct import construct_base
from repro.io import certificate_for, dump_certificate
from repro.service import protocol
from repro.types import InvalidParameterError


class TestStatusMap:
    """The code -> HTTP status mapping is append-only and pinned.

    A published code never changes its status class; new codes may be
    appended.  If one of these assertions moves, that is a wire-format
    break for every deployed client.
    """

    def test_pinned_statuses(self):
        assert protocol.HTTP_STATUS_BY_CODE == {
            "bad-request": 400,
            "invalid-parameter": 400,
            "unknown-name": 404,
            "not-found": 404,
            "method-not-allowed": 405,
            "invalid-schedule": 422,
            "execution-error": 503,
            "worker-crash": 503,
            "task-timeout": 503,
            "shm-attach-error": 503,
            "scenario-error": 500,
            "construction-error": 500,
            "overloaded": 503,
            "corpus-miss": 404,
            "corpus-error": 500,
            "corpus-format-error": 500,
            "corpus-integrity-error": 500,
            "io-error": 500,
            "repro-error": 500,
            "internal-error": 500,
        }

    def test_unknown_code_is_500(self):
        assert protocol.http_status_for("some-future-code") == 500

    def test_error_v1_status_follows_code(self):
        assert protocol.ErrorV1("invalid-schedule", "x").status == 422
        assert protocol.ErrorV1("worker-crash", "x").status == 503


class TestGoldenBytes:
    """Canonical response bytes are pinned, like the io v2 writers.

    If one of these hashes moves, bump ``SERVICE_FORMAT`` instead of
    silently rewriting v1.
    """

    def test_error_bytes_pinned(self):
        data = protocol.encode_canonical(
            protocol.ErrorV1("invalid-schedule", "rounds exceed budget").to_wire()
        )
        assert len(data) == 97
        assert (
            hashlib.sha256(data).hexdigest()
            == "da165d2dbd080deae0b2f62a165ffaaf80de8082e8fbf179cccc63a149a22b71"
        )

    def test_validate_response_bytes_pinned(self):
        response = protocol.ValidateResponseV1(
            graph="hypercube:3",
            k=2,
            coalesced=True,
            reports=(
                protocol.ReportV1(ok=True, rounds=3, max_call_length=1, errors=()),
            ),
        )
        data = protocol.encode_canonical(response.to_wire())
        assert len(data) == 140
        assert (
            hashlib.sha256(data).hexdigest()
            == "991cc4bad33f2db9934bf5e45895f0ea3a5c14dd570979b605df4636ee681009"
        )

    def test_schedule_response_bytes_pinned(self):
        response = protocol.ScheduleResponseV1(
            scheduler="greedy",
            graph="hypercube:3",
            source=0,
            k=2,
            found=False,
            rounds=None,
            valid=None,
            n_calls=None,
            schedule=None,
        )
        data = protocol.encode_canonical(response.to_wire())
        assert len(data) == 160
        assert (
            hashlib.sha256(data).hexdigest()
            == "5158ab291ed9de3833ae952facc45c7b7742798356c975e6c08cfadb50a4f856"
        )

    def test_canonical_is_sorted_and_compact(self):
        data = protocol.encode_canonical({"b": 1, "a": [1, 2]})
        assert data == b'{"a":[1,2],"b":1}'

    def test_certificate_payload_matches_dump_certificate(self, tmp_path):
        """Served certificate bytes == the dump_certificate file bytes."""
        cert = certificate_for(construct_base(4, 2), sources=[0, 5])
        path = tmp_path / "cert.json"
        dump_certificate(cert, str(path))
        assert protocol.encode_certificate_payload(cert) == path.read_bytes()


class TestScheduleDecoder:
    def test_defaults(self):
        request = protocol.decode_schedule_request({"graph": "hypercube:4"})
        assert request.graph == "hypercube:4"
        assert request.scheduler == "greedy"
        assert request.source == 0
        assert request.k is None
        assert request.rounds is None
        assert request.seed == 0
        assert dict(request.params) == {}

    def test_full_round_trip(self):
        request = protocol.decode_schedule_request(
            {
                "graph": "sparse:6:2",
                "scheduler": "search",
                "source": 3,
                "k": 2,
                "rounds": 7,
                "seed": 11,
                "params": {"node_budget": 1000},
            }
        )
        assert request.scheduler == "search"
        assert request.source == 3
        assert request.params["node_budget"] == 1000

    @pytest.mark.parametrize(
        "body",
        [
            [],
            {"graph": ""},
            {"graph": 7},
            {"graph": "hypercube:4", "bogus": 1},
            {"graph": "hypercube:4", "source": True},
            {"graph": "hypercube:4", "k": "two"},
            {"graph": "hypercube:4", "params": [1]},
            {"graph": "hypercube:4", "params": {1: 2}},
        ],
    )
    def test_rejects_malformed(self, body):
        with pytest.raises(InvalidParameterError):
            protocol.decode_schedule_request(body)


class TestValidateDecoder:
    def test_defaults(self):
        request = protocol.decode_validate_request(
            {"graph": "hypercube:4", "k": 2, "schedules": [{"format": "x"}]}
        )
        assert request.engine == "auto"
        assert request.require_minimum_time is True
        assert request.vertex_disjoint is False

    @pytest.mark.parametrize(
        "body",
        [
            {"graph": "hypercube:4", "k": 2, "schedules": []},
            {"graph": "hypercube:4", "k": 2, "schedules": [1]},
            {"graph": "hypercube:4", "k": True, "schedules": [{}]},
            {"graph": "hypercube:4", "schedules": [{}]},
            {"graph": "hypercube:4", "k": 2, "schedules": [{}], "engine": 3},
            {
                "graph": "hypercube:4",
                "k": 2,
                "schedules": [{}],
                "require_minimum_time": "yes",
            },
        ],
    )
    def test_rejects_malformed(self, body):
        with pytest.raises(InvalidParameterError):
            protocol.decode_validate_request(body)


class TestCertificateDecoder:
    def test_defaults_and_sources(self):
        request = protocol.decode_certificate_request({"construction": "sparse:5:2"})
        assert request.sources is None
        request = protocol.decode_certificate_request(
            {"construction": "sparse:5:2", "sources": [0, 3]}
        )
        assert request.sources == (0, 3)

    @pytest.mark.parametrize(
        "body",
        [
            {"construction": "sparse:5:2", "sources": [True]},
            {"construction": "sparse:5:2", "sources": 3},
            {"sources": [0]},
            {"construction": "sparse:5:2", "extra": 1},
        ],
    )
    def test_rejects_malformed(self, body):
        with pytest.raises(InvalidParameterError):
            protocol.decode_certificate_request(body)


class TestJsonSafety:
    def test_wire_payloads_are_json_safe(self):
        """Every to_wire() output survives a json round-trip unchanged."""
        payloads = [
            protocol.ErrorV1("not-found", "x").to_wire(),
            protocol.ReportV1(
                ok=False, rounds=4, max_call_length=2, errors=("a", "b")
            ).to_wire(),
        ]
        for payload in payloads:
            assert json.loads(json.dumps(payload)) == payload
