"""Corpus-backed serving: byte-identical hits, counters, fall-through."""

import asyncio
import json

import pytest

from repro.corpus import build_corpus
from repro.service.app import ReproService

GRAPH = "hypercube:3"
SCHED = "greedy"
K = 1
SEED = 0


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "serve.corpus"
    build_corpus(path, GRAPH, SCHED, k=K, seed=SEED)
    return path


@pytest.fixture()
def plain_service():
    svc = ReproService(workers=1)
    yield svc
    svc.close()


@pytest.fixture()
def corpus_service(corpus_path):
    svc = ReproService(workers=1, corpus=corpus_path)
    yield svc
    svc.close()


def dispatch(service, method, path, body=b""):
    return asyncio.run(service.dispatch(method, path, body))


def schedule_body(**overrides):
    payload = {
        "graph": GRAPH,
        "scheduler": SCHED,
        "source": 3,
        "k": K,
        "seed": SEED,
    }
    payload.update(overrides)
    return json.dumps(payload).encode()


def corpus_stats(service):
    status, body = dispatch(service, "GET", "/v1/stats")
    assert status == 200
    return json.loads(body)["corpus"]


class TestCorpusHit:
    def test_hit_is_byte_identical_to_computed(
        self, plain_service, corpus_service
    ):
        body = schedule_body()
        s1, b1 = dispatch(plain_service, "POST", "/v1/schedule", body)
        s2, b2 = dispatch(corpus_service, "POST", "/v1/schedule", body)
        assert s1 == s2 == 200
        assert b1 == b2

    def test_hit_and_miss_counters(self, corpus_service):
        assert corpus_stats(corpus_service) == {
            "enabled": True,
            "frames": 8,
            "groups": 1,
            "hits": 0,
            "misses": 0,
        }
        dispatch(corpus_service, "POST", "/v1/schedule", schedule_body())
        dispatch(
            corpus_service, "POST", "/v1/schedule", schedule_body(seed=99)
        )
        stats = corpus_stats(corpus_service)
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_disabled_without_corpus(self, plain_service):
        assert corpus_stats(plain_service) == {
            "enabled": False,
            "frames": 0,
            "groups": 0,
            "hits": 0,
            "misses": 0,
        }


class TestFallThrough:
    def test_miss_still_computes(self, corpus_service):
        status, body = dispatch(
            corpus_service, "POST", "/v1/schedule", schedule_body(source=6, seed=42)
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["found"] is True
        assert payload["source"] == 6
        assert corpus_stats(corpus_service)["misses"] == 1

    def test_rounds_request_bypasses_corpus(self, corpus_service):
        status, body = dispatch(
            corpus_service, "POST", "/v1/schedule", schedule_body(rounds=4)
        )
        assert status == 200
        stats = corpus_stats(corpus_service)
        assert stats["hits"] == 0
        assert stats["misses"] == 0

    def test_params_request_bypasses_corpus(self, corpus_service):
        status, body = dispatch(
            corpus_service,
            "POST",
            "/v1/schedule",
            schedule_body(params={"restarts": 5}),
        )
        assert status == 200
        stats = corpus_stats(corpus_service)
        assert stats["hits"] == 0
        assert stats["misses"] == 0


class TestSchemeServing:
    """"scheme" is not a registry scheduler — only a corpus can serve it."""

    @pytest.fixture()
    def scheme_service(self, tmp_path):
        path = tmp_path / "scheme.corpus"
        build_corpus(path, "sparse:5:2", "scheme")
        svc = ReproService(workers=1, corpus=path)
        yield svc
        svc.close()

    def scheme_body(self, source):
        return json.dumps(
            {"graph": "sparse:5:2", "scheduler": "scheme", "source": source}
        ).encode()

    def test_scheme_hit_served_from_corpus(self, scheme_service):
        status, body = dispatch(
            scheme_service, "POST", "/v1/schedule", self.scheme_body(9)
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["scheduler"] == "scheme"
        assert payload["source"] == 9
        assert payload["found"] is True
        assert payload["valid"] is True

    def test_scheme_miss_is_404_unknown_scheduler(self, scheme_service):
        # source 999 is not in the corpus; the compute path then rejects
        # the pseudo-scheduler, so the client sees a scheduler 404.
        status, body = dispatch(
            scheme_service, "POST", "/v1/schedule", self.scheme_body(999)
        )
        assert status == 404

    def test_plain_service_cannot_serve_scheme(self, plain_service):
        status, body = dispatch(
            plain_service, "POST", "/v1/schedule", self.scheme_body(9)
        )
        assert status == 404
