"""End-to-end daemon test: real process, real sockets, real signals.

Launches ``python -m repro serve`` on an ephemeral port, speaks HTTP to
all five endpoints, checks that concurrent validates coalesce without
changing a byte of any verdict, and that SIGTERM drains cleanly with no
shared-memory segments left behind in ``/dev/shm``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection
from pathlib import Path

import pytest

import repro.api as api
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.frame import as_frame
from repro.io import certificate_for, dump_certificate, frame_to_dict
from repro.service import protocol

REPO_ROOT = Path(__file__).resolve().parents[2]
GRAPH_SPEC = "sparse:5:2"
K = 2


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


@pytest.fixture(scope="module")
def daemon():
    """A live ``repro serve`` on an ephemeral port; yields (proc, port)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    shm_before = _shm_entries()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline().strip()
    assert "repro serve listening on http://" in line, line
    port = int(line.rsplit(":", 1)[1])
    yield proc, port
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    stdout, stderr = proc.communicate(timeout=30)
    # clean shutdown: drained, exit 0, no traceback, no shm leak
    assert proc.returncode == 0, (proc.returncode, stderr)
    assert "repro serve: draining" in stdout
    assert "repro serve: shutdown complete" in stdout
    assert "Traceback" not in stderr
    leaked = _shm_entries() - shm_before
    assert not leaked, f"daemon leaked shm segments: {leaked}"


def request(port, method, path, payload=None, timeout=30):
    conn = HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def test_healthz(daemon):
    _proc, port = daemon
    status, body = request(port, "GET", "/v1/healthz")
    assert status == 200
    assert json.loads(body) == {
        "format": protocol.SERVICE_FORMAT,
        "status": "ok",
    }


def test_schedule_endpoint(daemon):
    _proc, port = daemon
    status, body = request(
        port,
        "POST",
        "/v1/schedule",
        {"graph": "hypercube:4", "scheduler": "greedy", "k": 2, "seed": 1},
    )
    assert status == 200
    data = json.loads(body)
    assert data["found"] is True and data["valid"] is True


def test_error_body_and_status(daemon):
    _proc, port = daemon
    status, body = request(port, "POST", "/v1/schedule", {"graph": "bogus:1"})
    assert status == 400
    assert json.loads(body)["error"]["code"] == "invalid-parameter"
    status, body = request(port, "GET", "/v1/missing")
    assert status == 404
    assert json.loads(body)["error"]["code"] == "not-found"


def test_concurrent_validates_coalesce_byte_identically(daemon):
    """The coalescing acceptance bar, over real sockets.

    A burst of concurrent validates must produce, for every request,
    exactly the bytes serial ``api.validate`` produces — the only field
    allowed to reflect the grouping is ``coalesced``.
    """
    _proc, port = daemon
    sh = construct_base(5, 2)
    frames = [
        as_frame(broadcast_schedule(sh, s % sh.n_vertices)) for s in range(8)
    ]
    payloads = [
        {"graph": GRAPH_SPEC, "k": K, "schedules": [frame_to_dict(f)]}
        for f in frames
    ]
    with ThreadPoolExecutor(max_workers=8) as pool:
        responses = list(
            pool.map(
                lambda p: request(port, "POST", "/v1/validate", p), payloads
            )
        )
    graph = api.build_graph(GRAPH_SPEC)
    any_coalesced = False
    for frame, (status, body) in zip(frames, responses):
        assert status == 200, body
        data = json.loads(body)
        any_coalesced = any_coalesced or data["coalesced"]
        reference = api.validate(graph, frame, K)
        expected = protocol.ReportV1(
            ok=reference.ok,
            rounds=reference.rounds,
            max_call_length=reference.max_call_length,
            errors=tuple(reference.errors),
        ).to_wire()
        assert protocol.encode_canonical(
            data["reports"][0]
        ) == protocol.encode_canonical(expected)
    # stats must agree that at least one pass carried multiple requests
    status, body = request(port, "GET", "/v1/stats")
    assert status == 200
    stats = json.loads(body)
    assert stats["coalescer"]["requests"] >= 8
    if any_coalesced:
        assert stats["coalescer"]["coalesced_passes"] >= 1


def test_certificate_bytes_match_local_dump(daemon, tmp_path):
    _proc, port = daemon
    status, body = request(
        port, "POST", "/v1/certificate", {"construction": GRAPH_SPEC}
    )
    assert status == 200
    cert = certificate_for(construct_base(5, 2), sources=None)
    path = tmp_path / "cert.json"
    dump_certificate(cert, str(path))
    assert body == path.read_bytes()


def test_keep_alive_reuses_connection(daemon):
    _proc, port = daemon
    conn = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        for _ in range(3):
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
    finally:
        conn.close()


def test_malformed_http_gets_400_and_close(daemon):
    import socket

    _proc, port = daemon
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(b"NOT A REQUEST\r\n\r\n")
        sock.settimeout(10)
        chunks = []
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    assert b"400 Bad Request" in raw
    assert b"bad-request" in raw


def test_sigint_also_shuts_down_cleanly():
    """A second daemon instance, killed with SIGINT instead of SIGTERM."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = proc.stdout.readline().strip()
    assert "listening" in line, line
    time.sleep(0.1)
    proc.send_signal(signal.SIGINT)
    stdout, stderr = proc.communicate(timeout=30)
    assert proc.returncode == 0, (proc.returncode, stderr)
    assert "shutdown complete" in stdout
