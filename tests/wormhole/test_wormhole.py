"""Tests for the flit-level wormhole substrate (experiment E21)."""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph, star
from repro.schedulers.store_forward import binomial_hypercube_broadcast
from repro.types import InvalidParameterError, Round, Schedule
from repro.wormhole import WormholeNetwork, schedule_latency


class TestSingleWorm:
    @pytest.mark.parametrize("links,flits", [(1, 1), (1, 5), (3, 1), (3, 4), (5, 16)])
    def test_uncontended_pipelined_latency(self, links, flits):
        g = path_graph(links + 1)
        net = WormholeNetwork(g)
        worm = net.add_worm(tuple(range(links + 1)), flits)
        total = net.run()
        assert total == links + flits - 1
        assert worm.tail_arrival == WormholeNetwork.uncontended_latency(links, flits)

    def test_head_arrival_before_tail(self):
        g = path_graph(4)
        net = WormholeNetwork(g)
        worm = net.add_worm((0, 1, 2, 3), 5)
        net.run()
        assert worm.head_arrival == 3
        assert worm.tail_arrival == 7

    def test_rejects_bad_worm(self):
        g = path_graph(3)
        net = WormholeNetwork(g)
        with pytest.raises(InvalidParameterError):
            net.add_worm((0, 2), 1)  # not an edge
        with pytest.raises(InvalidParameterError):
            net.add_worm((0, 1), 0)  # no flits


class TestContention:
    def test_shared_edge_serializes(self):
        """Two worms contending for one link serialize: worm b (adjacent
        to the shared link) grabs it in cycle 1 while a crosses its first
        link; a then blocks until b's tail releases the channel."""
        g = star(3)
        net = WormholeNetwork(g)
        a = net.add_worm((1, 0, 2), 4)
        b = net.add_worm((0, 2), 4)
        net.run()
        assert b.tail_arrival == 1 + 4 - 1  # uncontended
        # a: first link cycle 1, blocked on (0,2) until b drains at 4,
        # crosses at 5, drains 3 more flits → 8
        assert a.tail_arrival == 8
        assert a.tail_arrival > WormholeNetwork.uncontended_latency(2, 4)

    def test_disjoint_worms_run_in_parallel(self):
        g = hypercube(3)
        net = WormholeNetwork(g)
        net.add_worm((0, 1), 8)
        net.add_worm((6, 7), 8)
        total = net.run()
        assert total == 8  # both finish together: 1 link + 8 flits − 1

    def test_staggered_start(self):
        g = path_graph(2)
        net = WormholeNetwork(g)
        worm = net.add_worm((0, 1), 2, start_cycle=5)
        net.run()
        assert worm.tail_arrival == 5 + 2


class TestScheduleLatency:
    def test_binomial_q4_flit1(self):
        g = hypercube(4)
        sched = binomial_hypercube_broadcast(4, 0)
        lat = schedule_latency(g, sched, 1)
        assert lat.total_cycles == 4  # 4 rounds × (1 + 1 − 1)

    def test_sparse_round_cost_is_k_plus_flits(self):
        sh = construct_base(6, 2)
        sched = broadcast_schedule(sh, 0)
        lat = schedule_latency(sh.graph, sched, 4)
        for r in lat.rounds:
            assert r.cycles == r.longest_call + 4 - 1

    def test_valid_schedules_match_analytic_total(self):
        """Cycle-accurate simulation equals the closed form — the
        schedules really are contention-free."""
        for k, n, thr in [(2, 6, (2,)), (3, 7, (2, 4))]:
            sh = construct(k, n, thr)
            sched = broadcast_schedule(sh, 0)
            for flits in (1, 3, 9):
                lat = schedule_latency(sh.graph, sched, flits)
                expected = sum(
                    max(c.length for c in rnd) + flits - 1 for rnd in sched.rounds
                )
                assert lat.total_cycles == expected

    def test_conflicting_round_costs_more(self):
        """An (invalid) round with an edge shared by two calls takes longer
        than the analytic contention-free cost — wormhole blocking."""
        from repro.types import Call

        g = path_graph(4)
        sched = Schedule(source=0)
        sched.rounds.append(Round((Call.via((0, 1, 2, 3)), Call.via((1, 2)))))
        lat = schedule_latency(g, sched, 4)
        assert lat.rounds[0].cycles > 3 + 4 - 1

    def test_empty_round(self):
        g = path_graph(2)
        sched = Schedule(source=0)
        sched.append_round([])
        lat = schedule_latency(g, sched, 4)
        assert lat.total_cycles == 0
