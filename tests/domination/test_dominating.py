"""Unit tests for dominating-set helpers."""

import pytest

from repro.domination.dominating import (
    domination_number,
    greedy_dominating_set,
    is_dominating_set,
    minimum_dominating_set,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph, star
from repro.types import InvalidParameterError


class TestIsDominating:
    def test_star_centre(self):
        g = star(6)
        assert is_dominating_set(g, {0})
        assert not is_dominating_set(g, {1})
        assert is_dominating_set(g, {1, 2, 3, 4, 5})

    def test_empty_set(self):
        assert not is_dominating_set(path_graph(3), set())
        assert is_dominating_set(path_graph(1), {0})

    def test_rejects_foreign_vertex(self):
        with pytest.raises(InvalidParameterError):
            is_dominating_set(path_graph(3), {5})


class TestGreedy:
    def test_greedy_is_dominating(self):
        for g in (star(8), path_graph(10), hypercube(4)):
            assert is_dominating_set(g, greedy_dominating_set(g))

    def test_greedy_star_picks_centre(self):
        assert greedy_dominating_set(star(9)) == {0}


class TestExact:
    def test_path_domination_number(self):
        # γ(P_n) = ⌈n/3⌉
        for n in range(1, 10):
            assert domination_number(path_graph(n)) == -(-n // 3)

    def test_q3_domination_number(self):
        # Q_3 has a perfect code of size 2 ({000, 111})
        assert domination_number(hypercube(3)) == 2

    def test_q4_domination_number(self):
        assert domination_number(hypercube(4)) == 4

    def test_exact_result_is_dominating(self):
        g = hypercube(3)
        s = minimum_dominating_set(g)
        assert is_dominating_set(g, s)

    def test_size_cap(self):
        with pytest.raises(InvalidParameterError):
            minimum_dominating_set(hypercube(5), max_vertices=16)
