"""Unit tests for Condition-A labelings (paper, Section 3 + Lemma 2)."""

import numpy as np
import pytest

from repro.domination.labeling import (
    ConditionALabeling,
    best_available_labeling,
    hamming_labeling,
    labeling_from_array,
    largest_hamming_length_at_most,
    lemma2_labeling,
    lemma2_lower_bound,
    paper_example_labeling_q2,
    paper_example_labeling_q3,
    trivial_labeling,
)
from repro.graphs.hypercube import hypercube
from repro.domination.dominating import is_dominating_set
from repro.types import InvalidParameterError


class TestConditionA:
    def test_trivial_always_satisfies(self):
        for m in range(1, 6):
            assert trivial_labeling(m).verify()

    def test_paper_q2(self):
        lab = paper_example_labeling_q2()
        # f(00) = f(11) = c1, f(01) = f(10) = c2
        assert lab.label_of(0b00) == lab.label_of(0b11)
        assert lab.label_of(0b01) == lab.label_of(0b10)
        assert lab.label_of(0b00) != lab.label_of(0b01)
        assert lab.verify()

    def test_paper_q3(self):
        lab = paper_example_labeling_q3()
        pairs = [(0b000, 0b111), (0b001, 0b110), (0b010, 0b101), (0b011, 0b100)]
        labels = set()
        for a, b in pairs:
            assert lab.label_of(a) == lab.label_of(b)
            labels.add(lab.label_of(a))
        assert len(labels) == 4
        assert lab.verify()

    def test_paper_q3_equals_hamming_up_to_renaming(self):
        q3 = paper_example_labeling_q3()
        ham = hamming_labeling(3)
        mapping = {}
        for u in range(8):
            mapping.setdefault(q3.label_of(u), ham.label_of(u))
            assert mapping[q3.label_of(u)] == ham.label_of(u)
        assert len(set(mapping.values())) == 4

    def test_verify_catches_bad_labeling(self):
        labels = np.array([0, 1, 1, 1], dtype=np.int64)  # Q_2, label 0 only at 00
        bad = ConditionALabeling(m=2, num_labels=2, labels=labels)
        # vertex 11's closed neighbourhood is {11, 01, 10} — all label 1
        assert not bad.verify()
        report = bad.missing_label_report()
        assert (0b11, {0}) in report

    def test_verify_requires_onto(self):
        labels = np.zeros(4, dtype=np.int64)
        lab = ConditionALabeling(m=2, num_labels=2, labels=labels)
        assert not lab.verify()

    def test_classes_are_dominating_sets(self):
        """Condition A ⟺ every label class dominates Q_m."""
        labs = (paper_example_labeling_q2(), hamming_labeling(3), lemma2_labeling(5))
        for lab in labs:
            g = hypercube(lab.m)
            for c in range(lab.num_labels):
                assert is_dominating_set(g, set(lab.class_of(c)))

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            ConditionALabeling(m=2, num_labels=2, labels=np.zeros(3, dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            ConditionALabeling(m=2, num_labels=1, labels=np.array([0, 1, 0, 1]))


class TestHammingLabeling:
    @pytest.mark.parametrize("m", [1, 3, 7])
    def test_label_count_m_plus_one(self, m):
        lab = hamming_labeling(m)
        assert lab.num_labels == m + 1
        assert lab.verify()

    def test_rejects_non_hamming_length(self):
        with pytest.raises(InvalidParameterError):
            hamming_labeling(4)

    @pytest.mark.parametrize("m", [3, 7])
    def test_every_closed_neighbourhood_rainbow(self, m):
        """For perfect labelings each closed neighbourhood sees every label
        exactly once."""
        lab = hamming_labeling(m)
        for u in range(1 << m):
            seen = [lab.label_of(u)] + [lab.label_of(u ^ (1 << j)) for j in range(m)]
            assert sorted(seen) == list(range(m + 1))


class TestLemma2:
    def test_largest_hamming_length(self):
        assert largest_hamming_length_at_most(1) == 1
        assert largest_hamming_length_at_most(2) == 1
        assert largest_hamming_length_at_most(3) == 3
        assert largest_hamming_length_at_most(6) == 3
        assert largest_hamming_length_at_most(7) == 7
        assert largest_hamming_length_at_most(14) == 7
        assert largest_hamming_length_at_most(15) == 15

    @pytest.mark.parametrize("m", list(range(1, 11)))
    def test_lemma2_labeling_satisfies_condition_a(self, m):
        lab = lemma2_labeling(m)
        assert lab.verify()

    @pytest.mark.parametrize("m", list(range(1, 11)))
    def test_lemma2_label_count_meets_lower_bound(self, m):
        lab = lemma2_labeling(m)
        assert lab.num_labels >= lemma2_lower_bound(m)
        assert lab.num_labels <= m + 1

    def test_lemma2_tight_at_m2(self):
        """Paper remark: λ_2 = 2 = ⌊2/2⌋ + 1 < m + 1 — the lower bound is
        not improvable in general."""
        assert lemma2_labeling(2).num_labels == 2

    @pytest.mark.parametrize("m", [3, 7])
    def test_best_available_prefers_hamming(self, m):
        assert best_available_labeling(m).name == "hamming"
        assert best_available_labeling(m).num_labels == m + 1

    def test_best_available_fallback(self):
        lab = best_available_labeling(5)
        assert lab.num_labels == 4
        assert lab.verify()


class TestFromArray:
    def test_accepts_onto_labels(self):
        lab = labeling_from_array(2, np.array([0, 1, 1, 0]))
        assert lab.num_labels == 2

    def test_rejects_gap_labels(self):
        with pytest.raises(InvalidParameterError):
            labeling_from_array(2, np.array([0, 2, 2, 0]))
