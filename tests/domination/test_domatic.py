"""Unit tests for domatic partitions / exact λ_m (Lemma 2, Example 1)."""

import pytest

from repro.domination.domatic import (
    condition_a_max_labels,
    domatic_number_exact,
    feasible_domatic_partition,
    greedy_domatic_partition,
)
from repro.domination.dominating import is_dominating_set
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph, star
from repro.graphs.variants import cycle_graph
from repro.types import InvalidParameterError


class TestFeasibility:
    def test_t1_always_feasible(self):
        assert feasible_domatic_partition(path_graph(5), 1) == [0] * 5

    def test_star_domatic_two(self):
        g = star(5)
        assert feasible_domatic_partition(g, 2) is not None
        assert feasible_domatic_partition(g, 3) is None  # min degree 1 → ≤ 2

    def test_partition_classes_dominate(self):
        g = hypercube(3)
        labels = feasible_domatic_partition(g, 4)
        assert labels is not None
        for c in range(4):
            cls = {v for v, l in enumerate(labels) if l == c}
            assert is_dominating_set(g, cls)

    def test_rejects_bad_t(self):
        with pytest.raises(InvalidParameterError):
            feasible_domatic_partition(path_graph(3), 0)


class TestExactNumbers:
    def test_cycle_domatic(self):
        # domatic number of C_n: 3 if 3 | n else 2
        assert domatic_number_exact(cycle_graph(6)) == 3
        assert domatic_number_exact(cycle_graph(5)) == 2

    def test_complete_ish(self):
        # K_2 = path of 2: both vertices dominate alone
        assert domatic_number_exact(path_graph(2)) == 2

    def test_lambda_1(self):
        assert condition_a_max_labels(1) == 2

    def test_lambda_2_matches_paper(self):
        """Example 1 + the Lemma-2 remark: λ_2 = 2 (< m + 1 = 3)."""
        assert condition_a_max_labels(2) == 2

    def test_lambda_3_matches_paper(self):
        """Example 1: λ_3 = 4 (Hamming, perfect)."""
        assert condition_a_max_labels(3) == 4

    def test_lambda_4(self):
        """λ_4 = 4: Lemma 2's tiling (m'=3) is optimal for m = 4, because
        5 disjoint dominating sets would need γ(Q_4)·5 ≤ 16 with γ = 4
        — certified by exhaustive search."""
        assert condition_a_max_labels(4) == 4

    def test_rejects_large_m(self):
        with pytest.raises(InvalidParameterError):
            condition_a_max_labels(7)


class TestGreedyPartition:
    def test_classes_disjoint_and_dominating(self):
        g = hypercube(3)
        classes = greedy_domatic_partition(g)
        seen: set[int] = set()
        for cls in classes:
            assert not (cls & seen)
            seen |= cls
            assert is_dominating_set(g, cls)
        assert seen == set(range(8))

    def test_covers_all_vertices_on_star(self):
        g = star(6)
        classes = greedy_domatic_partition(g)
        assert set().union(*classes) == set(range(6))
