"""Unit tests for GF(2) linear algebra."""

import numpy as np
import pytest

from repro.coding.gf2 import (
    gf2_matmul,
    gf2_matvec,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    gf2_solve,
)


class TestMatvec:
    def test_simple(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        v = np.array([1, 1, 1], dtype=np.uint8)
        assert list(gf2_matvec(m, v)) == [0, 0]

    def test_identity(self):
        eye = np.eye(4, dtype=np.uint8)
        v = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert list(gf2_matvec(eye, v)) == [1, 0, 1, 1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2_matvec(np.eye(2, dtype=np.uint8), np.zeros(3, dtype=np.uint8))

    def test_values_reduced_mod_2(self):
        m = np.array([[3, 2]], dtype=np.uint8)  # == [[1, 0]] over GF(2)
        v = np.array([1, 1], dtype=np.uint8)
        assert list(gf2_matvec(m, v)) == [1]


class TestRref:
    def test_rank_full(self):
        m = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_rank_deficient(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 1

    def test_rref_pivots(self):
        m = np.array([[0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        rref, pivots = gf2_rref(m)
        assert pivots == [0, 1]
        # reduced: each pivot column has a single 1
        for r, c in enumerate(pivots):
            col = rref[:, c]
            assert col[r] == 1 and col.sum() == 1

    def test_input_not_mutated(self):
        m = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        orig = m.copy()
        gf2_rref(m)
        assert np.array_equal(m, orig)


class TestNullspace:
    def test_dimension(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        ns = gf2_nullspace(m)
        assert ns.shape == (1, 3)

    def test_vectors_in_kernel(self):
        rng = np.random.default_rng(0)
        m = (rng.integers(0, 2, size=(3, 7))).astype(np.uint8)
        ns = gf2_nullspace(m)
        for row in ns:
            assert not gf2_matvec(m, row).any()

    def test_rank_nullity(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            m = (rng.integers(0, 2, size=(4, 9))).astype(np.uint8)
            assert gf2_rank(m) + gf2_nullspace(m).shape[0] == 9

    def test_full_rank_trivial_kernel(self):
        assert gf2_nullspace(np.eye(3, dtype=np.uint8)).shape == (0, 3)


class TestSolve:
    def test_solves_consistent(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        rhs = np.array([1, 0], dtype=np.uint8)
        x = gf2_solve(m, rhs)
        assert x is not None
        assert np.array_equal(gf2_matvec(m, x), rhs)

    def test_inconsistent_returns_none(self):
        m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        rhs = np.array([0, 1], dtype=np.uint8)
        assert gf2_solve(m, rhs) is None

    def test_matmul(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        assert np.array_equal(
            gf2_matmul(a, a), np.array([[1, 0], [0, 1]], dtype=np.uint8)
        )
