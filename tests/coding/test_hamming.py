"""Unit tests for the Hamming code machinery behind the optimal labeling."""

import pytest

from repro.coding.hamming import (
    HammingCode,
    hamming_parity_check_matrix,
    hamming_syndrome,
    hamming_syndrome_table,
    is_perfect_code,
    syndrome_classes,
)
from repro.types import InvalidParameterError
from repro.util.bits import popcount


class TestParityCheck:
    def test_columns_are_binary_indices(self):
        H = hamming_parity_check_matrix(3)
        assert H.shape == (3, 7)
        for j in range(1, 8):
            col = H[:, j - 1]
            value = sum(int(b) << r for r, b in enumerate(col))
            assert value == j

    def test_rejects_p0(self):
        with pytest.raises(InvalidParameterError):
            hamming_parity_check_matrix(0)


class TestSyndrome:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_direct_matches_matrix(self, p):
        code = HammingCode(p)
        for u in range(1 << code.length):
            assert code.syndrome(u) == code.syndrome_via_matrix(u)

    def test_syndrome_is_xor_of_positions(self):
        # bits at positions 1,2,3 (1-indexed): syndrome = 1^2^3 = 0
        assert hamming_syndrome(0b111, 2) == 0
        assert hamming_syndrome(0b001, 2) == 1
        assert hamming_syndrome(0b100, 2) == 3

    def test_neighbour_changes_syndrome_by_dimension(self):
        p = 3
        for u in (0, 37, 100):
            s = hamming_syndrome(u, p)
            for j in range(1, 8):
                assert hamming_syndrome(u ^ (1 << (j - 1)), p) == s ^ j

    def test_table_matches_scalar(self):
        p = 2
        table = hamming_syndrome_table(p)
        for u in range(8):
            assert int(table[u]) == hamming_syndrome(u, p)

    def test_word_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            hamming_syndrome(1 << 7, 2)  # m = 3


class TestCosets:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_classes_partition_space(self, p):
        m = (1 << p) - 1
        classes = syndrome_classes(p)
        assert len(classes) == m + 1
        all_words = sorted(w for cls in classes for w in cls)
        assert all_words == list(range(1 << m))

    @pytest.mark.parametrize("p", [2, 3])
    def test_each_class_is_perfect_dominating_set(self, p):
        """The heart of the optimal labeling: every coset tiles the cube
        with radius-1 balls."""
        m = (1 << p) - 1
        for cls in syndrome_classes(p):
            assert is_perfect_code(set(cls), m)

    def test_classes_equal_size(self):
        classes = syndrome_classes(3)
        sizes = {len(c) for c in classes}
        assert sizes == {2**7 // 8}


class TestHammingCode:
    def test_parameters(self):
        code = HammingCode(3)
        assert code.length == 7
        assert code.dimension == 4

    def test_codewords_count_and_membership(self):
        code = HammingCode(3)
        words = code.codewords()
        assert len(words) == 16
        assert all(code.is_codeword(w) for w in words)

    def test_codewords_form_linear_space(self):
        code = HammingCode(2)
        words = code.codewords()
        for a in words:
            for b in words:
                assert (a ^ b) in words

    def test_minimum_distance_three(self):
        code = HammingCode(3)
        nonzero_weights = {popcount(w) for w in code.codewords() if w}
        assert min(nonzero_weights) == 3
        assert code.minimum_distance_at_most(3)

    def test_decode_corrects_single_error(self):
        code = HammingCode(3)
        for w in list(code.codewords())[:8]:
            for j in range(7):
                assert code.decode(w ^ (1 << j)) == w

    def test_decode_identity_on_codewords(self):
        code = HammingCode(2)
        for w in code.codewords():
            assert code.decode(w) == w

    def test_perfect_code_rejects_overlap(self):
        # {0, 1} in m=3: balls overlap
        assert not is_perfect_code({0b000, 0b001}, 3)

    def test_perfect_code_rejects_undercover(self):
        assert not is_perfect_code({0}, 3)
