"""Tests for JSON serialization and k-mlbg certificates."""

import hashlib

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.io import (
    certificate_for,
    dump_certificate,
    frame_from_dict,
    frame_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_certificate,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    verify_certificate,
)
from repro.types import InvalidParameterError


class TestGraphRoundtrip:
    def test_roundtrip(self):
        g = construct_base(5, 2).graph
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_malformed_rejected(self):
        with pytest.raises(InvalidParameterError):
            graph_from_dict({"edges": [[0, 1]]})
        with pytest.raises(InvalidParameterError):
            graph_from_dict({"n_vertices": "x", "edges": []})


class TestScheduleRoundtrip:
    def test_roundtrip(self):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 3)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.source == sched.source
        assert [
            [c.path for c in r] for r in back.rounds
        ] == [[c.path for c in r] for r in sched.rounds]

    def test_malformed_rejected(self):
        with pytest.raises(InvalidParameterError):
            schedule_from_dict({"rounds": []})


class TestColumnarCodecV2:
    def make(self):
        sh = construct_base(5, 2)
        return sh.graph, broadcast_schedule(sh, 3)

    def test_frame_roundtrip(self):
        _g, sched = self.make()
        frame = sched.to_frame()
        assert frame_from_dict(frame_to_dict(frame)) == frame

    def test_v2_sniffed_by_schedule_loader(self):
        _g, sched = self.make()
        loaded = schedule_from_dict(schedule_to_dict(sched, version=2))
        assert loaded == sched

    def test_v1_output_unchanged_by_redesign(self):
        _g, sched = self.make()
        v1 = schedule_to_dict(sched)
        assert set(v1) == {"source", "rounds"}  # no format marker: legacy shape
        assert schedule_to_dict(sched.to_frame(), version=1) == v1

    def test_unknown_version_rejected(self):
        _g, sched = self.make()
        with pytest.raises(InvalidParameterError):
            schedule_to_dict(sched, version=3)

    def test_malformed_v2_rejected(self):
        with pytest.raises(InvalidParameterError):
            frame_from_dict({"format": "repro-schedule/2", "source": 0})
        with pytest.raises(InvalidParameterError):
            frame_from_dict({"format": "bogus"})

    def test_schedule_file_roundtrip(self, tmp_path):
        graph, sched = self.make()
        path = str(tmp_path / "sched.json")
        save_schedule(path, graph, sched, k=2)
        g2, frame, k = load_schedule(path)
        assert g2 == graph
        assert k == 2
        assert frame == sched.to_frame()

    def test_schedule_file_bad_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(InvalidParameterError):
            load_schedule(str(path))


class TestVersionSniffingErrors:
    """Unknown/missing format markers raise taxonomy errors, not KeyError.

    Stable codes and message shapes are part of the io contract: tools
    that read ``schedule failed [invalid-parameter]`` lines (or the
    service's error JSON) match on them.
    """

    def test_unknown_payload_marker_rejected_with_code(self):
        from repro.errors import error_code

        with pytest.raises(InvalidParameterError) as excinfo:
            schedule_from_dict({"format": "repro-schedule/99", "source": 0})
        assert error_code(excinfo.value) == "invalid-parameter"
        message = str(excinfo.value)
        assert "unknown schedule payload format 'repro-schedule/99'" in message
        assert "repro-schedule/2" in message  # says what it does support

    def test_non_string_marker_rejected_not_keyerror(self):
        with pytest.raises(InvalidParameterError):
            schedule_from_dict({"format": 2, "source": 0, "rounds": []})

    def test_markerless_v1_shape_still_loads(self):
        sched = schedule_from_dict({"source": 0, "rounds": [[[0, 1]]]})
        assert sched.source == 0

    def test_load_schedule_missing_marker(self, tmp_path):
        from repro.errors import error_code

        path = tmp_path / "nomarker.json"
        path.write_text('{"graph": {}, "schedule": {}}')
        with pytest.raises(InvalidParameterError) as excinfo:
            load_schedule(str(path))
        assert error_code(excinfo.value) == "invalid-parameter"
        assert "no schedule-file version marker" in str(excinfo.value)
        assert "repro-schedule-file/1" in str(excinfo.value)

    def test_load_schedule_wrong_marker(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"format": "repro-schedule-file/99"}')
        with pytest.raises(InvalidParameterError) as excinfo:
            load_schedule(str(path))
        assert "not a repro-schedule-file/1 file" in str(excinfo.value)
        assert "repro-schedule-file/99" in str(excinfo.value)

    def test_load_schedule_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(InvalidParameterError):
            load_schedule(str(path))


class TestCertificates:
    def test_full_certificate_verifies(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh)
        assert len(cert["schedules"]) == 16
        assert verify_certificate(cert)

    def test_sampled_certificate(self):
        sh = construct(3, 7, (2, 4))
        cert = certificate_for(sh, sources=[0, 63, 127])
        assert verify_certificate(cert)

    def test_tampered_certificate_fails(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0])
        # claim a smaller k than the schedule's longest call needs
        cert["k"] = 1
        assert not verify_certificate(cert)

    def test_tampered_graph_fails(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0])
        cert["graph"]["edges"] = cert["graph"]["edges"][:-4]
        assert not verify_certificate(cert)

    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidParameterError):
            verify_certificate({"format": "bogus"})

    def test_file_roundtrip(self, tmp_path):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0, 5])
        path = str(tmp_path / "cert.json")
        dump_certificate(cert, path)
        assert verify_certificate(load_certificate(path))


class TestGoldenBytes:
    """The v1 on-disk writers are byte-pinned.

    ``save_schedule`` and ``dump_certificate`` keep their deliberate
    insertion-ordered key layout (suppressed RL002 sites in io.py) —
    shipped artifacts must never change bytes under refactors.  If one
    of these hashes moves, that is a format break: bump the format
    string instead of silently rewriting v1.
    """

    def test_schedule_file_bytes_pinned(self, tmp_path):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 3)
        path = tmp_path / "sched.json"
        save_schedule(str(path), sh.graph, sched, k=2)
        data = path.read_bytes()
        assert len(data) == 877
        assert (
            hashlib.sha256(data).hexdigest()
            == "212493b36803585f159fc3e5110e94cd8a1e0187166c049933df1d4be92cf955"
        )

    def test_certificate_file_bytes_pinned(self, tmp_path):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0, 5])
        path = tmp_path / "cert.json"
        dump_certificate(cert, str(path))
        data = path.read_bytes()
        assert len(data) == 553
        assert (
            hashlib.sha256(data).hexdigest()
            == "79e394c6959a57a2f6070661b88456fd7a7b5d2726e63473f92c853b171d197b"
        )

    def test_writes_are_repeatable(self, tmp_path):
        """Two invocations produce identical bytes (no wall-clock, no
        unsorted-set leakage into the payloads)."""
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 3)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_schedule(str(a), sh.graph, sched, k=2)
        save_schedule(str(b), sh.graph, sched, k=2)
        assert a.read_bytes() == b.read_bytes()
