"""Tests for JSON serialization and k-mlbg certificates."""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.io import (
    certificate_for,
    dump_certificate,
    graph_from_dict,
    graph_to_dict,
    load_certificate,
    schedule_from_dict,
    schedule_to_dict,
    verify_certificate,
)
from repro.types import InvalidParameterError


class TestGraphRoundtrip:
    def test_roundtrip(self):
        g = construct_base(5, 2).graph
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_malformed_rejected(self):
        with pytest.raises(InvalidParameterError):
            graph_from_dict({"edges": [[0, 1]]})
        with pytest.raises(InvalidParameterError):
            graph_from_dict({"n_vertices": "x", "edges": []})


class TestScheduleRoundtrip:
    def test_roundtrip(self):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 3)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.source == sched.source
        assert [
            [c.path for c in r] for r in back.rounds
        ] == [[c.path for c in r] for r in sched.rounds]

    def test_malformed_rejected(self):
        with pytest.raises(InvalidParameterError):
            schedule_from_dict({"rounds": []})


class TestCertificates:
    def test_full_certificate_verifies(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh)
        assert len(cert["schedules"]) == 16
        assert verify_certificate(cert)

    def test_sampled_certificate(self):
        sh = construct(3, 7, (2, 4))
        cert = certificate_for(sh, sources=[0, 63, 127])
        assert verify_certificate(cert)

    def test_tampered_certificate_fails(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0])
        # claim a smaller k than the schedule's longest call needs
        cert["k"] = 1
        assert not verify_certificate(cert)

    def test_tampered_graph_fails(self):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0])
        cert["graph"]["edges"] = cert["graph"]["edges"][:-4]
        assert not verify_certificate(cert)

    def test_unknown_format_rejected(self):
        with pytest.raises(InvalidParameterError):
            verify_certificate({"format": "bogus"})

    def test_file_roundtrip(self, tmp_path):
        sh = construct_base(4, 2)
        cert = certificate_for(sh, sources=[0, 5])
        path = str(tmp_path / "cert.json")
        dump_certificate(cert, path)
        assert verify_certificate(load_certificate(path))
