"""CLI error paths: wrong input exits non-zero with one line, no traceback.

Subprocess tests — the contract covers the real entry point
(``python -m repro``), including anything that might escape ``main()``
as an unhandled exception, which in-process tests of ``main`` cannot
pin.  Every case must exit with code 2, write a short message to
stderr, and never print a traceback.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
        timeout=120,
    )


def assert_clean_failure(proc, *, needle=None):
    assert proc.returncode == 2, (proc.returncode, proc.stderr)
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout
    message_lines = [ln for ln in proc.stderr.splitlines() if ln.strip()]
    assert len(message_lines) == 1, proc.stderr
    if needle is not None:
        assert needle in message_lines[0]


class TestScheduleErrors:
    def test_unknown_graph_family(self):
        assert_clean_failure(
            run_cli("schedule", "--graph", "bogus:3"), needle="unknown graph spec"
        )

    def test_non_integer_graph_args(self):
        assert_clean_failure(
            run_cli("schedule", "--graph", "hypercube:x"),
            needle="must be integers",
        )

    def test_wrong_graph_arity(self):
        assert_clean_failure(
            run_cli("schedule", "--graph", "hypercube:3:9:9"),
            needle="argument count",
        )

    def test_unknown_scheduler(self):
        assert_clean_failure(
            run_cli("schedule", "--graph", "hypercube:3", "--scheduler", "nope"),
            needle="unknown scheduler",
        )

    def test_missing_graph(self):
        assert_clean_failure(run_cli("schedule"), needle="--graph")


class TestValidateErrors:
    def test_k_without_thresholds(self):
        assert_clean_failure(
            run_cli("validate", "--n", "6", "--k", "4"), needle="--thresholds"
        )

    def test_thresholds_without_k(self):
        assert_clean_failure(
            run_cli("validate", "--n", "6", "--thresholds", "2,4"),
            needle="requires --k",
        )

    def test_out_of_range_n(self):
        assert_clean_failure(run_cli("validate", "--n", "0"))


class TestCampaignErrors:
    def test_unknown_campaign(self):
        assert_clean_failure(
            run_cli("campaign", "run", "nope"), needle="unknown campaign"
        )

    def test_shard_index_out_of_range(self):
        assert_clean_failure(
            run_cli("campaign", "run", "paper-grid", "--shard", "2/2"),
            needle="out of range",
        )

    def test_shard_malformed(self):
        assert_clean_failure(
            run_cli("campaign", "run", "paper-grid", "--shard", "x"),
            needle="shard",
        )

    def test_missing_action(self):
        assert_clean_failure(run_cli("campaign"), needle="needs an action")

    def test_merge_without_chunks(self, tmp_path):
        proc = run_cli("campaign", "merge", "paper-grid", "--out-dir", str(tmp_path))
        assert_clean_failure(proc, needle="no chunks")

    def test_malformed_json_spec(self, tmp_path):
        bad = tmp_path / "bad.json"
        payload = {"name": "x", "graphs": ["bogus:9"], "schedulers": ["greedy"]}
        bad.write_text(json.dumps(payload))
        assert_clean_failure(
            run_cli("campaign", "run", str(bad)), needle="unknown graph spec"
        )

    def test_bad_jobs(self):
        assert_clean_failure(
            run_cli("campaign", "run", "paper-grid", "--jobs", "0"),
            needle="--jobs",
        )


class TestRunErrors:
    def test_unknown_experiment(self):
        assert_clean_failure(run_cli("run", "e99"), needle="unknown experiment")

    def test_bad_jobs(self):
        assert_clean_failure(run_cli("run", "e04", "--jobs", "0"), needle="--jobs")


class TestCampaignHappyPathSubprocess:
    """One end-to-end subprocess pass of the determinism gate (the same
    sequence the CI campaign job runs, at the smallest built-in)."""

    def test_shard_merge_matches_single_shot(self, tmp_path):
        single, sharded = tmp_path / "single", tmp_path / "sharded"
        cache = tmp_path / "cache"
        base = ("campaign", "run", "allsources-validation", "--cache-dir", str(cache))
        assert run_cli(*base, "--out-dir", str(single)).returncode == 0
        shard0 = run_cli(*base, "--shard", "0/2", "--out-dir", str(sharded))
        assert shard0.returncode == 0
        shard1 = run_cli(*base, "--shard", "1/2", "--out-dir", str(sharded))
        assert shard1.returncode == 0
        proc = run_cli(
            "campaign", "merge", "allsources-validation", "--out-dir", str(sharded)
        )
        assert proc.returncode == 0, proc.stderr
        merged = (sharded / "allsources-validation.jsonl").read_bytes()
        direct = (single / "allsources-validation.jsonl").read_bytes()
        assert merged == direct
        manifest = json.loads(
            (single / "allsources-validation-shard0of1.manifest.json").read_text()
        )
        assert manifest["format"] == "repro-campaign-manifest/1"
        assert manifest["n_scenarios_total"] == len(manifest["scenarios"])
        assert all("seed" in s and "digest" in s for s in manifest["scenarios"])


class TestErrorCodeBrackets:
    """Exit-2 one-liners carry the machine-readable ``[code]`` tag.

    The bracketed code is the same string the service puts in HTTP
    error bodies (``error.code``) — one taxonomy, two transports.
    """

    def test_invalid_parameter_code(self):
        proc = run_cli("schedule", "--graph", "bogus:3")
        assert_clean_failure(proc, needle="[invalid-parameter]")
        assert proc.stderr.startswith("schedule failed [invalid-parameter]: ")

    def test_unknown_name_code(self):
        proc = run_cli("schedule", "--graph", "hypercube:3", "--scheduler", "nope")
        assert_clean_failure(proc, needle="[unknown-name]")

    def test_validate_code(self):
        proc = run_cli("validate", "--n", "6", "--k", "4")
        assert_clean_failure(proc, needle="[invalid-parameter]")
        assert proc.stderr.startswith("validate failed [")

    def test_campaign_code(self):
        proc = run_cli("campaign", "run", "nope")
        assert_clean_failure(proc, needle="[invalid-parameter]")

    def test_serve_bad_workers(self):
        proc = run_cli("serve", "--workers", "0")
        assert_clean_failure(proc, needle="[invalid-parameter]")
        assert proc.stderr.startswith("serve failed [")
