"""Subprocess round-trip for the schedule-file CLI:
``repro schedule --out FILE`` → ``repro validate --schedule FILE``.

Error paths follow the repository-wide convention: exit code 2, one
line on stderr, never a traceback (see test_cli_errors.py)."""

import json

from test_cli_errors import assert_clean_failure, run_cli


class TestScheduleOutValidateRoundTrip:
    def test_roundtrip_all_engines(self, tmp_path):
        out = tmp_path / "sched.json"
        proc = run_cli(
            "schedule",
            "--graph",
            "hypercube:3",
            "--scheduler",
            "search",
            "--k",
            "1",
            "--out",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert f"wrote {out}" in proc.stdout
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-schedule-file/1"
        assert payload["schedule"]["format"] == "repro-schedule/2"
        assert payload["k"] == 1
        for engine in ("auto", "reference", "fast", "batch"):
            check = run_cli("validate", "--schedule", str(out), "--engine", engine)
            assert check.returncode == 0, (engine, check.stderr)
            assert "yes" in check.stdout

    def test_invalid_schedule_exits_one(self, tmp_path):
        out = tmp_path / "sched.json"
        proc = run_cli(
            "schedule",
            "--graph",
            "hypercube:3",
            "--scheduler",
            "store_forward",
            "--out",
            str(out),
        )
        assert proc.returncode == 0
        payload = json.loads(out.read_text())
        # claim k = 0 < every call's length: the file now lies
        payload["k"] = 0
        out.write_text(json.dumps(payload))
        proc = run_cli("validate", "--schedule", str(out))
        assert proc.returncode == 1, proc.stdout
        assert "error:" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_malformed_json_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert_clean_failure(
            run_cli("validate", "--schedule", str(bad)), needle="not valid JSON"
        )

    def test_wrong_format_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "bogus"}))
        assert_clean_failure(
            run_cli("validate", "--schedule", str(bad)),
            needle="repro-schedule-file/1",
        )

    def test_missing_file_exits_two(self, tmp_path):
        assert_clean_failure(
            run_cli("validate", "--schedule", str(tmp_path / "nope.json"))
        )

    def test_loop_engine_rejected_in_file_mode(self, tmp_path):
        out = tmp_path / "sched.json"
        proc = run_cli(
            "schedule",
            "--graph",
            "hypercube:3",
            "--scheduler",
            "search",
            "--k",
            "1",
            "--out",
            str(out),
        )
        assert proc.returncode == 0
        assert_clean_failure(
            run_cli("validate", "--schedule", str(out), "--engine", "loop"),
            needle="loop",
        )

    def test_validate_without_inputs_exits_two(self):
        assert_clean_failure(run_cli("validate"), needle="--schedule")

    def test_sweep_flags_rejected_in_file_mode(self, tmp_path):
        out = tmp_path / "sched.json"
        out.write_text("{}")  # never opened: the flag conflict wins
        assert_clean_failure(
            run_cli("validate", "--schedule", str(out), "--n", "6"),
            needle="cannot be combined",
        )
        assert_clean_failure(
            run_cli("validate", "--schedule", str(out), "--all-sources"),
            needle="cannot be combined",
        )

    def test_api_engine_rejected_in_sweep_mode(self):
        assert_clean_failure(
            run_cli("validate", "--n", "4", "--engine", "fast"),
            needle="--engine fast",
        )
