"""End-to-end integration tests across packages.

These are the "does the whole pipeline hang together" checks: construct →
broadcast → simulate → validate → account congestion, plus cross-checks
between independent implementations (scheme vs exact search, flat rule vs
recursive reference, formula vs built graph, our BFS vs networkx).
"""

import pytest

from repro.core.bounds import upper_bound_theorem5, upper_bound_theorem7
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.params import default_thresholds, theorem5_m_star
from repro.graphs.hypercube import hypercube
from repro.model.congestion import congestion_profile
from repro.model.simulator import LineNetworkSimulator
from repro.model.validator import validate_broadcast, verify_k_mlbg_via_scheme
from repro.schedulers.search import find_minimum_time_schedule, is_k_mlbg_exact


class TestFullPipeline:
    @pytest.mark.parametrize("k,n", [(2, 8), (3, 8), (4, 9)])
    def test_construct_broadcast_simulate_validate(self, k, n):
        thr = default_thresholds(k, n) if k > 2 else (theorem5_m_star(n),)
        sh = construct(k, n, thr)
        g = sh.graph

        # bound check
        bound = upper_bound_theorem5(n) if k == 2 else upper_bound_theorem7(n, k)
        assert g.max_degree() <= bound

        # scheme from a few sources: validator + simulator agree
        for s in (0, g.n_vertices // 3, g.n_vertices - 1):
            sched = broadcast_schedule(sh, s)
            rep = validate_broadcast(g, sched, k)
            assert rep.ok
            sim = LineNetworkSimulator(g, k=k)
            result = sim.run(sched)
            assert len(result.informed) == g.n_vertices
            assert not result.rejected
            prof = congestion_profile(g, sched)
            assert prof.peak_concurrency == 1

    def test_scheme_agrees_with_exact_search_small(self):
        """Two fully independent certifications of Definition 3 on the
        same instance."""
        sh = construct_base(4, 2)
        assert verify_k_mlbg_via_scheme(sh)
        assert is_k_mlbg_exact(sh.graph, 2)

    def test_scheme_schedule_is_minimum_by_search(self):
        """The exact searcher cannot beat ⌈log₂N⌉, and the scheme attains
        it — so the scheme is optimal."""
        sh = construct_base(3, 1)
        g = sh.graph
        for s in range(8):
            found = find_minimum_time_schedule(g, s, 2)
            assert found is not None
            assert len(found.rounds) == 3 == len(broadcast_schedule(sh, s).rounds)

    def test_sparse_graphs_save_edges_and_degree(self):
        n = 10
        q = hypercube(n)
        sh = construct_base(n, theorem5_m_star(n))
        g = sh.graph
        assert g.n_edges < q.n_edges
        assert g.max_degree() < q.max_degree()
        assert g.n_vertices == q.n_vertices
        assert g.is_subgraph_of(q)

    def test_simulator_and_validator_reject_identically(self):
        """Corrupt a schedule; both layers must flag it."""
        sh = construct_base(5, 2)
        g = sh.graph
        sched = broadcast_schedule(sh, 0)
        # corrupt: duplicate the first call of round 2 into round 1
        from repro.types import Round, Schedule

        bad = Schedule(source=0)
        bad.rounds = list(sched.rounds)
        extra = sched.rounds[1].calls[0]
        bad.rounds[0] = Round(tuple(sched.rounds[0].calls + (extra,)))
        rep = validate_broadcast(g, bad, 2)
        assert not rep.ok
        sim = LineNetworkSimulator(g, k=2, strict=False)
        result = sim.run(bad)
        assert result.rejected


class TestCrossCheckNetworkx:
    def test_distances_on_sparse_hypercube(self):
        import networkx as nx

        sh = construct(3, 7, (2, 4))
        g = sh.graph
        nxg = g.to_networkx()
        for u in (0, 64, 127):
            ours = g.bfs_distances(u)
            theirs = nx.single_source_shortest_path_length(nxg, u)
            assert all(ours[v] == theirs[v] for v in range(g.n_vertices))

    def test_connectivity_and_degree_agree(self):
        import networkx as nx

        sh = construct_base(8, 3)
        g = sh.graph
        nxg = g.to_networkx()
        assert nx.is_connected(nxg) == g.is_connected()
        assert max(d for _, d in nxg.degree()) == g.max_degree()


class TestCLI:
    def test_cli_runs_single_experiment(self, capsys):
        from repro.cli import main

        assert main(["e06"]) == 0
        out = capsys.readouterr().out
        assert "G_{4,2}" in out or "E06" in out

    def test_cli_list(self, capsys):
        from repro.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e16" in out

    def test_cli_unknown(self):
        from repro.cli import main

        assert main(["e99"]) == 2


class TestCLISubcommands:
    def test_run_subcommand(self, capsys):
        from repro.cli import main

        assert main(["run", "e06"]) == 0
        out = capsys.readouterr().out
        assert "[E06]" in out
        assert "ran 1 experiment(s)" in out

    def test_list_subcommand(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "e22" in out

    def test_run_with_jobs(self, capsys):
        from repro.cli import main

        assert main(["run", "e02", "e04", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "[E02]" in out and "[E04]" in out

    def test_run_with_cache_second_invocation_executes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "e02", "e04", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "ran 2 experiment(s), 0 cache hit(s)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "ran 0 experiment(s), 2 cache hit(s)" in second
        assert "(cache)" in second
        # tables themselves identical across the cached re-run
        def strip(s):
            return [
                line for line in s.splitlines()
                if not line.startswith("ran ") and "(" not in line
            ]

        assert strip(first) == strip(second)

    def test_clean_cache_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "e04", "--cache", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["clean-cache", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert list(tmp_path.glob("*.json")) == []

    def test_run_unknown_experiment(self):
        from repro.cli import main

        assert main(["run", "e99"]) == 2


class TestCLIExport:
    def test_export_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["--export-csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "degree_series_k2.csv" in out
        assert (tmp_path / "asymptotic_ratio_k3.csv").exists()
