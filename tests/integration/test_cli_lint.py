"""`repro lint` CLI contract: exit codes, formats, and the self-check.

Subprocess tests, matching the conventions of test_cli_errors.py:
exit 0 = clean, 1 = violations found, 2 = usage error with exactly one
stderr line and no traceback.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SNIPPET = textwrap.dedent(
    """\
    import json


    def save(d):
        return json.dumps(d)
    """
)


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
        timeout=120,
    )


def assert_clean_failure(proc, *, needle=None):
    assert proc.returncode == 2, (proc.returncode, proc.stderr)
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout
    message_lines = [ln for ln in proc.stderr.splitlines() if ln.strip()]
    assert len(message_lines) == 1, proc.stderr
    if needle is not None:
        assert needle in message_lines[0]


class TestLintErrors:
    def test_unknown_rule(self, tmp_path):
        assert_clean_failure(
            run_cli("lint", "--rule", "RL999", str(tmp_path)),
            needle="unknown lint rule",
        )

    def test_missing_path(self, tmp_path):
        assert_clean_failure(
            run_cli("lint", str(tmp_path / "nope")),
            needle="no such file or directory",
        )

    def test_syntax_error_in_target(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert_clean_failure(run_cli("lint", str(bad)), needle="syntax error")


class TestLintRuns:
    def test_violations_exit_1_with_locations(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(BAD_SNIPPET)
        proc = run_cli("lint", str(target))
        assert proc.returncode == 1, (proc.stdout, proc.stderr)
        assert f"{target}:5:" in proc.stdout
        assert "RL002" in proc.stdout

    def test_clean_target_exits_0(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        proc = run_cli("lint", str(target))
        assert proc.returncode == 0, (proc.stdout, proc.stderr)
        assert "clean" in proc.stdout

    def test_json_format(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(BAD_SNIPPET)
        proc = run_cli("lint", "--format", "json", str(target))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "RL002"
        assert payload["violations"][0]["line"] == 5

    def test_rule_filter(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(BAD_SNIPPET)
        proc = run_cli("lint", "--rule", "RL006", str(target))
        assert proc.returncode == 0, (proc.stdout, proc.stderr)

    def test_list_rules(self):
        proc = run_cli("lint", "--list")
        assert proc.returncode == 0
        listed = [ln.split()[0] for ln in proc.stdout.splitlines() if ln]
        assert len(listed) >= 8
        assert "RL001" in listed and "RL008" in listed


class TestLintSelfCheck:
    def test_src_is_clean(self):
        """The acceptance gate: the repo passes its own linter."""
        proc = run_cli("lint", "src")
        assert proc.returncode == 0, (proc.stdout, proc.stderr)
        assert "clean" in proc.stdout
