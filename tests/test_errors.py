"""The structured error taxonomy and its capture helpers."""

import pytest

from repro.errors import (
    ExecutionError,
    ReproError,
    ScenarioError,
    ShmAttachError,
    TaskTimeout,
    WorkerCrash,
    capture,
    captured_call,
    format_cause,
)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ExecutionError, ReproError)
        for cls in (WorkerCrash, TaskTimeout, ShmAttachError):
            assert issubclass(cls, ExecutionError)
        assert issubclass(ScenarioError, ReproError)
        # scenario failures are deterministic, never a retryable fault
        assert not issubclass(ScenarioError, ExecutionError)

    def test_worker_crash_carries_exitcode_and_attempts(self):
        err = WorkerCrash("worker died", exitcode=-9, attempts=3)
        assert err.exitcode == -9
        assert err.attempts == 3
        assert "worker died" in str(err)

    def test_task_timeout_carries_deadline(self):
        err = TaskTimeout("too slow", seconds=1.5, attempts=2)
        assert err.seconds == 1.5
        assert err.attempts == 2

    def test_shm_attach_error_carries_segment_name(self):
        err = ShmAttachError("gone", name="psm_feedface")
        assert err.name == "psm_feedface"

    def test_scenario_error_names_the_scenario(self):
        err = ScenarioError("g=path:8|s=greedy", "ValueError: boom")
        assert err.scenario_id == "g=path:8|s=greedy"
        assert err.cause == "ValueError: boom"
        assert "g=path:8|s=greedy" in str(err)
        assert "boom" in str(err)


class TestCapture:
    def test_ok_path_returns_value(self):
        assert capture(lambda: 41 + 1) == ("ok", 42)

    def test_error_path_returns_formatted_cause(self):
        def boom():
            raise ValueError("bad input")

        status, cause = capture(boom)
        assert status == "error"
        assert cause == "ValueError: bad input"

    def test_arguments_pass_through(self):
        assert capture(divmod, 7, 3) == ("ok", (2, 1))

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            capture(interrupted)

    def test_captured_call_keeps_exception_object(self):
        original = ValueError("keep me")

        def boom():
            raise original

        status, exc = captured_call(boom)
        assert status == "raise"
        assert exc is original

    def test_format_cause(self):
        assert format_cause(RuntimeError("x")) == "RuntimeError: x"


class TestErrorCodes:
    """Every taxonomy class carries a stable ``code`` string.

    These strings appear verbatim in CLI exit-2 one-liners and in HTTP
    error bodies (``error.code``); they are append-only wire format —
    never rename one.
    """

    def test_codes_pinned(self):
        from repro.types import (
            ConstructionError,
            InvalidParameterError,
            InvalidScheduleError,
        )

        assert ReproError.code == "repro-error"
        assert InvalidParameterError.code == "invalid-parameter"
        assert InvalidScheduleError.code == "invalid-schedule"
        assert ConstructionError.code == "construction-error"
        assert ExecutionError.code == "execution-error"
        assert WorkerCrash.code == "worker-crash"
        assert TaskTimeout.code == "task-timeout"
        assert ShmAttachError.code == "shm-attach-error"
        assert ScenarioError.code == "scenario-error"

    def test_error_code_uses_instance_code(self):
        from repro.errors import error_code

        assert error_code(WorkerCrash("x", exitcode=1, attempts=1)) == "worker-crash"
        assert error_code(ReproError("x")) == "repro-error"

    def test_error_code_maps_foreign_exceptions(self):
        from repro.errors import error_code

        assert error_code(KeyError("missing")) == "unknown-name"
        assert error_code(FileNotFoundError("gone")) == "io-error"
        assert error_code(ValueError("bad")) == "invalid-parameter"
        assert error_code(RuntimeError("boom")) == "internal-error"
