"""Campaign crash-safety: checkpoints, SIGKILL resume, quarantine, chaos.

The flagship contract (ISSUE 8 / S3): a campaign run killed mid-flight
resumes from its fsync'd checkpoint and the final artifacts — shard
chunk, merged JSONL — are byte-identical to an uninterrupted run, on
both plane-store backends; manifests are identical once wall-clock and
cache-provenance fields are normalized out.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.analysis import campaigns
from repro.analysis.campaigns import (
    CampaignExecutionError,
    CampaignRunner,
    CampaignSpec,
    _ShardCheckpoint,
    artifact_path,
    campaign_digest,
    chunk_path,
    expand_campaign,
    manifest_path,
    merge_chunks,
    run_campaign_shard,
)
from repro.devtools import chaos
from repro.util.retry import RetryPolicy

TINY = CampaignSpec(
    name="tiny-test",
    title="tiny test grid",
    graphs=("hypercube:3", "path:8"),
    schedulers=("greedy",),
    k_values=(2, None),
    sources=("first",),
    conditions=("none", "edge-faults:1"),
)

_SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    chaos.reset()
    yield
    chaos.reset()


def _fake_row(sc):
    """A deterministic row carrying the identity fields the checkpoint
    and merge validators require."""
    return {
        "index": sc.index,
        "scenario": sc.scenario_id,
        "seed": sc.seed,
        "found": sc.index * 10,
    }


class TestShardCheckpoint:
    def _ckpt(self, tmp_path):
        chunk = chunk_path(tmp_path, TINY, (0, 1))
        return _ShardCheckpoint(chunk, campaign_digest(TINY))

    def test_roundtrip(self, tmp_path):
        expected = {sc.index: sc for sc in expand_campaign(TINY)}
        ckpt = self._ckpt(tmp_path)
        assert ckpt.load(expected) == {}
        ckpt.append(_fake_row(expected[0]))
        ckpt.append(_fake_row(expected[3]))
        fresh = self._ckpt(tmp_path)
        rows = fresh.load(expected)
        assert sorted(rows) == [0, 3]
        assert rows[3]["found"] == 30

    def test_torn_final_line_is_ignored(self, tmp_path):
        expected = {sc.index: sc for sc in expand_campaign(TINY)}
        ckpt = self._ckpt(tmp_path)
        ckpt.load(expected)
        ckpt.append(_fake_row(expected[0]))
        ckpt.append(_fake_row(expected[1]))
        # simulate a kill mid-append: a torn row beyond the cursor count
        with open(ckpt.partial, "a") as fh:
            fh.write('{"index": 2, "scen')
        fresh = self._ckpt(tmp_path)
        rows = fresh.load(expected)
        assert sorted(rows) == [0, 1]
        # the partial was rewritten to exactly the validated prefix
        assert len(fresh.partial.read_text().splitlines()) == 2

    def test_digest_mismatch_discards_checkpoint(self, tmp_path):
        expected = {sc.index: sc for sc in expand_campaign(TINY)}
        ckpt = self._ckpt(tmp_path)
        ckpt.load(expected)
        ckpt.append(_fake_row(expected[0]))
        chunk = chunk_path(tmp_path, TINY, (0, 1))
        stale = _ShardCheckpoint(chunk, "0" * 16)  # another grid/code
        assert stale.load(expected) == {}

    def test_stale_row_stops_the_prefix(self, tmp_path):
        expected = {sc.index: sc for sc in expand_campaign(TINY)}
        ckpt = self._ckpt(tmp_path)
        ckpt.load(expected)
        ckpt.append(_fake_row(expected[0]))
        bad = _fake_row(expected[1])
        bad["seed"] += 1  # an older expansion's seed
        ckpt.append(bad)
        ckpt.append(_fake_row(expected[2]))
        rows = self._ckpt(tmp_path).load(expected)
        assert sorted(rows) == [0]  # prefix before the stale row only


class TestCheckpointResume:
    def test_failed_run_resumes_from_checkpoint(self, tmp_path, monkeypatch):
        chunk = chunk_path(tmp_path, TINY, (0, 1))
        fail_index = TINY.n_scenarios - 1

        def flaky(sc):
            if sc.index == fail_index:
                raise RuntimeError("injected failure")
            return _fake_row(sc)

        monkeypatch.setattr(campaigns, "run_scenario", flaky)
        runner = CampaignRunner()  # no JSON cache: checkpoint-only resume
        with pytest.raises(CampaignExecutionError, match="injected failure"):
            runner.run(TINY, checkpoint=chunk)
        ckpt = _ShardCheckpoint(chunk, campaign_digest(TINY))
        assert ckpt.partial.exists() and ckpt.cursor.exists()
        monkeypatch.setattr(campaigns, "run_scenario", _fake_row)
        resumed = CampaignRunner()
        outcomes = resumed.run(TINY, checkpoint=chunk)
        assert resumed.stats.executed == 1  # only the failed scenario
        assert resumed.stats.cache_hits == TINY.n_scenarios - 1
        assert [o.row for o in outcomes] == [
            _fake_row(sc) for sc in expand_campaign(TINY)
        ]
        # success clears the checkpoint files
        assert not ckpt.partial.exists() and not ckpt.cursor.exists()


class TestQuarantineReport:
    def test_poison_scenario_reported_without_aborting(
        self, tmp_path, monkeypatch
    ):
        chunk = chunk_path(tmp_path, TINY, (0, 1))
        poison = 2

        def killer(sc):
            if sc.index == poison:
                os.kill(os.getpid(), signal.SIGKILL)
            return _fake_row(sc)

        monkeypatch.setattr(campaigns, "run_scenario", killer)
        runner = CampaignRunner(
            jobs=2, retry=RetryPolicy(base_delay=0.0, max_attempts=2)
        )
        with pytest.raises(
            CampaignExecutionError, match="quarantined after 2 attempts"
        ) as excinfo:
            runner.run(TINY, checkpoint=chunk)
        (fault,) = excinfo.value.quarantined
        assert fault.kind == "crash"
        assert not excinfo.value.failures
        # every innocent scenario completed and was checkpointed
        ckpt = _ShardCheckpoint(chunk, campaign_digest(TINY))
        rows = ckpt.load({sc.index: sc for sc in expand_campaign(TINY)})
        assert sorted(rows) == [
            i for i in range(TINY.n_scenarios) if i != poison
        ]
        # a fixed re-run executes only the quarantined scenario
        monkeypatch.setattr(campaigns, "run_scenario", _fake_row)
        resumed = CampaignRunner()
        resumed.run(TINY, checkpoint=chunk)
        assert resumed.stats.executed == 1


class TestCorruptCacheChaos:
    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setattr(campaigns, "run_scenario", _fake_row)
        first = CampaignRunner(cache_dir=cache)
        first.run(TINY)
        assert first.stats.executed == TINY.n_scenarios
        monkeypatch.setenv("REPRO_CHAOS", "corrupt-cache:nth=0")
        chaos.reset()
        second = CampaignRunner(cache_dir=cache)
        outcomes = second.run(TINY)
        assert second.stats.executed == 1  # the scribbled entry re-ran
        assert second.stats.cache_hits == TINY.n_scenarios - 1
        assert [o.row for o in outcomes] == [
            _fake_row(sc) for sc in expand_campaign(TINY)
        ]


def _normalized_manifest(path: Path) -> str:
    """Manifest bytes with wall-clock and cache-provenance fields zeroed
    (an interrupted-then-resumed run legitimately differs in those)."""
    payload = json.loads(path.read_text())
    payload["seconds"] = 0
    payload["executed"] = 0
    payload["cache_hits"] = 0
    for sc in payload["scenarios"]:
        sc["seconds"] = 0
        sc["cached"] = False
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


@pytest.mark.parametrize("backend", ["shm", "mmap"])
class TestSigkillResumeByteIdentity:
    """Kill shard 0 of a 2-shard campaign mid-flight; resume; the merged
    artifact must equal an uninterrupted run byte for byte."""

    def _spec_file(self, tmp_path: Path) -> Path:
        spec = tmp_path / "chaos-tiny.json"
        spec.write_text(
            json.dumps(
                {
                    "name": "chaos-tiny",
                    "title": "chaos resume grid",
                    "graphs": ["hypercube:3", "path:8"],
                    "schedulers": ["greedy"],
                    "k_values": [2, None],
                    "sources": ["first"],
                    "conditions": ["none", "edge-faults:1"],
                }
            )
        )
        return spec

    def _run_cli(self, spec, out_dir, backend, *, chaos_spec=None, wait=True):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        env["REPRO_SHM"] = backend
        env.pop("REPRO_CHAOS", None)
        if chaos_spec is not None:
            env["REPRO_CHAOS"] = chaos_spec
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "campaign",
                "run",
                str(spec),
                "--shard",
                "0/2",
                "--jobs",
                "2",
                "--no-cache",
                "--out-dir",
                str(out_dir),
            ],
            env=env,
            start_new_session=True,  # killpg must not reach pytest
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        if wait:
            assert proc.wait(timeout=120) == 0
        return proc

    def test_sigkill_resume_merged_bytes_identical(self, tmp_path, backend):
        spec_file = self._spec_file(tmp_path)
        spec = campaigns.load_campaign(str(spec_file))
        out = tmp_path / "interrupted"
        out.mkdir()
        cursor = out / "chaos-tiny-shard0of2.cursor.json"

        # Shard 0/2 owns 4 scenarios; jobs=2 gives chunk ids 0..3, and
        # the injected delay stalls chunk 3 long past the test, so the
        # run checkpoints the first rows and then hangs — kill it there.
        proc = self._run_cli(
            spec_file,
            out,
            backend,
            chaos_spec="delay:chunk=3:ms=600000",
            wait=False,
        )
        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                if cursor.exists():
                    count = json.loads(cursor.read_text()).get("count", 0)
                    if count >= 2:
                        break
                assert proc.poll() is None, "campaign exited before the kill"
                time.sleep(0.05)
            else:
                pytest.fail("checkpoint cursor never advanced")
        finally:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        assert cursor.exists()  # the crash left a durable checkpoint

        # resume shard 0 without chaos, run shard 1 normally, merge
        self._run_cli(spec_file, out, backend)
        run_campaign_shard(spec, shard=(1, 2), out_dir=out)
        merged, rows = merge_chunks(spec, out)
        assert len(rows) == spec.n_scenarios

        # the uninterrupted reference run
        clean = tmp_path / "clean"
        run_campaign_shard(spec, shard=(0, 2), out_dir=clean, jobs=2)
        run_campaign_shard(spec, shard=(1, 2), out_dir=clean)
        clean_merged, _ = merge_chunks(spec, clean)

        assert merged.read_bytes() == clean_merged.read_bytes()
        assert (
            chunk_path(out, spec, (0, 2)).read_bytes()
            == chunk_path(clean, spec, (0, 2)).read_bytes()
        )
        assert _normalized_manifest(
            manifest_path(out, spec, (0, 2))
        ) == _normalized_manifest(manifest_path(clean, spec, (0, 2)))
        # the resume genuinely served checkpointed rows
        resumed_manifest = json.loads(
            manifest_path(out, spec, (0, 2)).read_text()
        )
        assert resumed_manifest["cache_hits"] >= 2
        # success cleaned the checkpoint files up
        assert not cursor.exists()
        # and the merged artifact equals an unsharded run's artifact
        single = tmp_path / "single"
        run_campaign_shard(spec, shard=(0, 1), out_dir=single)
        assert merged.read_bytes() == artifact_path(single, spec).read_bytes()
