"""Unit tests for the table formatter."""

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_empty(self):
        assert "(empty)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_alignment_and_header(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_float_and_bool_formatting(self):
        rows = [{"x": 0.123456789, "ok": True}, {"x": 2.0, "ok": False}]
        text = format_table(rows)
        assert "0.1235" in text
        assert "yes" in text and "no" in text

    def test_missing_keys_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # renders without KeyError

    def test_title(self):
        assert format_table([{"a": 1}], title="Hello").startswith("Hello")
