"""The experiment registry: discovery, params introspection, digests."""

import pytest

from repro.analysis import experiments as experiments_facade
from repro.analysis import registry
from repro.types import InvalidParameterError

EXPECTED_IDS = [f"e{i:02d}" for i in range(1, 24) if i != 3]  # e03 folded into e02


class TestRegistryContents:
    def test_all_experiments_registered(self):
        assert registry.experiment_ids() == EXPECTED_IDS

    def test_specs_have_titles_and_callables(self):
        for spec in registry.all_experiments():
            assert spec.title
            assert callable(spec.fn)
            assert spec.module.startswith("repro.analysis.exp_")

    def test_lookup_is_case_insensitive(self):
        assert registry.get_experiment("E06") is registry.get_experiment("e06")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            registry.get_experiment("e99")

    def test_facade_exports_every_registered_function(self):
        # the compat facade re-exports exactly the registered callables
        for spec in registry.all_experiments():
            assert getattr(experiments_facade, spec.fn.__name__) is spec.fn

    def test_double_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            registry.experiment("e06", "duplicate")(lambda: [])


class TestParams:
    def test_default_params_introspected(self):
        spec = registry.get_experiment("e01")
        assert registry.default_params(spec) == {
            "max_h": 6,
            "schedule_h": 5,
            "sources_cap": 12,
        }

    def test_effective_params_merges_overrides(self):
        spec = registry.get_experiment("e01")
        params = registry.effective_params(spec, {"max_h": 3})
        assert params["max_h"] == 3
        assert params["schedule_h"] == 5

    def test_unknown_override_rejected(self):
        spec = registry.get_experiment("e01")
        with pytest.raises(InvalidParameterError):
            registry.effective_params(spec, {"nope": 1})

    def test_digest_stable_and_sensitive(self):
        spec = registry.get_experiment("e09")
        base = registry.effective_params(spec)
        d1 = registry.params_digest("e09", base)
        d2 = registry.params_digest("e09", registry.effective_params(spec))
        assert d1 == d2
        d3 = registry.params_digest(
            "e09", registry.effective_params(spec, {"sources_cap": 4})
        )
        assert d3 != d1
        # tuples and lists hash identically (JSON canonical form)
        assert registry.params_digest("x", {"v": (1, 2)}) == registry.params_digest(
            "x", {"v": [1, 2]}
        )


class TestRunByName:
    def test_run_experiment_matches_direct_call(self):
        from repro.analysis.exp_foundations import experiment_e04_labelings

        assert registry.run_experiment("e04") == experiment_e04_labelings()

    def test_run_experiment_with_overrides(self):
        rows = registry.run_experiment("e05", {"max_m": 3})
        assert [r["m"] for r in rows] == [1, 2, 3]
