"""The parallel runner and its params-keyed JSON result cache."""

import json

from repro.analysis import registry
from repro.analysis.runner import ExperimentRunner

# Shrunk parameters so running *every* registered experiment stays fast;
# both runner invocations use the same overrides, so the cache contract
# (second run executes nothing, results byte-identical) is exercised for
# the full registry exactly as `repro run --all --cache` would.
SHRUNK = {
    "e01": {"max_h": 3, "schedule_h": 2, "sources_cap": 4},
    "e02": {"n_values": (4, 9)},
    "e05": {"max_m": 4},
    "e09": {"n_values": (3, 4), "sources_cap": 4},
    "e10": {"n_values": (2, 6, 10)},
    "e12": {"cases": ((3, 7, (2, 4)),), "sources_cap": 4},
    "e13": {"ks": (3,), "n_values": (8,)},
    "e14": {"n": 8},
    "e15": {"cases": ((8, 3),)},
    "e16": {"n_values": (4, 6)},
    "e17": {"cases": ((4, 2),)},
    "e18": {"cases": ((2, 8, (3,)),)},
    "e19": {"failure_counts": (1, 2), "trials": 5},
    "e20": {"cases": ((2, 6, (2,)),), "sources_cap": 4},
    "e21": {"n": 8, "flit_sizes": (1, 4)},
}


def _snapshot(cache_dir):
    return {p.name: p.read_bytes() for p in sorted(cache_dir.glob("*.json"))}


class TestCache:
    def test_second_full_run_is_pure_cache_read(self, tmp_path):
        names = registry.experiment_ids()

        first = ExperimentRunner(cache_dir=tmp_path)
        results1 = first.run(names, overrides=SHRUNK)
        assert first.stats.executed == len(names)
        assert first.stats.cache_hits == 0
        assert first.stats.cache_misses == len(names)
        assert all(not r.cached for r in results1)
        files1 = _snapshot(tmp_path)
        assert len(files1) == len(names)

        second = ExperimentRunner(cache_dir=tmp_path)
        results2 = second.run(names, overrides=SHRUNK)
        # zero experiment executions the second time around
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(names)
        assert all(r.cached for r in results2)
        # byte-identical cache contents, identical rows
        assert _snapshot(tmp_path) == files1
        for r1, r2 in zip(results1, results2):
            assert r1.name == r2.name
            assert r1.rows == r2.rows
            assert r1.digest == r2.digest

    def test_cache_entry_is_json_with_provenance(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        (result,) = runner.run(["e04"])
        path = tmp_path / f"e04-{result.digest}.json"
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "e04"
        assert payload["digest"] == result.digest
        assert payload["rows"] == result.rows

    def test_cache_entry_bytes_are_sorted_and_columns_preserved(self, tmp_path):
        """RL002 regression: the entry is written sort_keys=True, and row
        column order (table semantics) survives the sorted round-trip via
        the explicit ``columns`` record."""
        runner = ExperimentRunner(cache_dir=tmp_path)
        (result,) = runner.run(["e04"])
        path = tmp_path / f"e04-{result.digest}.json"
        raw = path.read_text()
        payload = json.loads(raw)
        assert list(payload) == sorted(payload)
        assert payload["columns"] == [list(row) for row in result.rows]
        warm = ExperimentRunner(cache_dir=tmp_path)
        (again,) = warm.run(["e04"])
        assert again.cached
        assert [list(row) for row in again.rows] == payload["columns"]

    def test_entry_with_desynced_columns_treated_as_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        (result,) = runner.run(["e04"])
        path = tmp_path / f"e04-{result.digest}.json"
        payload = json.loads(path.read_text())
        payload["columns"] = payload["columns"][:-1]
        path.write_text(json.dumps(payload))
        runner2 = ExperimentRunner(cache_dir=tmp_path)
        (again,) = runner2.run(["e04"])
        assert runner2.stats.executed == 1
        assert again.rows == result.rows

    def test_changed_params_miss_the_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run(["e05"], overrides={"e05": {"max_m": 3}})
        assert runner.stats.executed == 1
        runner.run(["e05"], overrides={"e05": {"max_m": 4}})
        assert runner.stats.executed == 2
        runner.run(["e05"], overrides={"e05": {"max_m": 3}})
        assert runner.stats.executed == 2 and runner.stats.cache_hits == 1

    def test_corrupt_entry_reruns(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        (result,) = runner.run(["e04"])
        path = tmp_path / f"e04-{result.digest}.json"
        payload = json.loads(path.read_text())
        payload["digest"] = "0" * 16
        path.write_text(json.dumps(payload))
        runner2 = ExperimentRunner(cache_dir=tmp_path)
        (again,) = runner2.run(["e04"])
        assert runner2.stats.executed == 1
        assert again.rows == result.rows

    def test_truncated_entry_treated_as_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        (result,) = runner.run(["e04"])
        path = tmp_path / f"e04-{result.digest}.json"
        path.write_text(path.read_text()[: 40])  # simulate interrupted write
        runner2 = ExperimentRunner(cache_dir=tmp_path)
        (again,) = runner2.run(["e04"])
        assert runner2.stats.executed == 1
        assert again.rows == result.rows
        # and the entry has healed
        runner3 = ExperimentRunner(cache_dir=tmp_path)
        runner3.run(["e04"])
        assert runner3.stats.executed == 0

    def test_clean_cache(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run(["e04", "e06"])
        assert runner.clean_cache() == 2
        assert runner.clean_cache() == 0

    def test_clean_cache_spares_foreign_json(self, tmp_path):
        foreign = tmp_path / "results.json"
        foreign.write_text("{}")
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run(["e04"])
        assert runner.clean_cache() == 1
        assert foreign.exists()

    def test_no_cache_dir_always_executes(self):
        runner = ExperimentRunner()
        runner.run(["e04"])
        runner.run(["e04"])
        assert runner.stats.executed == 2
        assert runner.stats.cache_hits == 0 and runner.stats.cache_misses == 0


class TestCodeVersionInCacheKey:
    """Editing an experiment's body must invalidate its cache entries —
    the params hash alone cannot see code changes (PR 4 bugfix)."""

    def test_params_digest_folds_in_code(self):
        params = {"a": 1}
        base = registry.params_digest("e04", params, code="aaaa")
        assert registry.params_digest("e04", params, code="bbbb") != base
        assert registry.params_digest("e04", params, code="aaaa") == base

    def test_code_digest_tracks_source(self, tmp_path):
        import importlib.util
        import sys

        def load(body: str, stem: str):
            # one file per version: rewriting in place can dodge
            # linecache's size+mtime staleness check on coarse-mtime
            # filesystems and serve the old source to inspect.getsource
            module_path = tmp_path / f"{stem}.py"
            module_path.write_text(
                "def fake_experiment(*, n=3):\n" f"    return [{body}]\n"
            )
            spec = importlib.util.spec_from_file_location(
                "fake_experiment_mod", module_path
            )
            mod = importlib.util.module_from_spec(spec)
            sys.modules["fake_experiment_mod"] = mod
            spec.loader.exec_module(mod)
            return registry.ExperimentSpec(
                name="efake", title="fake", fn=mod.fake_experiment
            )

        try:
            digest_v1 = registry.code_digest(load('{"v": 1}', "mod_v1"))
            assert digest_v1 == registry.code_digest(load('{"v": 1}', "mod_v1b"))
            digest_v2 = registry.code_digest(load('{"v": 2}', "mod_v2"))
            assert digest_v2 != digest_v1
        finally:
            sys.modules.pop("fake_experiment_mod", None)

    def test_changed_code_digest_misses_cache(self, tmp_path, monkeypatch):
        runner = ExperimentRunner(cache_dir=tmp_path)
        runner.run(["e04"])
        assert runner.stats.executed == 1

        warm = ExperimentRunner(cache_dir=tmp_path)
        warm.run(["e04"])
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 1

        # simulate an edited experiment body: the code digest changes, so
        # the stale entry must not be served
        monkeypatch.setattr(registry, "code_digest", lambda spec: "f" * 16)
        stale = ExperimentRunner(cache_dir=tmp_path)
        stale.run(["e04"])
        assert stale.stats.executed == 1 and stale.stats.cache_hits == 0


class TestParallel:
    def test_parallel_results_match_sequential(self, tmp_path):
        names = ["e02", "e04", "e06", "e08"]
        seq = ExperimentRunner(jobs=1).run(names)
        par = ExperimentRunner(jobs=4).run(names)
        assert [r.name for r in par] == names  # request order preserved
        for r_seq, r_par in zip(seq, par):
            assert r_seq.rows == r_par.rows

    def test_parallel_populates_cache(self, tmp_path):
        runner = ExperimentRunner(jobs=2, cache_dir=tmp_path)
        runner.run(["e02", "e04"])
        assert runner.stats.executed == 2
        warm = ExperimentRunner(cache_dir=tmp_path)
        warm.run(["e02", "e04"])
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 2

    def test_bad_jobs_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)
