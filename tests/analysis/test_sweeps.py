"""Tests for the sweep/series CSV artifacts."""

import csv
import os

import pytest

from repro.analysis.sweeps import (
    asymptotic_ratio_series,
    degree_series,
    export_all_series,
    write_csv,
)
from repro.types import InvalidParameterError


class TestSeries:
    def test_degree_series_sandwich(self):
        for k in (2, 3, 4):
            for row in degree_series(k, range(6, 60, 6)):
                assert row["lower_bound"] <= row["delta_analytic"] <= row["upper_bound"]
                assert row["delta_optimized"] <= row["delta_analytic"]
                assert row["delta_analytic"] <= row["hypercube_degree"]

    def test_ratio_series_bounded_by_paper_coefficient(self):
        """Corollary 2: Δ = Θ(ᵏ√n) — the measured ratio never exceeds the
        (2k−1) coefficient of Theorem 7 (k ≥ 3) and stays bounded."""
        for k in (3, 4, 5):
            rows = asymptotic_ratio_series(k, range(8, 128, 8))
            assert rows
            for row in rows:
                assert row["ratio"] <= row["paper_coefficient"] + 1e-9

    def test_improved_k3_column_present(self):
        rows = degree_series(3, [32, 64])
        assert all("delta_improved_k3" in r for r in rows)

    def test_small_n_skipped(self):
        assert degree_series(4, [3, 4]) == []


class TestCsv:
    def test_write_and_readback(self, tmp_path):
        rows = degree_series(2, [8, 16, 24])
        path = str(tmp_path / "series.csv")
        count = write_csv(rows, path)
        assert count == 3
        with open(path) as fh:
            back = list(csv.DictReader(fh))
        assert len(back) == 3
        assert int(back[0]["n"]) == 8

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            write_csv([], str(tmp_path / "x.csv"))

    def test_export_all(self, tmp_path):
        written = export_all_series(str(tmp_path), max_n=32)
        assert len(written) == 8  # 2 files × 4 k values
        for name, count in written.items():
            assert count > 0
            assert os.path.exists(tmp_path / name)
