"""The warm campaign path: pre-built scenario caches, recycled workers.

Two contracts: the pool initializer actually pre-warms the per-process
scenario caches (hit counters prove the execution path found them), and
neither worker count nor worker recycling can change a campaign's
bytes.
"""

import pytest

from repro.analysis.campaigns import (
    CampaignRunner,
    CampaignSpec,
    artifact_path,
    run_campaign_shard,
)
from repro.analysis.scenarios import (
    cached_construct,
    cached_graph,
    clear_scenario_caches,
    scenario_cache_info,
    warm_scenario_caches,
)
from repro.types import InvalidParameterError

# Mixed scheme + registry schedulers over one sparse-hypercube spec so a
# single run exercises both instance caches.
WARM = CampaignSpec(
    name="warm-test",
    title="warm cache grid",
    graphs=("sparse:4:2",),
    schedulers=("scheme", "greedy"),
    k_values=(2,),
    sources=("first",),
    conditions=("none", "edge-faults:1"),
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_scenario_caches()
    yield
    clear_scenario_caches()


class TestWarmScenarioCaches:
    def test_prewarms_both_instance_caches(self):
        warm_scenario_caches((("hypercube:3", False), ("sparse:4:2", True)))
        info = scenario_cache_info()
        assert info["graph_entries"] == 1
        assert info["construct_entries"] == 1
        assert info["graph_misses"] == 1 and info["construct_misses"] == 1
        assert info["graph_hits"] == 0 and info["construct_hits"] == 0

    def test_lookups_after_warming_hit(self):
        warm_scenario_caches((("hypercube:3", False), ("sparse:4:2", True)))
        g1 = cached_graph("hypercube:3")
        g2 = cached_graph("hypercube:3")
        sh1 = cached_construct("sparse:4:2")
        sh2 = cached_construct("sparse:4:2")
        assert g1 is g2 and sh1 is sh2
        info = scenario_cache_info()
        assert info["graph_hits"] == 2
        assert info["construct_hits"] == 2

    def test_idempotent(self):
        pairs = (("sparse:4:2", True),)
        warm_scenario_caches(pairs)
        warm_scenario_caches(pairs)
        info = scenario_cache_info()
        assert info["construct_entries"] == 1
        assert info["construct_misses"] == 1


class TestCampaignRunsWarm:
    def test_serial_campaign_executes_on_warm_instances(self, tmp_path):
        run_campaign_shard(WARM, shard=(0, 1), out_dir=tmp_path, jobs=1)
        info = scenario_cache_info()
        # the initializer pays the misses; every scenario then hits
        assert info["construct_entries"] == 1
        assert info["construct_hits"] > 0
        assert info["graph_hits"] > 0
        assert info["construct_misses"] == 1
        assert info["graph_misses"] == 1


class TestWorkerConfigDeterminism:
    def test_maxtasksperchild_does_not_change_bytes(self, tmp_path):
        ref, recycled = tmp_path / "ref", tmp_path / "recycled"
        run_campaign_shard(WARM, shard=(0, 1), out_dir=ref, jobs=1)
        run_campaign_shard(
            WARM, shard=(0, 1), out_dir=recycled, jobs=2, maxtasksperchild=1
        )
        assert (
            artifact_path(ref, WARM).read_bytes()
            == artifact_path(recycled, WARM).read_bytes()
        )

    def test_maxtasksperchild_validated(self):
        with pytest.raises(InvalidParameterError, match="maxtasksperchild"):
            CampaignRunner(maxtasksperchild=0)
        CampaignRunner(maxtasksperchild=1)  # boundary accepted
