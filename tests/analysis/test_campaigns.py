"""Campaign expansion, sharding, the scenario cache, and merge determinism."""

import json

import pytest

from repro.analysis import campaigns
from repro.analysis.campaigns import (
    BUILTIN_CAMPAIGNS,
    CampaignRunner,
    CampaignSpec,
    artifact_path,
    campaign_digest,
    expand_campaign,
    load_campaign,
    merge_chunks,
    parse_shard,
    run_campaign_shard,
    shard_scenarios,
)
from repro.graphs.specs import parse_spec
from repro.types import InvalidParameterError

# A deliberately tiny grid so the execution tests stay fast.
TINY = CampaignSpec(
    name="tiny-test",
    title="tiny test grid",
    graphs=("hypercube:3", "path:8"),
    schedulers=("greedy",),
    k_values=(2, None),
    sources=("first",),
    conditions=("none", "edge-faults:1"),
)


class TestExpansion:
    def test_grid_size_and_indices(self):
        scenarios = expand_campaign(TINY)
        assert len(scenarios) == TINY.n_scenarios == 2 * 1 * 2 * 1 * 2
        assert [sc.index for sc in scenarios] == list(range(len(scenarios)))
        assert len({sc.scenario_id for sc in scenarios}) == len(scenarios)

    def test_seeds_are_deterministic_and_distinct(self):
        first = [sc.seed for sc in expand_campaign(TINY)]
        second = [sc.seed for sc in expand_campaign(TINY)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_seed_independent_of_shard_layout(self):
        scenarios = expand_campaign(TINY)
        sharded = shard_scenarios(scenarios, (1, 3))
        for sc in sharded:
            assert sc.seed == scenarios[sc.index].seed

    def test_bad_axis_rejected_at_expansion(self):
        bad = CampaignSpec(
            name="bad", title="bad", graphs=("nope:1",), schedulers=("greedy",)
        )
        with pytest.raises(InvalidParameterError):
            expand_campaign(bad)

    def test_empty_axis_rejected(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(name="x", title="x", graphs=(), schedulers=("greedy",))


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard("2/5") == (2, 5)

    @pytest.mark.parametrize("bad", ["x", "1", "2/2", "3/2", "-1/2", "1/0", "a/b"])
    def test_parse_shard_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_shard(bad)

    def test_shards_partition_the_grid(self):
        scenarios = expand_campaign(TINY)
        for m in (1, 2, 3, 8):
            shards = [shard_scenarios(scenarios, (i, m)) for i in range(m)]
            indices = sorted(sc.index for shard in shards for sc in shard)
            assert indices == [sc.index for sc in scenarios]


class TestBuiltins:
    def test_builtins_expand_clean(self):
        for spec in BUILTIN_CAMPAIGNS.values():
            scenarios = expand_campaign(spec)
            assert len(scenarios) == spec.n_scenarios

    def test_acceptance_coverage(self):
        """The PR's acceptance floor: >= 3 built-ins spanning >= 3 graph
        families, >= 2 schedulers, and >= 2 injected conditions."""
        assert len(BUILTIN_CAMPAIGNS) >= 3
        families = set()
        schedulers = set()
        condition_kinds = set()
        for spec in BUILTIN_CAMPAIGNS.values():
            families.update(parse_spec(g)[0] for g in spec.graphs)
            schedulers.update(spec.schedulers)
            condition_kinds.update(
                c.partition(":")[0] for c in spec.conditions if c != "none"
            )
        assert len(families) >= 3
        assert len(schedulers) >= 2
        assert {"edge-faults", "congestion"} <= condition_kinds

    def test_load_campaign_by_name(self):
        assert load_campaign("paper-grid") is BUILTIN_CAMPAIGNS["paper-grid"]

    def test_load_campaign_unknown(self):
        with pytest.raises(InvalidParameterError):
            load_campaign("nope")


class TestJsonSpecs:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(
            json.dumps(
                {
                    "name": "custom",
                    "graphs": ["hypercube:3"],
                    "schedulers": ["greedy"],
                    "k_values": [2, None],
                    "conditions": ["none", "congestion:2"],
                }
            )
        )
        spec = load_campaign(str(path))
        assert spec.name == "custom"
        assert spec.k_values == (2, None)
        assert spec.sources == ("sample:16",)  # default
        assert spec.n_scenarios == 4

    @pytest.mark.parametrize(
        "payload",
        [
            {"graphs": ["hypercube:3"], "schedulers": ["greedy"]},  # no name
            {"name": 5, "graphs": ["hypercube:3"], "schedulers": ["greedy"]},
            {"name": "x", "schedulers": ["greedy"]},  # no graphs
            {"name": "x", "graphs": ["bogus:1"], "schedulers": ["greedy"]},
            {"name": "x", "graphs": ["hypercube:3"], "schedulers": ["nope"]},
            {
                "name": "x",
                "graphs": ["hypercube:3"],
                "schedulers": ["greedy"],
                "k_values": ["two"],
            },
            {
                "name": "x",
                "graphs": ["hypercube:3"],
                "schedulers": ["greedy"],
                "surprise": 1,
            },
        ],
    )
    def test_malformed_specs_rejected(self, tmp_path, payload):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(InvalidParameterError):
            load_campaign(str(path))

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(InvalidParameterError):
            load_campaign(str(path))


class TestMergeDeterminism:
    def test_sharded_merge_byte_identical_to_single_shot(self, tmp_path):
        single, sharded = tmp_path / "single", tmp_path / "sharded"
        run_campaign_shard(TINY, shard=(0, 1), out_dir=single)
        run_campaign_shard(TINY, shard=(0, 2), out_dir=sharded)
        run_campaign_shard(TINY, shard=(1, 2), out_dir=sharded)
        merged, rows = merge_chunks(TINY, sharded)
        assert len(rows) == TINY.n_scenarios
        assert merged.read_bytes() == artifact_path(single, TINY).read_bytes()

    def test_jobs_do_not_change_bytes(self, tmp_path):
        seq, par = tmp_path / "seq", tmp_path / "par"
        run_campaign_shard(TINY, shard=(0, 1), out_dir=seq, jobs=1)
        run_campaign_shard(TINY, shard=(0, 1), out_dir=par, jobs=2)
        assert (
            artifact_path(seq, TINY).read_bytes()
            == artifact_path(par, TINY).read_bytes()
        )

    def test_merge_missing_shard_fails(self, tmp_path):
        run_campaign_shard(TINY, shard=(0, 2), out_dir=tmp_path)
        with pytest.raises(InvalidParameterError, match="missing scenario"):
            merge_chunks(TINY, tmp_path)

    def test_merge_mixed_layouts_fails(self, tmp_path):
        run_campaign_shard(TINY, shard=(0, 2), out_dir=tmp_path)
        run_campaign_shard(TINY, shard=(0, 3), out_dir=tmp_path)
        with pytest.raises(InvalidParameterError, match="mixed shard layouts"):
            merge_chunks(TINY, tmp_path)

    def test_merge_no_chunks_fails(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no chunks"):
            merge_chunks(TINY, tmp_path)

    def test_merge_refuses_chunks_from_older_code(self, tmp_path, monkeypatch):
        run_campaign_shard(TINY, shard=(0, 2), out_dir=tmp_path)
        run_campaign_shard(TINY, shard=(1, 2), out_dir=tmp_path)
        monkeypatch.setattr(campaigns, "scenarios_code_digest", lambda: "f" * 16)
        with pytest.raises(InvalidParameterError, match="digest"):
            merge_chunks(TINY, tmp_path)

    def test_merge_refuses_rows_from_another_grid(self, tmp_path):
        run_campaign_shard(TINY, shard=(0, 2), out_dir=tmp_path)
        run_campaign_shard(TINY, shard=(1, 2), out_dir=tmp_path)
        # tamper one row's identity: a stale chunk from an edited grid
        chunk = tmp_path / "tiny-test-shard0of2.jsonl"
        lines = chunk.read_text().splitlines()
        row = json.loads(lines[0])
        row["seed"] += 1
        lines[0] = json.dumps(row, sort_keys=True, separators=(",", ":"))
        chunk.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(InvalidParameterError, match="stale chunk row"):
            merge_chunks(TINY, tmp_path)


class TestManifestDeterminism:
    """Regression for the unsorted-JSON manifest/cache writes (RL002):
    two runs of the same campaign must produce byte-identical artifacts
    once wall-clock duration fields are normalized out."""

    @staticmethod
    def _normalized_bytes(path):
        payload = json.loads(path.read_text())
        payload["seconds"] = 0
        for sc in payload["scenarios"]:
            sc["seconds"] = 0
        # re-dump in the writer's exact format: if key order ever became
        # insertion-dependent again, these strings would diverge
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    def test_two_runs_produce_byte_identical_manifests(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        run_campaign_shard(TINY, shard=(0, 1), out_dir=a)
        run_campaign_shard(TINY, shard=(0, 1), out_dir=b)
        ma = campaigns.manifest_path(a, TINY, (0, 1))
        mb = campaigns.manifest_path(b, TINY, (0, 1))
        assert self._normalized_bytes(ma) == self._normalized_bytes(mb)

    def test_manifest_keys_are_sorted(self, tmp_path):
        run_campaign_shard(TINY, shard=(0, 1), out_dir=tmp_path)
        mpath = campaigns.manifest_path(tmp_path, TINY, (0, 1))
        payload = json.loads(mpath.read_text())
        assert list(payload) == sorted(payload)
        assert all(list(sc) == sorted(sc) for sc in payload["scenarios"])

    def test_cache_entries_are_byte_identical_across_runs(self, tmp_path):
        out_a, out_b = tmp_path / "oa", tmp_path / "ob"
        cache_a, cache_b = tmp_path / "ca", tmp_path / "cb"
        run_campaign_shard(TINY, shard=(0, 1), out_dir=out_a, cache_dir=cache_a)
        run_campaign_shard(TINY, shard=(0, 1), out_dir=out_b, cache_dir=cache_b)
        names_a = sorted(p.name for p in cache_a.rglob("*.json"))
        names_b = sorted(p.name for p in cache_b.rglob("*.json"))
        assert names_a == names_b and names_a
        for name_a, name_b in zip(names_a, names_b):
            entry_a = next(cache_a.rglob(name_a)).read_bytes()
            entry_b = next(cache_b.rglob(name_b)).read_bytes()
            assert entry_a == entry_b, name_a


class TestFailureResume:
    def test_failure_caches_completed_scenarios(self, tmp_path, monkeypatch):
        from repro.analysis.campaigns import CampaignExecutionError
        from repro.analysis.scenarios import run_scenario as real_run

        cache = tmp_path / "cache"
        fail_index = TINY.n_scenarios - 1

        def flaky(sc):
            if sc.index == fail_index:
                raise RuntimeError("injected failure")
            return real_run(sc)

        monkeypatch.setattr(campaigns, "run_scenario", flaky)
        runner = CampaignRunner(cache_dir=cache)
        with pytest.raises(CampaignExecutionError, match="injected failure"):
            runner.run(TINY)
        # every scenario that completed before the failure is cached ...
        assert runner.stats.executed == TINY.n_scenarios - 1
        monkeypatch.setattr(campaigns, "run_scenario", real_run)
        resumed = CampaignRunner(cache_dir=cache)
        outcomes = resumed.run(TINY)
        # ... so the fixed re-run executes only the failed scenario
        assert resumed.stats.executed == 1
        assert resumed.stats.cache_hits == TINY.n_scenarios - 1
        assert len(outcomes) == TINY.n_scenarios


class TestScenarioCache:
    def test_second_run_is_pure_cache_read(self, tmp_path):
        cache = tmp_path / "cache"
        first = CampaignRunner(cache_dir=cache)
        rows1 = [o.row for o in first.run(TINY)]
        assert first.stats.executed == TINY.n_scenarios
        second = CampaignRunner(cache_dir=cache)
        outcomes = second.run(TINY)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == TINY.n_scenarios
        assert all(o.cached for o in outcomes)
        assert [o.row for o in outcomes] == rows1

    def test_cache_entries_use_runner_naming(self, tmp_path):
        cache = tmp_path / "cache"
        CampaignRunner(cache_dir=cache).run(TINY)
        names = sorted(p.name for p in cache.glob("*.json"))
        assert len(names) == TINY.n_scenarios
        assert all(n.startswith("campaign-tiny-test-s") for n in names)
        # clean-cache's <prefix>-<16-hex>.json contract
        from repro.analysis.runner import ExperimentRunner

        assert ExperimentRunner(cache_dir=cache).clean_cache() == TINY.n_scenarios

    def test_code_digest_invalidates_cache(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        CampaignRunner(cache_dir=cache).run(TINY)
        monkeypatch.setattr(campaigns, "scenarios_code_digest", lambda: "f" * 16)
        runner = CampaignRunner(cache_dir=cache)
        runner.run(TINY)
        assert runner.stats.executed == TINY.n_scenarios  # all stale

    def test_campaign_digest_tracks_axes_and_code(self, monkeypatch):
        base = campaign_digest(TINY)
        changed = CampaignSpec(
            name=TINY.name,
            title=TINY.title,
            graphs=TINY.graphs + ("star:5",),
            schedulers=TINY.schedulers,
        )
        assert campaign_digest(changed) != base
        monkeypatch.setattr(campaigns, "scenarios_code_digest", lambda: "f" * 16)
        assert campaign_digest(TINY) != base
