"""Integration tests: every experiment regenerates its paper artifact.

These are the executable form of EXPERIMENTS.md — each test asserts the
"match" column of its experiment, i.e. that our measurement agrees with
what the paper states (or draws in a figure).
"""

import pytest

from repro.analysis.experiments import (
    experiment_e01_theorem1,
    experiment_e02_lower_bounds,
    experiment_e04_labelings,
    experiment_e05_lambda_m,
    experiment_e06_g42,
    experiment_e07_g153,
    experiment_e08_fig4,
    experiment_e09_broadcast2,
    experiment_e10_theorem5,
    experiment_e11_rec742,
    experiment_e12_broadcastk,
    experiment_e13_theorem7,
    experiment_e14_topology_compare,
    experiment_e15_congestion,
    experiment_e16_baseline_k1,
)


class TestE01Theorem1:
    def test_structure_and_schedules(self):
        rows = experiment_e01_theorem1(max_h=4, schedule_h=4, sources_cap=6)
        for row in rows:
            assert row["Δ (≤3)"] <= 3
            assert row["diam (≤2h)"] <= 2 * row["h"]
            assert row["N=3·2^h−2"] == 3 * 2 ** row["h"] - 2
            assert row["min-time verified"]

    def test_threshold_matches_family(self):
        rows = experiment_e01_theorem1(max_h=5, schedule_h=0)
        for row in rows:
            assert row["thm1 min k for N"] == row["k=2h"]


class TestE02LowerBounds:
    def test_monotone_in_k(self):
        rows = experiment_e02_lower_bounds(n_values=(16, 36, 64))
        for row in rows:
            assert row["k=1 (Δ≥n)"] >= row["k=2 thm2"]
            assert row["k=2 thm2"] >= row["k=3 thm2"] >= row["k=4 thm2"]

    def test_ball_dominates_closed_form(self):
        rows = experiment_e02_lower_bounds(n_values=(25, 49))
        for row in rows:
            for k in (2, 3, 4):
                assert row[f"k={k} ball"] >= row[f"k={k} thm2"]


class TestE04E05Labelings:
    def test_example1_rows_all_match(self):
        for row in experiment_e04_labelings():
            assert row["Condition A"]
        rows = experiment_e04_labelings()
        assert rows[0]["labels"] == 2 and rows[0]["optimal λ_m"] == 2
        assert rows[1]["labels"] == 4 and rows[1]["optimal λ_m"] == 4

    def test_lemma2_sandwich(self):
        for row in experiment_e05_lambda_m(max_m=8, exact_max_m=4):
            assert row["Lemma2 lower ⌊m/2⌋+1"] <= row["constructed labels"]
            assert row["constructed labels"] <= row["upper m+1"]

    def test_exact_matches_constructed_when_hamming(self):
        rows = experiment_e05_lambda_m(max_m=4, exact_max_m=4)
        by_m = {r["m"]: r for r in rows}
        assert by_m[3]["exact λ_m"] == 4 == by_m[3]["constructed labels"]
        assert by_m[2]["exact λ_m"] == 2 == by_m[2]["constructed labels"]
        # m=4: tiling is optimal
        assert by_m[4]["exact λ_m"] == 4 == by_m[4]["constructed labels"]


@pytest.mark.parametrize(
    "experiment",
    [
        experiment_e06_g42,
        experiment_e07_g153,
        experiment_e08_fig4,
        experiment_e11_rec742,
    ],
)
def test_match_column_experiments(experiment):
    """E06, E07, E08, E11 all carry an explicit paper-vs-measured match."""
    for row in experiment():
        assert row["match"], row


class TestE09E12Schemes:
    def test_broadcast2_sweep_valid(self):
        rows = experiment_e09_broadcast2(n_values=(3, 4, 5, 6), sources_cap=8)
        assert rows
        for row in rows:
            assert row["valid (≤2)"]
            assert row["max call len"] <= 2

    def test_broadcastk_sweep_valid(self):
        rows = experiment_e12_broadcastk(
            cases=((3, 7, (2, 4)), (4, 9, (2, 4, 6))), sources_cap=6
        )
        for row in rows:
            assert row["valid (≤k)"]
            assert row["max call len"] <= row["k"]


class TestE10E13Bounds:
    def test_theorem5_rows(self):
        for row in experiment_e10_theorem5(n_values=tuple(range(2, 40, 3))):
            assert row["Δ ≤ bound"]
            assert row["Δ measured"] >= row["lower ⌈√n⌉"]
            assert row["Δ measured"] <= row["Δ(Q_n)"]

    def test_theorem7_rows(self):
        rows = experiment_e13_theorem7(ks=(3, 4), n_values=(8, 16, 24))
        for row in rows:
            assert row["Δ ≤ bound"]
            if isinstance(row["Δ optimized"], int):
                assert row["Δ optimized"] <= row["Δ analytic"]


class TestE14E15E16Context:
    def test_topology_table_has_sparse_winner(self):
        rows = experiment_e14_topology_compare(n=9)
        by_name = {r["topology"]: r for r in rows}
        q = by_name["Q_9 (1-mlbg)"]
        sparse = next(r for name, r in by_name.items() if name.startswith("sparse k=2"))
        assert sparse["Δ"] < q["Δ"]
        assert sparse["N"] == q["N"]

    def test_congestion_rows(self):
        rows = experiment_e15_congestion(cases=((8, 3),))
        row = rows[0]
        assert row["peak edge load (valid sched)"] == 1
        assert row["solo rejections @b=1"] == 0
        assert row["merged 2-src min bandwidth"] >= 2
        assert row["merged conflicting edge-slots @b=1"] > 0

    def test_baseline_rows(self):
        for row in experiment_e16_baseline_k1(n_values=(4, 6)):
            assert row["Q_n binomial valid @k=1"]
            assert not row["sparse sched valid @k=1"]
            assert row["sparse sched valid @k=2"]
            assert row["sparse Δ"] <= row["Δ(Q_n)"]


class TestExtensionExperiments:
    """E17–E22: the beyond-the-paper experiments (§5 directions)."""

    def test_e17_gossip_rows(self):
        from repro.analysis.experiments import experiment_e17_gossip

        rows = experiment_e17_gossip(cases=((4, 2), (6, 3)))
        for row in rows:
            assert row["Q_n valid+complete"] and row["sparse valid+complete"]
            assert row["sparse rounds (k=3)"] >= row["Q_n rounds (k=1)"]

    def test_e18_diameter_rows(self):
        from repro.analysis.experiments import experiment_e18_diameter

        rows = experiment_e18_diameter(cases=((2, 8, (3,)), (3, 8, (2, 5))))
        for row in rows:
            assert row["within bound"]
            assert row["diam(G)"] >= row["diam(Q_n)=n"]

    def test_e19_fault_rows(self):
        from repro.analysis.experiments import experiment_e19_faults

        rows = experiment_e19_faults(failure_counts=(1, 4, 16), trials=15)
        rates = [r["repair rate"] for r in rows]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        for row in rows:
            assert row["repaired & valid"] == row["repaired"]

    def test_e20_vertex_disjoint_rows(self):
        from repro.analysis.experiments import experiment_e20_vertex_disjoint

        rows = experiment_e20_vertex_disjoint(cases=((2, 6, (2,)),), sources_cap=4)
        assert rows[0]["minimum time"]
        assert not rows[-1]["minimum time"]  # the tree contrast row

    def test_e21_wormhole_rows(self):
        from repro.analysis.experiments import experiment_e21_wormhole

        rows = experiment_e21_wormhole(n=8, flit_sizes=(1, 16))
        q_key = "Q_n cycles (Δ=10)"
        # column label carries n=10 in the default; with n=8 find dynamically
        q_key = next(k for k in rows[0] if k.startswith("Q_n cycles"))
        s_key = next(k for k in rows[0] if k.startswith("sparse k=2"))
        small, large = rows[0], rows[-1]
        assert small[s_key] / small[q_key] > large[s_key] / large[q_key]

    def test_e22_multimessage_rows(self):
        from repro.analysis.experiments import experiment_e22_multimessage

        rows = experiment_e22_multimessage()
        q3 = next(r for r in rows if r["instance"].startswith("Q_3"))
        assert q3["rounds"].startswith("5")
        assert q3["lower bound"] == 5
