"""Regression tests for the source-sampling helper.

The seed implementation returned ``cap + 1`` sources whenever
``n_vertices - 1`` was appended after truncation; these tests pin the
fixed contract: never more than ``cap`` sources, endpoints always in.
"""

import pytest

from repro.analysis.common import sample_sources
from repro.analysis.experiments import _sample_sources
from repro.types import InvalidParameterError


class TestSampleSources:
    def test_small_n_returns_every_vertex(self):
        assert sample_sources(5, 8) == [0, 1, 2, 3, 4]
        assert sample_sources(8, 8) == list(range(8))
        assert sample_sources(1, 4) == [0]
        assert sample_sources(0, 4) == []

    def test_boundary_just_above_cap_respects_cap(self):
        # the regression case: n_vertices > cap by one
        srcs = sample_sources(13, 12)
        assert len(srcs) <= 12
        assert 0 in srcs and 12 in srcs

    def test_seed_bug_cases_respect_cap(self):
        # the exact shapes the experiments hit: the seed returned 13 and
        # 17 sources here (cap + 1)
        for n, cap in [(94, 12), (22, 12), (46, 12), (1 << 10, 16), (256, 16)]:
            srcs = sample_sources(n, cap)
            assert len(srcs) <= cap, (n, cap, srcs)
            assert srcs[0] == 0
            assert srcs[-1] == n - 1

    @pytest.mark.parametrize("n", [3, 10, 17, 64, 100, 1023, 4096])
    @pytest.mark.parametrize("cap", [2, 3, 8, 12, 16])
    def test_contract_sweep(self, n, cap):
        srcs = sample_sources(n, cap)
        assert len(srcs) <= max(cap, n if n <= cap else cap)
        assert len(set(srcs)) == len(srcs)
        assert srcs == sorted(srcs)
        assert all(0 <= s < n for s in srcs)
        assert 0 in srcs
        assert n - 1 in srcs
        if n > cap:
            assert len(srcs) <= cap

    def test_deterministic(self):
        assert sample_sources(1000, 10) == sample_sources(1000, 10)

    def test_cap_below_two_rejected_when_sampling_needed(self):
        with pytest.raises(InvalidParameterError):
            sample_sources(10, 1)
        # no sampling needed → no error
        assert sample_sources(1, 1) == [0]

    def test_legacy_private_alias(self):
        assert _sample_sources is sample_sources
