"""Scenario grammar, validation, and deterministic execution."""

import pytest

from repro.analysis.scenarios import (
    Scenario,
    parse_condition,
    parse_sources_policy,
    run_scenario,
    scenario_id,
    sources_for,
    validate_scenario,
)
from repro.types import InvalidParameterError


def make(
    graph="hypercube:3",
    scheduler="greedy",
    k=2,
    sources="sample:3",
    condition="none",
    seed=7,
    index=0,
):
    return Scenario(
        campaign="test",
        index=index,
        graph=graph,
        scheduler=scheduler,
        k=k,
        sources=sources,
        condition=condition,
        seed=seed,
    )


class TestGrammar:
    def test_condition_none(self):
        assert parse_condition("none") == ("none", 0)

    def test_condition_edge_faults(self):
        assert parse_condition("edge-faults:3") == ("edge-faults", 3)

    def test_condition_congestion_default_bandwidth(self):
        assert parse_condition("congestion") == ("congestion", 1)
        assert parse_condition("congestion:4") == ("congestion", 4)

    @pytest.mark.parametrize(
        "bad",
        ["none:1", "edge-faults", "edge-faults:x", "edge-faults:0", "bogus:2"],
    )
    def test_condition_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_condition(bad)

    def test_sources_policies(self):
        assert parse_sources_policy("first") == ("first", 0)
        assert parse_sources_policy("all") == ("all", 0)
        assert parse_sources_policy("sample:5") == ("sample", 5)
        assert parse_sources_policy("sample") == ("sample", 16)

    @pytest.mark.parametrize(
        "bad", ["first:1", "all:2", "sample:x", "sample:1", "most"]
    )
    def test_sources_rejects(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_sources_policy(bad)

    def test_sources_for(self):
        assert sources_for("first", 8) == [0]
        assert sources_for("all", 4) == [0, 1, 2, 3]
        sample = sources_for("sample:3", 100)
        assert len(sample) <= 3 and 0 in sample and 99 in sample

    def test_scenario_id_stable(self):
        sid = scenario_id("hypercube:3", "greedy", None, "first", "none")
        assert sid == "g=hypercube:3;s=greedy;k=inf;src=first;cond=none"


class TestValidation:
    def test_accepts_registry_scheduler(self):
        validate_scenario(make())

    def test_accepts_scheme_on_sparse(self):
        validate_scenario(make(graph="sparse:4:2", scheduler="scheme", k=None))

    def test_rejects_scheme_off_sparse(self):
        with pytest.raises(InvalidParameterError):
            validate_scenario(make(scheduler="scheme"))

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(InvalidParameterError):
            validate_scenario(make(scheduler="bogus"))

    def test_rejects_bad_graph_spec(self):
        with pytest.raises(InvalidParameterError):
            validate_scenario(make(graph="nope:3"))
        with pytest.raises(InvalidParameterError):
            validate_scenario(make(graph="hypercube:3:9:9"))

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            validate_scenario(make(k=0))


class TestExecution:
    def test_rows_are_deterministic(self):
        sc = make()
        assert run_scenario(sc) == run_scenario(sc)

    def test_row_is_json_scalars(self):
        import json

        row = run_scenario(make())
        assert json.loads(json.dumps(row)) == row
        assert row["n_sources"] == 3
        assert row["found"] == row["valid"] == 3
        assert row["rounds_min"] == row["rounds_max"] == 3  # ceil(log2 8)

    def test_edge_faults_row_reports_survivor(self):
        row = run_scenario(make(k=None, condition="edge-faults:2"))
        assert row["failed_edges"] == 2
        assert row["survivor_edges"] == row["n_edges"] - 2
        assert isinstance(row["survivor_connected"], bool)

    def test_congestion_row_reports_profile(self):
        row = run_scenario(make(condition="congestion:1"))
        # a valid Definition-1 schedule never stacks calls on one edge
        assert row["peak_concurrency"] == 1
        assert row["min_bandwidth"] == 1
        assert row["rejected_calls"] == 0
        assert 0 < row["edge_utilization"] <= 1

    def test_scheme_all_sources_via_batch(self):
        row = run_scenario(
            make(graph="sparse:4:2", scheduler="scheme", k=None, sources="all")
        )
        assert row["n_sources"] == 16
        assert row["found"] == row["valid"] == 16
        assert row["rounds_min"] == row["rounds_max"] == 4
        assert row["n_cosets"] >= 1

    def test_scheme_fault_repair(self):
        row = run_scenario(
            make(
                graph="sparse:5:2",
                scheduler="scheme",
                k=None,
                sources="sample:4",
                condition="edge-faults:1",
            )
        )
        # repair rate is data, not a pass/fail: found <= sources, and every
        # repaired schedule must validate on the survivor graph
        assert 0 <= row["found"] <= row["n_sources"]
        assert row["valid"] == row["found"]

    def test_incompatible_scheduler_records_errors(self):
        # store_forward only accepts complete hypercubes: on a path the
        # scenario still yields a deterministic row, with errors counted
        row = run_scenario(make(graph="path:8", scheduler="store_forward", k=1))
        assert row["errors"] == row["n_sources"]
        assert row["found"] == 0

    def test_infeasible_k_yields_zero_found(self):
        # a path cannot broadcast in ceil(log2 N) rounds at k = 1; the
        # exact search certifies that as found = 0 with no errors
        row = run_scenario(make(graph="path:8", scheduler="search", k=1))
        assert row["found"] == 0
        assert row["errors"] == 0
