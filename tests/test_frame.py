"""Unit tests for the columnar schedule core (ScheduleFrame/ScheduleBuilder)
and the frozen-schedule contract (builder mutates, result doesn't)."""

import numpy as np
import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.frame import ScheduleBuilder, ScheduleFrame, as_frame, as_schedule
from repro.types import (
    Call,
    InvalidParameterError,
    InvalidScheduleError,
    Schedule,
)


def small_frame():
    b = ScheduleBuilder(0)
    b.add_round([(0, 1)])
    b.add_round([(0, 2), (1, 0, 3)])
    return b.build()


class TestScheduleBuilder:
    def test_shape_and_accessors(self):
        f = small_frame()
        assert (f.n_rounds, f.n_calls, f.n_items) == (2, 3, 7)
        assert f.call_counts().tolist() == [1, 2]
        assert f.call_lengths().tolist() == [1, 1, 2]
        assert f.callers().tolist() == [0, 0, 1]
        assert f.receivers().tolist() == [1, 2, 3]
        assert f.max_call_length() == 2
        assert f.round_paths(0) == [(0, 1)]
        assert f.round_paths(1) == [(0, 2), (1, 0, 3)]
        assert f.call_path(2) == (1, 0, 3)

    def test_empty_rounds_allowed(self):
        b = ScheduleBuilder(5)
        b.add_round([])
        b.add_round([(5, 6)])
        f = b.build()
        assert f.n_rounds == 2
        assert f.round_paths(0) == []
        assert f.call_counts().tolist() == [0, 1]

    def test_single_vertex_path_rejected(self):
        b = ScheduleBuilder(0)
        with pytest.raises(InvalidScheduleError):
            b.add_round([(0,)])

    def test_add_call_round_from_calls(self):
        b = ScheduleBuilder(0)
        b.add_call_round([Call.direct(0, 1), Call.via((0, 1, 2))])
        f = b.build()
        assert f.round_paths(0) == [(0, 1), (0, 1, 2)]


class TestScheduleFrame:
    def test_arrays_are_read_only(self):
        f = small_frame()
        for arr in (f.path_verts, f.call_offsets, f.round_offsets):
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_offset_invariants_enforced(self):
        with pytest.raises(InvalidParameterError):
            ScheduleFrame(0, np.array([0, 1]), np.array([0, 2]), np.array([1, 1]))
        with pytest.raises(InvalidParameterError):
            ScheduleFrame(0, np.array([0, 1]), np.array([0, 1]), np.array([0, 1]))
        with pytest.raises(InvalidScheduleError):
            # a call spanning a single vertex
            ScheduleFrame(0, np.array([0, 1, 2]), np.array([0, 2, 3]), np.array([0, 2]))

    def test_equality_and_hash(self):
        a, b = small_frame(), small_frame()
        assert a == b and hash(a) == hash(b)
        c = ScheduleBuilder(1)
        c.add_round([(1, 0)])
        assert a != c.build()

    def test_informed_after_matches_object_view(self):
        f = small_frame()
        s = as_schedule(f)
        for t in range(-f.n_rounds - 1, f.n_rounds + 2):
            assert f.informed_after(t) == s.informed_after(t), t
        # and the answer must not depend on whether rounds materialized
        lazy = as_schedule(f)
        before = {t: lazy.informed_after(t) for t in (-1, 0, 1)}
        _ = lazy.rounds  # force materialization
        assert before == {t: lazy.informed_after(t) for t in (-1, 0, 1)}

    def test_validated_frame_stays_picklable(self):
        """Validator caches (layout, per-graph screen state with weakrefs)
        must never leak into serialization."""
        import pickle

        from repro.api import build_graph, schedule

        result = schedule("hypercube:3", "store_forward")
        assert result.valid  # validation attached cached state to the frame
        clone = pickle.loads(pickle.dumps(result.frame))
        assert clone == result.frame
        with pytest.raises(ValueError):
            clone.path_verts[0] = 99  # still frozen after the round-trip
        sched_clone = pickle.loads(pickle.dumps(result.schedule))
        assert sched_clone == result.schedule

    def test_roundtrip_through_schedule(self):
        sh = construct_base(4, 2)
        sched = broadcast_schedule(sh, 3)
        frame = sched.to_frame()
        back = Schedule.from_frame(frame)
        assert back == sched
        assert back.to_frame() == frame
        assert as_frame(back) is frame  # cached on the frozen view

    def test_lazy_view_counts_without_rounds(self):
        frame = small_frame()
        view = Schedule.from_frame(frame)
        # counters are frame-served before any Round object exists
        assert view.num_rounds == 2
        assert view.num_calls == 3
        assert view.max_call_length() == 2
        assert view._rounds is None
        assert [len(r) for r in view] == [1, 2]  # materializes on demand
        assert view._rounds is not None


class TestFrozenSchedules:
    def test_freeze_blocks_all_mutation(self):
        s = Schedule(source=0)
        s.append_round([Call.direct(0, 1)])
        s.freeze()
        with pytest.raises(InvalidParameterError):
            s.append_round([Call.direct(1, 0)])
        with pytest.raises(InvalidParameterError):
            s.rounds = []
        with pytest.raises(InvalidParameterError):
            s.rounds[0] = s.rounds[0]
        with pytest.raises(InvalidParameterError):
            s.rounds.append(s.rounds[0])
        with pytest.raises(InvalidParameterError):
            del s.rounds[0]

    def test_copies_stay_mutable(self):
        s = Schedule(source=0)
        s.append_round([Call.direct(0, 1)])
        s.freeze()
        copy = Schedule(source=s.source, rounds=list(s.rounds))
        copy.append_round([Call.direct(1, 0)])
        assert copy.num_rounds == 2 and s.num_rounds == 1

    def test_scheduler_results_are_frozen(self):
        """Regression (satellite): a schedule returned by a scheduler must
        not be silently mutable after validation."""
        from repro.api import build_graph, schedule, validate

        result = schedule("hypercube:3", "search", k=1)
        sched = result.schedule
        assert sched.frozen and result.valid
        with pytest.raises(InvalidParameterError):
            sched.append_round([Call.direct(0, 1)])
        with pytest.raises(InvalidParameterError):
            sched.rounds.pop()
        # the validated verdict still holds because nothing could change
        assert validate(build_graph("hypercube:3"), sched, 1).ok

    def test_batch_engine_schedules_are_frozen(self):
        from repro.engine.batch import all_sources_schedules

        sh = construct_base(4, 2)
        stack = all_sources_schedules(sh, sources=[0, 1])[0]
        sched = stack.to_schedule(0)
        assert sched.frozen
        with pytest.raises(InvalidParameterError):
            sched.append_round([Call.direct(0, 1)])

    def test_greedy_and_legacy_results_frozen(self):
        from repro.graphs.trees import path_graph
        from repro.schedulers import legacy
        from repro.schedulers.greedy import heuristic_line_broadcast

        g = path_graph(8)
        kernel = heuristic_line_broadcast(g, 0, None, restarts=50, seed=0)
        old = legacy.heuristic_line_broadcast_legacy(g, 0, None, restarts=50, seed=0)
        for sched in (kernel, old):
            assert sched is not None and sched.frozen
            with pytest.raises(InvalidParameterError):
                sched.append_round([])
