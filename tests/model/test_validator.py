"""Unit tests for the Definition-1 validator — the repo's source of truth."""

import pytest

from repro.core.construct import construct_base
from repro.core.broadcast import broadcast_schedule
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph, star
from repro.model.validator import (
    assert_valid_broadcast,
    minimum_broadcast_rounds,
    validate_broadcast,
    validate_round,
    verify_k_mlbg_via_scheme,
)
from repro.types import Call, InvalidScheduleError, Round, Schedule


class TestMinimumRounds:
    def test_values(self):
        assert minimum_broadcast_rounds(1) == 0
        assert minimum_broadcast_rounds(2) == 1
        assert minimum_broadcast_rounds(3) == 2
        assert minimum_broadcast_rounds(16) == 4
        assert minimum_broadcast_rounds(17) == 5

    def test_rejects_zero(self):
        with pytest.raises(InvalidScheduleError):
            minimum_broadcast_rounds(0)


class TestRoundValidation:
    def setup_method(self):
        self.g = star(5)  # centre 0, leaves 1..4

    def test_valid_relayed_calls(self):
        rnd = Round((Call.via((1, 0, 2)), Call.direct(0, 3)))
        errs = validate_round(self.g, rnd, informed={0, 1}, k=2)
        assert errs == []

    def test_edge_conflict_detected(self):
        # both calls traverse edge (0, 2)
        rnd = Round((Call.via((1, 0, 2)), Call.via((0, 2))))
        errs = validate_round(self.g, rnd, informed={0, 1}, k=2)
        assert any("receiver already targeted" in e or "edge" in e for e in errs)

    def test_receiver_conflict_detected(self):
        rnd = Round((Call.via((1, 0, 3)), Call.via((2, 0, 3))))
        errs = validate_round(self.g, rnd, informed={0, 1, 2}, k=2)
        assert any("receiver already targeted" in e for e in errs)

    def test_caller_must_be_informed(self):
        rnd = Round((Call.direct(1, 0),))
        errs = validate_round(self.g, rnd, informed={0}, k=2)
        assert any("not informed" in e for e in errs)

    def test_double_call_detected(self):
        rnd = Round((Call.direct(0, 1), Call.direct(0, 2)))
        errs = validate_round(self.g, rnd, informed={0}, k=2)
        assert any("second call" in e for e in errs)

    def test_length_bound(self):
        rnd = Round((Call.via((1, 0, 2)),))
        errs = validate_round(self.g, rnd, informed={1}, k=1)
        assert any("exceeds k" in e for e in errs)

    def test_non_path_rejected(self):
        rnd = Round((Call.via((1, 3)),))  # leaves not adjacent
        errs = validate_round(self.g, rnd, informed={1}, k=2)
        assert any("not a path" in e for e in errs)

    def test_already_informed_receiver(self):
        rnd = Round((Call.direct(0, 1),))
        errs = validate_round(self.g, rnd, informed={0, 1}, k=2)
        assert any("already informed" in e for e in errs)


class TestBroadcastValidation:
    def test_valid_binomial_on_q2(self):
        g = hypercube(2)
        sched = Schedule(source=0)
        sched.append_round([Call.direct(0, 2)])
        sched.append_round([Call.direct(0, 1), Call.direct(2, 3)])
        rep = validate_broadcast(g, sched, 1)
        assert rep.ok
        assert rep.informed_per_round == [2, 4]

    def test_incomplete_detected(self):
        g = hypercube(2)
        sched = Schedule(source=0)
        sched.append_round([Call.direct(0, 1)])
        sched.append_round([Call.direct(0, 2)])
        rep = validate_broadcast(g, sched, 1)
        assert not rep.ok
        assert any("incomplete" in e for e in rep.errors)

    def test_minimum_time_enforced(self):
        g = path_graph(4)
        sched = Schedule(source=0)
        for v in (1, 2, 3):
            sched.append_round([Call.direct(v - 1, v)])
        rep = validate_broadcast(g, sched, 1)
        assert not rep.ok  # 3 rounds > ⌈log2 4⌉ = 2
        rep2 = validate_broadcast(g, sched, 1, require_minimum_time=False)
        assert rep2.ok

    def test_bad_source(self):
        g = path_graph(3)
        sched = Schedule(source=7)
        rep = validate_broadcast(g, sched, 1)
        assert not rep.ok

    def test_assert_raises(self):
        g = path_graph(4)
        sched = Schedule(source=0)
        with pytest.raises(InvalidScheduleError):
            assert_valid_broadcast(g, sched, 1)

    def test_max_call_length_reported(self):
        sh = construct_base(4, 2)
        sched = broadcast_schedule(sh, 0)
        rep = validate_broadcast(sh.graph, sched, 2)
        assert rep.max_call_length == 2


class TestKMlbgViaScheme:
    def test_g42_is_2mlbg(self):
        sh = construct_base(4, 2)
        assert verify_k_mlbg_via_scheme(sh)

    def test_sampled_sources(self):
        sh = construct_base(6, 2)
        assert verify_k_mlbg_via_scheme(sh, sources=[0, 21, 63])
