"""The bitset fast-path validator against the reference oracle.

Deterministic cases: valid schedules from the real schemes, plus
hand-built corruptions that trigger each Definition-1 violation class
with a known *first* error.  The property tests in
``tests/property/test_validator_fast_property.py`` add randomized
agreement coverage.
"""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.graphs.base import Graph
from repro.graphs.hypercube import hypercube
from repro.model.validator import validate_broadcast
from repro.model.validator_fast import (
    ERROR_CLASSES,
    FastValidator,
    classify_error,
    validate_broadcast_fast,
)
from repro.schedulers.store_forward import binomial_hypercube_broadcast
from repro.types import Call, Round, Schedule


def assert_agreement(graph, schedule, k, **kwargs):
    """Both validators: same verdict, same error strings, same stats."""
    ref = validate_broadcast(graph, schedule, k, **kwargs)
    fast = validate_broadcast_fast(graph, schedule, k, **kwargs)
    assert fast.ok == ref.ok
    assert fast.errors == ref.errors
    assert fast.rounds == ref.rounds
    assert fast.informed_per_round == ref.informed_per_round
    assert fast.max_call_length == ref.max_call_length
    return ref, fast


# A 4-vertex diamond: 0-1, 0-2, 2-3, 1-3.  Minimum-time broadcast from 0
# takes 2 rounds; the corruption fixtures below each flip exactly one
# Definition-1 condition first.
def diamond() -> Graph:
    return Graph(4, [(0, 1), (0, 2), (2, 3), (1, 3)]).freeze()


def sched(rounds: list[list[tuple[int, ...]]], source: int = 0) -> Schedule:
    s = Schedule(source=source)
    for rnd in rounds:
        s.rounds.append(Round(tuple(Call.via(path) for path in rnd)))
    return s


class TestValidSchedules:
    def test_diamond_minimum_time(self):
        ref, fast = assert_agreement(diamond(), sched([[(0, 1)], [(0, 2), (1, 3)]]), 1)
        assert fast.ok
        assert fast.informed_per_round == [2, 4]

    def test_hypercube_binomial(self):
        for n in (1, 2, 4, 6, 8):
            g = hypercube(n)
            s = binomial_hypercube_broadcast(n, 0)
            _, fast = assert_agreement(g, s, 1)
            assert fast.ok

    def test_sparse_hypercube_schemes(self):
        for n, m in ((4, 2), (6, 3), (8, 3)):
            sh = construct_base(n, m)
            validator = FastValidator(sh.graph)
            for src in (0, sh.n_vertices - 1):
                s = broadcast_schedule(sh, src)
                ref = validate_broadcast(sh.graph, s, 2)
                fast = validator.validate(s, 2)
                assert ref.ok and fast.ok
                assert fast.informed_per_round == ref.informed_per_round

    def test_broadcast_k_scheme(self):
        sh = construct(3, 7, (2, 4))
        s = broadcast_schedule(sh, 5)
        _, fast = assert_agreement(sh.graph, s, 3)
        assert fast.ok

    def test_single_vertex_graph(self):
        g = Graph(1).freeze()
        _, fast = assert_agreement(g, Schedule(source=0), 1)
        assert fast.ok

    def test_validator_reuse_across_schedules(self):
        sh = construct_base(5, 2)
        validator = FastValidator(sh.graph)
        for src in range(0, 32, 7):
            s = broadcast_schedule(sh, src)
            assert validator.validate(s, 2).ok


class TestFirstErrorClasses:
    """Each corruption triggers its class as the *first* error in both
    validators (the satellite's shared-edge / shared-receiver /
    uninformed-caller / over-length quartet)."""

    def test_shared_edge_first(self):
        # both length-2 calls traverse edge {2,3}
        s = sched([[(0, 1)], [(0, 2, 3), (1, 3, 2)]])
        ref, fast = assert_agreement(diamond(), s, 2)
        assert not fast.ok
        assert classify_error(ref.errors[0]) == "shared-edge"
        assert classify_error(fast.errors[0]) == "shared-edge"

    def test_shared_receiver_first(self):
        s = sched([[(0, 1)], [(0, 2, 3), (1, 3)]])
        ref, fast = assert_agreement(diamond(), s, 2)
        assert not fast.ok
        assert classify_error(fast.errors[0]) == "shared-receiver"

    def test_uninformed_caller_first(self):
        s = sched([[(0, 1)], [(0, 2), (3, 1)]])
        ref, fast = assert_agreement(diamond(), s, 1)
        assert not fast.ok
        assert classify_error(fast.errors[0]) == "uninformed-caller"

    def test_over_length_first(self):
        # valid at k=2, over-length at k=1
        s = sched([[(0, 2, 3)], [(0, 1), (3, 2)]])
        assert validate_broadcast_fast(diamond(), s, 2).ok
        ref, fast = assert_agreement(diamond(), s, 1)
        assert not fast.ok
        assert classify_error(fast.errors[0]) == "over-length"

    def test_duplicate_caller_first(self):
        s = sched([[(0, 1)], [(0, 2), (0, 2)]])
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "duplicate-caller"

    def test_receiver_informed_first(self):
        s = sched([[(0, 1)], [(0, 1), (1, 3)]])
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "receiver-informed"

    def test_bad_path_first(self):
        s = sched([[(0, 1)], [(0, 3), (1, 3)]])  # 0-3 is not an edge
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "bad-path"

    def test_incomplete_first(self):
        s = sched([[(0, 1)], [(0, 2)]])
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "incomplete"

    def test_not_minimum_time_first(self):
        s = sched([[(0, 1)], [(0, 2)], [(1, 3)]])
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "not-minimum-time"
        # and accepted when minimum time is not required
        relaxed = validate_broadcast_fast(diamond(), s, 1, require_minimum_time=False)
        assert relaxed.ok

    def test_bad_source(self):
        s = Schedule(source=9)
        _, fast = assert_agreement(diamond(), s, 1)
        assert classify_error(fast.errors[0]) == "bad-source"


class TestVertexDisjointMode:
    def test_tree_scheme_disagrees_only_on_strictness(self):
        from repro.core.tree_scheme import ternary_tree_schedule
        from repro.graphs.trees import balanced_ternary_core_tree

        h = 3
        tree = balanced_ternary_core_tree(h)
        s = ternary_tree_schedule(h, 0)
        loose_ref, loose_fast = assert_agreement(tree, s, 2 * h)
        assert loose_fast.ok
        strict_ref, strict_fast = assert_agreement(tree, s, 2 * h, vertex_disjoint=True)
        assert not strict_fast.ok
        assert classify_error(strict_fast.errors[0]) == "shared-vertex"

    def test_sparse_scheme_is_vertex_disjoint(self):
        sh = construct_base(6, 2)
        s = broadcast_schedule(sh, 0)
        _, fast = assert_agreement(sh.graph, s, 2, vertex_disjoint=True)
        assert fast.ok


class TestClassifier:
    def test_all_classes_known(self):
        assert len(set(ERROR_CLASSES)) == len(ERROR_CLASSES)

    def test_unclassifiable_raises(self):
        with pytest.raises(ValueError):
            classify_error("some novel failure")


class TestPerformanceContract:
    def test_fast_beats_reference_on_bench_workload(self):
        """The acceptance bar: ≥5× on the bench_perf_primitives workload
        (construct_base(12, 4) schedule validation, warm validator)."""
        import time

        sh = construct_base(12, 4)
        g = sh.graph
        s = broadcast_schedule(sh, 0)
        validator = FastValidator(g)
        # warm both paths once
        assert validator.validate(s, 2).ok
        assert validate_broadcast(g, s, 2).ok

        def best_of(fn, reps=5):
            times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        t_ref = best_of(lambda: validate_broadcast(g, s, 2))
        t_fast = best_of(lambda: validator.validate(s, 2))
        assert t_ref / t_fast >= 5.0, f"speedup only {t_ref / t_fast:.1f}x"
