"""Unit tests for congestion accounting (Section 5 / E15)."""

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.model.congestion import congestion_profile, min_feasible_bandwidth
from repro.types import Round, Schedule


class TestProfile:
    def setup_method(self):
        self.sh = construct_base(6, 2)
        self.g = self.sh.graph
        self.sched = broadcast_schedule(self.sh, 0)

    def test_valid_schedule_peak_is_one(self):
        prof = congestion_profile(self.g, self.sched)
        assert prof.peak_concurrency == 1

    def test_used_edges_at_most_graph_edges(self):
        prof = congestion_profile(self.g, self.sched)
        assert 0 < prof.used_edges <= prof.graph_edges
        assert 0 < prof.edge_utilization <= 1

    def test_occupancy_counts_path_edges(self):
        prof = congestion_profile(self.g, self.sched)
        expected = sum(c.length for rnd in self.sched.rounds for c in rnd)
        assert prof.total_edge_occupancy == expected

    def test_load_histogram_sums_to_used_edges(self):
        prof = congestion_profile(self.g, self.sched)
        assert sum(prof.load_histogram().values()) == prof.used_edges

    def test_total_load_at_least_calls(self):
        """N−1 calls each use ≥1 edge."""
        prof = congestion_profile(self.g, self.sched)
        assert sum(prof.total_load.values()) >= self.g.n_vertices - 1


class TestMinBandwidth:
    def test_valid_schedule_needs_one(self):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 0)
        assert min_feasible_bandwidth(sh.graph, sched) == 1

    def test_merged_schedules_need_more(self):
        sh = construct_base(6, 2)
        a = broadcast_schedule(sh, 0)
        b = broadcast_schedule(sh, sh.n_vertices - 1)
        merged = Schedule(source=0)
        for r1, r2 in zip(a.rounds, b.rounds):
            merged.rounds.append(Round(tuple(r1.calls + r2.calls)))
        assert min_feasible_bandwidth(sh.graph, merged) >= 2

    def test_empty_schedule(self):
        sh = construct_base(4, 2)
        assert min_feasible_bandwidth(sh.graph, Schedule(source=0)) == 1
