"""Unit tests for the k-line simulator (Definition 1 execution semantics)."""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.graphs.trees import star
from repro.model.simulator import LineNetworkSimulator
from repro.types import Call, InvalidScheduleError, Round, Schedule


class TestExecuteRound:
    def setup_method(self):
        self.g = star(5)
        self.sim = LineNetworkSimulator(self.g, k=2, strict=False)

    def test_accepts_valid(self):
        rnd = Round((Call.via((1, 0, 2)), Call.direct(0, 3)))
        accepted, rejected = self.sim.execute_round(rnd, {0, 1})
        assert len(accepted) == 2 and not rejected

    def test_rejects_in_order(self):
        """Definition 1: a call fails when it conflicts with an earlier
        call of the same round — order matters."""
        first = Call.via((0, 2))
        second = Call.via((1, 0, 2))
        accepted, rejected = self.sim.execute_round(Round((first, second)), {0, 1})
        assert accepted == [first]
        assert rejected[0].call == second

    def test_strict_mode_raises(self):
        sim = LineNetworkSimulator(self.g, k=2, strict=True)
        rnd = Round((Call.via((0, 2)), Call.via((1, 0, 2))))
        with pytest.raises(InvalidScheduleError):
            sim.execute_round(rnd, {0, 1})

    def test_length_rejection(self):
        sim = LineNetworkSimulator(self.g, k=1, strict=False)
        _, rejected = sim.execute_round(Round((Call.via((1, 0, 2)),)), {1})
        assert rejected and "exceeds" in rejected[0].reason

    def test_uninformed_caller_rejected(self):
        _, rejected = self.sim.execute_round(Round((Call.direct(1, 0),)), {0})
        assert rejected and "not informed" in rejected[0].reason


class TestBandwidth:
    """The Section-5 extension: per-edge bandwidth b admits up to b
    simultaneous calls per edge (b = 1 is Definition 1)."""

    def setup_method(self):
        # path 0-1-2-3: calls 0→2 and 1→3?? need a shared edge with distinct
        # receivers: 0→3 (edges 01,12,23) and 1→2 (edge 12) share edge (1,2).
        from repro.graphs.trees import path_graph

        self.g = path_graph(4)
        self.a = Call.via((0, 1, 2, 3))  # 0 calls 3 through 1, 2
        self.b = Call.via((1, 2))        # 1 calls 2 — shares edge (1, 2)

    def test_bandwidth_one_rejects_shared_edge(self):
        sim = LineNetworkSimulator(self.g, k=3, bandwidth=1, strict=False)
        accepted, rejected = sim.execute_round(Round((self.a, self.b)), {0, 1})
        assert accepted == [self.a]
        assert len(rejected) == 1 and "bandwidth" in rejected[0].reason

    def test_bandwidth_two_admits_shared_edge(self):
        sim = LineNetworkSimulator(self.g, k=3, bandwidth=2, strict=False)
        accepted, rejected = sim.execute_round(Round((self.a, self.b)), {0, 1})
        assert len(accepted) == 2 and not rejected

    def test_receiver_constraint_survives_bandwidth(self):
        """Bandwidth relaxes edges only; single reception still holds."""
        c = Call.via((2, 3))
        sim = LineNetworkSimulator(self.g, k=3, bandwidth=4, strict=False)
        accepted, rejected = sim.execute_round(Round((self.a, c)), {0, 2})
        assert len(accepted) == 1
        assert rejected and "receiver" in rejected[0].reason

    def test_bandwidth_validation(self):
        with pytest.raises(InvalidScheduleError):
            LineNetworkSimulator(star(3), k=2, bandwidth=0)
        with pytest.raises(InvalidScheduleError):
            LineNetworkSimulator(star(3), k=0)


class TestFullRun:
    def test_broadcast_completes_on_scheme(self):
        sh = construct_base(5, 2)
        sim = LineNetworkSimulator(sh.graph, k=2)
        assert sim.broadcast_completes(broadcast_schedule(sh, 7))

    def test_statistics(self):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 0)
        sim = LineNetworkSimulator(sh.graph, k=2)
        result = sim.run(sched)
        assert result.rounds_executed == 5
        assert result.informed_per_round[-1] == 32
        assert sum(result.call_length_histogram.values()) == 31
        assert max(result.max_edge_load_per_round) == 1  # Definition 1
        assert not result.rejected

    def test_doubling_profile_is_two(self):
        sh = construct_base(6, 3)
        sched = broadcast_schedule(sh, 11)
        sim = LineNetworkSimulator(sh.graph, k=2)
        profile = sim.run(sched).doubling_profile()
        assert all(abs(r - 2.0) < 1e-9 for r in profile)

    def test_k3_schedule_fails_at_k2_sim(self):
        sh = construct(3, 7, (2, 4))
        sched = broadcast_schedule(sh, 0)
        assert sched.max_call_length() == 3
        sim = LineNetworkSimulator(sh.graph, k=2, strict=False)
        result = sim.run(sched)
        assert result.rejected  # length-3 calls rejected at k=2

    def test_bad_source_rejected(self):
        sh = construct_base(4, 2)
        sim = LineNetworkSimulator(sh.graph, k=2)
        with pytest.raises(InvalidScheduleError):
            sim.run(Schedule(source=99))


class TestFastCompletionPath:
    """``broadcast_completes`` short-circuits through the bitset fast
    validator on bandwidth-1 valid schedules; anything flagged falls
    through to the exact per-call walk."""

    def test_valid_schedule_fast_path(self):
        sh = construct_base(5, 2)
        sim = LineNetworkSimulator(sh.graph, k=2)
        assert sim.broadcast_completes(broadcast_schedule(sh, 3))
        assert sim._fast_validator is not None  # the fast path engaged

    def test_invalid_schedule_still_raises_in_strict_mode(self):
        g = star(4)
        sim = LineNetworkSimulator(g, k=1, strict=True)
        sched = Schedule(source=0)
        sched.append_round([Call.via((0, 1, 0))])  # not a path; rejected
        with pytest.raises(InvalidScheduleError):
            sim.broadcast_completes(sched)

    def test_incomplete_schedule_lenient_mode(self):
        g = star(4)
        sim = LineNetworkSimulator(g, k=2, strict=False)
        sched = Schedule(source=0)
        sched.append_round([Call.direct(0, 1)])
        assert not sim.broadcast_completes(sched)

    def test_rejected_calls_can_still_complete(self):
        """A schedule the validator flags (receiver already informed) can
        still complete under lenient simulation — the fall-through must
        preserve that verdict."""
        g = star(4)
        sim = LineNetworkSimulator(g, k=2, strict=False)
        sched = Schedule(source=0)
        sched.append_round([Call.direct(0, 1)])
        sched.append_round([Call.direct(0, 2), Call.direct(1, 0)])  # 1->0 invalid
        sched.append_round([Call.direct(0, 3)])
        assert sim.broadcast_completes(sched)

    def test_bandwidth_two_skips_fast_path(self):
        sh = construct_base(4, 2)
        sim = LineNetworkSimulator(sh.graph, k=2, bandwidth=2)
        assert sim.broadcast_completes(broadcast_schedule(sh, 0))
        assert sim._fast_validator is None
