"""Tests for edge-failure injection and broadcast repair (E19)."""

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.routing import reach_and_flip
from repro.model.faults import (
    attempt_broadcast_with_failures,
    failed_edge_sample,
    reach_and_flip_avoiding,
    remove_edges,
)
from repro.model.validator import validate_broadcast
from repro.types import canonical_edge


class TestPrimitives:
    def test_remove_edges(self):
        sh = construct_base(4, 2)
        g = sh.graph
        e = next(iter(g.edges()))
        g2 = remove_edges(g, {e})
        assert g2.n_edges == g.n_edges - 1
        assert not g2.has_edge(*e)

    def test_failed_sample_deterministic(self):
        g = construct_base(5, 2).graph
        assert failed_edge_sample(g, 4, seed=3) == failed_edge_sample(g, 4, seed=3)
        assert len(failed_edge_sample(g, 4, seed=3)) == 4

    def test_sample_capped_at_edge_count(self):
        g = construct_base(3, 1).graph
        assert len(failed_edge_sample(g, 10_000, seed=0)) == g.n_edges


class TestAvoidingRouter:
    def test_no_failures_matches_plain_routing(self):
        sh = construct_base(6, 2)
        for u in range(0, 64, 5):
            for dim in range(1, 7):
                assert reach_and_flip_avoiding(sh, u, dim, set()) == reach_and_flip(
                    sh, u, dim
                )

    def test_perfect_labeling_has_no_relay_redundancy(self):
        """With the Hamming labeling every label appears *exactly once* in
        each closed neighbourhood, so a failed relay edge cannot be routed
        around at call length 2 — perfection is fragility."""
        sh = construct_base(6, 3)
        for u in range(64):
            for dim in range(4, 7):
                path = reach_and_flip(sh, u, dim)
                if len(path) == 3:
                    first_edge = canonical_edge(path[0], path[1])
                    assert reach_and_flip_avoiding(sh, u, dim, {first_edge}) is None
                    return
        raise AssertionError("no relayed call found")

    def test_lemma2_tiling_repairs_failed_direct_edge(self):
        """The Lemma-2 tiling duplicates each vertex's own label across
        tiles (the tiling dimension keeps the sub-syndrome), so a failed
        *direct* Rule-2 edge reroutes via the tiling dimension."""
        sh = construct_base(7, 4)  # m = 4: lemma2 labeling, m' = 3
        found = 0
        for u in range(128):
            for dim in range(5, 8):
                path = reach_and_flip(sh, u, dim)
                if len(path) == 2:  # direct call
                    e = canonical_edge(*path)
                    alt = reach_and_flip_avoiding(sh, u, dim, {e})
                    if alt is not None:
                        assert len(alt) == 3
                        assert alt[-1] != path[-1] or alt != path
                        found += 1
                        if found >= 3:
                            return
        assert found > 0, "no repairable direct call found"

    def test_redundant_labeling_gives_relay_fallback(self):
        """A deliberately redundant Condition-A labeling (two relay
        candidates per miss) makes failed relay first-edges repairable."""
        import numpy as np

        from repro.domination.labeling import labeling_from_array

        # Q_3 labeled by parity of bits 1 and 2: both bit flips toggle it
        labels = np.array([(u ^ (u >> 1)) & 1 for u in range(8)], dtype=np.int64)
        lab = labeling_from_array(3, labels, name="redundant")
        assert lab.verify()
        sh = construct_base(6, 3, labeling=lab)
        for u in range(64):
            for dim in range(4, 7):
                path = reach_and_flip(sh, u, dim)
                if len(path) == 3:
                    first_edge = canonical_edge(path[0], path[1])
                    alt = reach_and_flip_avoiding(sh, u, dim, {first_edge})
                    if alt is not None:
                        assert first_edge not in [
                            canonical_edge(a, b) for a, b in zip(alt, alt[1:])
                        ]
                        return
        raise AssertionError("no repairable relay found with redundant labeling")

    def test_core_edge_failure_unroutable(self):
        sh = construct_base(5, 2)
        e = canonical_edge(0, 1)  # a dimension-1 (core) edge
        assert reach_and_flip_avoiding(sh, 0, 1, {e}) is None


class TestRepairedBroadcast:
    def test_no_failures_reproduces_scheme(self):
        sh = construct_base(5, 2)
        a = attempt_broadcast_with_failures(sh, 3, set())
        b = broadcast_schedule(sh, 3)
        assert a is not None
        assert [
            [c.path for c in r] for r in a.rounds
        ] == [[c.path for c in r] for r in b.rounds]

    def test_repaired_schedules_validate_on_survivor(self):
        sh = construct_base(8, 3)
        g = sh.graph
        repaired = 0
        for seed in range(30):
            failed = failed_edge_sample(g, 2, seed=seed)
            sched = attempt_broadcast_with_failures(sh, 0, failed)
            if sched is None:
                continue
            repaired += 1
            survivor = remove_edges(g, failed)
            assert validate_broadcast(survivor, sched, 2).ok
        assert repaired > 0  # some trials must be repairable at f = 2

    def test_recursive_construction_repair(self):
        sh = construct(3, 7, (2, 4))
        g = sh.graph
        any_repair = False
        for seed in range(20):
            failed = failed_edge_sample(g, 1, seed=seed)
            sched = attempt_broadcast_with_failures(sh, 0, failed)
            if sched is not None:
                survivor = remove_edges(g, failed)
                assert validate_broadcast(survivor, sched, 3).ok
                any_repair = True
        assert any_repair
