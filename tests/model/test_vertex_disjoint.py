"""Tests for the §5 vertex-disjoint call model (experiment E20)."""

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.tree_scheme import ternary_tree_schedule
from repro.graphs.trees import balanced_ternary_core_tree, star
from repro.model.validator import validate_broadcast, validate_round
from repro.types import Call, Round


class TestRoundLevel:
    def test_shared_intermediate_flagged(self):
        g = star(5)
        # both calls switch through the centre — fine edge-wise, not vertex-wise
        rnd = Round((Call.via((1, 0, 2)), Call.via((3, 0, 4))))
        loose = validate_round(g, rnd, {1, 3}, k=2)
        strict = validate_round(g, rnd, {1, 3}, k=2, vertex_disjoint=True)
        assert loose == []
        assert any("vertex-disjoint" in e for e in strict)

    def test_disjoint_calls_pass_both(self):
        g = star(5)
        rnd = Round((Call.via((0, 2)),))
        assert validate_round(g, rnd, {0}, k=2, vertex_disjoint=True) == []


class TestSchemesUnderStrictModel:
    def test_sparse_hypercube_schemes_are_vertex_disjoint(self):
        """Phase-1 calls live in pairwise-disjoint subcubes, so the
        schemes satisfy the stronger §5 model as-is."""
        cases = [(2, 6, (2,)), (2, 7, (3,)), (3, 8, (2, 5)), (4, 9, (2, 4, 6))]
        for k, n, thr in cases:
            sh = construct(k, n, thr)
            g = sh.graph
            for s in (0, g.n_vertices // 2, g.n_vertices - 1):
                sched = broadcast_schedule(sh, s)
                rep = validate_broadcast(g, sched, k, vertex_disjoint=True)
                assert rep.ok, (k, n, s, rep.errors[:3])

    def test_tree_pump_scheme_is_not(self):
        tree = balanced_ternary_core_tree(3)
        sched = ternary_tree_schedule(3, 0)
        assert validate_broadcast(tree, sched, 6).ok
        strict = validate_broadcast(tree, sched, 6, vertex_disjoint=True)
        assert not strict.ok

    def test_base_construction_via_construct_base(self):
        sh = construct_base(5, 2)
        sched = broadcast_schedule(sh, 17)
        assert validate_broadcast(sh.graph, sched, 2, vertex_disjoint=True).ok
