"""Tests for multi-message broadcast (pipelining + exact search, E22)."""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import star
from repro.multimsg import (
    minimal_valid_stagger,
    pipeline_schedules,
)
from repro.schedulers.multimsg_search import (
    find_multimessage_schedule,
    multimessage_lower_bound,
    validate_multimessage,
)
from repro.types import InvalidParameterError


class TestPipelining:
    def test_scheme_pipelining_is_fully_serial(self):
        """Every vertex calls every round in the minimum-time scheme, so
        overlapping two copies always double-books a caller: d* = n."""
        for n, m in [(4, 2), (5, 2), (6, 3)]:
            sh = construct_base(n, m)
            assert minimal_valid_stagger(sh, 0) == n

    def test_pipeline_merge_shape(self):
        sh = construct_base(4, 2)
        base = broadcast_schedule(sh, 0)
        pipe = pipeline_schedules(base, 3, 2)
        assert pipe.total_rounds == 4 + 2 * 2
        assert sum(len(r) for r in pipe.rounds) == 3 * base.num_calls

    def test_pipeline_validation_args(self):
        sh = construct_base(4, 2)
        base = broadcast_schedule(sh, 0)
        with pytest.raises(InvalidParameterError):
            pipeline_schedules(base, 0, 1)
        with pytest.raises(InvalidParameterError):
            pipeline_schedules(base, 2, 0)


class TestLowerBound:
    def test_single_message_reduces_to_log(self):
        assert multimessage_lower_bound(8, 1) == 3
        assert multimessage_lower_bound(16, 1) == 4

    def test_reception_counting_dominates(self):
        # Q3, 2 messages: emission bound 4, counting bound 5
        assert multimessage_lower_bound(8, 2) == 5

    def test_monotone_in_messages(self):
        for n in (8, 16):
            bounds = [multimessage_lower_bound(n, m) for m in (1, 2, 3, 4)]
            assert bounds == sorted(bounds)


class TestExactSearch:
    def test_q3_two_messages_exactly_five_rounds(self):
        """T(Q₃, 2 msgs, k=1) = 5: the bound and the search meet —
        beating the 6-round serial baseline by one round."""
        g = hypercube(3)
        assert find_multimessage_schedule(g, 0, 1, 2, 4) is None
        sched = find_multimessage_schedule(g, 0, 1, 2, 5)
        assert sched is not None
        assert validate_multimessage(g, sched, 1) == []

    def test_star_two_messages_with_k2(self):
        """K_{1,3} from the centre: 2 messages at k=2."""
        g = star(4)
        lb = multimessage_lower_bound(4, 2)
        sched = find_multimessage_schedule(g, 0, 2, 2, lb)
        if sched is None:  # bound not tight here — one extra round must do
            sched = find_multimessage_schedule(g, 0, 2, 2, lb + 1)
        assert sched is not None
        assert validate_multimessage(g, sched, 2) == []

    def test_sparse_hypercube_two_messages(self):
        """2 messages on G_{3,1} at k=2 beat the serial 6 rounds."""
        sh = construct_base(3, 1)
        g = sh.graph
        sched = find_multimessage_schedule(g, 0, 2, 2, 5)
        assert sched is not None
        assert validate_multimessage(g, sched, 2) == []

    def test_validator_catches_corruption(self):
        g = hypercube(3)
        sched = find_multimessage_schedule(g, 0, 1, 2, 5)
        assert sched is not None
        sched.rounds[0] = sched.rounds[0] + sched.rounds[0]  # duplicate call
        errs = validate_multimessage(g, sched, 1)
        assert errs
