"""Tests for the exact minimum-time scheduler (complete search)."""

import pytest

from repro.core.construct import construct_base
from repro.graphs.base import Graph
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import balanced_ternary_core_tree, path_graph, star
from repro.graphs.variants import cycle_graph
from repro.model.validator import assert_valid_broadcast
from repro.schedulers.search import (
    SearchBudgetExceeded,
    find_minimum_time_schedule,
    is_k_mlbg_exact,
    minimum_kline_rounds,
)
from repro.types import InvalidParameterError


class TestFind:
    def test_path4_k2_from_any_source(self):
        """P4 is a 2-mlbg: even the middle vertex can use a length-2 call."""
        g = path_graph(4)
        for s in range(4):
            sched = find_minimum_time_schedule(g, s, 2)
            assert sched is not None
            assert_valid_broadcast(g, sched, 2)

    def test_path4_k1_source_asymmetry(self):
        """At k=1, P4 from an end cannot double twice (0→1, then only 1
        can make progress), but from vertex 1 it can (1→2; then 1→0 and
        2→3).  Exactly the 'regardless of originating vertex' point of
        Definition 3: P4 is not a 1-mlbg even though some sources work."""
        g = path_graph(4)
        assert find_minimum_time_schedule(g, 0, 1) is None
        sched = find_minimum_time_schedule(g, 1, 1)
        assert sched is not None and len(sched.rounds) == 2

    def test_star_leaf_needs_k2(self):
        g = star(4)
        assert find_minimum_time_schedule(g, 1, 1) is None
        sched = find_minimum_time_schedule(g, 1, 2)
        assert sched is not None and len(sched.rounds) == 2

    def test_hypercube_k1(self):
        g = hypercube(3)
        sched = find_minimum_time_schedule(g, 5, 1)
        assert sched is not None
        assert_valid_broadcast(g, sched, 1)

    def test_schedules_validate(self):
        g = balanced_ternary_core_tree(2)
        for s in (0, 1, 4):
            sched = find_minimum_time_schedule(g, s, 4)
            assert sched is not None
            assert_valid_broadcast(g, sched, 4)

    def test_budget_exceeded_raises(self):
        g = balanced_ternary_core_tree(3)
        with pytest.raises(SearchBudgetExceeded):
            find_minimum_time_schedule(g, 0, 6, node_budget=50)

    def test_rejects_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)]).freeze()
        with pytest.raises(InvalidParameterError):
            find_minimum_time_schedule(g, 0, 2)

    def test_extra_rounds_allow_harder_cases(self):
        g = path_graph(4)
        sched = find_minimum_time_schedule(g, 1, 1, rounds=3)
        assert sched is not None
        assert_valid_broadcast(g, sched, 1, require_minimum_time=False)


class TestMinimumRounds:
    def test_path4_k1_by_source(self):
        g = path_graph(4)
        assert minimum_kline_rounds(g, 0, 1) == 3  # end source is one slower
        assert minimum_kline_rounds(g, 1, 1) == 2  # inner source doubles fine

    def test_path4_k2(self):
        g = path_graph(4)
        for s in range(4):
            assert minimum_kline_rounds(g, s, 2) == 2

    def test_cycle6_k2(self):
        g = cycle_graph(6)
        assert minimum_kline_rounds(g, 0, 2) == 3  # ⌈log 6⌉ = 3


class TestKMlbgExact:
    def test_p4_classification(self):
        """P4 ∈ G₂ ∖ G₁ — the strict hierarchy of Property 2, witnessed."""
        g = path_graph(4)
        assert not is_k_mlbg_exact(g, 1)
        assert is_k_mlbg_exact(g, 2)

    def test_q2_is_1mlbg(self):
        assert is_k_mlbg_exact(hypercube(2), 1)

    def test_star_is_2mlbg_not_1(self):
        """Section 2: the star is the fewest-edge k-mlbg for k ≥ 2."""
        g = star(8)
        assert is_k_mlbg_exact(g, 2)
        assert not is_k_mlbg_exact(g, 1)

    def test_g42_independent_verification(self):
        """G_{4,2} is a 2-mlbg by *search*, independent of Broadcast_2."""
        sh = construct_base(4, 2)
        assert is_k_mlbg_exact(sh.graph, 2)

    def test_g42_single_edge_removal_survives(self):
        """Deleting one Rule-2 edge does *not* break the 2-mlbg property —
        the paper's construction is degree-minimizing, not edge-critical
        (an empirical observation the search certifies)."""
        sh = construct_base(4, 2)
        g = sh.graph.copy()
        rule2 = [e for e in g.edges() if (e[0] ^ e[1]) in (4, 8)]
        g.remove_edge(*rule2[0])
        g.freeze()
        assert is_k_mlbg_exact(g, 2)

    def test_ball_starved_source_breaks_property(self):
        """Theorem 2's counting argument, made concrete: if a vertex sees
        fewer than n vertices within distance 2, it cannot source a
        minimum-time 2-line broadcast — deleting 2 of vertex 0's edges in
        G_{4,2} leaves |ball(0,2)|−1 = 3 < 4."""
        sh = construct_base(4, 2)
        g = sh.graph.copy()
        nbrs = sorted(g.neighbors(0))
        for v in nbrs[:2]:
            g.remove_edge(0, v)
        g.freeze()
        assert len(g.ball(0, 2)) - 1 < 4
        assert find_minimum_time_schedule(g, 0, 2) is None

    def test_theorem1_tree_h1(self):
        g = balanced_ternary_core_tree(1)
        assert is_k_mlbg_exact(g, 2)
        assert not is_k_mlbg_exact(g, 1)
