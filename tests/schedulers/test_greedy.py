"""Tests for the randomized capacity-aware heuristic scheduler."""

import pytest

from repro.graphs.base import Graph
from repro.graphs.generators import random_tree
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import (
    balanced_ternary_core_tree,
    complete_binary_tree,
    path_graph,
    star,
)
from repro.model.validator import assert_valid_broadcast, minimum_broadcast_rounds
from repro.schedulers.greedy import heuristic_line_broadcast
from repro.types import InvalidParameterError


def check(g, source, k=None, **kw):
    sched = heuristic_line_broadcast(g, source, k, **kw)
    assert sched is not None, f"no schedule found from {source}"
    assert_valid_broadcast(g, sched, k if k is not None else g.n_vertices - 1)
    assert len(sched.rounds) == minimum_broadcast_rounds(g.n_vertices)
    return sched


class TestEasyFamilies:
    def test_star_from_leaf(self):
        check(star(8), 1)

    def test_path_from_end_and_middle(self):
        check(path_graph(16), 0)
        check(path_graph(16), 7)

    def test_hypercube(self):
        check(hypercube(4), 0, k=1)

    def test_complete_binary_tree_from_root(self):
        check(complete_binary_tree(3), 0)

    def test_complete_binary_tree_from_leaf(self):
        check(complete_binary_tree(3), 14)


class TestTheorem1Trees:
    @pytest.mark.parametrize("h", [2, 3, 4])
    def test_bh_various_sources(self, h):
        g = balanced_ternary_core_tree(h)
        for s in (0, 1, g.n_vertices - 1):
            check(g, s, k=2 * h, restarts=400)


class TestRandomTrees:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_trees_complete_in_minimum_time(self, seed):
        g = random_tree(24, seed=seed)
        check(g, 0, restarts=400)


class TestEdgeCases:
    def test_rejects_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)]).freeze()
        with pytest.raises(InvalidParameterError):
            heuristic_line_broadcast(g, 0)

    def test_rejects_bad_source(self):
        with pytest.raises(InvalidParameterError):
            heuristic_line_broadcast(path_graph(4), 9)

    def test_explicit_round_budget(self):
        g = path_graph(6)
        sched = heuristic_line_broadcast(g, 0, 1, rounds=5)
        assert sched is not None
        assert_valid_broadcast(g, sched, 1, require_minimum_time=False)

    def test_surplus_budget_no_empty_trailing_rounds(self):
        """A surplus round budget must not be padded with empty rounds —
        the reported round count is the schedule's real length."""
        g = path_graph(4)
        sched = heuristic_line_broadcast(g, 0, rounds=5)
        assert sched is not None
        assert all(len(r) > 0 for r in sched.rounds)
        assert len(sched.rounds) <= 3

    def test_k1_infeasible_case_returns_none(self):
        # star from leaf at k=1 cannot finish in 2 rounds (proven in search tests)
        assert heuristic_line_broadcast(star(4), 1, 1, restarts=30) is None

    def test_deterministic_first_attempt(self):
        g = path_graph(8)
        a = heuristic_line_broadcast(g, 0, seed=5)
        b = heuristic_line_broadcast(g, 0, seed=5)
        assert a is not None and b is not None
        assert [tuple(c.path for c in r) for r in a.rounds] == [
            tuple(c.path for c in r) for r in b.rounds
        ]
