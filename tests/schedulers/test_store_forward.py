"""Tests for the k = 1 binomial baseline on Q_n."""

import pytest

from repro.graphs.hypercube import hypercube
from repro.model.validator import validate_broadcast
from repro.schedulers.store_forward import (
    binomial_hypercube_broadcast,
    dimension_order_broadcast,
)
from repro.types import InvalidParameterError


class TestBinomial:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_valid_minimum_time_at_k1(self, n):
        g = hypercube(n)
        for source in {0, (1 << n) - 1, 5 % (1 << n)}:
            sched = binomial_hypercube_broadcast(n, source)
            rep = validate_broadcast(g, sched, 1)
            assert rep.ok, rep.errors[:3]
            assert len(sched.rounds) == n

    def test_exact_doubling(self):
        sched = binomial_hypercube_broadcast(5, 3)
        rep = validate_broadcast(hypercube(5), sched, 1)
        assert rep.informed_per_round == [2, 4, 8, 16, 32]

    def test_all_calls_length_one(self):
        sched = binomial_hypercube_broadcast(4, 0)
        assert sched.max_call_length() == 1

    def test_source_validation(self):
        with pytest.raises(InvalidParameterError):
            binomial_hypercube_broadcast(3, 8)
        with pytest.raises(InvalidParameterError):
            binomial_hypercube_broadcast(0, 0)


class TestDimensionOrders:
    def test_any_permutation_works(self):
        g = hypercube(4)
        for dims in ([1, 2, 3, 4], [4, 3, 2, 1], [2, 4, 1, 3]):
            sched = dimension_order_broadcast(4, 6, dims)
            assert validate_broadcast(g, sched, 1).ok

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidParameterError):
            dimension_order_broadcast(3, 0, [1, 2, 2])
