"""The legacy surfaces warn but keep working, byte-for-byte.

Two deprecation tracks land in this file:

* the pre-registry scheduler facades on ``repro.schedulers`` (the
  single-message trio superseded by ``run_scheduler``), and
* the pre-subcommand CLI spellings rewritten by ``_legacy_argv``.

Both must emit :class:`DeprecationWarning` naming the modern spelling
(the migration table lives in CONTRIBUTING.md) while producing exactly
the results they always did.
"""

import warnings

import pytest

import repro.schedulers as schedulers
from repro.cli import _legacy_argv
from repro.graphs.hypercube import hypercube
from repro.io import frame_to_dict
from repro.schedulers.registry import ScheduleRequest, run_scheduler


class TestFacadeDeprecations:
    @pytest.mark.parametrize(
        "facade,strategy",
        [
            ("heuristic_line_broadcast", "greedy"),
            ("find_minimum_time_schedule", "search"),
            ("binomial_hypercube_broadcast", "store_forward"),
        ],
    )
    def test_access_warns_and_names_replacement(self, facade, strategy):
        with pytest.deprecated_call(match=strategy):
            getattr(schedulers, facade)

    def test_facade_results_unchanged(self):
        """The deprecated spelling still returns the registry's answer."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = schedulers.binomial_hypercube_broadcast(3, 0)
        modern = run_scheduler(
            "store_forward",
            ScheduleRequest(graph=hypercube(3), source=0),
            validate=False,
        ).schedule
        assert frame_to_dict(legacy.to_frame()) == frame_to_dict(modern.to_frame())

    def test_registry_spellings_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_scheduler(
                "greedy",
                ScheduleRequest(graph=hypercube(3), source=0, seed=1),
                validate=False,
            )

    def test_multimessage_functions_stay_first_class(self):
        """The multimsg trio is not deprecated: the registry cannot carry
        a MultiMessageSchedule for M>1, so these remain the public API."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert callable(schedulers.find_multimessage_schedule)
            assert callable(schedulers.multimessage_lower_bound)
            assert callable(schedulers.validate_multimessage)

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            schedulers.not_a_scheduler


class TestLegacyCliSpellings:
    def test_list_flag_warns_and_rewrites(self):
        with pytest.deprecated_call(match="repro list"):
            assert _legacy_argv(["--list"]) == ["list"]

    def test_export_csv_warns_and_rewrites(self):
        with pytest.deprecated_call(match="repro export-csv"):
            assert _legacy_argv(["--export-csv", "out"]) == ["export-csv", "out"]

    def test_bare_experiment_ids_warn_and_rewrite(self):
        with pytest.deprecated_call(match="repro run"):
            assert _legacy_argv(["e01", "e02"]) == ["run", "e01", "e02"]

    def test_bare_all_warns_and_rewrites(self):
        with pytest.deprecated_call(match="repro run"):
            assert _legacy_argv(["all"]) == ["run"]

    def test_empty_argv_stays_silent(self):
        """Bare ``python -m repro`` is the documented default, not legacy."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert _legacy_argv([]) == ["run"]

    def test_modern_subcommands_never_rewrite(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert _legacy_argv(["list"]) is None
            assert _legacy_argv(["serve", "--port", "0"]) is None
