"""The scheduler registry: discovery, the request/result API, the CLI
subcommand, and cross-scheduler agreement on pinned families."""

import pytest

from repro.graphs.hypercube import hypercube
from repro.graphs.trees import balanced_ternary_core_tree, path_graph, star
from repro.model.validator import minimum_broadcast_rounds, validate_broadcast
from repro.schedulers import registry
from repro.schedulers.registry import ScheduleRequest, run_scheduler
from repro.types import InvalidParameterError

EXPECTED_NAMES = ["greedy", "multimsg_search", "search", "store_forward"]


class TestRegistryContents:
    def test_all_schedulers_registered(self):
        assert registry.scheduler_names() == EXPECTED_NAMES

    def test_specs_have_titles_and_callables(self):
        for spec in registry.all_schedulers():
            assert spec.title
            assert callable(spec.fn)
            assert spec.module.startswith("repro.schedulers.")

    def test_lookup_is_case_insensitive(self):
        assert registry.get_scheduler("GREEDY") is registry.get_scheduler("greedy")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            registry.get_scheduler("simulated-annealing")

    def test_double_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            registry.scheduler("greedy", "duplicate")(lambda req: (None, {}))

    @pytest.mark.parametrize(
        "name", ["greedy", "search", "store_forward", "multimsg_search"]
    )
    def test_unknown_params_rejected(self, name):
        graph = hypercube(2) if name == "store_forward" else path_graph(4)
        with pytest.raises(InvalidParameterError):
            run_scheduler(name, ScheduleRequest(graph=graph, params={"bogus": 1}))

    def test_multimsg_rejects_bad_source(self):
        from repro.schedulers.multimsg_search import find_multimessage_schedule

        for source in (-1, 99):
            with pytest.raises(InvalidParameterError, match="not a vertex"):
                find_multimessage_schedule(path_graph(4), source, 2, 1, 2)


class TestRequestDefaults:
    def test_k_effective_unbounded(self):
        req = ScheduleRequest(graph=path_graph(9))
        assert req.k_effective == 8
        assert ScheduleRequest(graph=path_graph(9), k=2).k_effective == 2

    def test_round_budget_default_is_minimum(self):
        req = ScheduleRequest(graph=path_graph(9))
        assert req.round_budget == minimum_broadcast_rounds(9)
        assert ScheduleRequest(graph=path_graph(9), rounds=5).round_budget == 5


class TestResultsAreReferenceValid:
    """Acceptance: every registered scheduler's schedules pass the
    *reference* validator."""

    @pytest.mark.parametrize(
        "name,graph,k",
        [
            ("greedy", balanced_ternary_core_tree(2), 4),
            ("search", balanced_ternary_core_tree(2), 4),
            ("store_forward", hypercube(3), 1),
            ("multimsg_search", hypercube(3), 1),
        ],
    )
    def test_schedule_validates(self, name, graph, k):
        result = run_scheduler(name, ScheduleRequest(graph=graph, source=0, k=k))
        assert result.found
        assert result.schedule is not None
        assert result.valid is True
        report = validate_broadcast(graph, result.schedule, k)
        assert report.ok
        assert result.rounds == minimum_broadcast_rounds(graph.n_vertices)
        assert result.seconds >= 0

    def test_store_forward_rejects_non_hypercube(self):
        with pytest.raises(InvalidParameterError):
            run_scheduler("store_forward", ScheduleRequest(graph=star(8), source=0))

    def test_multimsg_two_messages_reported_in_stats(self):
        result = run_scheduler(
            "multimsg_search",
            ScheduleRequest(graph=hypercube(3), k=1, params={"n_messages": 2}),
        )
        assert result.found
        assert result.schedule is None  # M > 1 is not a Definition-1 schedule
        assert result.rounds == 5  # tight lower bound, certified achievable
        assert result.stats["errors"] == []


class TestCrossSchedulerAgreement:
    """Greedy (when it succeeds) and exact search agree on the minimum
    round count — Theorem-1 tree families and small hypercubes,
    k ∈ {1, 2, ∞}."""

    @pytest.mark.parametrize(
        "graph,label",
        [
            (balanced_ternary_core_tree(1), "tern1"),
            (balanced_ternary_core_tree(2), "tern2"),
            (hypercube(2), "q2"),
            (hypercube(3), "q3"),
        ],
    )
    @pytest.mark.parametrize("k", [1, 2, None])
    def test_greedy_agrees_with_search(self, graph, label, k):
        req_kwargs = dict(graph=graph, source=0, k=k, seed=0)
        exact = run_scheduler("search", ScheduleRequest(**req_kwargs))
        greedy = run_scheduler(
            "greedy",
            ScheduleRequest(**req_kwargs, params={"restarts": 150}),
        )
        if greedy.schedule is not None:
            # greedy success ⇒ a minimum-time schedule exists ⇒ the
            # exhaustive search must find one of the same length
            assert exact.schedule is not None
            assert greedy.rounds == exact.rounds
            assert greedy.valid is True and exact.valid is True
        if exact.schedule is None:
            # search refutation is a certificate: greedy cannot succeed
            assert greedy.schedule is None

    @pytest.mark.parametrize("k", [1, 2, None])
    def test_multimsg_single_message_agrees_with_search(self, k):
        graph = hypercube(2)
        exact = run_scheduler("search", ScheduleRequest(graph=graph, source=0, k=k))
        multi = run_scheduler(
            "multimsg_search", ScheduleRequest(graph=graph, source=0, k=k)
        )
        assert (exact.schedule is None) == (multi.schedule is None)
        if exact.schedule is not None:
            assert exact.rounds == multi.rounds

    def test_store_forward_matches_search_on_q2(self):
        graph = hypercube(2)
        exact = run_scheduler("search", ScheduleRequest(graph=graph, source=0, k=1))
        sf = run_scheduler("store_forward", ScheduleRequest(graph=graph, source=0, k=1))
        assert exact.rounds == sf.rounds == 2


class TestScheduleCli:
    def test_schedule_list(self, capsys):
        from repro.cli import main

        assert main(["schedule", "--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_NAMES:
            assert name in out

    def test_schedule_run_search(self, capsys):
        from repro.cli import main

        cmd = "schedule --graph hypercube:3 --scheduler search --k 1 --seed 0"
        code = main(cmd.split())
        assert code == 0
        out = capsys.readouterr().out
        assert "search" in out and "hypercube:3" in out

    def test_schedule_run_greedy_seeded(self, capsys):
        from repro.cli import main

        cmd = "schedule --graph theorem1:2 --scheduler greedy --seed 7 --restarts 100"
        code = main(cmd.split())
        assert code == 0

    def test_schedule_infeasible_exits_nonzero(self):
        from repro.cli import main

        # star from a leaf at k=1 cannot finish in 2 rounds (certificate)
        cmd = "schedule --graph star:4 --source 1 --scheduler search --k 1"
        code = main(cmd.split())
        assert code == 1

    def test_schedule_bad_spec_errors(self, capsys):
        from repro.cli import main

        assert main(["schedule", "--graph", "klein-bottle:4"]) == 2
        assert "unknown graph spec" in capsys.readouterr().err

    def test_schedule_without_graph_errors(self, capsys):
        from repro.cli import main

        assert main(["schedule"]) == 2
        assert "--graph" in capsys.readouterr().err
