"""Unit tests for graph statistics used in the experiment tables."""

from repro.graphs.hypercube import hypercube
from repro.graphs.properties import (
    graph_stats,
    is_regular,
    is_vertex_transitive_sample,
)
from repro.graphs.trees import path_graph, star


class TestGraphStats:
    def test_hypercube_stats(self):
        st = graph_stats(hypercube(4))
        assert st.n_vertices == 16
        assert st.n_edges == 32
        assert st.max_degree == st.min_degree == 4
        assert st.diameter == 4
        assert st.connected
        assert st.mean_degree == 4.0

    def test_diameter_skipped_above_cap(self):
        st = graph_stats(hypercube(4), diameter_cap=8)
        assert st.diameter is None

    def test_diameter_opt_out(self):
        st = graph_stats(hypercube(3), with_diameter=False)
        assert st.diameter is None

    def test_as_row_shape(self):
        row = graph_stats(star(5)).as_row()
        assert row["N"] == 5
        assert row["Δ"] == 4
        assert row["diam"] == 2


class TestRegularity:
    def test_hypercube_regular(self):
        assert is_regular(hypercube(3))

    def test_path_not_regular(self):
        assert not is_regular(path_graph(4))

    def test_transitivity_sample_hypercube(self):
        assert is_vertex_transitive_sample(hypercube(4))

    def test_transitivity_sample_star_fails(self):
        assert not is_vertex_transitive_sample(star(8))
