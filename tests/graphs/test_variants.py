"""Unit tests for classic topology variants (Section 1/3 context)."""

import math

import pytest

from repro.graphs.variants import (
    cube_connected_cycles,
    cycle_graph,
    de_bruijn,
    folded_hypercube,
    star_graph_permutation,
    torus,
)
from repro.types import InvalidParameterError


class TestCycleTorus:
    def test_cycle(self):
        g = cycle_graph(6)
        assert g.n_edges == 6
        assert g.max_degree() == 2 == g.min_degree()
        assert g.diameter() == 3

    def test_cycle_min_size(self):
        with pytest.raises(InvalidParameterError):
            cycle_graph(2)

    def test_torus_regular_degree_4(self):
        g = torus(4, 5)
        assert g.n_vertices == 20
        assert g.max_degree() == 4 == g.min_degree()
        assert g.n_edges == 2 * 20

    def test_torus_diameter(self):
        g = torus(4, 4)
        assert g.diameter() == 4  # floor(4/2) + floor(4/2)

    def test_torus_min_dims(self):
        with pytest.raises(InvalidParameterError):
            torus(2, 5)


class TestFoldedHypercube:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_degree_n_plus_one(self, n):
        g = folded_hypercube(n)
        assert g.max_degree() == n + 1 == g.min_degree()

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_diameter_halved(self, n):
        # classic result: diameter ⌈n/2⌉
        assert folded_hypercube(n).diameter() == math.ceil(n / 2)

    def test_edge_count(self):
        n = 4
        g = folded_hypercube(n)
        assert g.n_edges == n * 2 ** (n - 1) + 2 ** (n - 1)


class TestCCC:
    def test_order_and_degree(self):
        g = cube_connected_cycles(3)
        assert g.n_vertices == 3 * 8
        assert g.max_degree() == 3 == g.min_degree()

    def test_connected(self):
        assert cube_connected_cycles(4).is_connected()

    def test_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            cube_connected_cycles(2)


class TestDeBruijn:
    def test_order(self):
        g = de_bruijn(2, 4)
        assert g.n_vertices == 16

    def test_degree_at_most_2s(self):
        g = de_bruijn(2, 4)
        assert g.max_degree() <= 4

    def test_connected(self):
        assert de_bruijn(2, 5).is_connected()

    def test_diameter_is_word_length(self):
        # classic: diameter of UB(2, n) <= n
        assert de_bruijn(2, 4).diameter() <= 4

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            de_bruijn(1, 3)


class TestStarGraph:
    def test_order_factorial(self):
        g = star_graph_permutation(4)
        assert g.n_vertices == 24

    def test_degree(self):
        g = star_graph_permutation(4)
        assert g.max_degree() == 3 == g.min_degree()

    def test_connected_and_bipartite_diameter_bound(self):
        g = star_graph_permutation(4)
        assert g.is_connected()
        # known: diam(S_n) = ⌊3(n−1)/2⌋ = 4 for n=4
        assert g.diameter() == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            star_graph_permutation(1)
        with pytest.raises(InvalidParameterError):
            star_graph_permutation(8)


class TestCrossedCube:
    def test_n_regular(self):
        from repro.graphs.variants import crossed_cube

        for n in (2, 3, 4, 5, 6):
            g = crossed_cube(n)
            assert g.max_degree() == n == g.min_degree(), n

    def test_diameter_halved(self):
        from repro.graphs.variants import crossed_cube

        # Efe: diam(CQ_n) = ⌈(n+1)/2⌉
        for n in (2, 3, 4, 5, 6, 7):
            assert crossed_cube(n).diameter() == -(-(n + 1) // 2), n

    def test_connected(self):
        from repro.graphs.variants import crossed_cube

        assert crossed_cube(6).is_connected()

    def test_cq2_is_q2(self):
        from repro.graphs.hypercube import hypercube
        from repro.graphs.variants import crossed_cube

        assert crossed_cube(2) == hypercube(2)

    def test_rejects_out_of_range(self):
        import pytest as _pytest

        from repro.graphs.variants import crossed_cube
        from repro.types import InvalidParameterError as IPE

        with _pytest.raises(IPE):
            crossed_cube(0)
        with _pytest.raises(IPE):
            crossed_cube(13)


class TestMobiusCube:
    def test_n_regular(self):
        from repro.graphs.variants import mobius_cube

        for n in (2, 3, 4, 5, 6, 7):
            g = mobius_cube(n)
            assert g.max_degree() == n == g.min_degree(), n

    def test_diameter(self):
        from repro.graphs.variants import mobius_cube

        # 0-Möbius cube: diameter ⌈(n+2)/2⌉ for n >= 4
        for n in (4, 5, 6, 7):
            assert mobius_cube(n).diameter() == -(-(n + 2) // 2), n

    def test_connected(self):
        from repro.graphs.variants import mobius_cube

        assert mobius_cube(7).is_connected()
