"""Tests for Knödel graphs (the §2 minimum-broadcast-graph family)."""

import math

import pytest

from repro.graphs.knodel import (
    knodel_broadcast,
    knodel_dimension_neighbor,
    knodel_graph,
)
from repro.model.validator import validate_broadcast
from repro.schedulers.search import is_k_mlbg_exact
from repro.types import InvalidParameterError


class TestStructure:
    @pytest.mark.parametrize("n", [8, 16, 32, 64])
    def test_regular_log_degree(self, n):
        delta = n.bit_length() - 1
        g = knodel_graph(delta, n)
        assert g.max_degree() == delta == g.min_degree()
        assert g.n_edges == delta * n // 2

    def test_bipartite_halves(self):
        g = knodel_graph(3, 8)
        # all edges cross between the halves
        for u, v in g.edges():
            assert (u < 4) != (v < 4)

    def test_dimension_neighbor_involution(self):
        n = 16
        for v in range(n):
            for d in range(4):
                w = knodel_dimension_neighbor(v, d, n)
                assert knodel_dimension_neighbor(w, d, n) == v
                assert g_has_edge_check(n, v, w)

    def test_rejects_odd_or_bad_delta(self):
        with pytest.raises(InvalidParameterError):
            knodel_graph(2, 7)
        with pytest.raises(InvalidParameterError):
            knodel_graph(5, 16)
        with pytest.raises(InvalidParameterError):
            knodel_graph(0, 8)


def g_has_edge_check(n: int, v: int, w: int) -> bool:
    return knodel_graph(n.bit_length() - 1, n).has_edge(v, w)


class TestBroadcast:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_power_of_two_all_sources(self, n):
        delta = n.bit_length() - 1
        g = knodel_graph(delta, n)
        for s in range(n):
            sched = knodel_broadcast(delta, n, s)
            rep = validate_broadcast(g, sched, 1)
            assert rep.ok, (n, s, rep.errors[:2])
            assert len(sched.rounds) == int(math.log2(n))

    @pytest.mark.parametrize("n", [6, 10, 12, 20, 24])
    def test_non_power_of_two_all_sources(self, n):
        """Unlike Q_n, Knödel graphs are 1-mlbgs at every even order —
        the scheme still completes in ⌈log₂N⌉ rounds."""
        delta = n.bit_length() - 1
        g = knodel_graph(delta, n)
        for s in range(n):
            sched = knodel_broadcast(delta, n, s)
            rep = validate_broadcast(g, sched, 1)
            assert rep.ok, (n, s, rep.errors[:2])

    def test_exact_search_confirms_w38(self):
        """Independent certification: W_{3,8} is a 1-mlbg by exhaustive
        search, matching the scheme-based proof."""
        assert is_k_mlbg_exact(knodel_graph(3, 8), 1)

    def test_fewer_labels_than_hypercube_same_degree(self):
        """Context row: W_{n, 2^n} matches Q_n's degree and edges but also
        covers even non-powers-of-two (tested above)."""
        from repro.graphs.hypercube import hypercube

        g = knodel_graph(4, 16)
        q = hypercube(4)
        assert g.max_degree() == q.max_degree()
        assert g.n_edges == q.n_edges
