"""Unit tests for the graph kernel."""

import pytest

from repro.graphs.base import Graph
from repro.types import InvalidParameterError


def triangle_plus_tail() -> Graph:
    # 0-1-2-0 triangle with a tail 2-3-4
    return Graph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n_vertices == 0 and g.n_edges == 0
        assert g.is_connected()

    def test_add_edge_idempotent(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(InvalidParameterError):
            g.add_edge(1, 1)

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(InvalidParameterError):
            g.add_edge(0, 2)

    def test_frozen_blocks_mutation(self):
        g = Graph(3, [(0, 1)]).freeze()
        with pytest.raises(InvalidParameterError):
            g.add_edge(1, 2)
        with pytest.raises(InvalidParameterError):
            g.remove_edge(0, 1)

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)]).freeze()
        h = g.copy()
        h.add_edge(1, 2)
        assert g.n_edges == 1 and h.n_edges == 2

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_eq_and_hash(self):
        a = Graph(3, [(0, 1)]).freeze()
        b = Graph(3, [(1, 0)]).freeze()
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(TypeError):
            hash(Graph(3, [(0, 1)]))  # unfrozen


class TestQueries:
    def test_degrees(self):
        g = triangle_plus_tail()
        assert g.degree(2) == 3
        assert g.max_degree() == 3
        assert g.min_degree() == 1
        assert list(g.degrees()) == [2, 2, 3, 2, 1]

    def test_degree_histogram(self):
        g = triangle_plus_tail()
        assert g.degree_histogram() == {1: 1, 2: 3, 3: 1}

    def test_edges_sorted_canonical(self):
        g = triangle_plus_tail()
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]

    def test_contains(self):
        g = triangle_plus_tail()
        assert (1, 0) in g
        assert (0, 3) not in g

    def test_neighbors_frozen_and_sorted(self):
        g = triangle_plus_tail()
        assert g.neighbors(2) == frozenset({0, 1, 3})
        assert g.sorted_neighbors(2) == [0, 1, 3]


class TestTraversal:
    def test_bfs_distances(self):
        g = triangle_plus_tail()
        d = g.bfs_distances(0)
        assert list(d) == [0, 1, 1, 2, 3]

    def test_bfs_distances_disconnected(self):
        g = Graph(3, [(0, 1)])
        d = g.bfs_distances(0)
        assert d[2] == -1

    def test_distance(self):
        g = triangle_plus_tail()
        assert g.distance(0, 4) == 3
        assert g.distance(4, 0) == 3
        assert g.distance(1, 1) == 0

    def test_distance_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert g.distance(0, 2) == -1

    def test_shortest_path_valid_and_minimal(self):
        g = triangle_plus_tail()
        p = g.shortest_path(0, 4)
        assert p is not None
        assert p[0] == 0 and p[-1] == 4
        assert len(p) - 1 == g.distance(0, 4)
        assert g.path_is_valid(p)

    def test_shortest_path_none_when_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert g.shortest_path(0, 2) is None

    def test_ball_and_sphere(self):
        g = triangle_plus_tail()
        assert g.ball(0, 0) == {0}
        assert g.ball(0, 1) == {0, 1, 2}
        assert g.sphere(0, 2) == {3}
        assert g.vertices_within(0, 2) == {0, 1, 2, 3}

    def test_ball_negative_radius(self):
        with pytest.raises(InvalidParameterError):
            triangle_plus_tail().ball(0, -1)

    def test_bfs_tree_parents(self):
        g = triangle_plus_tail()
        parent = g.bfs_tree(0)
        assert parent[0] == -1
        assert parent[4] == 3
        # deterministic: neighbour 1 before 2
        assert parent[1] == 0 and parent[2] == 0

    def test_diameter_and_eccentricity(self):
        g = triangle_plus_tail()
        assert g.eccentricity(4) == 3
        assert g.diameter() == 3

    def test_diameter_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError):
            g.diameter()

    def test_is_connected(self):
        assert triangle_plus_tail().is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()


class TestInterop:
    def test_networkx_roundtrip(self):
        g = triangle_plus_tail().freeze()
        nx_g = g.to_networkx()
        back = Graph.from_networkx(nx_g)
        assert back == g

    def test_networkx_distance_crosscheck(self):
        import networkx as nx

        g = triangle_plus_tail()
        nx_g = g.to_networkx()
        for u in range(5):
            lengths = nx.single_source_shortest_path_length(nx_g, u)
            ours = g.bfs_distances(u)
            assert all(lengths[v] == ours[v] for v in range(5))

    def test_subgraph_relation(self):
        g = triangle_plus_tail().freeze()
        sub = Graph(5, [(0, 1), (2, 3)]).freeze()
        assert sub.is_subgraph_of(g)
        assert not g.is_subgraph_of(sub)
        assert g.edge_difference(sub) == {(0, 2), (1, 2), (3, 4)}

    def test_path_edges(self):
        g = triangle_plus_tail()
        assert g.path_edges([0, 2, 3]) == [(0, 2), (2, 3)]
        assert not g.path_is_valid([0, 3])
        assert not g.path_is_valid([])
