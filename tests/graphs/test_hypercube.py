"""Unit tests for the hypercube family (paper, Section 3 preliminaries)."""

import pytest

from repro.graphs.hypercube import (
    dimension_of_edge,
    hypercube,
    hypercube_edge_array,
    subcube_vertices,
)
from repro.types import InvalidParameterError
from repro.util.bits import hamming_distance


class TestHypercube:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_order_and_size(self, n):
        g = hypercube(n)
        assert g.n_vertices == 2**n
        # paper: |E(Q_n)| = n · 2^{n-1}
        assert g.n_edges == n * 2 ** (n - 1)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_regular_degree_n(self, n):
        g = hypercube(n)
        assert g.max_degree() == n == g.min_degree()

    def test_adjacency_iff_hamming_distance_one(self):
        g = hypercube(4)
        for u in range(16):
            for v in range(u + 1, 16):
                assert g.has_edge(u, v) == (hamming_distance(u, v) == 1)

    def test_graph_distance_is_hamming_distance(self):
        g = hypercube(4)
        for u in (0, 5, 15):
            d = g.bfs_distances(u)
            assert all(d[v] == hamming_distance(u, v) for v in range(16))

    def test_diameter(self):
        assert hypercube(5).diameter() == 5

    def test_q0_single_vertex(self):
        g = hypercube(0)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_dimension_bound(self):
        with pytest.raises(InvalidParameterError):
            hypercube(-1)
        with pytest.raises(InvalidParameterError):
            hypercube(25)


class TestEdgeArray:
    def test_matches_graph(self):
        arr = hypercube_edge_array(4)
        g = hypercube(4)
        assert arr.shape == (4 * 8, 2)
        assert {(int(u), int(v)) for u, v in arr} == g.edge_set()

    def test_rows_are_lower_upper(self):
        arr = hypercube_edge_array(3)
        assert all(int(u) < int(v) for u, v in arr)


class TestDimensionOfEdge:
    def test_identifies_dimension(self):
        assert dimension_of_edge(0b0000, 0b0001) == 1
        assert dimension_of_edge(0b1010, 0b0010) == 4

    def test_symmetry(self):
        assert dimension_of_edge(3, 7) == dimension_of_edge(7, 3)

    def test_rejects_non_edge(self):
        with pytest.raises(InvalidParameterError):
            dimension_of_edge(0, 3)
        with pytest.raises(InvalidParameterError):
            dimension_of_edge(5, 5)


class TestSubcube:
    def test_subcube_vertices(self):
        vs = subcube_vertices(4, 0b10, 2)
        assert sorted(int(v) for v in vs) == [0b1000, 0b1001, 0b1010, 0b1011]

    def test_subcubes_partition_cube(self):
        seen = set()
        for prefix in range(4):
            seen |= {int(v) for v in subcube_vertices(4, prefix, 2)}
        assert seen == set(range(16))

    def test_bad_prefix_rejected(self):
        with pytest.raises(InvalidParameterError):
            subcube_vertices(4, 4, 2)
        with pytest.raises(InvalidParameterError):
            subcube_vertices(4, 0, 5)
