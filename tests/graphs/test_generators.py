"""Unit tests for the seeded random graph generators."""

from repro.graphs.generators import (
    random_connected_graph,
    random_spanning_tree_of,
    random_tree,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import is_tree


class TestRandomTree:
    def test_is_tree_various_sizes(self):
        for n in (1, 2, 3, 7, 20, 50):
            g = random_tree(n, seed=n)
            assert g.n_vertices == n
            assert is_tree(g) or n == 1

    def test_deterministic_given_seed(self):
        a = random_tree(20, seed=42)
        b = random_tree(20, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_tree(20, seed=1)
        b = random_tree(20, seed=2)
        assert a != b  # overwhelmingly likely for n=20


class TestRandomConnected:
    def test_connected_with_extra_edges(self):
        g = random_connected_graph(15, extra_edges=10, seed=7)
        assert g.is_connected()
        assert g.n_edges == 14 + 10

    def test_extra_edges_capped_at_complete(self):
        g = random_connected_graph(4, extra_edges=100, seed=3)
        assert g.n_edges <= 6

    def test_deterministic(self):
        assert random_connected_graph(12, 5, seed=9) == random_connected_graph(
            12, 5, seed=9
        )


class TestSpanningTree:
    def test_spanning_tree_of_hypercube(self):
        g = hypercube(4)
        t = random_spanning_tree_of(g, seed=11)
        assert is_tree(t)
        assert t.is_subgraph_of(g)
        assert t.n_vertices == g.n_vertices
