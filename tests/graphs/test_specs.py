"""Textual graph specs (``family[:int...]``) used by the schedule CLI."""

import pytest

from repro.graphs.hypercube import hypercube
from repro.graphs.specs import graph_from_spec, spec_names
from repro.graphs.trees import balanced_ternary_core_tree, path_graph
from repro.types import InvalidParameterError


class TestParsing:
    def test_hypercube(self):
        assert graph_from_spec("hypercube:3") == hypercube(3)

    def test_theorem1(self):
        assert graph_from_spec("theorem1:2") == balanced_ternary_core_tree(2)

    def test_path(self):
        assert graph_from_spec("path:9") == path_graph(9)

    def test_case_and_whitespace_insensitive_name(self):
        assert graph_from_spec(" Path:5") == path_graph(5)

    def test_random_tree_default_seed(self):
        assert graph_from_spec("random-tree:12") == graph_from_spec("random-tree:12:0")
        assert graph_from_spec("random-tree:12:1") != graph_from_spec(
            "random-tree:12:2"
        )

    def test_sparse_hypercube(self):
        g = graph_from_spec("sparse:4:2")
        assert g.n_vertices == 16

    def test_deterministic(self):
        assert graph_from_spec("random-graph:10:4:3") == graph_from_spec(
            "random-graph:10:4:3"
        )


class TestErrors:
    def test_unknown_family(self):
        with pytest.raises(InvalidParameterError, match="unknown graph spec"):
            graph_from_spec("moebius:5")

    def test_non_integer_args(self):
        with pytest.raises(InvalidParameterError, match="must be integers"):
            graph_from_spec("path:five")

    def test_wrong_arity(self):
        with pytest.raises(InvalidParameterError, match="argument count"):
            graph_from_spec("hypercube:3:3:3")

    def test_spec_names_cover_builders(self):
        names = spec_names()
        assert any(u.startswith("hypercube") for u in names)
        assert len(names) == len(set(names))
