"""Unit tests for the tree families (Theorem 1 substrate)."""

import pytest

from repro.graphs.trees import (
    balanced_ternary_core_tree,
    complete_binary_tree,
    is_tree,
    path_graph,
    spider,
    star,
    ternary_core_tree_order,
    tree_center,
)
from repro.types import InvalidParameterError


class TestBasicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.n_edges == 4 and is_tree(g)
        assert g.diameter() == 4

    def test_path_single(self):
        g = path_graph(1)
        assert g.n_vertices == 1 and g.n_edges == 0

    def test_star(self):
        g = star(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))
        assert g.diameter() == 2

    def test_spider(self):
        g = spider([2, 3, 1])
        assert g.n_vertices == 7
        assert g.degree(0) == 3
        assert is_tree(g)
        assert g.diameter() == 5

    def test_spider_rejects_bad_legs(self):
        with pytest.raises(InvalidParameterError):
            spider([])
        with pytest.raises(InvalidParameterError):
            spider([0, 2])

    def test_complete_binary_tree(self):
        g = complete_binary_tree(3)
        assert g.n_vertices == 15
        assert is_tree(g)
        assert g.max_degree() == 3
        assert g.degree(0) == 2  # root
        assert g.diameter() == 6


class TestTernaryCoreTree:
    @pytest.mark.parametrize("h", [1, 2, 3, 4, 5])
    def test_order_formula(self, h):
        g = balanced_ternary_core_tree(h)
        assert g.n_vertices == 3 * 2**h - 2 == ternary_core_tree_order(h)

    @pytest.mark.parametrize("h", [2, 3, 4, 5])
    def test_max_degree_exactly_three(self, h):
        assert balanced_ternary_core_tree(h).max_degree() == 3

    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    def test_diameter_at_most_2h(self, h):
        g = balanced_ternary_core_tree(h)
        assert g.diameter() <= 2 * h
        # and exactly 2h for the balanced construction
        assert g.diameter() == 2 * h

    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    def test_is_tree(self, h):
        assert is_tree(balanced_ternary_core_tree(h))

    def test_h1_is_star(self):
        g = balanced_ternary_core_tree(1)
        assert g.n_vertices == 4
        assert g.degree(0) == 3

    def test_centre_is_vertex_zero(self):
        g = balanced_ternary_core_tree(3)
        assert tree_center(g) == [0]

    def test_rejects_h0(self):
        with pytest.raises(InvalidParameterError):
            balanced_ternary_core_tree(0)
        with pytest.raises(InvalidParameterError):
            ternary_core_tree_order(0)


class TestTreePredicates:
    def test_is_tree_rejects_cycle(self):
        from repro.graphs.variants import cycle_graph

        assert not is_tree(cycle_graph(4))

    def test_is_tree_rejects_disconnected(self):
        from repro.graphs.base import Graph

        assert not is_tree(Graph(4, [(0, 1), (2, 3)]))

    def test_tree_center_path_even(self):
        # P4 has a 2-vertex centre
        assert tree_center(path_graph(4)) == [1, 2]

    def test_tree_center_path_odd(self):
        assert tree_center(path_graph(5)) == [2]

    def test_tree_center_rejects_non_tree(self):
        from repro.graphs.variants import cycle_graph

        with pytest.raises(InvalidParameterError):
            tree_center(cycle_graph(4))

    def test_tree_center_tiny(self):
        assert tree_center(path_graph(1)) == [0]
        assert tree_center(path_graph(2)) == [0, 1]
