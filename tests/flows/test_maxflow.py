"""Unit tests for the Dinic max-flow substrate."""

import pytest

from repro.flows.maxflow import FlowNetwork
from repro.types import InvalidParameterError


class TestBasicFlows:
    def test_single_arc(self):
        net = FlowNetwork(2)
        net.add_arc(0, 1, 5)
        assert net.max_flow(0, 1) == 5

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_arc(0, 1, 5)
        net.add_arc(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_arc(0, 1, 2)
        net.add_arc(1, 3, 2)
        net.add_arc(0, 2, 3)
        net.add_arc(2, 3, 3)
        assert net.max_flow(0, 3) == 5

    def test_classic_diamond_with_cross_edge(self):
        # needs augmenting through the cross edge
        net = FlowNetwork(4)
        net.add_arc(0, 1, 1)
        net.add_arc(0, 2, 1)
        net.add_arc(1, 2, 1)
        net.add_arc(1, 3, 1)
        net.add_arc(2, 3, 1)
        assert net.max_flow(0, 3) == 2

    def test_disconnected_zero(self):
        net = FlowNetwork(3)
        net.add_arc(0, 1, 4)
        assert net.max_flow(0, 2) == 0

    def test_source_equals_sink(self):
        net = FlowNetwork(2)
        with pytest.raises(InvalidParameterError):
            net.max_flow(1, 1)

    def test_arc_validation(self):
        net = FlowNetwork(2)
        with pytest.raises(InvalidParameterError):
            net.add_arc(0, 5, 1)
        with pytest.raises(InvalidParameterError):
            net.add_arc(0, 1, -1)


class TestUndirectedEdges:
    def test_undirected_capacity_one_each_way(self):
        net = FlowNetwork(2)
        net.add_undirected_unit_edge(0, 1)
        assert net.max_flow(0, 1) == 1

    def test_undirected_path(self):
        net = FlowNetwork(4)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            net.add_undirected_unit_edge(u, v)
        assert net.max_flow(0, 3) == 1

    def test_flow_readback(self):
        net = FlowNetwork(2)
        net.add_arc(0, 1, 3)
        net.max_flow(0, 1)
        assert net.flow_on(0, 0) == 3


class TestAgainstNetworkx:
    def test_random_networks_match_networkx(self):
        import random

        import networkx as nx

        rng = random.Random(7)
        for _trial in range(10):
            n = 8
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(n))
            net = FlowNetwork(n)
            for _ in range(20):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                cap = rng.randint(1, 5)
                net.add_arc(u, v, cap)
                if nxg.has_edge(u, v):
                    nxg[u][v]["capacity"] += cap
                else:
                    nxg.add_edge(u, v, capacity=cap)
            expected = nx.maximum_flow_value(nxg, 0, n - 1) if nxg.has_node(0) else 0
            assert net.max_flow(0, n - 1) == expected
