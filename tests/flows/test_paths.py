"""Unit tests for round packing via max-flow."""

import pytest

from repro.flows.paths import decompose_paths, round_packing_bound
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import path_graph, star
from repro.types import InvalidParameterError, canonical_edge


class TestPackingBound:
    def test_single_informed_is_one(self):
        g = hypercube(3)
        assert round_packing_bound(g, {0}) == 1

    def test_star_centre_plus_leaf(self):
        g = star(4)
        # centre and one leaf informed: leaf can call through centre
        assert round_packing_bound(g, {0, 1}) == 2

    def test_path_cut_limits(self):
        g = path_graph(8)
        # informed {0,1}: the edge (1,2) is a 1-cut toward the 6 targets
        assert round_packing_bound(g, {0, 1}) == 1
        # informed {0,4}: both sides open
        assert round_packing_bound(g, {0, 4}) == 2

    def test_no_targets(self):
        g = path_graph(3)
        assert round_packing_bound(g, {0, 1, 2}) == 0

    def test_requires_informed(self):
        with pytest.raises(InvalidParameterError):
            round_packing_bound(path_graph(3), set())

    def test_explicit_targets(self):
        g = star(5)
        assert round_packing_bound(g, {0}, targets={3}) == 1


class TestDecomposition:
    def _check_paths(self, g, informed, paths):
        used = set()
        sources = set()
        receivers = set()
        for p in paths:
            assert g.path_is_valid(p)
            assert p[0] in informed
            assert p[-1] not in informed
            assert p[0] not in sources
            assert p[-1] not in receivers
            sources.add(p[0])
            receivers.add(p[-1])
            for a, b in zip(p, p[1:]):
                e = canonical_edge(a, b)
                assert e not in used
                used.add(e)

    def test_paths_realize_bound(self):
        for g, informed in [
            (star(6), {0, 1}),
            (path_graph(9), {0, 4}),
            (hypercube(3), {0, 7}),
            (hypercube(4), {0, 3, 5, 9}),
        ]:
            bound = round_packing_bound(g, set(informed))
            paths = decompose_paths(g, set(informed))
            assert len(paths) == bound
            self._check_paths(g, informed, paths)

    def test_k13_round2_case(self):
        """The coordination case from the scheduler design: star centre +
        leaf both informed can cover both remaining leaves at once."""
        g = star(4)
        paths = decompose_paths(g, {0, 1})
        assert len(paths) == 2
        self._check_paths(g, {0, 1}, paths)

    def test_empty_targets(self):
        g = path_graph(3)
        assert decompose_paths(g, {0, 1, 2}) == []
