"""Unit tests for the core datatypes (Call / Round / Schedule)."""

import pytest

from repro.types import (
    Call,
    InvalidScheduleError,
    Round,
    Schedule,
    canonical_edge,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_equal_endpoints_preserved(self):
        assert canonical_edge(3, 3) == (3, 3)


class TestCall:
    def test_direct_call(self):
        c = Call.direct(1, 2)
        assert c.source == 1 and c.receiver == 2
        assert c.length == 1
        assert c.edges() == [(1, 2)]

    def test_via_path(self):
        c = Call.via((0, 2, 10))
        assert c.source == 0 and c.receiver == 10
        assert c.length == 2
        assert c.edges() == [(0, 2), (2, 10)]

    def test_path_must_match_endpoints(self):
        with pytest.raises(InvalidScheduleError):
            Call(source=0, path=(1, 2), receiver=2)
        with pytest.raises(InvalidScheduleError):
            Call(source=1, path=(1, 2), receiver=3)

    def test_single_vertex_path_rejected(self):
        with pytest.raises(InvalidScheduleError):
            Call(source=1, path=(1,), receiver=1)

    def test_edges_are_canonical(self):
        c = Call.via((5, 3, 7))
        assert c.edges() == [(3, 5), (3, 7)]


class TestRound:
    def test_iteration_and_len(self):
        r = Round((Call.direct(0, 1), Call.direct(2, 3)))
        assert len(r) == 2
        assert [c.receiver for c in r] == [1, 3]

    def test_sources_receivers(self):
        r = Round((Call.direct(0, 1), Call.via((2, 3, 4))))
        assert r.sources() == [0, 2]
        assert r.receivers() == [1, 4]
        assert r.max_call_length() == 2

    def test_empty_round(self):
        r = Round(())
        assert len(r) == 0
        assert r.max_call_length() == 0


class TestSchedule:
    def make(self):
        s = Schedule(source=0)
        s.append_round([Call.direct(0, 1)])
        s.append_round([Call.direct(0, 2), Call.via((1, 0, 3))])
        return s

    def test_counters(self):
        s = self.make()
        assert s.num_rounds == 2
        assert s.num_calls == 3
        assert s.max_call_length() == 2

    def test_informed_after(self):
        s = self.make()
        assert s.informed_after(0) == {0}
        assert s.informed_after(1) == {0, 1}
        assert s.all_informed() == {0, 1, 2, 3}

    def test_iter(self):
        s = self.make()
        assert [len(r) for r in s] == [1, 2]
