"""Property-based agreement for the batch all-sources engine.

Two pinned equivalences:

1. **Translated ≡ direct**: on randomly drawn ``(n, m)`` / ``(k, n,
   thresholds)`` constructions, every schedule the batch engine derives
   by XOR-translating a coset representative's call arrays materializes
   (caller-sorted) to exactly the schedule ``broadcast_schedule``
   generates for that source directly.

2. **Batch validator ≡ reference**: on schedules drawn from the real
   schemes and optionally corrupted by a structural mutation, the batch
   validator returns the same verdict, the same error-string list, and
   the same statistics as the reference validator, for every schedule of
   the batch.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.engine.batch import (
    BatchValidator,
    all_sources_schedules,
    translation_group,
    validate_all_sources,
)
from repro.model.validator import validate_broadcast
from repro.types import Call, Round, Schedule

COMMON = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def constructions(draw):
    """A random small sparse hypercube: base (k=2) or recursive (k=3)."""
    if draw(st.booleans()):
        n = draw(st.integers(min_value=3, max_value=6))
        m = draw(st.integers(min_value=1, max_value=n - 1))
        return construct_base(n, m)
    n = draw(st.integers(min_value=5, max_value=7))
    n1 = draw(st.integers(min_value=1, max_value=n - 3))
    n2 = draw(st.integers(min_value=n1 + 1, max_value=n - 1))
    return construct(3, n, (n1, n2))


# -- 1. translated ≡ direct --------------------------------------------------


@COMMON
@given(sh=constructions(), data=st.data())
def test_translated_schedules_equal_direct_generation(sh, data):
    n_sources = min(sh.n_vertices, 6)
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=sh.n_vertices - 1),
            min_size=1,
            max_size=n_sources,
            unique=True,
        )
    )
    stacks = all_sources_schedules(sh, sources=sources)
    seen = set()
    for stack in stacks:
        for i in range(stack.n_schedules):
            src = int(stack.sources[i])
            seen.add(src)
            assert stack.to_schedule(i, sort_calls=True) == broadcast_schedule(sh, src)
    assert seen == set(sources)


@COMMON
@given(sh=constructions())
def test_translation_group_preserves_edges(sh):
    edges = sh.graph.edge_set()
    for t in translation_group(sh).tolist():
        translated = {(min(u ^ t, v ^ t), max(u ^ t, v ^ t)) for u, v in edges}
        assert translated == edges


@COMMON
@given(sh=constructions())
def test_validate_all_sources_equals_per_source_loop(sh):
    outcome = validate_all_sources(sh)
    for s, ok, rounds, max_len in zip(
        outcome.sources, outcome.ok, outcome.rounds, outcome.max_call_lengths
    ):
        sched = broadcast_schedule(sh, s)
        ref = validate_broadcast(sh.graph, sched, sh.k)
        assert ok == ref.ok
        assert rounds == len(sched.rounds)
        assert max_len == ref.max_call_length


# -- 2. batch validator ≡ reference under corruption -------------------------


def _mutate(g, sched, rng):
    """One random structural mutation (or none); returns the schedule."""
    out = Schedule(source=sched.source, rounds=list(sched.rounds))
    mode = rng.randrange(7)
    if mode == 0:
        return out  # untouched
    r = rng.randrange(len(out.rounds))
    calls = list(out.rounds[r].calls)
    if mode == 1 and calls:  # duplicate call: dup caller + edge + receiver
        calls.append(calls[rng.randrange(len(calls))])
    elif mode == 2 and calls:  # drop a call → incomplete broadcast
        calls.pop(rng.randrange(len(calls)))
    elif mode == 3 and calls:  # reversed call: uninformed caller
        c = calls[rng.randrange(len(calls))]
        calls.append(Call.via(tuple(reversed(c.path))))
    elif mode == 4:  # long path through the graph (may break V1/V2)
        u = rng.randrange(g.n_vertices)
        walk = [u]
        for _ in range(3):
            nbrs = g.sorted_neighbors(walk[-1])
            if not nbrs:
                break
            walk.append(nbrs[rng.randrange(len(nbrs))])
        if len(walk) > 1:
            calls.append(Call.via(walk))
    elif mode == 5:  # duplicated round
        out.rounds.append(out.rounds[r])
        return out
    elif mode == 6:  # bad source
        out.source = g.n_vertices + 1
    out.rounds[r] = Round(tuple(calls))
    return out


@COMMON
@given(
    sh=constructions(),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    vertex_disjoint=st.booleans(),
)
def test_batch_validator_equals_reference_under_corruption(sh, seed, vertex_disjoint):
    g = sh.graph
    rng = random.Random(seed)
    sources = [rng.randrange(g.n_vertices) for _ in range(4)]
    schedules = [_mutate(g, broadcast_schedule(sh, s), rng) for s in sources]
    reports = BatchValidator(g).validate_many(
        schedules, sh.k, vertex_disjoint=vertex_disjoint
    )
    for sched, rep in zip(schedules, reports):
        ref = validate_broadcast(g, sched, sh.k, vertex_disjoint=vertex_disjoint)
        assert rep.ok == ref.ok
        assert rep.errors == ref.errors
        assert rep.rounds == ref.rounds
        assert rep.informed_per_round == ref.informed_per_round
        assert rep.max_call_length == ref.max_call_length
