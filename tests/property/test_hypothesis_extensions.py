"""Property-based tests for the extension subsystems (gossip, wormhole,
serialization, faults, multi-message bounds)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.gossip import (
    hypercube_gossip,
    minimum_gossip_rounds,
    sparse_hypercube_gossip,
    validate_gossip,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.knodel import knodel_broadcast, knodel_graph
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.model.faults import (
    attempt_broadcast_with_failures,
    failed_edge_sample,
    remove_edges,
)
from repro.model.validator import validate_broadcast
from repro.schedulers.multimsg_search import multimessage_lower_bound
from repro.wormhole import WormholeNetwork

COMMON = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestGossipProperties:
    @COMMON
    @given(st.integers(1, 7))
    def test_hypercube_gossip_always_optimal(self, n):
        sched = hypercube_gossip(n)
        rep = validate_gossip(hypercube(n), sched, 1, require_minimum_time=True)
        assert rep.ok and rep.complete

    @COMMON
    @given(st.integers(3, 8), st.data())
    def test_sparse_gossip_always_completes(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        sched = sparse_hypercube_gossip(sh)
        rep = validate_gossip(sh.graph, sched, 3)
        assert rep.ok and rep.complete
        assert sched.num_rounds >= minimum_gossip_rounds(sh.n_vertices)

    @COMMON
    @given(st.integers(2, 64))
    def test_minimum_gossip_rounds_doubling(self, n):
        r = minimum_gossip_rounds(n)
        assert (1 << r) >= n
        assert (1 << (r - 1)) < n


class TestWormholeProperties:
    @COMMON
    @given(st.integers(1, 12), st.integers(1, 32))
    def test_uncontended_latency_formula(self, links, flits):
        from repro.graphs.trees import path_graph

        net = WormholeNetwork(path_graph(links + 1))
        worm = net.add_worm(tuple(range(links + 1)), flits)
        assert net.run() == links + flits - 1
        assert worm.tail_arrival == WormholeNetwork.uncontended_latency(links, flits)

    @COMMON
    @given(st.integers(3, 7), st.integers(1, 8), st.data())
    def test_schedule_latency_equals_analytic(self, n, flits, data):
        from repro.wormhole import schedule_latency

        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        sched = broadcast_schedule(sh, data.draw(st.integers(0, 2**n - 1)))
        lat = schedule_latency(sh.graph, sched, flits)
        expected = sum(max(c.length for c in rnd) + flits - 1 for rnd in sched.rounds)
        assert lat.total_cycles == expected


class TestSerializationProperties:
    @COMMON
    @given(st.integers(3, 7), st.data())
    def test_graph_roundtrip(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        g = construct_base(n, m).graph
        assert graph_from_dict(graph_to_dict(g)) == g

    @COMMON
    @given(st.integers(3, 6), st.data())
    def test_schedule_roundtrip_preserves_validity(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        s = data.draw(st.integers(0, 2**n - 1))
        sched = broadcast_schedule(sh, s)
        back = schedule_from_dict(schedule_to_dict(sched))
        assert validate_broadcast(sh.graph, back, 2).ok


class TestFaultProperties:
    @COMMON
    @given(st.integers(4, 7), st.integers(0, 6), st.integers(0, 100))
    def test_repairs_are_always_sound(self, n, f, seed):
        """Whatever the failure pattern, a returned repair validates on
        the surviving graph — no silent corruption."""
        sh = construct_base(n, 2)
        g = sh.graph
        failed = failed_edge_sample(g, f, seed=seed)
        sched = attempt_broadcast_with_failures(sh, 0, failed)
        if sched is not None:
            survivor = remove_edges(g, failed)
            assert validate_broadcast(survivor, sched, 2).ok


class TestKnodelProperties:
    @COMMON
    @given(st.integers(2, 32), st.data())
    def test_knodel_broadcast_valid_every_even_order(self, half, data):
        n = 2 * half
        delta = n.bit_length() - 1
        g = knodel_graph(delta, n)
        s = data.draw(st.integers(0, n - 1))
        rep = validate_broadcast(g, knodel_broadcast(delta, n, s), 1)
        assert rep.ok


class TestMultiMessageBounds:
    @COMMON
    @given(st.integers(2, 128), st.integers(1, 6))
    def test_lower_bound_at_least_single_message(self, n, m):
        from repro.model.validator import minimum_broadcast_rounds

        assert multimessage_lower_bound(n, m) >= minimum_broadcast_rounds(n)

    @COMMON
    @given(st.integers(2, 128), st.integers(1, 5))
    def test_lower_bound_superadditive_increments(self, n, m):
        a = multimessage_lower_bound(n, m)
        b = multimessage_lower_bound(n, m + 1)
        assert b >= a + 1 or b == a  # monotone; emission adds ≤ ... per msg
        assert b >= a
