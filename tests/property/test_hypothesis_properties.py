"""Property-based tests (hypothesis) on the core invariants.

These exercise randomly drawn parameters/vertices against the paper's
structural invariants: Condition A, the flat edge rule, routing contracts,
scheme validity, bound sandwiches, and codec round-trips.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coding.hamming import hamming_syndrome
from repro.core.bounds import (
    ball_size_bound,
    moore_degree_lower_bound,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base, partition_dimensions
from repro.core.params import (
    ceil_root_of_power,
    degree_formula_for_thresholds,
    theorem5_m_star,
    theorem7_params,
)
from repro.core.routing import reach_and_flip
from repro.domination.labeling import lemma2_labeling
from repro.model.validator import validate_broadcast
from repro.util.bits import (
    bits_to_int,
    flip_dim,
    hamming_distance,
    int_to_bits,
    popcount,
    prefix_value,
    suffix_value,
    to_bitstring,
)

COMMON = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestBitProperties:
    @COMMON
    @given(st.integers(0, 2**20 - 1), st.integers(1, 20))
    def test_flip_dim_involution_and_distance(self, u, i):
        v = flip_dim(u, i)
        assert flip_dim(v, i) == u
        assert hamming_distance(u, v) == 1

    @COMMON
    @given(st.integers(0, 2**16 - 1))
    def test_bits_roundtrip(self, u):
        assert bits_to_int(int_to_bits(u, 16)) == u
        assert int(to_bitstring(u, 16), 2) == u

    @COMMON
    @given(st.integers(0, 2**18 - 1), st.integers(0, 18))
    def test_prefix_suffix_reconstruct(self, u, m):
        assert (prefix_value(u, m) << m) | suffix_value(u, m) == u

    @COMMON
    @given(st.integers(0, 2**18 - 1), st.integers(0, 2**18 - 1))
    def test_popcount_triangle(self, u, v):
        # Hamming distance satisfies the triangle inequality via 0
        assert hamming_distance(u, v) <= popcount(u) + popcount(v)


class TestLabelingProperties:
    @COMMON
    @given(st.integers(1, 9))
    def test_lemma2_satisfies_condition_a(self, m):
        lab = lemma2_labeling(m)
        assert lab.verify()
        assert lab.num_labels >= m // 2 + 1

    @COMMON
    @given(st.integers(2, 3), st.integers(0, 2**7 - 1), st.integers(1, 7))
    def test_syndrome_flip_identity(self, p, u, j):
        m = (1 << p) - 1
        u %= 1 << m
        j = 1 + (j - 1) % m
        assert hamming_syndrome(u ^ (1 << (j - 1)), p) == hamming_syndrome(u, p) ^ j


class TestConstructionProperties:
    @COMMON
    @given(st.integers(3, 9), st.data())
    def test_base_construction_invariants(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        g = sh.graph
        # spanning subgraph of Q_n with the formula degree
        assert g.n_vertices == 2**n
        assert g.max_degree() == sh.degree_formula()
        assert g.is_connected()
        u = data.draw(st.integers(0, 2**n - 1))
        for dim in range(1, n + 1):
            v = flip_dim(u, dim)
            assert g.has_edge(u, v) == sh.has_edge_rule(u, dim)

    @COMMON
    @given(st.integers(5, 9), st.data())
    def test_k3_routing_contract(self, n, data):
        n1 = data.draw(st.integers(1, n - 2))
        n2 = data.draw(st.integers(n1 + 1, n - 1))
        sh = construct(3, n, (n1, n2))
        u = data.draw(st.integers(0, 2**n - 1))
        dim = data.draw(st.integers(1, n))
        path = reach_and_flip(sh, u, dim)
        level = sh.level_owning(dim)
        limit = 1 if level is None else level.t
        assert len(path) - 1 <= limit
        assert sh.graph.path_is_valid(path)
        z = path[-1]
        assert (z >> dim) == (u >> dim)
        assert (z ^ u) & (1 << (dim - 1))

    @COMMON
    @given(st.integers(3, 8), st.data())
    def test_broadcast2_random_instances(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        s = data.draw(st.integers(0, 2**n - 1))
        sched = broadcast_schedule(sh, s)
        rep = validate_broadcast(sh.graph, sched, 2)
        assert rep.ok
        assert len(sched.rounds) == n

    @COMMON
    @given(st.integers(2, 20), st.integers(1, 19), st.integers(1, 8))
    def test_partition_balanced(self, high, low_delta, parts):
        low = high - min(low_delta, high - 1)
        ps = partition_dimensions(high, low, parts)
        sizes = [len(p) for p in ps]
        assert max(sizes) - min(sizes) <= 1
        assert sorted(d for p in ps for d in p) == list(range(low + 1, high + 1))


class TestBoundProperties:
    @COMMON
    @given(st.integers(2, 120))
    def test_theorem5_sandwich(self, n):
        m = theorem5_m_star(n)
        delta = degree_formula_for_thresholds(n, (m,))
        assert moore_degree_lower_bound(n, 2) <= delta <= upper_bound_theorem5(n)

    @COMMON
    @given(st.integers(3, 6), st.data())
    def test_theorem7_sandwich(self, k, data):
        n = data.draw(st.integers(k + 1, 100))
        thr = theorem7_params(k, n)
        delta = degree_formula_for_thresholds(n, thr)
        assert delta <= upper_bound_theorem7(n, k)
        assert delta >= moore_degree_lower_bound(n, k)

    @COMMON
    @given(st.integers(1, 200), st.integers(1, 6), st.integers(1, 6))
    def test_ceil_root_defining_property(self, base, num, den):
        x = ceil_root_of_power(base, num, den)
        assert x**den >= base**num
        if x > 0:
            assert (x - 1) ** den < base**num

    @COMMON
    @given(st.integers(2, 10), st.integers(1, 6))
    def test_ball_bound_monotone(self, delta, k):
        assert ball_size_bound(delta, k) <= ball_size_bound(delta + 1, k)
        assert ball_size_bound(delta, k) <= ball_size_bound(delta, k + 1)


class TestScheduleProperties:
    @COMMON
    @given(st.integers(4, 7), st.data())
    def test_schedule_receivers_partition_vertices(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        s = data.draw(st.integers(0, 2**n - 1))
        sched = broadcast_schedule(sh, s)
        receivers = [c.receiver for rnd in sched.rounds for c in rnd]
        assert len(receivers) == len(set(receivers))
        assert set(receivers) | {s} == set(range(2**n))

    @COMMON
    @given(st.integers(4, 7), st.data())
    def test_exact_doubling_always(self, n, data):
        m = data.draw(st.integers(1, n - 1))
        sh = construct_base(n, m)
        s = data.draw(st.integers(0, 2**n - 1))
        rep = validate_broadcast(sh.graph, broadcast_schedule(sh, s), 2)
        assert rep.informed_per_round == [2**t for t in range(1, n + 1)]
