"""Property-based agreement: engine kernels ≡ legacy scheduler primitives.

The acceptance pin for the shared scheduling engine: on randomly drawn
connected graphs, with random used-edge sets and target sets, the
CSR-native kernels return *identical* output to the legacy set-based
``_reachable_paths`` / ``_enumerate_paths`` (kept verbatim in
:mod:`repro.schedulers.legacy`), and the component/capacity machinery
agrees exactly.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.kernels import GraphKernels
from repro.graphs.generators import random_connected_graph
from repro.schedulers import legacy
from repro.util.bits import mask_from_indices

COMMON = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def draw_instance(n, extra, seed):
    graph = random_connected_graph(n, extra, seed=seed)
    rng = random.Random(seed * 7919 + n)
    edges = list(graph.edges())
    used = {e for e in edges if rng.random() < 0.3}
    caller = rng.randrange(n)
    targets = {v for v in range(n) if v != caller and rng.random() < 0.5}
    return graph, used, caller, targets


@COMMON
@given(
    n=st.integers(4, 14),
    extra=st.integers(0, 8),
    seed=st.integers(0, 10_000),
    k=st.integers(1, 4),
)
def test_reachable_paths_equivalence(n, extra, seed, k):
    graph, used, caller, _targets = draw_instance(n, extra, seed)
    kern = GraphKernels(graph)
    used_mask = mask_from_indices(kern.edge_id(u, v) for u, v in used)
    assert kern.reachable_paths(caller, k, used_mask) == legacy.reachable_paths(
        graph, caller, k, set(used)
    )


@COMMON
@given(
    n=st.integers(4, 12),
    extra=st.integers(0, 6),
    seed=st.integers(0, 10_000),
    k=st.integers(1, 3),
)
def test_enumerate_paths_equivalence(n, extra, seed, k):
    graph, used, caller, targets = draw_instance(n, extra, seed)
    kern = GraphKernels(graph)
    used_mask = mask_from_indices(kern.edge_id(u, v) for u, v in used)
    assert kern.enumerate_paths(
        caller, k, used_mask, mask_from_indices(targets)
    ) == legacy.enumerate_paths(graph, caller, k, set(used), targets)


@COMMON
@given(
    n=st.integers(4, 14),
    extra=st.integers(0, 8),
    seed=st.integers(0, 10_000),
    rounds_left=st.integers(0, 5),
)
def test_components_and_capacity_equivalence(n, extra, seed, rounds_left):
    graph, _used, _caller, informed = draw_instance(n, extra, seed)
    informed = informed | {0}
    kern = GraphKernels(graph)
    mask = mask_from_indices(informed)

    summary = kern.components(mask)
    expected = legacy.uninformed_components(graph, informed)
    assert [
        set(summary.members(label).tolist())
        for label in range(summary.n_components)
    ] == [comp for comp, _ in expected]
    assert summary.boundaries == [len(b) for _, b in expected]

    assert kern.capacity_ok(mask, rounds_left) == legacy.capacity_ok(
        graph, frozenset(informed), rounds_left
    )
    assert kern.component_penalty(mask, rounds_left) == pytest.approx(
        legacy.component_penalty(graph, informed, rounds_left)
    )
