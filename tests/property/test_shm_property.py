"""Property pins for the zero-copy plane store.

Two invariants over random schedules, corruptions, and backends:

* **Byte-identity** — a frame and graph reattached from shared planes
  validate to the same verdict, the same error-string list, and the
  same statistics as the in-process originals.
* **No leaks** — every example leaves ``/dev/shm`` exactly as it found
  it, however the example ends.
"""

import os
import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_validator_fast_property import MUTATIONS

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.engine.shm import PlaneRegistry, detach_all
from repro.model.validator_fast import FastValidator

COMMON = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

BACKENDS = st.sampled_from(["shm", "mmap"])


def _shm_names():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:
        return set()


def _report_tuple(rep):
    return (rep.ok, rep.errors, rep.rounds, rep.informed_per_round, rep.max_call_length)


class TestAttachedValidationIdentity:
    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
        mut_idx=st.integers(0, len(MUTATIONS) - 1),
        rng_seed=st.integers(0, 10**6),
        backend=BACKENDS,
    )
    def test_same_verdict_and_errors(
        self, n, m_seed, src_seed, mut_idx, rng_seed, backend
    ):
        m = 1 + m_seed % (n - 1)
        sh = construct_base(n, m)
        g = sh.graph
        sched = broadcast_schedule(sh, src_seed % g.n_vertices)
        mutated, k = MUTATIONS[mut_idx](g, sched, 2, random.Random(rng_seed))

        before = _shm_names()
        with PlaneRegistry(backend) as reg:
            attached_graph = reg.export_graph(g).attach()
            attached_frame = reg.export_frame(mutated.to_frame()).attach()
            # fresh frames per engine: frames cache screen verdicts
            local = FastValidator(g).validate(mutated.to_frame(), k)
            shared = FastValidator(attached_graph).validate(attached_frame, k)
            assert _report_tuple(shared) == _report_tuple(local)
        # drop every view before detaching so the segments can unmap
        del attached_graph, attached_frame
        detach_all()
        assert _shm_names() <= before


class TestPlaneRoundTrip:
    @COMMON
    @given(
        data=st.lists(st.integers(-(2**62), 2**62), max_size=64),
        two_d=st.booleans(),
        backend=BACKENDS,
    )
    def test_arrays_survive_export_attach(self, data, two_d, backend):
        arr = np.array(data, dtype=np.int64)
        if two_d and arr.size and arr.size % 2 == 0:
            arr = arr.reshape(2, -1)
        before = _shm_names()
        with PlaneRegistry(backend) as reg:
            view = reg.export(arr).attach()
            np.testing.assert_array_equal(view, arr)
            assert view.dtype == arr.dtype and view.shape == arr.shape
            assert not view.flags.writeable
        del view
        detach_all()
        assert _shm_names() <= before
