"""Property-based agreement: fast-path validator ≡ reference validator.

Strategy: generate *valid* schedules from the real schemes (randomly
drawn construction parameters and sources), then optionally corrupt them
with a randomly chosen structural mutation (shared-edge / duplicate
caller, shared-receiver, uninformed-caller, over-length, bad-path,
dropped/duplicated rounds).  On every instance the two validators must
return the same verdict, the same error-string list (hence the same
first error class), and the same statistics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.model.validator import validate_broadcast
from repro.model.validator_fast import (
    FastValidator,
    classify_error,
    validate_broadcast_fast,
)
from repro.types import Call, Round, Schedule

COMMON = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def copy_schedule(sched: Schedule) -> Schedule:
    return Schedule(source=sched.source, rounds=list(sched.rounds))


def replace_round(sched: Schedule, idx: int, calls: tuple[Call, ...]) -> None:
    sched.rounds[idx] = Round(calls)


# -- mutations: each returns (schedule, k) ----------------------------------

def mut_identity(g, sched, k, rng):
    return sched, k


def mut_duplicate_call(g, sched, k, rng):
    """Same caller, path and receiver twice → duplicate caller + shared
    edge + shared receiver, all in one round."""
    out = copy_schedule(sched)
    r = rng.randrange(len(out.rounds))
    calls = out.rounds[r].calls
    if not calls:
        return out, k
    replace_round(out, r, calls + (calls[rng.randrange(len(calls))],))
    return out, k


def mut_reverse_call(g, sched, k, rng):
    """Reversed path: the new caller is the just-informed receiver."""
    out = copy_schedule(sched)
    r = rng.randrange(len(out.rounds))
    calls = list(out.rounds[r].calls)
    if not calls:
        return out, k
    i = rng.randrange(len(calls))
    calls[i] = Call.via(tuple(reversed(calls[i].path)))
    replace_round(out, r, tuple(calls))
    return out, k


def mut_drop_round(g, sched, k, rng):
    """Removing a round breaks completeness and/or minimum time, and can
    leave later callers uninformed."""
    out = copy_schedule(sched)
    if len(out.rounds) <= 1:
        return out, k
    del out.rounds[rng.randrange(len(out.rounds))]
    return out, k


def mut_swap_rounds(g, sched, k, rng):
    """Swapping adjacent rounds makes later-phase callers uninformed."""
    out = copy_schedule(sched)
    if len(out.rounds) < 2:
        return out, k
    r = rng.randrange(len(out.rounds) - 1)
    out.rounds[r], out.rounds[r + 1] = out.rounds[r + 1], out.rounds[r]
    return out, k


def mut_shrink_k(g, sched, k, rng):
    """Over-length corruption: validate under a smaller call bound."""
    return sched, max(1, k - 1)


def mut_bad_path(g, sched, k, rng):
    """Replace one call's path with a non-edge hop."""
    out = copy_schedule(sched)
    n = g.n_vertices
    non_edge = None
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v):
                non_edge = (u, v)
                break
        if non_edge:
            break
    if non_edge is None:  # complete graph; nothing to corrupt
        return out, k
    r = rng.randrange(len(out.rounds))
    calls = list(out.rounds[r].calls)
    if not calls:
        return out, k
    calls[rng.randrange(len(calls))] = Call.via(non_edge)
    replace_round(out, r, tuple(calls))
    return out, k


def mut_echo_previous_round(g, sched, k, rng):
    """Copy a round-r call into round r+1: its receiver is already
    informed there (and the caller may place a second call)."""
    out = copy_schedule(sched)
    if len(out.rounds) < 2:
        return out, k
    r = rng.randrange(len(out.rounds) - 1)
    prev = out.rounds[r].calls
    if not prev:
        return out, k
    replace_round(
        out, r + 1, out.rounds[r + 1].calls + (prev[rng.randrange(len(prev))],)
    )
    return out, k


MUTATIONS = [
    mut_identity,
    mut_duplicate_call,
    mut_reverse_call,
    mut_drop_round,
    mut_swap_rounds,
    mut_shrink_k,
    mut_bad_path,
    mut_echo_previous_round,
]


class TestFastValidatorAgreement:
    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
        mut_idx=st.integers(0, len(MUTATIONS) - 1),
        rng_seed=st.integers(0, 10**6),
    )
    def test_same_verdict_and_errors(self, n, m_seed, src_seed, mut_idx, rng_seed):
        import random

        m = 1 + m_seed % (n - 1)
        sh = construct_base(n, m)
        g = sh.graph
        source = src_seed % g.n_vertices
        sched = broadcast_schedule(sh, source)
        rng = random.Random(rng_seed)
        mutated, k = MUTATIONS[mut_idx](g, sched, 2, rng)

        ref = validate_broadcast(g, mutated, k)
        fast = validate_broadcast_fast(g, mutated, k)
        assert fast.ok == ref.ok
        assert fast.errors == ref.errors
        assert fast.rounds == ref.rounds
        assert fast.informed_per_round == ref.informed_per_round
        assert fast.max_call_length == ref.max_call_length
        if not ref.ok:
            # identical error lists ⇒ identical first error class; assert
            # explicitly since the class is the satellite's contract
            assert classify_error(fast.errors[0]) == classify_error(ref.errors[0])
        if mut_idx == 0:
            assert ref.ok  # the schemes generate valid schedules

    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
    )
    def test_vertex_disjoint_agreement(self, n, m_seed, src_seed):
        m = 1 + m_seed % (n - 1)
        sh = construct_base(n, m)
        g = sh.graph
        sched = broadcast_schedule(sh, src_seed % g.n_vertices)
        validator = FastValidator(g)
        for vertex_disjoint in (False, True):
            ref = validate_broadcast(g, sched, 2, vertex_disjoint=vertex_disjoint)
            fast = validator.validate(sched, 2, vertex_disjoint=vertex_disjoint)
            assert fast.ok == ref.ok
            assert fast.errors == ref.errors
