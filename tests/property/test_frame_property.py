"""Property pins for the columnar schedule core.

Two contracts from the redesign:

* **Lossless round-trip** — random scheme-generated schedules survive
  ``Schedule ⇄ ScheduleFrame ⇄ JSON(v2)`` byte-exactly (same source,
  same per-round call paths, equal frames), and the v1 codec still reads
  what it always wrote.
* **Engine agreement** — ``repro.api.validate`` returns the same verdict
  and the same error-string list for every engine
  (reference/fast/batch/auto) on randomly corrupted schedules, whether
  the input is the object view or the frame.

Corruptions reuse the structural mutations of
``test_validator_fast_property`` (shared-edge, duplicate caller,
dropped/duplicated rounds, over-length, bad-path, …).
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from test_validator_fast_property import MUTATIONS

from repro import api
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.frame import ScheduleFrame
from repro.io import (
    frame_from_dict,
    frame_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.types import Schedule

COMMON = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def random_schedule(n, m_seed, src_seed):
    m = 1 + m_seed % (n - 1)
    sh = construct_base(n, m)
    return sh.graph, broadcast_schedule(sh, src_seed % sh.n_vertices)


def paths_of(schedule: Schedule):
    return [[c.path for c in rnd] for rnd in schedule.rounds]


class TestLosslessRoundTrip:
    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
    )
    def test_schedule_frame_json_v2(self, n, m_seed, src_seed):
        _g, sched = random_schedule(n, m_seed, src_seed)
        frame = sched.to_frame()

        # Schedule -> frame -> Schedule
        view = Schedule.from_frame(frame)
        assert view == sched
        assert paths_of(view) == paths_of(sched)

        # frame -> JSON(v2) text -> frame (exact arrays)
        payload = json.loads(json.dumps(frame_to_dict(frame)))
        assert frame_from_dict(payload) == frame

        # the sniffing loader agrees for both codec versions
        for version in (1, 2):
            data = json.loads(json.dumps(schedule_to_dict(sched, version=version)))
            loaded = schedule_from_dict(data)
            assert loaded == sched
            assert loaded.to_frame() == frame

    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
    )
    def test_v1_and_v2_payload_equivalence(self, n, m_seed, src_seed):
        """Both codecs describe the same schedule; v2 is never larger
        than ~the flat vertex data it must carry."""
        _g, sched = random_schedule(n, m_seed, src_seed)
        v1 = schedule_to_dict(sched, version=1)
        v2 = schedule_to_dict(sched, version=2)
        assert schedule_from_dict(v1) == schedule_from_dict(v2)
        assert v2["path_verts"] == [v for rnd in v1["rounds"] for p in rnd for v in p]


class TestEngineAgreement:
    @COMMON
    @given(
        n=st.integers(3, 6),
        m_seed=st.integers(0, 10**6),
        src_seed=st.integers(0, 10**6),
        mut_idx=st.integers(0, len(MUTATIONS) - 1),
        rng_seed=st.integers(0, 10**6),
        as_frame_input=st.booleans(),
    )
    def test_same_verdict_and_errors_across_engines(
        self, n, m_seed, src_seed, mut_idx, rng_seed, as_frame_input
    ):
        import random

        g, sched = random_schedule(n, m_seed, src_seed)
        rng = random.Random(rng_seed)
        mutated, k = MUTATIONS[mut_idx](g, sched, 2, rng)
        subject = mutated.to_frame() if as_frame_input else mutated

        reports = {
            engine: api.validate(g, subject, k, engine=engine)
            for engine in api.ENGINES
        }
        reference = reports["reference"]
        for engine, report in reports.items():
            assert report.ok == reference.ok, engine
            assert report.errors == reference.errors, engine
            assert report.rounds == reference.rounds, engine
            assert report.informed_per_round == reference.informed_per_round
            assert report.max_call_length == reference.max_call_length
        if mut_idx == 0:
            assert reference.ok  # the schemes generate valid schedules

    @COMMON
    @given(
        n=st.integers(3, 5),
        m_seed=st.integers(0, 10**6),
        srcs_seed=st.integers(0, 10**6),
    )
    def test_list_validation_matches_singles(self, n, m_seed, srcs_seed):
        m = 1 + m_seed % (n - 1)
        sh = construct_base(n, m)
        g = sh.graph
        sources = [(srcs_seed + i) % sh.n_vertices for i in range(3)]
        frames = [broadcast_schedule(sh, s).to_frame() for s in sources]
        batch_reports = api.validate(g, frames, 2, engine="batch")
        for frame, report in zip(frames, batch_reports):
            single = api.validate(g, frame, 2, engine="fast")
            assert report.ok == single.ok
            assert report.errors == single.errors
            assert isinstance(frame, ScheduleFrame)
