"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (pip's legacy editable path calls ``setup.py develop``).
"""

from setuptools import setup

setup()
