"""E06 — Example 2 / Figs. 2–3: the G_{4,2} instance, edge for edge."""

from repro.analysis.experiments import experiment_e06_g42


def test_e06_g42_structure(benchmark, print_once):
    rows = benchmark(experiment_e06_g42)
    print_once("e06", rows, "[E06] Example 2 / Figs. 2–3: G_{4,2}")
    for row in rows:
        assert row["match"], row
