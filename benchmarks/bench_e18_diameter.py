"""E18 — footnote 1: diameters of the constructions vs the k·log₂N bound."""

from repro.analysis.experiments import experiment_e18_diameter


def test_e18_diameter(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e18_diameter, rounds=1, iterations=1)
    print_once("e18", rows, "[E18] Footnote 1: diam(G) ≤ k·log₂N")
    for row in rows:
        assert row["within bound"]
        # sparse graphs have diameter ≥ Q_n's (they are subgraphs)
        assert row["diam(G)"] >= row["diam(Q_n)=n"]
