"""Scheduler benchmarks: engine kernels vs the legacy set-based greedy.

The headline row is the kernel-backed greedy against the pre-engine
implementation (:mod:`repro.schedulers.legacy`) on an n ≥ 256 instance
with a fixed restart budget — identical nominal work, so the ratio is the
engine speedup (incremental component probes + CSR adjacency + bitmask
state vs per-candidate whole-graph flood fills over sets).  The measured
numbers are recorded in ``benchmarks/RESULTS_schedulers.md``; the ≥3×
acceptance floor is asserted at full size (skipped under the CI smoke
sizes, which shrink the instance via ``REPRO_BENCH_N``).
"""

import os
import time

from repro.engine.kernels import GraphKernels
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import balanced_ternary_core_tree, path_graph
from repro.schedulers import legacy
from repro.schedulers.greedy import heuristic_line_broadcast
from repro.schedulers.search import find_minimum_time_schedule
from repro.util.bits import mask_from_indices

# REPRO_BENCH_N keeps the perf-primitives convention (hypercube dimension,
# 12 full / 10 CI smoke); the greedy instance scales with it.
N = int(os.environ.get("REPRO_BENCH_N", "12"))
GREEDY_N = 257 if N >= 12 else 33  # n ≥ 256 at full size
RESTARTS = 2


def _greedy_graph():
    return path_graph(GREEDY_N)


def test_bench_greedy_kernel(benchmark):
    g = _greedy_graph()
    benchmark.pedantic(
        lambda: heuristic_line_broadcast(g, 0, None, restarts=RESTARTS, seed=0),
        rounds=1,
        iterations=1,
    )


def test_bench_greedy_legacy(benchmark):
    g = _greedy_graph()
    benchmark.pedantic(
        lambda: legacy.heuristic_line_broadcast_legacy(
            g, 0, None, restarts=RESTARTS, seed=0
        ),
        rounds=1,
        iterations=1,
    )


def test_bench_greedy_ternary_tree(benchmark):
    h = 7 if N >= 12 else 4  # N = 382 full-size
    g = balanced_ternary_core_tree(h)
    benchmark.pedantic(
        lambda: heuristic_line_broadcast(g, 0, None, restarts=1, seed=0),
        rounds=1,
        iterations=1,
    )


def test_bench_exact_search_kernel(benchmark):
    g = balanced_ternary_core_tree(2)
    sched = benchmark(lambda: find_minimum_time_schedule(g, 0, 4))
    assert sched is not None


def test_bench_enumerate_paths_kernel(benchmark):
    g = hypercube(3)
    kern = GraphKernels(g)
    targets = mask_from_indices(range(1, 8))
    paths = benchmark(lambda: kern.enumerate_paths(0, 3, 0, targets))
    assert paths


def test_bench_enumerate_paths_legacy(benchmark):
    g = hypercube(3)
    targets = set(range(1, 8))
    paths = benchmark(lambda: legacy.enumerate_paths(g, 0, 3, set(), targets))
    assert paths


def test_bench_kernels_construction(benchmark):
    g = hypercube(min(N, 10))
    benchmark(lambda: GraphKernels(g))


def test_greedy_speedup_floor(print_once, bench_json):
    """Acceptance: ≥3× for the kernel-backed greedy over the legacy
    implementation at n ≥ 256 (identical restart budget and seed)."""
    g = _greedy_graph()

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_kernel = best_of(
        lambda: heuristic_line_broadcast(g, 0, None, restarts=RESTARTS, seed=0)
    )
    t_legacy = best_of(
        lambda: legacy.heuristic_line_broadcast_legacy(
            g, 0, None, restarts=RESTARTS, seed=0
        )
    )
    speedup = t_legacy / t_kernel
    print_once(
        "sched-speedup",
        [
            {
                "graph": f"path:{GREEDY_N}",
                "restarts": RESTARTS,
                "legacy_s": f"{t_legacy:.3f}",
                "kernel_s": f"{t_kernel:.3f}",
                "speedup": f"{speedup:.1f}x",
            }
        ],
        title="greedy scheduler: engine kernels vs legacy",
    )
    bench_json(
        "bench_schedulers",
        "greedy_kernel_vs_legacy",
        graph=f"path:{GREEDY_N}",
        restarts=RESTARTS,
        legacy_seconds=round(t_legacy, 6),
        kernel_seconds=round(t_kernel, 6),
        speedup=round(speedup, 2),
        floor=3.0,
        full_size=GREEDY_N >= 256,
    )
    if GREEDY_N >= 256:
        assert speedup >= 3.0, (
            f"kernel greedy only {speedup:.1f}x faster than legacy "
            f"(n={GREEDY_N}, floor is 3x)"
        )
