"""E09 — Theorem 4: Broadcast_2 validity/minimum-time sweep over (n, m)."""

from repro.analysis.experiments import experiment_e09_broadcast2


def test_e09_broadcast2_sweep(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e09_broadcast2(
            n_values=(3, 4, 5, 6, 7, 8, 10), sources_cap=12
        ),
        rounds=1,
        iterations=1,
    )
    print_once(
        "e09", rows, "[E09] Theorem 4: Broadcast_2 sweep (valid ⇔ Definition 1 at k=2)"
    )
    assert rows
    for row in rows:
        assert row["valid (≤2)"], row
        assert row["max call len"] <= 2
        assert row["rounds"] == row["n"]
