"""E20 — §5: the vertex-disjoint call model (stronger than Definition 1)."""

from repro.analysis.experiments import experiment_e20_vertex_disjoint


def test_e20_vertex_disjoint(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e20_vertex_disjoint, rounds=1, iterations=1)
    print_once("e20", rows, "[E20] §5: vertex-disjoint k-line model")
    construct_rows = [r for r in rows if r["instance"].startswith("Construct")]
    tree_rows = [r for r in rows if r["instance"].startswith("Theorem-1")]
    # the sparse hypercube schemes satisfy the stricter model outright
    assert construct_rows and all(r["minimum time"] for r in construct_rows)
    # the tree pump scheme does not — an honest negative result
    assert tree_rows and not tree_rows[0]["minimum time"]
