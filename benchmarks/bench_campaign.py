"""Campaign-subsystem benchmarks: scenario throughput and cache warmth.

Measures the scenario-campaign layer end-to-end (expansion, per-scenario
execution through the engine hot paths, chunk materialization) on the
``fault-robustness`` built-in — the grid that mixes the batch scheme
path with greedy re-scheduling under edge faults:

* cold throughput (scenarios/sec, no cache) at 1 worker and at 2,
* warm throughput: a second run over a primed scenario cache, which is
  the resume path sharded CI jobs and re-runs take.

The measured rows land in ``BENCH_results.json`` via the shared
conftest, so the campaign trajectory is diffable across runs; the cache
speedup floor (warm >= 5x cold) is asserted at full size only.
"""

import os
import time

from repro.analysis.campaigns import BUILTIN_CAMPAIGNS, CampaignRunner

FULL = int(os.environ.get("REPRO_BENCH_N", "12")) >= 12
SPEC = BUILTIN_CAMPAIGNS["fault-robustness"]
CACHE_SPEEDUP_FLOOR = 5.0


def _run(jobs=1, cache_dir=None):
    runner = CampaignRunner(jobs=jobs, cache_dir=cache_dir)
    outcomes = runner.run(SPEC)
    assert len(outcomes) == SPEC.n_scenarios
    return runner


def test_campaign_rows_deterministic_across_workers():
    """Pool size must never leak into the rows the benchmarks time."""
    seq = [o.row for o in CampaignRunner(jobs=1).run(SPEC)]
    par = [o.row for o in CampaignRunner(jobs=2).run(SPEC)]
    assert seq == par


def test_bench_campaign_cold_1_worker(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_bench_campaign_cold_2_workers(benchmark):
    benchmark.pedantic(lambda: _run(jobs=2), rounds=1, iterations=1)


def test_bench_campaign_warm_cache(benchmark, tmp_path):
    _run(cache_dir=tmp_path)  # prime
    runner = benchmark.pedantic(
        lambda: _run(cache_dir=tmp_path), rounds=1, iterations=1
    )
    assert runner.stats.executed == 0
    assert runner.stats.cache_hits == SPEC.n_scenarios


def test_campaign_throughput_and_cache_floor(print_once, bench_json, tmp_path):
    """Headline numbers: scenarios/sec cold (1 and 2 workers) and warm."""

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_cold_1 = best_of(_run)
    t_cold_2 = best_of(lambda: _run(jobs=2))
    _run(cache_dir=tmp_path)  # prime the scenario cache
    t_warm = best_of(lambda: _run(cache_dir=tmp_path))
    n = SPEC.n_scenarios
    speedup = t_cold_1 / t_warm
    row = {
        "campaign": SPEC.name,
        "scenarios": n,
        "cold 1w (scen/s)": f"{n / t_cold_1:.1f}",
        "cold 2w (scen/s)": f"{n / t_cold_2:.1f}",
        "warm (scen/s)": f"{n / t_warm:.1f}",
        "warm speedup": f"{speedup:.1f}x",
    }
    print_once("campaign-throughput", [row], title="campaign scenario throughput")
    bench_json(
        "bench_campaign",
        "fault_robustness_throughput",
        campaign=SPEC.name,
        scenarios=n,
        cold_1w_seconds=round(t_cold_1, 6),
        cold_2w_seconds=round(t_cold_2, 6),
        warm_seconds=round(t_warm, 6),
        warm_speedup=round(speedup, 2),
        floor=CACHE_SPEEDUP_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert speedup >= CACHE_SPEEDUP_FLOOR, (
            f"warm campaign re-run only {speedup:.1f}x faster than cold "
            f"(floor is {CACHE_SPEEDUP_FLOOR}x)"
        )
