"""Shared benchmark configuration.

Each ``bench_eXX`` module regenerates one paper artifact (see DESIGN.md's
per-experiment index), printing its table once and timing the builder with
pytest-benchmark.  ``once_per_session`` avoids reprinting under
benchmark's calibration loops.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table

_printed: set[str] = set()


@pytest.fixture
def print_once():
    """Print an experiment table exactly once per session."""

    def _print(key: str, rows, title: str) -> None:
        if key not in _printed:
            _printed.add(key)
            print()
            print(format_table(rows, title=title))

    return _print
