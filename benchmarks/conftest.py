"""Shared benchmark configuration.

Each ``bench_eXX`` module regenerates one paper artifact (see DESIGN.md's
per-experiment index), printing its table once and timing the builder with
pytest-benchmark.  ``once_per_session`` avoids reprinting under
benchmark's calibration loops.

Headline measurements (the speedup-floor tests) additionally record
machine-readable rows through the ``bench_json`` fixture; at session end
they are written to ``benchmarks/BENCH_results.json`` (override the path
with ``REPRO_BENCH_JSON``), which CI uploads as an artifact so the bench
trajectory is diffable across runs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.analysis.tables import format_table

_printed: set[str] = set()
_bench_rows: list[dict] = []


@pytest.fixture
def print_once():
    """Print an experiment table exactly once per session."""

    def _print(key: str, rows, title: str) -> None:
        if key not in _printed:
            _printed.add(key)
            print()
            print(format_table(rows, title=title))

    return _print


@pytest.fixture
def bench_json():
    """Record one machine-readable benchmark row for BENCH_results.json."""
    return _record


def _record(suite: str, name: str, **fields) -> None:
    # Per-row config stamp: merged files carry rows from sessions run
    # under different sizes/interpreters, so rows must self-describe.
    row = {
        "suite": suite,
        "name": name,
        "repro_bench_n": int(os.environ.get("REPRO_BENCH_N", "12")),
        "python": sys.version.split()[0],
    }
    row.update(fields)
    _bench_rows.append(row)


def pytest_sessionfinish(session, exitstatus):
    if not _bench_rows:
        return
    path = Path(
        os.environ.get(
            "REPRO_BENCH_JSON", str(Path(__file__).parent / "BENCH_results.json")
        )
    )
    # Merge with rows from earlier sessions (CI runs the suites one pytest
    # invocation at a time); this session's rows win on (suite, name).
    rows: dict[tuple, dict] = {}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
            if previous.get("format") == "repro-bench-results/1":
                for row in previous.get("results", []):
                    rows[(row.get("suite"), row.get("name"))] = row
        except (json.JSONDecodeError, OSError, AttributeError):
            pass  # unreadable file — rewrite from this session alone
    for row in _bench_rows:
        rows[(row["suite"], row["name"])] = row
    payload = {
        "format": "repro-bench-results/1",
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "repro_bench_n": int(os.environ.get("REPRO_BENCH_N", "12")),
        },
        "results": sorted(rows.values(), key=lambda r: (r["suite"], r["name"])),
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
