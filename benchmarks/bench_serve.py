"""Service-layer benchmarks: request throughput under cache reuse.

Drives :class:`repro.service.app.ReproService` in-process (no sockets —
the TCP layer is exercised by the e2e test; here we measure the layers
the daemon exists for):

* **cold vs warm**: a cold request pays graph construction plus engine
  cache builds in a fresh service with cleared process caches — the
  per-invocation cost a CLI user pays every time.  A warm request hits
  the spec-keyed graph cache and the per-graph engine caches.  The
  warm/cold per-request gap is the daemon's reason to exist; the floor
  (warm >= 3x cold) is asserted at full size.
* **coalesced vs serial**: the same validate requests issued
  concurrently (the coalescer stacks them into single batch passes)
  versus strictly one at a time (one pass each).

Every response in the harness is byte-compared against serial
``api.validate`` verdicts re-encoded through the same wire codec — the
coalescer must never change a verdict, only its throughput.  Rows land
in ``BENCH_results.json`` via the shared conftest.
"""

import asyncio
import json
import os
import time

import repro.api as api
from repro.core.broadcast import broadcast_schedule
from repro.engine.cache import clear_cache
from repro.frame import as_frame
from repro.io import frame_to_dict
from repro.service import protocol
from repro.service.app import ReproService

FULL = int(os.environ.get("REPRO_BENCH_N", "12")) >= 12
N_REQUESTS = 24 if FULL else 8
GRAPH_SPEC = "sparse:11:4"
K = 2
WARM_SPEEDUP_FLOOR = 3.0


def _validate_bodies(n):
    """n single-schedule validate request bodies on GRAPH_SPEC."""
    sh = api.construction(GRAPH_SPEC)
    bodies = []
    frames = []
    for source in range(n):
        frame = as_frame(broadcast_schedule(sh, source % sh.n_vertices))
        frames.append(frame)
        bodies.append(
            json.dumps(
                {
                    "graph": GRAPH_SPEC,
                    "k": K,
                    "schedules": [frame_to_dict(frame)],
                }
            ).encode()
        )
    return frames, bodies


async def _dispatch_serial(service, bodies):
    return [
        await service.dispatch("POST", "/v1/validate", body) for body in bodies
    ]


async def _dispatch_concurrent(service, bodies):
    return await asyncio.gather(
        *(service.dispatch("POST", "/v1/validate", body) for body in bodies)
    )


def _assert_serial_identical(frames, responses):
    """Every served verdict == serial api.validate, byte for byte."""
    graph = api.build_graph(GRAPH_SPEC)
    for frame, (status, payload) in zip(frames, responses):
        assert status == 200, payload
        served = json.loads(payload)["reports"]
        reference = api.validate(graph, frame, K)
        expected = protocol.ReportV1(
            ok=reference.ok,
            rounds=reference.rounds,
            max_call_length=reference.max_call_length,
            errors=tuple(reference.errors),
        ).to_wire()
        assert (
            protocol.encode_canonical(served[0])
            == protocol.encode_canonical(expected)
        ), f"served verdict diverged from serial api.validate: {served[0]}"


def _cold_request(body):
    """One request the way a fresh process would pay for it."""
    clear_cache()
    service = ReproService(workers=2)
    try:
        return asyncio.run(_dispatch_serial(service, [body]))[0]
    finally:
        service.close()


def test_serve_throughput_cold_warm_coalesced(print_once, bench_json):
    """Headline numbers: requests/sec across the four service regimes."""
    frames, bodies = _validate_bodies(N_REQUESTS)

    # cold: fresh service + cleared engine caches per request
    cold_n = max(3, N_REQUESTS // 4)
    t0 = time.perf_counter()
    cold_responses = [_cold_request(body) for body in bodies[:cold_n]]
    t_cold = (time.perf_counter() - t0) / cold_n

    # warm: one long-lived service, caches primed by the first request
    service = ReproService(workers=2)
    try:
        asyncio.run(_dispatch_serial(service, bodies[:1]))  # prime
        t0 = time.perf_counter()
        warm_responses = asyncio.run(_dispatch_serial(service, bodies))
        t_warm = (time.perf_counter() - t0) / N_REQUESTS

        # serial vs coalesced on the warm service
        t0 = time.perf_counter()
        serial_responses = asyncio.run(_dispatch_serial(service, bodies))
        t_serial = (time.perf_counter() - t0) / N_REQUESTS
        passes_before = service._coalescer.passes
        t0 = time.perf_counter()
        coalesced_responses = asyncio.run(_dispatch_concurrent(service, bodies))
        t_coalesced = (time.perf_counter() - t0) / N_REQUESTS
        passes = service._coalescer.passes - passes_before
    finally:
        service.close()

    # the acceptance bar: every response byte-identical to serial verdicts
    _assert_serial_identical(frames[:cold_n], cold_responses)
    _assert_serial_identical(frames, warm_responses)
    _assert_serial_identical(frames, serial_responses)
    _assert_serial_identical(frames, coalesced_responses)
    assert passes < N_REQUESTS, "concurrent requests never shared a batch pass"

    warm_speedup = t_cold / t_warm
    row = {
        "graph": GRAPH_SPEC,
        "requests": N_REQUESTS,
        "cold (req/s)": f"{1 / t_cold:.1f}",
        "warm (req/s)": f"{1 / t_warm:.1f}",
        "warm speedup": f"{warm_speedup:.1f}x",
        "serial (req/s)": f"{1 / t_serial:.1f}",
        "coalesced (req/s)": f"{1 / t_coalesced:.1f}",
        "batch passes": f"{passes}/{N_REQUESTS}",
    }
    print_once("serve-throughput", [row], title="service request throughput")
    bench_json(
        "bench_serve",
        "validate_throughput",
        graph=GRAPH_SPEC,
        requests=N_REQUESTS,
        cold_rps=round(1 / t_cold, 2),
        warm_rps=round(1 / t_warm, 2),
        warm_speedup=round(warm_speedup, 2),
        serial_rps=round(1 / t_serial, 2),
        coalesced_rps=round(1 / t_coalesced, 2),
        coalesce_speedup=round(t_serial / t_coalesced, 2),
        batch_passes=passes,
        floor=WARM_SPEEDUP_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
            f"warm requests only {warm_speedup:.1f}x faster than cold "
            f"(floor is {WARM_SPEEDUP_FLOOR}x)"
        )


def test_serve_schedule_endpoint_warm(benchmark):
    """pytest-benchmark row: the schedule endpoint on a warm service."""
    service = ReproService(workers=2)
    body = json.dumps(
        {"graph": "hypercube:4", "scheduler": "greedy", "k": 2, "seed": 1}
    ).encode()
    try:
        asyncio.run(service.dispatch("POST", "/v1/schedule", body))  # prime

        def once():
            status, payload = asyncio.run(
                service.dispatch("POST", "/v1/schedule", body)
            )
            assert status == 200
            return payload

        benchmark.pedantic(once, rounds=5, iterations=1)
    finally:
        service.close()
