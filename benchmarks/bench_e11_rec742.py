"""E11 — Examples 5–6 / Fig. 5: LABEL(7,4,2) and Construct_REC(7,4,2)."""

from repro.analysis.experiments import experiment_e11_rec742


def test_e11_rec742(benchmark, print_once):
    rows = benchmark(experiment_e11_rec742)
    print_once("e11", rows, "[E11] Examples 5–6 / Fig. 5: Construct_REC(7,4,2)")
    for row in rows:
        assert row["match"], row
