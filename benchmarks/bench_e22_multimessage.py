"""E22 — multiple messages broadcasting (the [24] extension)."""

from repro.analysis.experiments import experiment_e22_multimessage


def test_e22_multimessage(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e22_multimessage, rounds=1, iterations=1)
    print_once("e22", rows, "[E22] Multiple messages: pipelining vs exact schedules")
    by_instance = {r["instance"]: r for r in rows}
    q3 = by_instance["Q_3, M=2, k=1 (exact search)"]
    assert q3["rounds"].startswith("5")
    assert q3["lower bound"] == 5  # bound meets search: exact optimum
    sparse = by_instance["G_{3,1}, M=2, k=2 (exact search)"]
    assert sparse["rounds"] == "5"
