"""E14 — the Section-1/3 context table: degree/diameter across topologies."""

from repro.analysis.experiments import experiment_e14_topology_compare


def test_e14_topology_compare(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e14_topology_compare(n=9), rounds=1, iterations=1
    )
    print_once("e14", rows, "[E14] Topology comparison at N ≈ 2^9")
    by_name = {r["topology"]: r for r in rows}
    q = by_name["Q_9 (1-mlbg)"]
    sparse2 = next(r for name, r in by_name.items() if name.startswith("sparse k=2"))
    sparse3 = by_name["sparse k=3"]
    # the headline trade: same order, strictly smaller degree
    assert sparse2["Δ"] < q["Δ"] and sparse2["N"] == q["N"]
    assert sparse3["Δ"] <= sparse2["Δ"]
    # CCC gets constant degree but is not a minimum-time broadcast graph
    assert by_name["CCC(6)"]["Δ"] == 3
