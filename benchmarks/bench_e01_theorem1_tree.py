"""E01 — Fig. 1 + Theorem 1: Δ ≤ 3 trees for large k.

Regenerates the Theorem-1 family table (structure for h ≤ 6, machine-
checked minimum-time schedules for h ≤ 4 here to keep the benchmark
budget sane; the test-suite covers h ≤ 6 with full source sweeps).
"""

from repro.analysis.experiments import experiment_e01_theorem1


def test_e01_theorem1_tree(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e01_theorem1(max_h=6, schedule_h=4, sources_cap=8),
        rounds=1,
        iterations=1,
    )
    print_once("e01", rows, "[E01] Fig. 1 + Theorem 1: ternary-core trees")
    for row in rows:
        assert row["Δ (≤3)"] <= 3
        assert row["diam (≤2h)"] <= 2 * row["h"]
        assert row["thm1 min k for N"] == row["k=2h"]
    assert all(r["min-time verified"] for r in rows if r["h"] <= 4)
