"""Batch all-sources engine benchmarks (generation + validation).

The headline workload is the E09-style sweep at full size: the n = 10
Construct_BASE sparse hypercube, *all* 1024 sources, generate the
Broadcast_2 schedule from each and validate it.  The per-source loop
(``broadcast_schedule`` + a shared ``FastValidator``) is measured against
the batch engine (:mod:`repro.engine.batch`: one generation per coset of
the translation group, XOR-translated stacked arrays, vectorized
validation).  Verdicts are asserted identical before any timing; the ≥3×
acceptance floor is asserted at full size (the measured speedup is
recorded in ``benchmarks/RESULTS_schedulers.md`` and emitted into
``BENCH_results.json`` by the shared conftest).
"""

import os
import time

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.core.params import theorem5_m_star
from repro.engine.batch import all_sources_schedules, validate_all_sources
from repro.engine.cache import batch_validator_for, fast_validator_for

# Hypercube dimension: 10 at full size (1024 sources), 7 under the CI
# smoke sizes (REPRO_BENCH_N=10 shrinks every bench suite).
FULL = int(os.environ.get("REPRO_BENCH_N", "12")) >= 12
N_DIM = 10 if FULL else 7
M = theorem5_m_star(N_DIM)
SPEEDUP_FLOOR = 3.0


def _instance():
    sh = construct_base(N_DIM, M)
    _ = sh.graph  # materialize outside the timers
    return sh


def _loop_all_sources(sh):
    """The pre-batch path: one generation + one validation per source."""
    validator = fast_validator_for(sh.graph)
    ok, max_len = [], 0
    for s in range(sh.n_vertices):
        sched = broadcast_schedule(sh, s)
        rep = validator.validate(sched, sh.k)
        ok.append(rep.ok and len(sched.rounds) == sh.n)
        max_len = max(max_len, rep.max_call_length)
    return ok, max_len


def _batch_all_sources(sh):
    outcome = validate_all_sources(sh, k=sh.k)
    ok = [o and r == sh.n for o, r in zip(outcome.ok, outcome.rounds)]
    return ok, outcome.max_call_length


def test_batch_loop_verdicts_identical():
    """The two paths must agree exactly before their times mean anything."""
    sh = _instance()
    loop_ok, loop_len = _loop_all_sources(sh)
    batch_ok, batch_len = _batch_all_sources(sh)
    assert loop_ok == batch_ok
    assert loop_len == batch_len
    assert all(batch_ok)
    # and the translated schedules are the directly generated ones
    for stack in all_sources_schedules(sh, sources=[0, 1, sh.n_vertices - 1]):
        for i in range(stack.n_schedules):
            src = int(stack.sources[i])
            assert stack.to_schedule(i, sort_calls=True) == broadcast_schedule(sh, src)


def test_bench_all_sources_loop(benchmark):
    sh = _instance()
    fast_validator_for(sh.graph)  # warm the kernel cache for both sides
    ok, _ = benchmark.pedantic(lambda: _loop_all_sources(sh), rounds=1, iterations=1)
    assert all(ok)


def test_bench_all_sources_batch(benchmark):
    sh = _instance()
    batch_validator_for(sh.graph)
    ok, _ = benchmark.pedantic(lambda: _batch_all_sources(sh), rounds=1, iterations=1)
    assert all(ok)


def test_bench_all_sources_generation_only(benchmark):
    """Stacked generation alone (no validation): the XOR-translate axis."""
    sh = _instance()
    stacks = benchmark.pedantic(
        lambda: all_sources_schedules(sh), rounds=1, iterations=1
    )
    assert sum(s.n_schedules for s in stacks) == sh.n_vertices


def test_batch_speedup_floor(print_once, bench_json):
    """Acceptance: ≥3× for the batch engine over the per-source loop on
    the all-sources generate+validate workload (asserted at full size)."""
    sh = _instance()
    fast_validator_for(sh.graph)
    batch_validator_for(sh.graph)

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_loop = best_of(lambda: _loop_all_sources(sh))
    t_batch = best_of(lambda: _batch_all_sources(sh))
    speedup = t_loop / t_batch
    row = {
        "workload": f"all-sources generate+validate, Construct_BASE({N_DIM}, {M})",
        "sources": sh.n_vertices,
        "loop_s": f"{t_loop:.3f}",
        "batch_s": f"{t_batch:.3f}",
        "speedup": f"{speedup:.1f}x",
    }
    print_once(
        "batch-speedup", [row], title="batch all-sources engine vs per-source loop"
    )
    bench_json(
        "bench_batch",
        "all_sources_speedup",
        workload=row["workload"],
        sources=sh.n_vertices,
        loop_seconds=round(t_loop, 6),
        batch_seconds=round(t_batch, 6),
        speedup=round(speedup, 2),
        floor=SPEEDUP_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batch engine only {speedup:.1f}x faster than the per-source "
            f"loop (n={N_DIM}, {sh.n_vertices} sources, floor is "
            f"{SPEEDUP_FLOOR}x)"
        )
