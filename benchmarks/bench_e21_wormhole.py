"""E21 — wormhole cycle cost: degree savings vs latency overhead."""

from repro.analysis.experiments import experiment_e21_wormhole


def test_e21_wormhole(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e21_wormhole, rounds=1, iterations=1)
    print_once(
        "e21",
        rows,
        "[E21] Wormhole cycles: Q_n (k=1) vs sparse (k=2,3), by message size",
    )
    q_key = "Q_n cycles (Δ=10)"
    sparse_keys = [k for k in rows[0] if k.startswith("sparse k=2")]
    assert sparse_keys
    overheads = []
    for row in rows:
        sparse = row[sparse_keys[0]]
        assert sparse >= row[q_key]  # k>1 rounds cost extra cycles …
        overheads.append(sparse / row[q_key])
    # … but the overhead ratio shrinks monotonically with message size
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] < 1.05  # ≤5% at 64-flit messages
