"""Columnar-frame benchmarks: frame-native vs object-schedule validation.

The redesign's headline claim: validating through a
:class:`~repro.frame.ScheduleFrame` skips the per-call flattening the
object path pays on every validation (one Python walk over all ``Call``
objects), so repeated validation of the same schedule — the shape of
every sweep, campaign, and certificate check — runs at array speed.

Workload: a deterministic minimum-time line broadcast on ``path:257``
(the scheduler benchmarks' n ≥ 256 instance; 33 under CI smoke sizes) by
recursive halving — every informed vertex calls the midpoint of its
uninformed segment, so all ⌈log₂N⌉ rounds carry long multi-edge calls.
A 64-validation corpus of it runs through the fast validator: the
object side holds 64 defensive ``Schedule`` copies (mutable schedules
cannot be safely shared or memoized, so each validation re-flattens its
``Call`` objects and re-derives every array — the pre-redesign cost),
the frame side shares one frozen frame by reference (how stacks,
registry results, and io actually hand schedules around), whose cached
layout and per-graph screen state make re-validation pure array reuse.
Verdicts are asserted identical before timing — through ``api.validate``
engine ``batch`` as well, whose stacked corpus path the two benchmark
fixtures record for comparison; the ≥3× acceptance floor is asserted at
full size and the measured row lands in ``BENCH_results.json`` via the
shared conftest.
"""

import os
import time

from repro import api
from repro.engine.cache import batch_validator_for, fast_validator_for
from repro.frame import ScheduleBuilder
from repro.graphs.trees import path_graph
from repro.types import Schedule

N = int(os.environ.get("REPRO_BENCH_N", "12"))
FRAME_N = 257 if N >= 12 else 33  # n >= 256 at full size
CORPUS = 64
SPEEDUP_FLOOR = 3.0


def _halving_line_broadcast(n: int) -> ScheduleBuilder:
    """Minimum-time unbounded-k broadcast on the n-vertex path from 0.

    Each round splits every segment ``[lo, hi]`` (informed at ``lo``) by
    calling its midpoint; segments are disjoint ranges, so the calls are
    edge-disjoint by construction and the schedule is valid under
    k = N − 1 in exactly ⌈log₂ n⌉ rounds.
    """
    builder = ScheduleBuilder(0)
    segments = [(0, n - 1)]  # informed vertex is each segment's lo
    while any(hi > lo for lo, hi in segments):
        paths = []
        nxt = []
        for lo, hi in segments:
            if hi == lo:
                nxt.append((lo, hi))
                continue
            mid = lo + (hi - lo + 1) // 2
            paths.append(tuple(range(lo, mid + 1)))
            nxt.append((lo, mid - 1))
            nxt.append((mid, hi))
        builder.add_round(paths)
        segments = nxt
    return builder


def _instance():
    graph = path_graph(FRAME_N)
    frame = _halving_line_broadcast(FRAME_N).build()
    # Frame-less copies: the historical object path, re-flattened per use.
    rounds = list(Schedule.from_frame(frame).rounds)
    objects = [
        Schedule(source=frame.source, rounds=list(rounds)) for _ in range(CORPUS)
    ]
    frames = [frame] * CORPUS
    return graph, objects, frames


def test_frame_object_verdicts_identical():
    graph, objects, frames = _instance()
    k = graph.n_vertices - 1
    obj_reports = api.validate(graph, objects, k, require_minimum_time=False)
    frame_reports = api.validate(graph, frames, k, require_minimum_time=False)
    assert all(r.ok for r in obj_reports) and all(r.ok for r in frame_reports)
    for obj, frm in zip(obj_reports, frame_reports):
        assert obj.errors == frm.errors
        assert obj.informed_per_round == frm.informed_per_round
        assert obj.max_call_length == frm.max_call_length
    # the single-schedule fast validator agrees in both representations
    single = fast_validator_for(graph)
    assert single.validate(objects[0], k, require_minimum_time=False).ok
    assert single.validate(frames[0], k, require_minimum_time=False).ok


def test_bench_validate_object_corpus(benchmark):
    graph, objects, _frames = _instance()
    batch_validator_for(graph)  # warm the per-graph cache for both sides
    k = graph.n_vertices - 1
    reports = benchmark(
        lambda: api.validate(graph, objects, k, require_minimum_time=False)
    )
    assert all(r.ok for r in reports)


def test_bench_validate_frame_corpus(benchmark):
    graph, _objects, frames = _instance()
    batch_validator_for(graph)
    k = graph.n_vertices - 1
    reports = benchmark(
        lambda: api.validate(graph, frames, k, require_minimum_time=False)
    )
    assert all(r.ok for r in reports)


def test_frame_speedup_floor(print_once, bench_json):
    """Acceptance: ≥3× for frame over object validation throughput with
    the fast engine on the n = 257 path instance (asserted at full size).

    The object side pays the historical per-validation cost: every call
    walks its ``Call`` objects into arrays before the checks run.  The
    frame side starts from the columnar arrays (layout cached on the
    frozen frame) and stays vectorized end to end."""
    graph, objects, frames = _instance()
    validator = fast_validator_for(graph)
    k = graph.n_vertices - 1

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    def sweep(corpus):
        assert all(
            validator.validate(s, k, require_minimum_time=False).ok for s in corpus
        )

    t_object = best_of(lambda: sweep(objects))
    t_frame = best_of(lambda: sweep(frames))
    speedup = t_object / t_frame
    row = {
        "workload": f"validate {CORPUS} path:{FRAME_N} schedules (engine=fast)",
        "object_s": f"{t_object:.4f}",
        "frame_s": f"{t_frame:.4f}",
        "frame_schedules_per_s": f"{CORPUS / t_frame:.0f}",
        "speedup": f"{speedup:.1f}x",
    }
    print_once("frame-speedup", [row], title="frame vs object validation throughput")
    bench_json(
        "bench_frames",
        "frame_vs_object_validation",
        workload=row["workload"],
        n_vertices=graph.n_vertices,
        corpus=CORPUS,
        object_seconds=round(t_object, 6),
        frame_seconds=round(t_frame, 6),
        speedup=round(speedup, 2),
        floor=SPEEDUP_FLOOR,
        full_size=FRAME_N >= 256,
    )
    if FRAME_N >= 256:
        assert speedup >= SPEEDUP_FLOOR, (
            f"frame validation only {speedup:.1f}x faster than the object "
            f"path (n={FRAME_N}, floor is {SPEEDUP_FLOOR}x)"
        )
