"""E13 — Theorem 7 + Corollaries 1–2: general-k degree bounds, plus the
optimized-thresholds ablation (how much the analytic n_i* leaves behind).
"""

from repro.analysis.experiments import experiment_e13_theorem7


def test_e13_theorem7(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e13_theorem7, rounds=1, iterations=1)
    print_once("e13", rows, "[E13] Theorem 7: Δ vs (2k−1)⌈ᵏ√(n−k)⌉ (+ Cor. 1 rows)")
    for row in rows:
        assert row["Δ ≤ bound"], row
        assert row["lower bound"] <= row["Δ analytic"]
        if isinstance(row["Δ optimized"], int):
            assert row["Δ optimized"] <= row["Δ analytic"]
