"""E15 — Section 5 future work: congestion profile + bandwidth ablation."""

from repro.analysis.experiments import experiment_e15_congestion


def test_e15_congestion(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e15_congestion, rounds=1, iterations=1)
    print_once("e15", rows, "[E15] §5: edge congestion and the bandwidth-m extension")
    for row in rows:
        # Definition 1 honoured by valid schedules: peak concurrency 1
        assert row["peak edge load (valid sched)"] == 1
        assert row["solo rejections @b=1"] == 0
        # two broadcasts sharing rounds need dilation ≥ 2 (the §5 question)
        assert row["merged 2-src min bandwidth"] >= 2
        assert row["merged conflicting edge-slots @b=1"] > 0
        assert 0 < row["utilization"] <= 1
