"""E04/E05 — Example 1 labelings and Lemma 2's λ_m bounds."""

from repro.analysis.experiments import (
    experiment_e04_labelings,
    experiment_e05_lambda_m,
)


def test_e04_example1_labelings(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e04_labelings, rounds=1, iterations=1)
    print_once("e04", rows, "[E04] Example 1: optimal labelings of Q₂ / Q₃")
    for row in rows:
        assert row["Condition A"]
    assert rows[0]["labels"] == rows[0]["optimal λ_m"] == 2
    assert rows[1]["labels"] == rows[1]["optimal λ_m"] == 4


def test_e05_lambda_m_bounds(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e05_lambda_m(max_m=9, exact_max_m=4),
        rounds=1,
        iterations=1,
    )
    print_once("e05", rows, "[E05] Lemma 2: ⌊m/2⌋+1 ≤ λ_m ≤ m+1")
    for row in rows:
        lo, built, hi = (
            row["Lemma2 lower ⌊m/2⌋+1"],
            row["constructed labels"],
            row["upper m+1"],
        )
        assert lo <= built <= hi
        if isinstance(row["exact λ_m"], int):
            assert built <= row["exact λ_m"] <= hi
