"""E16 — the k = 1 store-and-forward baseline and the k-crossover."""

from repro.analysis.experiments import experiment_e16_baseline_k1


def test_e16_baseline_k1(benchmark, print_once):
    rows = benchmark(experiment_e16_baseline_k1)
    print_once("e16", rows, "[E16] k=1 baseline: Q_n binomial vs sparse hypercube")
    for row in rows:
        assert row["Q_n binomial valid @k=1"]
        assert not row["sparse sched valid @k=1"]  # needs k = 2
        assert row["sparse sched valid @k=2"]
        assert row["sparse Δ"] <= row["Δ(Q_n)"]
