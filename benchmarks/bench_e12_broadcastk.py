"""E12 — Theorem 6: Broadcast_k validity sweep over k = 3, 4, 5."""

from repro.analysis.experiments import experiment_e12_broadcastk


def test_e12_broadcastk_sweep(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e12_broadcastk(sources_cap=10), rounds=1, iterations=1
    )
    print_once(
        "e12", rows, "[E12] Theorem 6: Broadcast_k sweep (valid ⇔ Definition 1 at k)"
    )
    assert rows
    for row in rows:
        assert row["valid (≤k)"], row
        assert row["max call len"] <= row["k"]
