"""E07 — Example 3: G_{15,3}, Δ = 6 versus Δ(Q₁₅) = 15."""

from repro.analysis.experiments import experiment_e07_g153


def test_e07_g153(benchmark, print_once):
    # formula-only inside the timing loop; the graph build is timed once
    rows = benchmark.pedantic(
        lambda: experiment_e07_g153(build_graph=True), rounds=1, iterations=1
    )
    print_once("e07", rows, "[E07] Example 3: G_{15,3} (N = 32768)")
    for row in rows:
        assert row["match"], row
