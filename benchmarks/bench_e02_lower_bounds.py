"""E02/E03 — Theorems 2 and 3: degree lower bounds for k-mlbgs."""

from repro.analysis.experiments import experiment_e02_lower_bounds


def test_e02_lower_bounds(benchmark, print_once):
    rows = benchmark(experiment_e02_lower_bounds)
    print_once("e02", rows, "[E02/E03] Theorems 2–3: Δ lower bounds (N = 2^n)")
    for row in rows:
        n = row["n (N=2^n)"]
        # k=1 dominates all: the store-and-forward model needs Δ ≥ n
        for k in (2, 3, 4):
            assert row[f"k={k} thm2"] <= row["k=1 (Δ≥n)"]
            assert row[f"k={k} ball"] >= row[f"k={k} thm2"]
        if isinstance(row["k=5 thm3"], int):
            assert row["k=5 thm3"] >= 3
        assert n >= 1
