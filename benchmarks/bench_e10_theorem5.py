"""E10 — Theorem 5: Δ ≤ 2⌈√(2 log₂N + 4)⌉ − 4 for the k = 2 family."""

from repro.analysis.experiments import experiment_e10_theorem5


def test_e10_theorem5(benchmark, print_once):
    rows = benchmark(experiment_e10_theorem5)
    print_once("e10", rows, "[E10] Theorem 5: Construct_BASE(n, m*) degree vs bound")
    for row in rows:
        assert row["Δ ≤ bound"], row
        assert row["lower ⌈√n⌉"] <= row["Δ measured"] <= row["Δ(Q_n)"]
    # the remark rows really achieve Δ = 2m
    remark = [r for r in rows if str(r["case"]).startswith("remark")]
    assert remark and all(r["Δ measured"] == 2 * r["m*"] for r in remark)
