"""Corpus benchmarks: answer-cache hits versus scheduling from scratch.

The corpus exists so a served schedule costs an mmap slice instead of a
scheduler run.  This suite measures that gap end to end through the
service dispatch path:

* **corpus hit**: a long-lived :class:`ReproService` with ``--corpus``
  answers ``/v1/schedule`` from the packed file — no graph build, no
  scheduler, no validator.
* **cold compute**: the same request against a fresh service with
  cleared engine caches, the cost a corpus-less client pays.

Every corpus-served response is first byte-compared against the
computed response (the corpus-hit contract); the headline row asserts
the ``CORPUS_SPEEDUP_FLOOR`` at full size and lands in
``BENCH_results.json`` via the shared conftest.
"""

import asyncio
import json
import os
import time

from repro.corpus import build_corpus
from repro.engine.cache import clear_cache
from repro.service.app import ReproService

FULL = int(os.environ.get("REPRO_BENCH_N", "12")) >= 12
GRAPH_SPEC = "hypercube:4" if FULL else "hypercube:3"
SCHED = "greedy"
K = 2
SEED = 1
CORPUS_SPEEDUP_FLOOR = 10.0


def _bodies(n_vertices):
    return [
        json.dumps(
            {
                "graph": GRAPH_SPEC,
                "scheduler": SCHED,
                "source": source,
                "k": K,
                "seed": SEED,
            },
            sort_keys=True,
        ).encode()
        for source in range(n_vertices)
    ]


async def _dispatch_serial(service, bodies):
    return [
        await service.dispatch("POST", "/v1/schedule", body) for body in bodies
    ]


def _cold_request(body):
    """One schedule request the way a fresh corpus-less process pays it."""
    clear_cache()
    service = ReproService(workers=1)
    try:
        return asyncio.run(_dispatch_serial(service, [body]))[0]
    finally:
        service.close()


def test_corpus_hit_vs_cold_compute(print_once, bench_json, tmp_path):
    """Headline numbers: corpus-served vs computed, byte-identical."""
    corpus_path = tmp_path / "bench.corpus"
    t0 = time.perf_counter()
    n_frames = build_corpus(corpus_path, GRAPH_SPEC, SCHED, k=K, seed=SEED)
    t_build = time.perf_counter() - t0
    bodies = _bodies(n_frames)

    # cold: fresh service + cleared caches per request (a few are enough)
    cold_n = max(3, n_frames // 4)
    t0 = time.perf_counter()
    cold_responses = [_cold_request(body) for body in bodies[:cold_n]]
    t_cold = (time.perf_counter() - t0) / cold_n

    # corpus: one long-lived service answering from the mmap'd file
    service = ReproService(workers=1, corpus=corpus_path)
    try:
        asyncio.run(_dispatch_serial(service, bodies[:1]))  # prime the map
        t0 = time.perf_counter()
        hit_responses = asyncio.run(_dispatch_serial(service, bodies))
        t_hit = (time.perf_counter() - t0) / n_frames
        status, stats_body = asyncio.run(
            service.dispatch("GET", "/v1/stats", b"")
        )
        corpus_stats = json.loads(stats_body)["corpus"]
    finally:
        service.close()

    # the acceptance bar: corpus hits byte-identical to computed answers
    for (cold_status, cold_payload), (hit_status, hit_payload) in zip(
        cold_responses, hit_responses
    ):
        assert cold_status == hit_status == 200
        assert cold_payload == hit_payload, (
            "corpus-served response diverged from computed response"
        )
    assert corpus_stats["hits"] == n_frames + 1  # every request + the primer
    assert corpus_stats["misses"] == 0

    speedup = t_cold / t_hit
    row = {
        "graph": GRAPH_SPEC,
        "frames": n_frames,
        "build (s)": f"{t_build:.2f}",
        "cold (req/s)": f"{1 / t_cold:.1f}",
        "corpus (req/s)": f"{1 / t_hit:.1f}",
        "speedup": f"{speedup:.1f}x",
    }
    print_once("corpus-hit", [row], title="corpus-served schedule throughput")
    bench_json(
        "bench_corpus",
        "corpus_hit_vs_cold",
        graph=GRAPH_SPEC,
        scheduler=SCHED,
        frames=n_frames,
        build_seconds=round(t_build, 3),
        cold_rps=round(1 / t_cold, 2),
        corpus_rps=round(1 / t_hit, 2),
        speedup=round(speedup, 2),
        floor=CORPUS_SPEEDUP_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert speedup >= CORPUS_SPEEDUP_FLOOR, (
            f"corpus hits only {speedup:.1f}x faster than cold compute "
            f"(floor is {CORPUS_SPEEDUP_FLOOR}x)"
        )


def test_corpus_lookup_latency(benchmark, tmp_path):
    """pytest-benchmark row: one corpus-served dispatch on a warm service."""
    corpus_path = tmp_path / "lookup.corpus"
    build_corpus(corpus_path, "hypercube:3", SCHED, k=1, seed=0)
    body = json.dumps(
        {
            "graph": "hypercube:3",
            "scheduler": SCHED,
            "source": 5,
            "k": 1,
            "seed": 0,
        },
        sort_keys=True,
    ).encode()
    service = ReproService(workers=1, corpus=corpus_path)
    try:
        asyncio.run(service.dispatch("POST", "/v1/schedule", body))  # prime

        def once():
            status, payload = asyncio.run(
                service.dispatch("POST", "/v1/schedule", body)
            )
            assert status == 200
            return payload

        benchmark.pedantic(once, rounds=5, iterations=1)
    finally:
        service.close()
