"""E17 — §5 future work: gossip under the k-line model."""

from repro.analysis.experiments import experiment_e17_gossip


def test_e17_gossip(benchmark, print_once):
    rows = benchmark.pedantic(experiment_e17_gossip, rounds=1, iterations=1)
    print_once("e17", rows, "[E17] §5: gossip — Q_n sweep vs sparse relayed sweep")
    for row in rows:
        assert row["Q_n valid+complete"]
        assert row["sparse valid+complete"]
        # Q_n's sweep is optimal; the sparse graph pays for its sparseness
        assert row["Q_n rounds (k=1)"] == row["min rounds ⌈log₂N⌉"]
        assert row["sparse rounds (k=3)"] >= row["Q_n rounds (k=1)"]
