"""Zero-copy parallel validation benchmarks: worker scaling + SHM/native.

Three headline measurements, all merged into ``BENCH_results.json``:

* **Cold campaign worker scaling** — the ``fault-robustness`` built-in
  executed end to end with cold caches at 1/2/4 workers.  The floor
  (2 workers ≥ 1.6× 1 worker) is asserted only at full size on a
  multi-core box: worker scaling cannot be measured on one core, so the
  row records ``cpu_count`` and the assertion gates on it.
* **Frames at n = 1025** — the combined SHM + native path (one frozen
  halving-line-broadcast frame exported to shared planes, reattached,
  revalidated 64×) against the PR-5 baseline of 64 defensive object
  copies, each re-flattened per validation.  ≥ 3× asserted at full size.
* **Batch at n = 1024 sources** — the all-sources workload
  (``bench_batch``'s headline) with the batch engine running entirely
  over the SHM-attached CSR graph: stacked generation + vectorized
  validation of all 1024 sources of ``Construct_BASE(10)`` vs the
  per-source generate-and-validate loop.  ≥ 3× asserted at full size —
  zero-copy attach must not eat the batch engine's win.

Rows record whether the numba kernels compiled (``native_available``)
and both the facade-off (pure NumPy) and facade-default timings, so the
with/without-native trajectory is diffable wherever numba exists;
verdicts are asserted identical before any timing.
"""

import os
import time

from bench_frames import _halving_line_broadcast

from repro.analysis.campaigns import BUILTIN_CAMPAIGNS, CampaignRunner
from repro.analysis.scenarios import clear_scenario_caches
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.core.params import theorem5_m_star
from repro.engine import native
from repro.engine.batch import all_sources_schedules
from repro.engine.cache import batch_validator_for, clear_cache, fast_validator_for
from repro.engine.shm import PlaneRegistry, detach_all
from repro.graphs.trees import path_graph
from repro.types import Schedule

FULL = int(os.environ.get("REPRO_BENCH_N", "12")) >= 12
FRAME_N = 1025 if FULL else 65
CORPUS = 64
BATCH_N_DIM = 10 if FULL else 7  # 1024 sources at full size
CPUS = os.cpu_count() or 1
WORKERS = (1, 2, 4) if FULL else (1, 2)
WORKER_FLOOR = 1.6
SHM_NATIVE_FLOOR = 3.0
SPEC = BUILTIN_CAMPAIGNS["fault-robustness"]


def best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


# -- frames / batch at n = 1025 ---------------------------------------------


def _instance():
    """(graph, object copies, frame): the PR-5 baseline vs the frame."""
    graph = path_graph(FRAME_N)
    frame = _halving_line_broadcast(FRAME_N).build()
    rounds = list(Schedule.from_frame(frame).rounds)
    objects = [
        Schedule(source=frame.source, rounds=list(rounds)) for _ in range(CORPUS)
    ]
    return graph, objects, frame


def _report_tuple(rep):
    return (rep.ok, rep.errors, rep.rounds, rep.informed_per_round, rep.max_call_length)


def test_shm_native_verdicts_identical():
    """SHM-attached + facade paths must agree exactly before timing."""
    graph, objects, frame = _instance()
    k = graph.n_vertices - 1
    try:
        with PlaneRegistry() as reg:
            shared_graph = reg.export_graph(graph).attach()
            shared_frame = reg.export_frame(frame).attach()
            local = [
                fast_validator_for(graph).validate(o, k, require_minimum_time=False)
                for o in objects
            ]
            shared = [
                fast_validator_for(shared_graph).validate(
                    shared_frame, k, require_minimum_time=False
                )
                for _ in range(CORPUS)
            ]
            stacked = batch_validator_for(shared_graph).validate_many(
                [shared_frame] * CORPUS, k, require_minimum_time=False
            )
            for a, b, c in zip(local, shared, stacked):
                assert a.ok and b.ok and c.ok
                assert _report_tuple(a) == _report_tuple(b) == _report_tuple(c)
            del shared_graph, shared_frame
            clear_cache()  # the engine cache pins attached graphs
    finally:
        detach_all()


def test_shm_batch_all_sources_verdicts_identical():
    """The all-sources batch path over the attached graph must agree
    with the per-source loop before timing."""
    sh = construct_base(BATCH_N_DIM, theorem5_m_star(BATCH_N_DIM))
    try:
        with PlaneRegistry() as reg:
            shared_graph = reg.export_graph(sh.graph).attach()
            validator = fast_validator_for(sh.graph)
            batch = batch_validator_for(shared_graph)
            for stack in all_sources_schedules(sh, sources=[0, 1, sh.n_vertices - 1]):
                report = batch.validate_stacked(stack, sh.k)
                for i, rep in enumerate(report.reports):
                    src = int(stack.sources[i])
                    ref = validator.validate(broadcast_schedule(sh, src), sh.k)
                    assert _report_tuple(rep) == _report_tuple(ref)
            del shared_graph, batch
            clear_cache()
    finally:
        detach_all()


def test_shm_native_frames_floor(print_once, bench_json):
    """Acceptance: ≥3× for the SHM + native frame path over the PR-5
    per-object baseline at n = 1025 (asserted at full size).  Facade-off
    timings are recorded alongside so with/without native is diffable
    wherever numba compiled."""
    graph, objects, frame = _instance()
    k = graph.n_vertices - 1
    try:
        with PlaneRegistry() as reg:
            shared_graph = reg.export_graph(graph).attach()
            shared_frame = reg.export_frame(frame).attach()
            validator = fast_validator_for(graph)
            shared_validator = fast_validator_for(shared_graph)

            def sweep_objects():
                for o in objects:
                    assert validator.validate(o, k, require_minimum_time=False).ok

            def sweep_shm_frames():
                for _ in range(CORPUS):
                    assert shared_validator.validate(
                        shared_frame, k, require_minimum_time=False
                    ).ok

            t_object = best_of(sweep_objects)
            t_frames = best_of(sweep_shm_frames)
            # facade forced off: the pure-NumPy screens over the same planes
            native._set_enabled_for_testing(False)
            try:
                t_frames_numpy = best_of(sweep_shm_frames)
            finally:
                native._set_enabled_for_testing(None)

            del shared_graph, shared_frame, shared_validator
            clear_cache()
    finally:
        detach_all()

    speedup = t_object / t_frames
    row = {
        "workload": f"validate {CORPUS}x path:{FRAME_N} halving broadcast",
        "object_s": f"{t_object:.4f}",
        "shm_s": f"{t_frames:.4f}",
        "numpy_s": f"{t_frames_numpy:.4f}",
        "speedup": f"{speedup:.1f}x",
    }
    print_once(
        "shm-native-frames", [row], title="SHM + native frames vs object baseline"
    )
    bench_json(
        "bench_parallel",
        "shm_native_frames",
        workload=row["workload"],
        n_vertices=FRAME_N,
        corpus=CORPUS,
        native_available=native.NATIVE_COMPILED,
        baseline_seconds=round(t_object, 6),
        shm_seconds=round(t_frames, 6),
        numpy_seconds=round(t_frames_numpy, 6),
        speedup=round(speedup, 2),
        floor=SHM_NATIVE_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert speedup >= SHM_NATIVE_FLOOR, (
            f"SHM frame path only {speedup:.1f}x over the object baseline "
            f"(n={FRAME_N}, floor {SHM_NATIVE_FLOOR}x)"
        )


def test_shm_native_batch_floor(print_once, bench_json):
    """Acceptance: ≥3× for the batch engine over the SHM-attached graph
    vs the per-source loop on the all-sources workload (asserted at full
    size).  The attach must be free: the batch engine's own ≥3× floor
    (``bench_batch``) has to survive its kernels reading CSR planes out
    of shared memory."""
    sh = construct_base(BATCH_N_DIM, theorem5_m_star(BATCH_N_DIM))
    n_sources = sh.n_vertices
    try:
        with PlaneRegistry() as reg:
            shared_graph = reg.export_graph(sh.graph).attach()
            validator = fast_validator_for(sh.graph)
            batch = batch_validator_for(shared_graph)

            def sweep_loop():
                for s in range(n_sources):
                    assert validator.validate(broadcast_schedule(sh, s), sh.k).ok

            def sweep_shm_batch():
                for stack in all_sources_schedules(sh):
                    report = batch.validate_stacked(stack, sh.k)
                    assert all(r.ok for r in report.reports)

            t_loop = best_of(sweep_loop)
            t_batch = best_of(sweep_shm_batch)
            native._set_enabled_for_testing(False)
            try:
                t_batch_numpy = best_of(sweep_shm_batch)
            finally:
                native._set_enabled_for_testing(None)

            del shared_graph, batch
            clear_cache()
    finally:
        detach_all()

    speedup = t_loop / t_batch
    row = {
        "workload": f"all-sources Construct_BASE({BATCH_N_DIM}), {n_sources} sources",
        "loop_s": f"{t_loop:.4f}",
        "shm_s": f"{t_batch:.4f}",
        "numpy_s": f"{t_batch_numpy:.4f}",
        "speedup": f"{speedup:.1f}x",
    }
    print_once(
        "shm-native-batch", [row], title="SHM + native batch vs per-source loop"
    )
    bench_json(
        "bench_parallel",
        "shm_native_batch",
        workload=row["workload"],
        sources=n_sources,
        native_available=native.NATIVE_COMPILED,
        baseline_seconds=round(t_loop, 6),
        shm_seconds=round(t_batch, 6),
        numpy_seconds=round(t_batch_numpy, 6),
        speedup=round(speedup, 2),
        floor=SHM_NATIVE_FLOOR,
        full_size=FULL,
    )
    if FULL:
        assert speedup >= SHM_NATIVE_FLOOR, (
            f"SHM batch path only {speedup:.1f}x over the per-source loop "
            f"({n_sources} sources, floor {SHM_NATIVE_FLOOR}x)"
        )


# -- cold campaign worker scaling -------------------------------------------


def _cold_campaign(jobs):
    """One fully cold end-to-end campaign run (no scenario/result cache)."""
    clear_scenario_caches()
    clear_cache()
    outcomes = CampaignRunner(jobs=jobs).run(SPEC)
    assert len(outcomes) == SPEC.n_scenarios
    return outcomes


def test_campaign_worker_scaling(print_once, bench_json):
    """Acceptance: cold 2-worker throughput ≥ 1.6× cold 1-worker,
    asserted at full size on ≥ 2 cores (recorded unconditionally)."""
    times = {}
    rows = []
    for jobs in WORKERS:
        times[jobs] = best_of(lambda j=jobs: _cold_campaign(j), repeats=1)
        rows.append(
            {
                "workers": jobs,
                "seconds": f"{times[jobs]:.3f}",
                "scenarios_per_s": f"{SPEC.n_scenarios / times[jobs]:.1f}",
                "vs_1_worker": f"{times[1] / times[jobs]:.2f}x",
            }
        )
    print_once(
        "campaign-worker-scaling",
        rows,
        title=f"cold {SPEC.name} campaign throughput ({CPUS} cores)",
    )
    scaling_2w = times[1] / times[2]
    bench_json(
        "bench_parallel",
        "campaign_worker_scaling",
        workload=f"cold {SPEC.name} campaign ({SPEC.n_scenarios} scenarios)",
        cpu_count=CPUS,
        seconds_by_workers={str(j): round(t, 6) for j, t in times.items()},
        scaling_2_workers=round(scaling_2w, 2),
        floor=WORKER_FLOOR,
        full_size=FULL,
        floor_asserted=FULL and CPUS >= 2,
    )
    if FULL and CPUS >= 2:
        assert scaling_2w >= WORKER_FLOOR, (
            f"2 workers only {scaling_2w:.2f}x over 1 worker on {CPUS} "
            f"cores (floor {WORKER_FLOOR}x)"
        )
