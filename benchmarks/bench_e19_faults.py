"""E19 — robustness ablation: random edge failures + schedule repair."""

from repro.analysis.experiments import experiment_e19_faults


def test_e19_faults(benchmark, print_once):
    rows = benchmark.pedantic(
        lambda: experiment_e19_faults(trials=25), rounds=1, iterations=1
    )
    print_once("e19", rows, "[E19] Edge failures: repair rate of Broadcast_2")
    rates = [row["repair rate"] for row in rows]
    # monotone (non-increasing) decay with failure count
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    # soundness: every repaired schedule validated on the surviving graph
    for row in rows:
        assert row["repaired & valid"] == row["repaired"]
