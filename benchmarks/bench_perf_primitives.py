"""Raw performance benchmarks for the library's primitives.

Not tied to a paper artifact: these watch the hot paths (construction,
scheme generation, validation — reference and bitset fast path — BFS,
max-flow) so performance regressions are visible in CI.  Sizes are
chosen to run in milliseconds; the CI smoke pass shrinks them further
via ``REPRO_BENCH_N``.
"""

import os

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.params import theorem7_params
from repro.flows.paths import round_packing_bound
from repro.graphs.hypercube import hypercube
from repro.model.validator import validate_broadcast
from repro.model.validator_fast import FastValidator, validate_broadcast_fast
from repro.schedulers.greedy import heuristic_line_broadcast
from repro.graphs.trees import balanced_ternary_core_tree

# Primary workload size (hypercube dimension); REPRO_BENCH_N=10 gives the
# CI smoke pass a ~4x cheaper run with identical code paths.
N = int(os.environ.get("REPRO_BENCH_N", "12"))
M = max(1, N // 3)


def test_perf_construct_base(benchmark):
    g = benchmark(lambda: construct_base(N, M).graph)
    assert g.n_vertices == 1 << N


def test_perf_construct_k4(benchmark):
    thresholds = theorem7_params(4, N)
    g = benchmark(lambda: construct(4, N, thresholds).graph)
    assert g.n_vertices == 1 << N


def test_perf_hypercube(benchmark):
    g = benchmark(lambda: hypercube(N))
    assert g.n_edges == N * (1 << (N - 1))


def test_perf_broadcast_schedule(benchmark):
    sh = construct_base(N, M)
    _ = sh.graph  # materialize outside the timer
    sched = benchmark(lambda: broadcast_schedule(sh, 0))
    assert sched.num_calls == (1 << N) - 1


def test_perf_validate_reference(benchmark):
    sh = construct_base(N, M)
    g = sh.graph
    sched = broadcast_schedule(sh, 0)
    rep = benchmark(lambda: validate_broadcast(g, sched, 2))
    assert rep.ok


def test_perf_validate_fast_warm(benchmark):
    """The bitset fast path with the per-graph setup amortized — the
    configuration the sweep experiments use (many schedules per graph)."""
    sh = construct_base(N, M)
    g = sh.graph
    sched = broadcast_schedule(sh, 0)
    validator = FastValidator(g)
    rep = benchmark(lambda: validator.validate(sched, 2))
    assert rep.ok


def test_perf_validate_fast_cold(benchmark):
    """The bitset fast path including FastValidator construction."""
    sh = construct_base(N, M)
    g = sh.graph
    sched = broadcast_schedule(sh, 0)
    rep = benchmark(lambda: validate_broadcast_fast(g, sched, 2))
    assert rep.ok


def test_perf_bfs_sweep(benchmark):
    g = hypercube(N)
    dist = benchmark(lambda: g.bfs_distances(0))
    assert int(dist.max()) == N


def test_perf_round_packing_flow(benchmark):
    g = hypercube(8)
    informed = set(range(0, 256, 16))
    value = benchmark(lambda: round_packing_bound(g, set(informed)))
    assert value == len(informed)


@pytest.mark.parametrize("h", [4])
def test_perf_heuristic_tree_broadcast(benchmark, h):
    g = balanced_ternary_core_tree(h)
    sched = benchmark.pedantic(
        lambda: heuristic_line_broadcast(g, 0, 2 * h, restarts=100),
        rounds=1,
        iterations=1,
    )
    assert sched is not None
