"""Raw performance benchmarks for the library's primitives.

Not tied to a paper artifact: these watch the hot paths (construction,
scheme generation, validation, BFS, max-flow) so performance regressions
are visible in CI.  Sizes are chosen to run in milliseconds.
"""

import pytest

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.flows.paths import round_packing_bound
from repro.graphs.hypercube import hypercube
from repro.model.validator import validate_broadcast
from repro.schedulers.greedy import heuristic_line_broadcast
from repro.graphs.trees import balanced_ternary_core_tree


class BenchFixtures:
    N = 12


def test_perf_construct_base_n12(benchmark):
    sh = benchmark(lambda: construct_base(12, 4).graph)
    assert sh.n_vertices == 4096


def test_perf_construct_k4_n12(benchmark):
    sh = benchmark(lambda: construct(4, 12, (2, 5, 8)).graph)
    assert sh.n_vertices == 4096


def test_perf_hypercube_n12(benchmark):
    g = benchmark(lambda: hypercube(12))
    assert g.n_edges == 12 * 2048


def test_perf_broadcast_schedule_n12(benchmark):
    sh = construct_base(12, 4)
    sh.graph  # materialize outside the timer
    sched = benchmark(lambda: broadcast_schedule(sh, 0))
    assert sched.num_calls == 4095


def test_perf_validate_n12(benchmark):
    sh = construct_base(12, 4)
    g = sh.graph
    sched = broadcast_schedule(sh, 0)
    rep = benchmark(lambda: validate_broadcast(g, sched, 2))
    assert rep.ok


def test_perf_bfs_sweep(benchmark):
    g = hypercube(12)
    dist = benchmark(lambda: g.bfs_distances(0))
    assert int(dist.max()) == 12


def test_perf_round_packing_flow(benchmark):
    g = hypercube(8)
    informed = set(range(0, 256, 16))
    value = benchmark(lambda: round_packing_bound(g, set(informed)))
    assert value == len(informed)


@pytest.mark.parametrize("h", [4])
def test_perf_heuristic_tree_broadcast(benchmark, h):
    g = balanced_ternary_core_tree(h)
    sched = benchmark.pedantic(
        lambda: heuristic_line_broadcast(g, 0, 2 * h, restarts=100),
        rounds=1,
        iterations=1,
    )
    assert sched is not None
