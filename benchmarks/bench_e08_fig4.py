"""E08 — Example 4 / Fig. 4: the broadcast from 0000, call for call."""

from repro.analysis.experiments import experiment_e08_fig4


def test_e08_fig4_reproduction(benchmark, print_once):
    rows = benchmark(experiment_e08_fig4)
    print_once(
        "e08", rows, "[E08] Example 4 / Fig. 4: Broadcast_2 in G_{4,2} from 0000"
    )
    for row in rows:
        assert row["match"], row
