#!/usr/bin/env python
"""Section-5 congestion study: the price of sparseness.

The paper closes by noting that deleting edges and lengthening calls
concentrates traffic, and proposes per-edge bandwidth (dilated networks /
fat-trees) as future work.  This example quantifies that trade on real
schedules:

* edge utilization and per-edge load of a single Broadcast_k run,
* the bandwidth needed when two broadcasts share the same rounds,
* how the simulator's bandwidth knob (the §5 extension) absorbs it.

Run:  python examples/congestion_study.py
"""

from repro.analysis.tables import print_table
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct
from repro.core.params import default_thresholds
from repro.model.congestion import congestion_profile, min_feasible_bandwidth
from repro.model.simulator import LineNetworkSimulator
from repro.types import Round, Schedule


def merged_schedule(sh, sources):
    """Force several broadcasts into shared rounds (conflicts intended)."""
    schedules = [broadcast_schedule(sh, s) for s in sources]
    merged = Schedule(source=sources[0])
    for rounds in zip(*(s.rounds for s in schedules)):
        calls = tuple(c for rnd in rounds for c in rnd)
        merged.rounds.append(Round(calls))
    return merged


def main() -> None:
    rows = []
    for k, n in ((2, 10), (3, 10), (4, 12)):
        thr = default_thresholds(k, n)
        sh = construct(k, n, thr)
        g = sh.graph
        solo = broadcast_schedule(sh, 0)
        prof = congestion_profile(g, solo)

        two = merged_schedule(sh, [0, g.n_vertices - 1])
        needed = min_feasible_bandwidth(g, two)

        # how many calls per round actually go through at each bandwidth?
        admitted = {}
        for b in (1, 2, 4):
            sim = LineNetworkSimulator(g, k=k, bandwidth=b, strict=False)
            res = sim.run(two)
            admitted[b] = sum(res.informed_per_round[-1:]) and len(res.informed)
        rows.append(
            {
                "construction": f"k={k}, n={n}, thr={thr}",
                "Δ": g.max_degree(),
                "|E| used (solo)": f"{prof.used_edges}/{prof.graph_edges}",
                "max load/edge (solo)": prof.max_total_load,
                "2-src min bandwidth": needed,
                "informed @b=1": admitted[1],
                "informed @b=2": admitted[2],
                "informed @b=4": admitted[4],
            }
        )
    print_table(rows, title="Congestion and the bandwidth extension (§5)")
    print(
        "\nReading: a single schedule always fits bandwidth 1 (Definition 1);"
        "\ntwo simultaneous broadcasts need dilation ≥ 2 on shared edges, and"
        "\nthe bandwidth-b simulator admits correspondingly more calls."
    )


if __name__ == "__main__":
    main()
