#!/usr/bin/env python
"""Reproduce Fig. 4 of the paper as an ASCII round-by-round trace.

Builds the exact G_{4,2} of Example 2 (the paper's labeling of Q₂ and the
partition S₁ = {3}, S₂ = {4}), runs ``Broadcast_2`` from vertex 0000, and
prints each round's calls in the paper's bit-string notation — the first
two rounds match the figure call for call (0000→1010 through 0010; then
0000→0100 and 1010→1111 through 1011).

Run:  python examples/fig4_broadcast_trace.py
"""

from repro.analysis.experiments import paper_g42
from repro.core.broadcast import broadcast_schedule
from repro.model.validator import assert_valid_broadcast
from repro.util.bits import to_bitstring


def main() -> None:
    sh = paper_g42()
    g = sh.graph
    print("G_{4,2} (Example 2):", sh.describe(), sep="\n")
    print(f"\n|E| = {g.n_edges} (16 Rule-1 + 8 Rule-2), Δ = {g.max_degree()}\n")

    sched = broadcast_schedule(sh, 0b0000)
    assert_valid_broadcast(g, sched, k=2)

    informed = {0b0000}
    print("Broadcast_2 from 0000 (Fig. 4):")
    for idx, rnd in enumerate(sched.rounds, start=1):
        phase = "Phase 1" if idx <= 2 else "Phase 2"
        print(f"\n  round {idx} ({phase}):")
        for call in rnd:
            arrow = " -> ".join(to_bitstring(v, 4) for v in call.path)
            via = "" if call.length == 1 else f"   (length-{call.length} call)"
            print(f"    {arrow}{via}")
        informed |= {c.receiver for c in rnd}
        bits = " ".join(to_bitstring(v, 4) for v in sorted(informed))
        print(f"    informed ({len(informed)}): {bits}")

    print("\nAll 16 vertices informed in 4 = log2(16) rounds — minimum time.")


if __name__ == "__main__":
    main()
