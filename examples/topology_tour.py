#!/usr/bin/env python
"""A tour of the implemented interconnection topologies (paper §1 context).

Builds every topology in :mod:`repro.graphs` at comparable order, prints
degree/diameter/edge statistics, and demonstrates which ones support
minimum-time broadcast at which k (via the exact searcher on the smallest
instances and the constructions' schemes where available).

Run:  python examples/topology_tour.py
"""

from repro.analysis.tables import print_table
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.graphs.hypercube import hypercube
from repro.graphs.properties import graph_stats
from repro.graphs.trees import balanced_ternary_core_tree, star
from repro.graphs.variants import (
    cube_connected_cycles,
    cycle_graph,
    de_bruijn,
    folded_hypercube,
    star_graph_permutation,
    torus,
)
from repro.model.validator import validate_broadcast
from repro.schedulers.search import is_k_mlbg_exact
from repro.schedulers.store_forward import binomial_hypercube_broadcast


def main() -> None:
    zoo = [
        ("Q_8", hypercube(8)),
        ("sparse G_{8,3}", construct_base(8, 3).graph),
        ("folded Q_8", folded_hypercube(8)),
        ("CCC(5)", cube_connected_cycles(5)),
        ("de Bruijn(2,8)", de_bruijn(2, 8)),
        ("star graph S_5", star_graph_permutation(5)),
        ("torus 16x16", torus(16, 16)),
        ("cycle C_256", cycle_graph(256)),
        ("star K_{1,255}", star(256)),
        ("Theorem-1 tree h=6", balanced_ternary_core_tree(6)),
    ]
    rows = []
    for name, g in zoo:
        st = graph_stats(g)
        rows.append(
            {
                "topology": name,
                "N": st.n_vertices,
                "|E|": st.n_edges,
                "Δ": st.max_degree,
                "diam": st.diameter,
                "avg deg": round(st.mean_degree, 2),
            }
        )
    print_table(rows, title="Topology zoo at N ≈ 256")

    print("\nBroadcast properties (machine-checked):")
    # Q_n at k=1 via the binomial schedule
    sched = binomial_hypercube_broadcast(8, 0)
    ok = validate_broadcast(hypercube(8), sched, 1).ok
    print(f"  Q_8 is a 1-mlbg (binomial schedule validates):      {ok}")

    # sparse hypercube at k=2 via Broadcast_2
    sh = construct_base(8, 3)
    ok = validate_broadcast(sh.graph, broadcast_schedule(sh, 0), 2).ok
    print(f"  G_{{8,3}} broadcasts in minimum time at k=2:          {ok}")

    # small instances, exact search
    print(
        f"  C_8 is a 2-mlbg (exact search):                     "
        f"{is_k_mlbg_exact(cycle_graph(8), 2)}"
    )
    print(
        f"  K_{{1,7}} is a 2-mlbg but not a 1-mlbg:               "
        f"{is_k_mlbg_exact(star(8), 2)} / {not is_k_mlbg_exact(star(8), 1)}"
    )


if __name__ == "__main__":
    main()
