#!/usr/bin/env python
"""Degree scaling study: how sparse can a minimum-time network get?

For a range of network sizes N = 2^n and call lengths k, prints the
maximum degree of:

* the binary n-cube (the k = 1 answer: Δ = n),
* the sparse hypercube with the paper's analytic parameters,
* the sparse hypercube with exhaustively optimized thresholds,
* the paper's upper bound and lower bound,

showing the Θ(ᵏ√log N) scaling of Theorems 5/7 and (numerically) the
asymptotic optimality of Corollary 2.

Run:  python examples/degree_scaling.py
"""

from repro.analysis.tables import print_table
from repro.core.bounds import (
    degree_lower_bound,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.params import (
    default_thresholds,
    degree_formula_for_thresholds,
    optimized_params,
)


def main() -> None:
    for k in (2, 3, 4):
        rows = []
        for n in (8, 12, 16, 24, 32, 48, 64, 96, 128):
            if n <= k:
                continue
            analytic = default_thresholds(k, n)
            d_analytic = degree_formula_for_thresholds(n, analytic)
            opt = optimized_params(k, n, exhaustive_limit=30_000)
            d_opt = degree_formula_for_thresholds(n, opt)
            bound = upper_bound_theorem5(n) if k == 2 else upper_bound_theorem7(n, k)
            lower = degree_lower_bound(n, k)
            rows.append(
                {
                    "n": n,
                    "N": f"2^{n}",
                    "Δ(Q_n)": n,
                    "Δ analytic": d_analytic,
                    "Δ optimized": d_opt,
                    "paper bound": bound,
                    "lower bound": lower,
                    "Δopt / ᵏ√n": round(d_opt / n ** (1 / k), 2),
                }
            )
        print_table(rows, title=f"\n=== k = {k} ===")
        print(
            f"(Corollary 2: Δ = Θ(ᵏ√log N) for constant k — the ratio "
            f"column stays bounded)"
        )


if __name__ == "__main__":
    main()
