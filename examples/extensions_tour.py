#!/usr/bin/env python
"""Tour of the beyond-the-paper extensions (§5's future-work directions).

Demonstrates, on small instances:

1. gossip under the k-line model (Q_n sweep vs sparse relayed sweep);
2. the vertex-disjoint call model — the sparse schemes pass it for free;
3. edge-failure repair and where it must fail;
4. wormhole cycle accounting (the hardware model behind k-line);
5. an exact multi-message optimum beating serial broadcast;
6. exporting and re-verifying a k-mlbg certificate (trust nothing).

Run:  python examples/extensions_tour.py
"""

import tempfile

from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct_base
from repro.gossip import hypercube_gossip, sparse_hypercube_gossip, validate_gossip
from repro.graphs.hypercube import hypercube
from repro.io import (
    certificate_for,
    dump_certificate,
    load_certificate,
    verify_certificate,
)
from repro.model.faults import (
    attempt_broadcast_with_failures,
    failed_edge_sample,
    remove_edges,
)
from repro.model.validator import validate_broadcast
from repro.schedulers.multimsg_search import (
    find_multimessage_schedule,
    multimessage_lower_bound,
    validate_multimessage,
)
from repro.wormhole import schedule_latency


def main() -> None:
    n, m = 6, 2
    sh = construct_base(n, m)
    g = sh.graph
    print(f"Instance: G_{{{n},{m}}} — N={g.n_vertices}, Δ={g.max_degree()} (vs {n})\n")

    # 1. gossip
    q_rounds = hypercube_gossip(n).num_rounds
    s_sched = sparse_hypercube_gossip(sh)
    rep = validate_gossip(g, s_sched, 3)
    print(
        f"1. gossip: Q_{n} sweeps in {q_rounds} rounds (k=1); sparse needs "
        f"{s_sched.num_rounds} rounds at k=3 (valid={rep.ok}, complete={rep.complete})"
    )

    # 2. vertex-disjoint model
    sched = broadcast_schedule(sh, 0)
    strict = validate_broadcast(g, sched, 2, vertex_disjoint=True)
    print(f"2. vertex-disjoint model: Broadcast_2 passes as-is: {strict.ok}")

    # 3. failure repair
    repaired = unrepaired = 0
    for seed in range(20):
        failed = failed_edge_sample(g, 2, seed=seed)
        fixed = attempt_broadcast_with_failures(sh, 0, failed)
        if fixed is None:
            unrepaired += 1
        else:
            assert validate_broadcast(remove_edges(g, failed), fixed, 2).ok
            repaired += 1
    print(
        f"3. failures (f=2, 20 trials): repaired {repaired}, fatal {unrepaired} "
        f"(every repair independently validated)"
    )

    # 4. wormhole cycles
    for flits in (1, 32):
        lat_sparse = schedule_latency(g, sched, flits).total_cycles
        q = hypercube(n)
        from repro.schedulers.store_forward import binomial_hypercube_broadcast

        lat_q = schedule_latency(
            q, binomial_hypercube_broadcast(n, 0), flits
        ).total_cycles
        print(
            f"4. wormhole @{flits:>2} flits: Q_{n} {lat_q} cycles, "
            f"sparse {lat_sparse} (+{100 * (lat_sparse / lat_q - 1):.0f}%)"
        )

    # 5. multi-message optimum on Q3
    q3 = hypercube(3)
    lb = multimessage_lower_bound(8, 2)
    assert find_multimessage_schedule(q3, 0, 1, 2, lb - 1) is None
    mm = find_multimessage_schedule(q3, 0, 1, 2, lb)
    assert mm is not None and validate_multimessage(q3, mm, 1) == []
    print(
        f"5. multi-message: T(Q_3, 2 msgs, k=1) = {lb} exactly "
        f"({lb - 1} refuted; serial would take 6)"
    )

    # 6. certificates
    cert = certificate_for(construct_base(4, 2))
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        path = fh.name
    dump_certificate(cert, path)
    print(
        f"6. certificate: 16-source k-mlbg proof written to JSON and "
        f"re-verified from disk: {verify_certificate(load_certificate(path))}"
    )


if __name__ == "__main__":
    main()
