#!/usr/bin/env python
"""Quickstart: build a sparse hypercube, broadcast, and verify.

This walks the library's core loop in ~40 lines:

1. pick the paper's parameters for a 1024-vertex, k = 2 network;
2. build the sparse hypercube (a spanning subgraph of Q_10 with maximum
   degree 5 instead of 10);
3. generate the minimum-time ``Broadcast_2`` schedule from a source;
4. validate it against the k-line communication model (Definition 1);
5. replay it on the simulator and look at the statistics.

Run:  python examples/quickstart.py
"""

from repro import (
    broadcast_schedule,
    construct_base,
    hypercube,
    theorem5_m_star,
    upper_bound_theorem5,
    validate_broadcast,
)
from repro.model import LineNetworkSimulator

N_DIMS = 10  # the network has 2^10 = 1024 nodes


def main() -> None:
    # 1. parameters: Theorem 5's m* minimizes the degree bound for k = 2
    m = theorem5_m_star(N_DIMS)
    bound = upper_bound_theorem5(N_DIMS)
    print(f"n = {N_DIMS}, m* = {m}, Theorem-5 bound: Δ ≤ {bound}")

    # 2. construction
    sh = construct_base(N_DIMS, m)
    g = sh.graph
    q = hypercube(N_DIMS)
    print(sh.describe())
    print(
        f"edges: {g.n_edges} vs {q.n_edges} in Q_{N_DIMS} "
        f"({100 * (1 - g.n_edges / q.n_edges):.0f}% fewer)"
    )

    # 3. the scheme: one call list per round, ⌈log₂N⌉ rounds total
    source = 0b1100100101
    sched = broadcast_schedule(sh, source)
    print(
        f"\nbroadcast from {source:0{N_DIMS}b}: {len(sched.rounds)} rounds, "
        f"{sched.num_calls} calls, longest call {sched.max_call_length()} edges"
    )

    # 4. independent validation against Definition 1 (k = 2)
    report = validate_broadcast(g, sched, k=2)
    assert report.ok, report.errors
    print(f"validator: OK — informed per round: {report.informed_per_round}")

    # 5. simulation with statistics
    sim = LineNetworkSimulator(g, k=2)
    result = sim.run(sched)
    print(
        f"simulator: {len(result.informed)}/{g.n_vertices} informed, "
        f"call-length histogram {result.call_length_histogram}, "
        f"peak edge load {max(result.max_edge_load_per_round)}"
    )


if __name__ == "__main__":
    main()
