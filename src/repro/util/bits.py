"""Bit-string helpers used throughout the sparse-hypercube constructions.

Conventions
-----------
A vertex of the binary n-cube is an integer in ``[0, 2**n)``.  The paper
writes a vertex as the string ``u_n u_{n-1} ... u_1`` and indexes
*dimensions* from 1 (least significant bit) to n (most significant bit).
Throughout this library:

* *dimension* ``i`` (1-indexed, as in the paper) maps to *bit position*
  ``i - 1`` of the integer;
* ``flip_dim(u, i)`` implements the paper's ``⊕_i u`` operator;
* the *suffix of length m* is ``u mod 2**m`` (``suffix_value``), the
  *prefix of length n-m* is ``u >> m`` (``prefix_value``).

Scalar helpers operate on Python ints (arbitrary precision); vectorized
helpers operate on NumPy integer arrays and are used on the hot paths of
graph construction, per the profiling-first guidance of the HPC coding
guides (vectorize the O(N·n) loops, keep everything else legible).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "bit",
    "flip",
    "flip_dim",
    "popcount",
    "hamming_distance",
    "mask_from_indices",
    "mask_to_indices",
    "iter_bits",
    "suffix_value",
    "prefix_value",
    "to_bitstring",
    "from_bitstring",
    "int_to_bits",
    "bits_to_int",
    "bit_positions",
    "iter_neighbors",
    "popcount_array",
    "flip_dim_array",
    "all_vertices",
]


def bit(u: int, i: int) -> int:
    """Value (0 or 1) of dimension ``i`` (1-indexed) of vertex ``u``."""
    if i < 1:
        raise ValueError(f"dimensions are 1-indexed, got {i}")
    return (u >> (i - 1)) & 1


def flip(u: int, bit_pos: int) -> int:
    """Flip the 0-indexed ``bit_pos`` of ``u``."""
    return u ^ (1 << bit_pos)


def flip_dim(u: int, i: int) -> int:
    """The paper's ``⊕_i u``: flip dimension ``i`` (1-indexed) of ``u``."""
    if i < 1:
        raise ValueError(f"dimensions are 1-indexed, got {i}")
    return u ^ (1 << (i - 1))


def popcount(u: int) -> int:
    """Number of set bits of ``u`` (Hamming weight)."""
    return int(u).bit_count()


def hamming_distance(u: int, v: int) -> int:
    """Hamming distance between bit strings ``u`` and ``v``.

    This equals the graph distance between ``u`` and ``v`` in the complete
    binary n-cube ``Q_n`` (but *not* in a sparse hypercube, which is a
    proper subgraph).
    """
    return int(u ^ v).bit_count()


def mask_from_indices(indices: Iterable[int]) -> int:
    """Integer bitmask with bit ``i`` set for every ``i`` in ``indices``.

    The canonical set representation of the scheduling engine, the fast
    validator, and the search memo tables: vertex (or edge-id) sets are
    arbitrary-precision ints, so membership is ``(mask >> i) & 1``, union
    is ``|``, and cardinality is ``mask.bit_count()``.
    """
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


def mask_to_indices(mask: int) -> list[int]:
    """The set bit positions of ``mask`` as a sorted list (inverse of
    :func:`mask_from_indices`)."""
    return list(iter_bits(mask))


def suffix_value(u: int, m: int) -> int:
    """The suffix ``u_m ... u_1`` of ``u``, as an integer in ``[0, 2**m)``."""
    if m < 0:
        raise ValueError(f"suffix length must be non-negative, got {m}")
    return u & ((1 << m) - 1)


def prefix_value(u: int, m: int) -> int:
    """The prefix ``u_n ... u_{m+1}`` of ``u``: everything above the m-suffix."""
    if m < 0:
        raise ValueError(f"suffix length must be non-negative, got {m}")
    return u >> m


def to_bitstring(u: int, n: int) -> str:
    """Render ``u`` as the paper's ``u_n u_{n-1} ... u_1`` string of length n."""
    if u < 0 or u >= (1 << n):
        raise ValueError(f"vertex {u} does not fit in {n} bits")
    return format(u, f"0{n}b")


def from_bitstring(s: str) -> int:
    """Parse a ``u_n ... u_1`` bit string (as printed in the paper)."""
    if not s or any(c not in "01" for c in s):
        raise ValueError(f"not a bit string: {s!r}")
    return int(s, 2)


def int_to_bits(u: int, n: int) -> np.ndarray:
    """Vector of the n bits of ``u``; index ``j`` holds dimension ``j+1``.

    (i.e. index 0 is the least significant bit, matching the dimension
    convention shifted down by one.)
    """
    if u < 0 or u >= (1 << n):
        raise ValueError(f"vertex {u} does not fit in {n} bits")
    return np.array([(u >> j) & 1 for j in range(n)], dtype=np.uint8)


def bits_to_int(bits: Iterable[int]) -> int:
    """Inverse of :func:`int_to_bits`."""
    value = 0
    for j, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit values must be 0/1, got {b}")
        value |= int(b) << j
    return value


def bit_positions(u: int) -> list[int]:
    """Sorted list of set 0-indexed bit positions of ``u``."""
    positions = []
    j = 0
    while u:
        if u & 1:
            positions.append(j)
        u >>= 1
        j += 1
    return positions


def iter_neighbors(u: int, n: int) -> Iterator[int]:
    """All n neighbours of ``u`` in the complete cube ``Q_n``."""
    for j in range(n):
        yield u ^ (1 << j)


def all_vertices(n: int) -> np.ndarray:
    """All ``2**n`` vertices of ``Q_n`` as a uint64 array (hot-path helper)."""
    if n < 0 or n > 62:
        raise ValueError(f"n out of supported range [0, 62]: {n}")
    return np.arange(1 << n, dtype=np.uint64)


def popcount_array(a: np.ndarray) -> np.ndarray:
    """Vectorized popcount of an unsigned integer array."""
    a = np.asarray(a, dtype=np.uint64)
    return np.bitwise_count(a).astype(np.int64)


def flip_dim_array(a: np.ndarray, i: int) -> np.ndarray:
    """Vectorized ``⊕_i`` over an array of vertices (dimension 1-indexed)."""
    if i < 1:
        raise ValueError(f"dimensions are 1-indexed, got {i}")
    a = np.asarray(a, dtype=np.uint64)
    return a ^ np.uint64(1 << (i - 1))
