"""Shared low-level utilities (bit manipulation, validation helpers)."""

from repro.util.bits import (
    bit,
    bit_positions,
    bits_to_int,
    flip,
    flip_dim,
    hamming_distance,
    int_to_bits,
    popcount,
    prefix_value,
    suffix_value,
    to_bitstring,
)

__all__ = [
    "bit",
    "bit_positions",
    "bits_to_int",
    "flip",
    "flip_dim",
    "hamming_distance",
    "int_to_bits",
    "popcount",
    "prefix_value",
    "suffix_value",
    "to_bitstring",
]
