"""Retry policy: bounded attempts, deterministic backoff, deadlines.

One :class:`RetryPolicy` value travels from the CLI knobs
(``--retries`` / ``--task-timeout``) down through every parallel
surface, so the fault discipline is written down once:

* **Bounded attempts.**  A task gets ``max_attempts`` tries; the pool
  retries only :class:`~repro.errors.ExecutionError`-family faults
  (worker crash, deadline, shm attach) — a task whose *own code*
  raises fails immediately, because deterministic errors cannot be
  retried away.  When the budget is exhausted the task is quarantined
  (poison-task report) instead of aborting its whole run.
* **Deterministic exponential backoff with seeded jitter.**
  ``backoff(attempt, key)`` doubles from ``base_delay`` up to
  ``max_delay`` and jitters each step by a factor derived from
  ``sha256(seed, key, attempt)`` — the same run always sleeps the same
  amount (no module-global RNG, RL001), while distinct tasks decorrelate.
* **Per-task deadlines.**  ``task_timeout`` seconds per task; the pool
  multiplies by the chunk length and accounts the deadline from
  dispatch time (see ``WorkerPool``), so a hung task surfaces as
  :class:`~repro.errors.TaskTimeout` instead of a silent stall.

This module is one of the two sanctioned homes of ``time.sleep``
(lint rule RL010) — ad-hoc sleep/retry loops elsewhere are banned so
every backoff is policy-driven and deterministic.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.types import InvalidParameterError

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "RetryPolicy",
    "pause",
    "seeded_jitter",
]


def pause(seconds: float) -> None:
    """Block for ``seconds`` (no-op for ``<= 0``).

    The sanctioned sleep primitive (RL010) for policy-driven waits —
    the pool's backoff gaps between re-dispatches route through here so
    every delay in the execution layer is attributable to a policy.
    """
    if seconds > 0:
        time.sleep(seconds)

# Two retries by default: enough to absorb a transient fault (one kill,
# one unlucky respawn) without letting a genuinely poisoned task burn
# minutes before quarantine.
DEFAULT_MAX_ATTEMPTS = 3


def seeded_jitter(seed: int, key: str, attempt: int) -> float:
    """A deterministic jitter factor in ``[0, 1)``.

    Stable across processes and machines (sha256, not ``hash()``), so a
    chaos-injected run backs off identically on every replay.
    """
    blob = f"{seed}:{key}:{attempt}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How the execution layer responds to infrastructure faults."""

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay: float = 0.05
    max_delay: float = 2.0
    task_timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError(
                "backoff delays must be >= 0, got "
                f"base={self.base_delay}, max={self.max_delay}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise InvalidParameterError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}"
            )

    @property
    def retries(self) -> int:
        """Extra attempts after the first (the CLI's ``--retries``)."""
        return self.max_attempts - 1

    @classmethod
    def from_knobs(
        cls,
        *,
        retries: int | None = None,
        task_timeout: float | None = None,
        seed: int = 0,
    ) -> RetryPolicy:
        """Build a policy from the CLI's ``--retries``/``--task-timeout``."""
        if retries is not None and retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        attempts = DEFAULT_MAX_ATTEMPTS if retries is None else retries + 1
        return cls(max_attempts=attempts, task_timeout=task_timeout, seed=seed)

    def backoff(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before re-dispatching attempt ``attempt``.

        ``attempt`` counts *failures so far* (1 = first retry).  The
        exponential step is jittered into ``[0.5, 1.0)`` of its nominal
        value so simultaneous retries decorrelate without a shared RNG.
        """
        if attempt < 1 or self.base_delay == 0:
            return 0.0
        nominal = min(self.max_delay, self.base_delay * 2 ** (attempt - 1))
        return nominal * (0.5 + seeded_jitter(self.seed, key, attempt) / 2)

    def sleep_before(self, attempt: int, key: str = "") -> float:
        """Sleep the backoff for ``attempt`` and return the delay slept.

        The one sanctioned in-process sleep (RL010) outside the chaos
        harness; pool code wanting non-blocking backoff uses
        :meth:`backoff` to compute a not-before timestamp instead.
        """
        delay = self.backoff(attempt, key)
        if delay > 0:
            time.sleep(delay)
        return delay

    def chunk_deadline(self, n_items: int) -> float | None:
        """Deadline in seconds for a chunk of ``n_items`` tasks.

        ``task_timeout`` is *per task*; a worker processing a chunk
        sequentially legitimately needs the sum.
        """
        if self.task_timeout is None:
            return None
        return self.task_timeout * max(1, n_items)
