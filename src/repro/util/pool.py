"""Crash-safe multiprocessing pool: chunked fan-out that survives faults.

Every parallel surface in the repo (``ExperimentRunner``,
``CampaignRunner``, :func:`repro.engine.parallel.validate_many_parallel`)
routes through :class:`WorkerPool` / :func:`fan_out` so the pool policy
is written down once:

* **In-process when parallelism cannot pay.**  ``jobs == 1`` or at most
  one task never spins up a pool; the optional ``initializer`` still runs
  (in-process) so serial and parallel executions warm the same caches.
  Corollary: an attach-style initializer (one that populates
  process-local caches, e.g. shared-memory mappings) then populates the
  *parent's* caches — such callers must clean up parent-side state when
  the serial path was taken (see the ``finally`` in
  ``repro.engine.parallel.validate_many_parallel``), or that state goes
  stale once its backing resource is released.
* **Explicit chunking.**  :func:`default_chunksize`
  (``ceil(n_tasks / (jobs * CHUNKS_PER_WORKER))``) amortizes IPC
  round-trips while keeping ~4 chunks per worker for load balancing.
  Results are reassembled in task order regardless of chunking, worker
  scheduling, crashes, or retries — the determinism contract pinned by
  ``tests/util/test_pool.py``.
* **Crash safety.**  Workers are individual ``multiprocessing.Process``
  children, each with its own duplex pipe; the parent waits on result
  pipes *and* process sentinels simultaneously, so a SIGKILL'd worker is
  detected immediately (the ``BrokenProcessPool`` analogue) instead of
  hanging the run.  The failed chunk — and only that chunk — is re-run
  under the :class:`~repro.util.retry.RetryPolicy`: a multi-task chunk
  is first split into single-task chunks so one poison task cannot drag
  its innocent chunk-mates through the retry budget.  A task that keeps
  killing its worker (or blowing its ``task_timeout`` deadline) is
  **quarantined** after ``max_attempts``: :meth:`WorkerPool.map_quarantine`
  reports it as a :class:`TaskFault` value while every other task
  completes; plain :meth:`WorkerPool.map` raises the corresponding
  :class:`~repro.errors.WorkerCrash` / :class:`~repro.errors.TaskTimeout`.
  Exceptions raised by the task's *own code* are never retried — they
  re-raise in the parent with their original type, exactly as before.
* **Graceful vs. hard shutdown.**  ``close()`` asks each worker to stop
  and joins it (clean ``exitcode == 0``, atexit/flush hooks run);
  ``terminate()`` is the error-path hard kill.  A ``with`` block closes
  gracefully on clean exit and terminates when an exception is flying.
* **Bounded worker lifetime.**  ``maxtasksperchild`` retires a worker
  after N chunks (it exits cleanly and a fresh process takes its slot),
  so long campaigns cannot accumulate per-process state.
* **Start method.**  The platform default (``fork`` on Linux, ``spawn``
  elsewhere).  Everything submitted — worker functions, initializers,
  their arguments — must be a *top-level picklable* object (RL005), so
  the code is spawn-safe by construction.

Fault injection for tests/CI lives in :mod:`repro.devtools.chaos`
(``REPRO_CHAOS``): the worker loop consults the chaos policy before
each chunk (deterministic kill/delay), which is how the retry, timeout,
and quarantine paths are proven without real flakiness.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any, TypeVar, cast

from repro.devtools import chaos
from repro.errors import TaskTimeout, WorkerCrash, captured_call, format_cause
from repro.util.retry import RetryPolicy, pause

__all__ = [
    "CHUNKS_PER_WORKER",
    "TaskFault",
    "WorkerPool",
    "default_chunksize",
    "fan_out",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

# Target number of chunks handed to each worker: >1 so a slow chunk can
# be balanced by idle workers picking up remaining chunks, small enough
# that per-chunk pickling overhead stays negligible.
CHUNKS_PER_WORKER = 4

# Seconds granted to a worker to exit after a graceful stop request
# before the hard-kill escalation (it is idle at that point — the grace
# only needs to cover interpreter shutdown).
_GRACEFUL_JOIN_SECONDS = 5.0

# Poll ceiling while tasks are in flight and a deadline or backoff gap
# is pending; keeps fault detection latency bounded without busy-waiting.
_MAX_POLL_SECONDS = 0.25


def default_chunksize(n_tasks: int, jobs: int) -> int:
    """Chunk size giving each worker ~``CHUNKS_PER_WORKER`` submissions.

    Always at least 1; with few tasks this degrades to one task per
    chunk, which matches ``Pool.map``'s own behavior on short inputs.
    """
    if n_tasks <= 0:
        return 1
    jobs = max(1, jobs)
    return max(1, -(-n_tasks // (jobs * CHUNKS_PER_WORKER)))


@dataclass(frozen=True)
class TaskFault:
    """One quarantined task: the poison-task report, not an exception."""

    index: int
    kind: str  # "crash" | "timeout"
    message: str
    attempts: int

    def as_error(self) -> WorkerCrash | TaskTimeout:
        """The exception this fault raises outside quarantine mode."""
        if self.kind == "timeout":
            return TaskTimeout(self.message, attempts=self.attempts)
        return WorkerCrash(self.message, attempts=self.attempts)


# -- worker side -------------------------------------------------------------


def _run_items(fn: Callable[[Any], Any], items: list[Any]) -> list[Any]:
    return [fn(item) for item in items]


def _send_safe(conn: Connection, msg: tuple[Any, ...]) -> None:
    """Send ``msg``; degrade unpicklable payloads to picklable summaries.

    An unpicklable result/exception must not kill the worker (the parent
    would misread that as a crash and retry a deterministic failure).
    """
    status, payload = captured_call(conn.send, msg)
    if status == "ok":
        return
    if msg[0] == "error":
        conn.send(("error", msg[1], RuntimeError(format_cause(msg[2]))))
    elif msg[0] == "init_error":
        conn.send(("init_error", RuntimeError(format_cause(msg[1]))))
    else:  # "ok" whose result would not pickle
        conn.send(
            ("error", msg[1], RuntimeError(f"result not picklable: {payload!r}"))
        )


def _worker_main(
    conn: Connection,
    slot: int,
    initializer: Callable[..., object] | None,
    initargs: tuple[Any, ...],
    maxtasksperchild: int | None,
) -> None:
    """Worker child loop: init once, then serve chunks until stopped.

    Protocol (parent → worker): ``("chunk", chunk_id, attempt, fn,
    items)`` or ``("stop",)``.  Worker → parent: ``("ok", chunk_id,
    results, retiring)``, ``("error", chunk_id, exc)``, or
    ``("init_error", exc)``.  A worker only ever exits voluntarily
    *between* chunks (retirement / stop), so a sentinel firing while a
    chunk is in flight always means a crash.
    """
    chaos.set_worker_slot(slot)
    if initializer is not None:
        status, payload = captured_call(initializer, *initargs)
        if status == "raise":
            _send_safe(conn, ("init_error", payload))
            conn.close()
            return
    done = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing useful left to do
        if msg[0] == "stop":
            break
        _, chunk_id, attempt, fn, items = msg
        chaos.on_chunk(chunk_id, attempt)  # may delay or SIGKILL (tests)
        status, payload = captured_call(_run_items, fn, items)
        done += 1
        retiring = maxtasksperchild is not None and done >= maxtasksperchild
        if status == "raise":
            _send_safe(conn, ("error", chunk_id, payload))
        else:
            _send_safe(conn, ("ok", chunk_id, payload, retiring))
        if retiring:
            break
    conn.close()


# -- parent side -------------------------------------------------------------


@dataclass
class _Chunk:
    chunk_id: int
    indices: list[int]  # positions in the original task list
    items: list[Any]
    attempts: int = 0
    not_before: float = 0.0  # monotonic timestamp gating re-dispatch


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("proc", "conn", "slot", "chunk", "deadline")

    def __init__(
        self, proc: multiprocessing.Process, conn: Connection, slot: int
    ) -> None:
        self.proc = proc
        self.conn = conn
        self.slot = slot
        self.chunk: _Chunk | None = None
        self.deadline: float | None = None


class WorkerPool:
    """A persistent, context-managed, crash-safe worker pool.

    Wraps per-worker processes with the repo's policy defaults (explicit
    chunking, optional per-worker initializer, bounded worker lifetime,
    retry/timeout/quarantine via :class:`~repro.util.retry.RetryPolicy`)
    and keeps the workers alive across calls:

    >>> with WorkerPool(jobs=4, initializer=warm) as pool:
    ...     a = pool.map(fn, tasks_1)
    ...     b = pool.map(fn, tasks_2)   # same warm workers

    ``jobs == 1`` is fully supported and never forks: ``map`` runs
    in-process (running ``initializer`` once, lazily) so callers can use
    one code path for serial and parallel execution.
    """

    def __init__(
        self,
        jobs: int,
        *,
        initializer: Callable[..., object] | None = None,
        initargs: tuple[Any, ...] = (),
        maxtasksperchild: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        # Parse REPRO_CHAOS eagerly: a malformed spec must fail loudly
        # at pool construction, not silently no-op on serial runs (the
        # worker-side hooks are the only other parse site, and the
        # in-process path never reaches them).
        chaos.active_policy()
        self.jobs = jobs
        self.retry = retry if retry is not None else RetryPolicy()
        self._initializer = initializer
        self._initargs = initargs
        self._maxtasksperchild = maxtasksperchild
        self._workers: dict[int, _Worker] = {}
        self._next_chunk_id = 0
        self._warmed_inprocess = False
        self._init_error: BaseException | None = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # clean exit joins in-flight workers gracefully; an in-flight
        # exception must not wait on anything — hard-kill and re-raise
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    def close(self) -> None:
        """Gracefully shut the pool down (idempotent).

        Each worker receives a stop request, finishes what it is doing,
        and exits cleanly (``exitcode == 0`` — atexit handlers and
        buffer flushes run).  Workers that fail to stop within the grace
        period are escalated to the hard-kill path.
        """
        self._closed = True
        self._teardown(graceful=True)

    def terminate(self) -> None:
        """Hard-kill every worker (the error path; idempotent)."""
        self._closed = True
        self._teardown(graceful=False)

    def _teardown(self, *, graceful: bool) -> None:
        workers = list(self._workers.values())
        self._workers.clear()
        if graceful:
            for worker in workers:
                if worker.proc.is_alive():
                    status, _ = captured_call(worker.conn.send, ("stop",))
                    del status  # a dead pipe just means it is already gone
        for worker in workers:
            worker.proc.join(_GRACEFUL_JOIN_SECONDS if graceful else 0.1)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(1.0)
            if worker.proc.is_alive():  # pragma: no cover - last resort
                worker.proc.kill()
                worker.proc.join(1.0)
            worker.conn.close()

    # -- worker management -------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        proc = multiprocessing.Process(
            target=_worker_main,
            args=(
                child_conn,
                slot,
                self._initializer,
                self._initargs,
                self._maxtasksperchild,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn, slot)
        self._workers[slot] = worker
        return worker

    def _remove(self, worker: _Worker, *, kill: bool) -> None:
        self._workers.pop(worker.slot, None)
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(1.0)
            if worker.proc.is_alive():  # pragma: no cover - last resort
                worker.proc.kill()
        worker.proc.join(1.0)
        worker.conn.close()

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Iterable[_T],
        chunksize: int | None = None,
        *,
        on_result: Callable[[list[int], list[_R]], None] | None = None,
    ) -> list[_R]:
        """Map ``fn`` over ``tasks``; results come back in task order.

        Infrastructure faults (worker crash, deadline) are retried under
        the pool's :class:`RetryPolicy`; a task that exhausts its budget
        raises :class:`~repro.errors.WorkerCrash` /
        :class:`~repro.errors.TaskTimeout`.  ``on_result`` streams each
        completed chunk ``(task_indices, values)`` to the caller as it
        lands (completion order) — the campaign checkpoint hook.
        """
        results, faults = self._run(fn, tasks, chunksize, on_result=on_result)
        if faults:
            raise faults[0].as_error()
        return cast("list[_R]", results)

    def map_quarantine(
        self,
        fn: Callable[[_T], _R],
        tasks: Iterable[_T],
        chunksize: int | None = None,
        *,
        on_result: Callable[[list[int], list[_R]], None] | None = None,
    ) -> tuple[list[_R | None], list[TaskFault]]:
        """Like :meth:`map`, but faulted tasks are quarantined.

        Returns ``(results, faults)``: every task that exhausted its
        retry budget has ``None`` at its position and a
        :class:`TaskFault` entry — the poison-task report — while all
        other tasks complete normally.  Task-code exceptions still
        raise (they are deterministic; see the module docstring).
        """
        return self._run(fn, tasks, chunksize, quarantine=True, on_result=on_result)

    def _warm_inprocess(self) -> None:
        """Serial-path initializer: run once, fail loudly forever after.

        A failed initializer must not be silently re-run against
        half-initialized state on the next call (the pre-PR-8 bug):
        the first failure propagates, and every later call surfaces a
        clear error naming the original cause instead.
        """
        if self._init_error is not None:
            raise RuntimeError(
                "WorkerPool initializer failed previously: "
                f"{format_cause(self._init_error)}"
            ) from self._init_error
        if self._initializer is None or self._warmed_inprocess:
            return
        status, payload = captured_call(self._initializer, *self._initargs)
        if status == "raise":
            self._init_error = payload
            raise payload
        self._warmed_inprocess = True

    def _run(
        self,
        fn: Callable[[_T], _R],
        tasks: Iterable[_T],
        chunksize: int | None,
        *,
        quarantine: bool = False,
        on_result: Callable[[list[int], list[_R]], None] | None = None,
    ) -> tuple[list[_R | None], list[TaskFault]]:
        items = list(tasks)
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.jobs == 1 or len(items) <= 1:
            # In-process: no crash isolation exists here, so faults
            # cannot be quarantined — task exceptions propagate as-is.
            self._warm_inprocess()
            out: list[_R | None] = []
            for idx, item in enumerate(items):
                value = fn(item)
                out.append(value)
                if on_result is not None:
                    on_result([idx], [value])
            return out, []
        if chunksize is None:
            chunksize = default_chunksize(len(items), self.jobs)
        pending: deque[_Chunk] = deque()
        for lo in range(0, len(items), chunksize):
            hi = min(len(items), lo + chunksize)
            pending.append(
                _Chunk(self._next_chunk_id, list(range(lo, hi)), items[lo:hi])
            )
            self._next_chunk_id += 1
        results: list[_R | None] = [None] * len(items)
        faults: list[TaskFault] = []
        remaining = len(items)
        try:
            while remaining > 0:
                now = time.monotonic()
                self._dispatch(fn, pending, now)
                remaining -= self._collect(
                    pending, results, faults, quarantine, on_result
                )
        except BaseException:  # repro-lint: disable=RL010 (re-raised immediately: the catch only hard-kills workers orphaned by the failing map, it swallows nothing)
            # error path: never leave workers running a doomed map
            self._teardown(graceful=False)
            raise
        return results, faults

    def _dispatch(
        self, fn: Callable[[Any], Any], pending: deque[_Chunk], now: float
    ) -> None:
        """Hand ready chunks to idle workers, spawning up to ``jobs``."""
        ready = [c for c in pending if c.not_before <= now]
        if not ready:
            return
        idle = [w for w in self._workers.values() if w.chunk is None]
        while len(ready) > len(idle) and len(self._workers) < self.jobs:
            slot = next(s for s in range(self.jobs) if s not in self._workers)
            idle.append(self._spawn(slot))
        for worker in idle:
            if not ready:
                break
            chunk = ready.pop(0)
            pending.remove(chunk)
            worker.chunk = chunk
            deadline = self.retry.chunk_deadline(len(chunk.items))
            worker.deadline = None if deadline is None else now + deadline
            status, payload = captured_call(
                worker.conn.send,
                ("chunk", chunk.chunk_id, chunk.attempts, fn, chunk.items),
            )
            if status == "raise":
                # dead pipe: the worker crashed before we could feed it;
                # requeue the chunk without charging an attempt
                worker.chunk = None
                pending.appendleft(chunk)
                self._remove(worker, kill=True)

    def _collect(
        self,
        pending: deque[_Chunk],
        results: list[Any],
        faults: list[TaskFault],
        quarantine: bool,
        on_result: Callable[[list[int], list[Any]], None] | None,
    ) -> int:
        """Wait for one round of events; returns tasks newly settled."""
        busy = [w for w in self._workers.values() if w.chunk is not None]
        timeout = self._poll_timeout(busy, pending)
        if not busy:
            pause(timeout if timeout is not None else 0.0)  # backoff gap
            return 0
        objects: list[Any] = [w.conn for w in busy]
        objects += [w.proc.sentinel for w in busy]
        ready = _connection_wait(objects, timeout)
        ready_set = set(ready)
        settled = 0
        for worker in busy:
            if worker.conn in ready_set:
                settled += self._service_message(
                    worker, pending, results, faults, quarantine, on_result
                )
            elif worker.proc.sentinel in ready_set:
                settled += self._service_death(
                    worker, pending, results, faults, quarantine, on_result
                )
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if (
                worker.chunk is not None
                and worker.deadline is not None
                and now > worker.deadline
            ):
                settled += self._fail_chunk(
                    worker,
                    "timeout",
                    f"task exceeded {self.retry.task_timeout}s deadline",
                    pending,
                    faults,
                    quarantine,
                )
        return settled

    def _poll_timeout(
        self, busy: list[_Worker], pending: deque[_Chunk]
    ) -> float | None:
        now = time.monotonic()
        bounds = [w.deadline - now for w in busy if w.deadline is not None]
        bounds += [c.not_before - now for c in pending if c.not_before > now]
        if pending and not busy and not bounds:
            return _MAX_POLL_SECONDS
        if not bounds:
            return None  # block until a message or a death
        return min(_MAX_POLL_SECONDS, max(0.0, min(bounds)))

    def _service_message(
        self,
        worker: _Worker,
        pending: deque[_Chunk],
        results: list[Any],
        faults: list[TaskFault],
        quarantine: bool,
        on_result: Callable[[list[int], list[Any]], None] | None,
    ) -> int:
        status, msg = captured_call(worker.conn.recv)
        if status == "raise":  # EOF without a message: the worker died
            return self._fail_dead_worker(
                worker, pending, faults, quarantine
            )
        return self._handle_message(
            worker, msg, pending, results, faults, quarantine, on_result
        )

    def _handle_message(
        self,
        worker: _Worker,
        msg: tuple[Any, ...],
        pending: deque[_Chunk],
        results: list[Any],
        faults: list[TaskFault],
        quarantine: bool,
        on_result: Callable[[list[int], list[Any]], None] | None,
    ) -> int:
        if msg[0] == "init_error":
            # initializer failures are deterministic — no retry; requeue
            # the unexecuted chunk for bookkeeping, then raise
            if worker.chunk is not None:
                pending.appendleft(worker.chunk)
                worker.chunk = None
            self._remove(worker, kill=True)
            raise msg[1]
        if msg[0] == "error":
            raise msg[2]  # task-code exception: re-raise the original
        _, _chunk_id, values, retiring = msg
        chunk = worker.chunk
        assert chunk is not None, "result for an unassigned worker"
        worker.chunk = None
        worker.deadline = None
        for offset, idx in enumerate(chunk.indices):
            results[idx] = values[offset]
        if on_result is not None:
            on_result(list(chunk.indices), list(values))
        if retiring:
            self._remove(worker, kill=False)
        return len(chunk.indices)

    def _service_death(
        self,
        worker: _Worker,
        pending: deque[_Chunk],
        results: list[Any],
        faults: list[TaskFault],
        quarantine: bool,
        on_result: Callable[[list[int], list[Any]], None] | None,
    ) -> int:
        # drain any final message that raced the sentinel (a retiring
        # worker's last result can still sit in the pipe when its
        # sentinel fires); EOF here means the pipe was empty after all
        if worker.chunk is not None and worker.conn.poll():
            status, msg = captured_call(worker.conn.recv)
            if status == "ok":  # pragma: no cover - narrow race
                return self._handle_message(
                    worker, msg, pending, results, faults, quarantine, on_result
                )
        return self._fail_dead_worker(worker, pending, faults, quarantine)

    def _fail_dead_worker(
        self,
        worker: _Worker,
        pending: deque[_Chunk],
        faults: list[TaskFault],
        quarantine: bool,
    ) -> int:
        exitcode = worker.proc.exitcode
        if worker.chunk is None:
            self._remove(worker, kill=False)  # voluntary exit between chunks
            return 0
        return self._fail_chunk(
            worker,
            "crash",
            f"worker died with exitcode {exitcode}",
            pending,
            faults,
            quarantine,
            exitcode=exitcode,
        )

    def _fail_chunk(
        self,
        worker: _Worker,
        kind: str,
        cause: str,
        pending: deque[_Chunk],
        faults: list[TaskFault],
        quarantine: bool,
        exitcode: int | None = None,
    ) -> int:
        """Handle one chunk-level infrastructure fault; returns tasks
        settled (only nonzero when a task is quarantined)."""
        chunk = worker.chunk
        assert chunk is not None
        worker.chunk = None
        self._remove(worker, kill=True)
        chunk.attempts += 1
        now = time.monotonic()
        if len(chunk.items) > 1:
            # isolate the poison task: retry as single-task chunks so
            # innocent chunk-mates stop sharing its fate
            singles = []
            for idx, item in zip(chunk.indices, chunk.items):
                single = _Chunk(
                    self._next_chunk_id, [idx], [item], attempts=chunk.attempts
                )
                self._next_chunk_id += 1
                single.not_before = now + self.retry.backoff(
                    chunk.attempts, key=f"chunk{single.chunk_id}"
                )
                singles.append(single)
            pending.extendleft(reversed(singles))
            return 0
        message = (
            f"task {chunk.indices[0]} {kind} on attempt "
            f"{chunk.attempts}/{self.retry.max_attempts}: {cause}"
        )
        if chunk.attempts >= self.retry.max_attempts:
            fault = TaskFault(
                index=chunk.indices[0],
                kind=kind,
                message=message,
                attempts=chunk.attempts,
            )
            if not quarantine:
                raise fault.as_error()
            faults.append(fault)
            return 1  # settled (as a poison-task report)
        chunk.not_before = now + self.retry.backoff(
            chunk.attempts, key=f"chunk{chunk.chunk_id}"
        )
        pending.appendleft(chunk)
        return 0


def fan_out(
    fn: Callable[[_T], _R],
    tasks: list[_T],
    jobs: int,
    *,
    initializer: Callable[..., object] | None = None,
    initargs: tuple[Any, ...] = (),
    chunksize: int | None = None,
    maxtasksperchild: int | None = None,
    retry: RetryPolicy | None = None,
    pool: WorkerPool | None = None,
) -> list[_R]:
    """Map ``fn`` over ``tasks`` across ``jobs`` worker processes.

    The shared pool policy of the experiment runner, the campaign
    runner, and the parallel validation engine: in-process when
    ``jobs == 1`` or there is at most one task (no pool spin-up cost; a
    provided ``initializer`` still runs, in-process, so caches are warm
    on either path), a chunked crash-safe :class:`WorkerPool` otherwise.
    ``fn``, the tasks, ``initializer``, and ``initargs`` must be
    picklable top-level objects (spawn-safe); results come back in task
    order regardless of chunking, worker scheduling, or fault recovery.

    Pass a :class:`WorkerPool` as ``pool=`` to reuse a persistent pool
    across calls — ``jobs``/``initializer``/``maxtasksperchild``/
    ``retry`` are then properties of the pool and must not be
    re-specified here.
    """
    if pool is not None:
        if initializer is not None or maxtasksperchild is not None or retry is not None:
            raise ValueError(
                "initializer/maxtasksperchild/retry are WorkerPool properties; "
                "do not pass them alongside pool="
            )
        return pool.map(fn, tasks, chunksize=chunksize)
    if jobs > 1 and len(tasks) > 1:
        with WorkerPool(
            min(jobs, len(tasks)),
            initializer=initializer,
            initargs=initargs,
            maxtasksperchild=maxtasksperchild,
            retry=retry,
        ) as scratch:
            return scratch.map(fn, tasks, chunksize=chunksize)
    chaos.active_policy()  # serial path: a malformed spec still fails loudly
    if initializer is not None:
        initializer(*initargs)
    return [fn(task) for task in tasks]
