"""Shared multiprocessing pool policy: chunked fan-out + persistent pools.

Every parallel surface in the repo (``ExperimentRunner``,
``CampaignRunner``, :func:`repro.engine.parallel.validate_many_parallel`)
routes through :func:`fan_out` so the pool policy is written down once:

* **In-process when parallelism cannot pay.**  ``jobs == 1`` or at most
  one task never spins up a pool; the optional ``initializer`` still runs
  (in-process) so serial and parallel executions warm the same caches.
  Corollary: an attach-style initializer (one that populates
  process-local caches, e.g. shared-memory mappings) then populates the
  *parent's* caches — such callers must clean up parent-side state when
  the serial path was taken (see the ``finally`` in
  ``repro.engine.parallel.validate_many_parallel``), or that state goes
  stale once its backing resource is released.
* **Explicit chunking.**  ``multiprocessing.Pool.map`` with the default
  ``chunksize`` re-pickles large task lists in many tiny submissions;
  :func:`default_chunksize` (``ceil(n_tasks / (jobs * CHUNKS_PER_WORKER))``)
  amortizes the IPC round-trips while keeping ~4 chunks per worker for
  load balancing.  ``Pool.map`` reassembles results in task order
  regardless of chunking — the determinism contract is pinned by
  ``tests/util/test_pool.py``.
* **Bounded worker lifetime.**  ``maxtasksperchild`` recycles workers
  after N *chunks* (the :mod:`multiprocessing` unit of accounting) so
  long campaigns cannot accumulate per-process state; ``None`` (the
  default) keeps workers alive for the pool's lifetime, which is what
  lets initializer-warmed caches pay off.
* **Start method.**  Pools use the platform-default start method
  (``fork`` on Linux, ``spawn`` on macOS/Windows).  Everything submitted
  — worker functions, initializers, their arguments — is required to be
  a *top-level picklable* object, so the code is spawn-safe by
  construction and fork is retained where available purely as a
  performance default (no re-import cost per worker).  Nothing in this
  module depends on fork-inherited globals.

:class:`WorkerPool` is the persistent-pool mode: a context-managed pool
created once and reused across many :func:`fan_out` calls (pass it as
``pool=``), so a campaign pays the worker spin-up plus cache warm-up
exactly once per run instead of once per batch.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from collections.abc import Callable, Iterable
from typing import Any, TypeVar

__all__ = [
    "CHUNKS_PER_WORKER",
    "WorkerPool",
    "default_chunksize",
    "fan_out",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

# Target number of chunks handed to each worker: >1 so a slow chunk can
# be balanced by idle workers picking up remaining chunks, small enough
# that per-chunk pickling overhead stays negligible.
CHUNKS_PER_WORKER = 4


def default_chunksize(n_tasks: int, jobs: int) -> int:
    """Chunk size giving each worker ~``CHUNKS_PER_WORKER`` submissions.

    Always at least 1; with few tasks this degrades to one task per
    chunk, which matches ``Pool.map``'s own behavior on short inputs.
    """
    if n_tasks <= 0:
        return 1
    jobs = max(1, jobs)
    return max(1, -(-n_tasks // (jobs * CHUNKS_PER_WORKER)))


class WorkerPool:
    """A persistent, context-managed worker pool.

    Wraps ``multiprocessing.Pool`` with the repo's policy defaults
    (explicit chunking, optional per-worker initializer, bounded worker
    lifetime) and keeps the pool open across calls:

    >>> with WorkerPool(jobs=4, initializer=warm) as pool:
    ...     a = pool.map(fn, tasks_1)
    ...     b = pool.map(fn, tasks_2)   # same warm workers

    ``jobs == 1`` is fully supported and never forks: ``map`` runs
    in-process (running ``initializer`` once, lazily) so callers can use
    one code path for serial and parallel execution.
    """

    def __init__(
        self,
        jobs: int,
        *,
        initializer: Callable[..., object] | None = None,
        initargs: tuple[Any, ...] = (),
        maxtasksperchild: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._initializer = initializer
        self._initargs = initargs
        self._maxtasksperchild = maxtasksperchild
        self._pool: multiprocessing.pool.Pool | None = None
        self._warmed_inprocess = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the underlying pool (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=self.jobs,
                initializer=self._initializer,
                initargs=self._initargs,
                maxtasksperchild=self._maxtasksperchild,
            )
        return self._pool

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[[_T], _R],
        tasks: Iterable[_T],
        chunksize: int | None = None,
    ) -> list[_R]:
        """Map ``fn`` over ``tasks``; results come back in task order."""
        items = list(tasks)
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.jobs == 1 or len(items) <= 1:
            if self._initializer is not None and not self._warmed_inprocess:
                self._initializer(*self._initargs)
                self._warmed_inprocess = True
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        if chunksize is None:
            chunksize = default_chunksize(len(items), self.jobs)
        return pool.map(fn, items, chunksize=chunksize)


def fan_out(
    fn: Callable[[_T], _R],
    tasks: list[_T],
    jobs: int,
    *,
    initializer: Callable[..., object] | None = None,
    initargs: tuple[Any, ...] = (),
    chunksize: int | None = None,
    maxtasksperchild: int | None = None,
    pool: WorkerPool | None = None,
) -> list[_R]:
    """Map ``fn`` over ``tasks`` across ``jobs`` worker processes.

    The shared pool policy of the experiment runner, the campaign
    runner, and the parallel validation engine: in-process when
    ``jobs == 1`` or there is at most one task (no pool spin-up cost; a
    provided ``initializer`` still runs, in-process, so caches are warm
    on either path), a chunked ``multiprocessing`` pool otherwise.
    ``fn``, the tasks, ``initializer``, and ``initargs`` must be
    picklable top-level objects (spawn-safe); results come back in task
    order regardless of chunking or worker scheduling.

    Pass a :class:`WorkerPool` as ``pool=`` to reuse a persistent pool
    across calls — ``jobs``/``initializer``/``maxtasksperchild`` are
    then properties of the pool and must not be re-specified here.
    """
    if pool is not None:
        if initializer is not None or maxtasksperchild is not None:
            raise ValueError(
                "initializer/maxtasksperchild are WorkerPool properties; "
                "do not pass them alongside pool="
            )
        return pool.map(fn, tasks, chunksize=chunksize)
    if jobs > 1 and len(tasks) > 1:
        with WorkerPool(
            min(jobs, len(tasks)),
            initializer=initializer,
            initargs=initargs,
            maxtasksperchild=maxtasksperchild,
        ) as scratch:
            return scratch.map(fn, tasks, chunksize=chunksize)
    if initializer is not None:
        initializer(*initargs)
    return [fn(task) for task in tasks]
