"""The public facade: one module for the whole schedule pipeline.

Everything a consumer needs to build graphs, produce broadcast
schedules, validate them, and export machine-checkable artifacts lives
behind a handful of functions::

    import repro.api as api

    result = api.schedule("hypercube:4", scheduler="greedy", k=2, seed=1)
    report = api.validate("hypercube:4", result.frame, k=2)
    assert report.ok
    cert = api.certificate("sparse:8:3")          # Construct_BASE(8, 3)

Every entry point is *spec-or-object agnostic*: ``schedule`` and
``validate`` take a textual graph spec (``family:arg[:arg...]``, see
:func:`build_graph`) or a :class:`~repro.graphs.base.Graph`;
``certificate`` takes a construction spec (``sparse:N[:M...]``, see
:func:`construction`) or a built
:class:`~repro.core.sparse_hypercube.SparseHypercube`.  The CLI, the
campaign runner, and the ``repro serve`` daemon all funnel through this
one parsing path, so a spec string means the same thing everywhere.

The interchange format between the stages is the columnar
:class:`~repro.frame.ScheduleFrame`; the object API
(:class:`~repro.types.Schedule`) remains available everywhere as a lazy
view over a frame, and every function here accepts both.

Engine selection (``api.validate(..., engine=...)``)
----------------------------------------------------

``"reference"``
    the pure-Python oracle (:mod:`repro.model.validator`): walks every
    call with sets and per-edge lookups.  Legible, slow, and the
    repository's source of truth.
``"fast"``
    the bitset/NumPy validator (:mod:`repro.model.validator_fast`).
    Verdicts, error strings, and statistics are identical to the
    reference by construction (failing rounds re-scan through the
    reference; pinned by the property tests), at vectorized speed.
``"batch"``
    the stacked-array validator (:mod:`repro.engine.batch`): groups the
    input by layout and checks whole ``(n_schedules, n_items)`` stacks
    per pass.  The right choice for lists; a single schedule degrades
    to a 1-row stack.
``"auto"`` (default)
    picks for you: a list input routes to ``batch``; a single schedule
    or frame routes to ``fast`` when the graph is frozen (so the
    per-graph edge-key arrays are shared through the process-wide
    engine cache) and to ``reference`` otherwise.  Because all engines
    agree exactly, ``auto`` never changes a verdict — only its speed.

All functions raise :class:`repro.types.ReproError` subtypes on invalid
input, matching the rest of the library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence, cast

from repro.frame import ScheduleFrame, as_frame, as_schedule
from repro.graphs.base import Graph
from repro.model.validator import ValidationReport
from repro.types import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.analysis.campaigns import CampaignSpec
    from repro.core.sparse_hypercube import SparseHypercube
    from repro.schedulers.registry import ScheduleResult
    from repro.types import Schedule

__all__ = [
    "ENGINES",
    "build_graph",
    "construction",
    "schedule",
    "validate",
    "certificate",
    "run_campaign",
    "frames_of",
]

ENGINES = ("auto", "reference", "fast", "batch")


def build_graph(spec: str | Graph) -> Graph:
    """A frozen graph from a textual spec (``family:arg[:arg...]``).

    Known families come from :mod:`repro.graphs.specs` (``hypercube:N``,
    ``sparse:N:M``, ``theorem1:K``, ``path:N``, ``random-tree:N:SEED``,
    …).  A ``Graph`` passes through unchanged, so callers can be
    spec-or-graph agnostic.
    """
    if isinstance(spec, Graph):
        return spec
    from repro.graphs.specs import graph_from_spec

    return graph_from_spec(spec)


def construction(spec: "str | SparseHypercube") -> "SparseHypercube":
    """A :class:`SparseHypercube` from a textual construction spec.

    The grammar mirrors the graph-spec family of the same name, but
    keeps the construction object (thresholds, levels, ``Broadcast_k``)
    instead of flattening to its edge set::

        sparse:N              Construct_BASE(N, m*)   m* = Theorem-5 optimum
        sparse:N:M            Construct_BASE(N, M)    k = 2
        sparse:N:M1:...:Mj    Construct(j+1, N, (M1..Mj))

    A built ``SparseHypercube`` passes through unchanged, so callers can
    be spec-or-object agnostic (the :func:`build_graph` convention).
    """
    from repro.core.sparse_hypercube import SparseHypercube

    if isinstance(spec, SparseHypercube):
        return spec
    parts = spec.split(":")
    if parts[0] != "sparse":
        raise InvalidParameterError(
            f"unknown construction spec {spec!r}; expected sparse:N[:M...]"
        )
    try:
        args = [int(p) for p in parts[1:]]
    except ValueError:
        raise InvalidParameterError(
            f"construction spec {spec!r}: arguments must be integers"
        ) from None
    if not args:
        raise InvalidParameterError(
            f"construction spec {spec!r} needs at least the dimension N"
        )
    from repro.core.construct import construct, construct_base
    from repro.core.params import theorem5_m_star

    n, thresholds = args[0], tuple(args[1:])
    if not thresholds:
        return construct_base(n, theorem5_m_star(n))
    if len(thresholds) == 1:
        return construct_base(n, thresholds[0])
    return construct(len(thresholds) + 1, n, thresholds)


def schedule(
    graph: str | Graph,
    scheduler: str = "greedy",
    *,
    source: int = 0,
    k: int | None = None,
    rounds: int | None = None,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    validate_result: bool = True,
) -> "ScheduleResult":
    """Run one registered scheduling strategy; returns its
    :class:`~repro.schedulers.registry.ScheduleResult`.

    The result carries both representations of a found schedule: a
    frozen columnar ``frame`` (the canonical interchange format) and the
    frozen object view ``schedule``.  ``validate_result=True`` (default)
    checks the result through :func:`validate` before it is returned.
    """
    from repro.schedulers.registry import ScheduleRequest, run_scheduler

    request = ScheduleRequest(
        graph=build_graph(graph),
        source=source,
        k=k,
        rounds=rounds,
        seed=seed,
        params=dict(params) if params else {},
    )
    return run_scheduler(scheduler, request, validate=validate_result)


def _validate_one(
    graph: Graph,
    sched: "Schedule | ScheduleFrame",
    k: int,
    engine: str,
    *,
    require_minimum_time: bool,
    vertex_disjoint: bool,
) -> ValidationReport:
    if engine == "auto":
        engine = "fast" if graph.frozen else "reference"
    if engine == "reference":
        from repro.model.validator import validate_broadcast

        return validate_broadcast(
            graph,
            as_schedule(sched),
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    if engine == "fast":
        from repro.engine.cache import fast_validator_for

        return fast_validator_for(graph).validate(
            sched,
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    from repro.engine.cache import batch_validator_for

    return batch_validator_for(graph).validate_many(
        [sched],
        k,
        require_minimum_time=require_minimum_time,
        vertex_disjoint=vertex_disjoint,
    )[0]


def validate(
    graph: str | Graph,
    schedules: "Schedule | ScheduleFrame | Iterable[Schedule | ScheduleFrame]",
    k: int,
    *,
    engine: str = "auto",
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
) -> ValidationReport | list[ValidationReport]:
    """Validate schedule(s) against Definition 1 on ``graph`` under ``k``.

    ``graph`` is a textual spec or a :class:`Graph` (the
    :func:`build_graph` convention — specs build frozen graphs, so spec
    callers always hit the cached ``fast``/``batch`` engines).
    ``schedules`` may be a single :class:`~repro.types.Schedule` or
    :class:`~repro.frame.ScheduleFrame` (returns one
    :class:`~repro.model.validator.ValidationReport`) or a list of
    either (returns a list of reports in input order).  ``engine``
    selects the implementation — see the module docstring; every engine
    produces byte-identical verdicts and error strings.
    """
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    graph = build_graph(graph)
    single = isinstance(schedules, ScheduleFrame) or hasattr(schedules, "rounds")
    if single:
        return _validate_one(
            graph,
            cast("Schedule | ScheduleFrame", schedules),
            k,
            engine,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    items = list(cast("Iterable[Schedule | ScheduleFrame]", schedules))
    if engine in ("auto", "batch") and graph.frozen:
        from repro.engine.cache import batch_validator_for

        return batch_validator_for(graph).validate_many(
            items,
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    return [
        _validate_one(
            graph,
            item,
            k,
            engine,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
        for item in items
    ]


def certificate(
    sh: "str | SparseHypercube", sources: Sequence[int] | None = None
) -> dict[str, Any]:
    """A machine-checkable k-mlbg certificate for a sparse hypercube.

    ``sh`` is a built :class:`SparseHypercube` or a textual construction
    spec (``sparse:N[:M...]``, see :func:`construction`).  Schedules
    come from the batch all-sources engine (coset-translated
    generation); :func:`repro.io.verify_certificate` re-validates the
    payload from JSON alone.
    """
    from repro.io import certificate_for

    return certificate_for(
        construction(sh), list(sources) if sources is not None else None
    )


def run_campaign(
    spec: "str | CampaignSpec",
    *,
    shard: tuple[int, int] = (0, 1),
    out_dir: str = "campaign-results",
    jobs: int = 1,
    cache_dir: str | None = None,
) -> list[dict[str, Any]]:
    """Execute one shard of a scenario campaign; returns the result rows.

    ``spec`` is a built-in campaign name, a path to a campaign JSON
    file, or a :class:`~repro.analysis.campaigns.CampaignSpec`.  Chunks
    and provenance manifests land in ``out_dir`` exactly as with
    ``repro campaign run`` (merge shards with
    :func:`repro.analysis.campaigns.merge_chunks`).
    """
    from repro.analysis import campaigns

    if isinstance(spec, str):
        spec = campaigns.load_campaign(spec)
    _chunk, _manifest, rows = campaigns.run_campaign_shard(
        spec, shard=shard, out_dir=out_dir, jobs=jobs, cache_dir=cache_dir
    )
    return rows


def frames_of(results: Iterable[Any]) -> list[ScheduleFrame]:
    """Convenience: the frames of an iterable of schedules/frames/results."""
    out: list[ScheduleFrame] = []
    for item in results:
        frame = getattr(item, "frame", None)
        out.append(frame if frame is not None else as_frame(item))
    return out
