"""Command-line experiment runner: ``python -m repro run --all``.

Subcommands (all backed by the experiment registry and the parallel
runner — see :mod:`repro.analysis.registry` / :mod:`repro.analysis.runner`):

``run``
    Execute experiments and print their tables.  ``--all`` selects every
    registered experiment, ``--jobs N`` fans out over N worker
    processes, ``--cache`` memoizes results as JSON under ``--cache-dir``
    so a repeat invocation executes nothing.

``list``
    Show every registered experiment id and title.

``clean-cache``
    Delete the result cache.

``export-csv``
    Write the degree/asymptotic series as CSV files.

``schedule``
    Run one registered scheduler on a named graph family:
    ``repro schedule --graph hypercube:3 --scheduler search --k 2``.
    ``--list`` shows every scheduler in the registry
    (:mod:`repro.schedulers.registry`); results are validated through
    :func:`repro.api.validate` before being reported, and ``--out FILE``
    writes the found schedule as a self-contained columnar file
    (graph + v2 payload, :func:`repro.io.save_schedule`).

``validate``
    Machine-check a construction's broadcast scheme over many sources:
    ``repro validate --n 10 --m 3 --all-sources`` sweeps all ``2^n``
    sources through the batch engine (:mod:`repro.engine.batch`) —
    coset-translated generation plus stacked-array validation.
    ``--engine loop`` forces the per-source reference path for
    comparison; the default samples 16 sources.  Alternatively
    ``repro validate --schedule FILE`` re-checks a schedule file written
    by ``repro schedule --out`` via :func:`repro.api.validate`
    (``--engine auto|reference|fast|batch``).

``campaign``
    Declarative scenario sweeps (:mod:`repro.analysis.campaigns`):
    ``repro campaign list`` shows the built-in campaigns,
    ``repro campaign run SPEC --shard 0/2 --jobs 4`` executes one
    deterministic shard of a campaign grid into a JSONL chunk plus a
    provenance manifest, and ``repro campaign merge SPEC`` recombines
    the chunks into one artifact byte-identical to an unsharded run.
    ``SPEC`` is a built-in name or a path to a JSON campaign file.

``lint``
    Run the project's AST-based invariant rules
    (:mod:`repro.devtools`): ``repro lint src`` checks determinism and
    immutability contracts (RL001..RL011), ``--list`` shows the rules,
    ``--rule RL002 --format json`` narrows and machine-formats the
    report.  Exit 0 = clean, 1 = violations.

``serve``
    Run the long-lived schedule service (:mod:`repro.service`):
    ``repro serve --port 8571`` answers ``POST /v1/schedule``,
    ``POST /v1/validate``, ``POST /v1/certificate``, ``GET /v1/healthz``
    and ``GET /v1/stats`` over HTTP, amortizing the process-wide
    engine caches across requests and coalescing concurrent validates
    into single batch passes.  ``--port 0`` picks an ephemeral port
    (printed on startup); SIGTERM/SIGINT drain in-flight requests and
    exit 0.  ``--corpus FILE`` consults a packed corpus before
    scheduling (byte-identical answers, O(1) instead of a scheduler
    run); ``--max-connections N`` sheds connections over the limit
    with ``503`` + ``Retry-After``, and ``--max-keepalive N`` caps
    requests per keep-alive connection.

``corpus``
    Build and use packed schedule corpora (:mod:`repro.corpus`):
    ``repro corpus build --out FILE --graph sparse:6:2`` packs one
    frame per source (coset-derived for the default ``scheme``
    scheduler, per-source ``api.schedule`` runs otherwise);
    ``repro corpus query FILE --graph ... --source V`` slices one
    frame out in O(1) (``--out`` writes a self-contained schedule
    file); ``repro corpus verify FILE`` recomputes the section digests
    and re-validates a seeded sample against the reference validator;
    ``repro corpus stats FILE`` prints the footer summary.

Failures exit 2 with a single stderr line carrying the stable
machine-readable error code from :mod:`repro.errors`, e.g.
``schedule failed [invalid-parameter]: ...`` — the same codes the
service returns in its HTTP error JSON.

Legacy spellings from the sequential CLI era keep working but warn
with ``DeprecationWarning``: ``python -m repro e06``,
``python -m repro all``, ``--list`` and ``--export-csv DIR`` (see the
migration table in CONTRIBUTING.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table, registry
from repro.analysis.runner import DEFAULT_CACHE_DIR, ExperimentRunner

_SUBCOMMANDS = (
    "run",
    "list",
    "clean-cache",
    "export-csv",
    "schedule",
    "validate",
    "campaign",
    "lint",
    "serve",
    "corpus",
)


def _fail(verb: str, exc: BaseException) -> int:
    """The exit-2 contract: one stderr line ``<verb> failed [<code>]: <msg>``.

    The bracketed code is the stable machine-readable identifier from
    :func:`repro.errors.error_code` — identical to the ``code`` field
    the service puts in its HTTP error JSON, so scripts can match on it
    instead of on prose.
    """
    from repro.errors import error_code

    message: object = exc
    if isinstance(exc, KeyError) and exc.args:
        message = exc.args[0]  # registry lookups: unwrap the message string
    print(f"{verb} failed [{error_code(exc)}]: {message}", file=sys.stderr)
    return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables (E01–E23).",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="run experiments and print their tables")
    p_run.add_argument("experiments", nargs="*", help="experiment ids (e01..e23)")
    p_run.add_argument("--all", action="store_true", help="run every experiment")
    p_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = sequential)",
    )
    p_run.add_argument(
        "--cache", action="store_true",
        help="memoize results as JSON keyed on the parameter hash",
    )
    p_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"cache location (default {DEFAULT_CACHE_DIR}); implies --cache",
    )
    p_run.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts after a worker crash/timeout "
        "(default 2; deterministic task errors are never retried)",
    )
    p_run.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="per-task deadline in seconds; a worker exceeding it is "
        "culled and the task retried (default: no deadline)",
    )

    sub.add_parser("list", help="list available experiments")

    p_clean = sub.add_parser("clean-cache", help="delete the result cache")
    p_clean.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR), metavar="DIR",
        help=f"cache location (default {DEFAULT_CACHE_DIR})",
    )

    p_csv = sub.add_parser("export-csv", help="write series CSVs and exit")
    p_csv.add_argument("dir", metavar="DIR", help="output directory")

    p_sched = sub.add_parser(
        "schedule", help="run a registered scheduler on a graph family"
    )
    p_sched.add_argument(
        "--graph", metavar="SPEC", default=None,
        help="graph spec, e.g. hypercube:3, theorem1:2, path:16, "
        "random-tree:24:7 (see --list for schedulers)",
    )
    p_sched.add_argument(
        "--scheduler", default="greedy", metavar="NAME",
        help="registry name (default greedy); see --list",
    )
    p_sched.add_argument("--source", type=int, default=0, metavar="V")
    p_sched.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="call-length bound (default: unbounded)",
    )
    p_sched.add_argument(
        "--rounds", type=int, default=None, metavar="R",
        help="round budget (default: the minimum ⌈log₂N⌉)",
    )
    p_sched.add_argument("--seed", type=int, default=0, metavar="N")
    p_sched.add_argument(
        "--restarts", type=int, default=None, metavar="N",
        help="greedy restart budget",
    )
    p_sched.add_argument(
        "--n-messages", type=int, default=None, metavar="M",
        help="message count for multimsg_search",
    )
    p_sched.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the found schedule (graph + columnar v2 payload) to FILE",
    )
    p_sched.add_argument(
        "--list", action="store_true", help="list registered schedulers"
    )

    p_val = sub.add_parser(
        "validate",
        help="batch-validate a construction's broadcast scheme over many sources",
    )
    p_val.add_argument(
        "--n", type=int, default=None, metavar="N", help="hypercube dimension"
    )
    p_val.add_argument(
        "--schedule", default=None, metavar="FILE",
        help="validate a schedule file written by `repro schedule --out` "
        "instead of sweeping a construction",
    )
    p_val.add_argument(
        "--no-min-time", action="store_true",
        help="with --schedule: do not require the minimum ⌈log₂N⌉ rounds",
    )
    p_val.add_argument(
        "--m", type=int, default=None, metavar="M",
        help="Construct_BASE threshold n_1 (k = 2; default: the Theorem-5 m*)",
    )
    p_val.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="construction k (requires --thresholds)",
    )
    p_val.add_argument(
        "--thresholds", default=None, metavar="N1,N2,...",
        help="comma-separated thresholds for Construct(k, n, ...)",
    )
    p_val.add_argument(
        "--all-sources", action="store_true",
        help="validate every one of the 2^n sources (default: a 16-source sample)",
    )
    p_val.add_argument(
        "--sources-cap", type=int, default=16, metavar="CAP",
        help="sample size when --all-sources is not given (default 16)",
    )
    p_val.add_argument(
        "--engine",
        choices=("batch", "loop", "auto", "reference", "fast"),
        default=None,
        help="sweep mode: batch (default) = coset-translated generation + "
        "stacked validation, loop = per-source generation + fast validator; "
        "--schedule mode: auto (default) | reference | fast | batch, the "
        "repro.api.validate engines (identical verdicts)",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="declarative scenario sweeps: sharded runs + deterministic merge",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_action")
    camp_sub.add_parser("list", help="list built-in campaigns")
    p_camp_run = camp_sub.add_parser("run", help="run one shard of a campaign grid")
    p_camp_run.add_argument(
        "spec", metavar="SPEC",
        help="built-in campaign name or path to a .json campaign file",
    )
    p_camp_run.add_argument(
        "--shard", default="0/1", metavar="I/M",
        help="deterministic shard to run (default 0/1 = the whole grid)",
    )
    p_camp_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = sequential)",
    )
    p_camp_run.add_argument(
        "--maxtasksperchild", type=int, default=None, metavar="N",
        help="recycle each worker after N task chunks "
        "(default: workers live for the whole run)",
    )
    p_camp_run.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts after a worker crash/timeout "
        "(default 2; deterministic scenario errors are never retried)",
    )
    p_camp_run.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="per-scenario deadline in seconds; a worker exceeding it "
        "is culled and the scenario retried (default: no deadline)",
    )
    p_camp_run.add_argument(
        "--out-dir", default="campaign-results", metavar="DIR",
        help="chunk/manifest/artifact directory (default campaign-results)",
    )
    p_camp_run.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR), metavar="DIR",
        help=f"scenario cache location (default {DEFAULT_CACHE_DIR})",
    )
    p_camp_run.add_argument(
        "--no-cache", action="store_true",
        help="always execute; do not read or write the scenario cache",
    )
    p_camp_merge = camp_sub.add_parser(
        "merge", help="merge shard chunks into the campaign artifact"
    )
    p_camp_merge.add_argument("spec", metavar="SPEC", help="campaign name or file")
    p_camp_merge.add_argument(
        "--out-dir", default="campaign-results", metavar="DIR",
        help="directory holding the shard chunks (default campaign-results)",
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the project's AST invariant rules (repro.devtools)",
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--rule", default=None, metavar="ID",
        help="run a single rule, e.g. --rule RL002",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_lint.add_argument("--list", action="store_true", help="list registered rules")

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived schedule service (HTTP, asyncio)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8571, metavar="PORT",
        help="TCP port (default 8571; 0 = ephemeral, printed on startup)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="validation thread-pool size (default 2)",
    )
    p_serve.add_argument(
        "--corpus", default=None, metavar="FILE",
        help="consult a packed schedule corpus before scheduling "
        "(see `repro corpus build`)",
    )
    p_serve.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="shed connections beyond N with 503 + Retry-After "
        "(default: unlimited)",
    )
    p_serve.add_argument(
        "--max-keepalive", type=int, default=1000, metavar="N",
        help="requests served per keep-alive connection before the "
        "server closes it (default 1000)",
    )

    p_corpus = sub.add_parser(
        "corpus",
        help="build/query/verify packed schedule corpora (repro.corpus)",
    )
    corpus_sub = p_corpus.add_subparsers(dest="corpus_action")
    p_cb = corpus_sub.add_parser(
        "build", help="generate one corpus group into a packed file"
    )
    p_cb.add_argument(
        "--out", required=True, metavar="FILE", help="corpus file to write"
    )
    p_cb.add_argument(
        "--graph", required=True, metavar="SPEC",
        help="graph spec (construction spec for the scheme scheduler, "
        "e.g. sparse:6:2)",
    )
    p_cb.add_argument(
        "--scheduler", default="scheme", metavar="NAME",
        help="'scheme' (default: coset-derived construction schedules) "
        "or any registry scheduler",
    )
    p_cb.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="call-length bound recorded in the index key "
        "(default: unbounded)",
    )
    p_cb.add_argument("--seed", type=int, default=0, metavar="N")
    p_cb.add_argument(
        "--sources", default=None, metavar="V0,V1,...",
        help="comma-separated sources (default: every vertex)",
    )
    p_cq = corpus_sub.add_parser(
        "query", help="slice one frame out of a corpus in O(1)"
    )
    p_cq.add_argument("file", metavar="FILE", help="corpus file")
    p_cq.add_argument("--graph", required=True, metavar="SPEC")
    p_cq.add_argument("--scheduler", default="scheme", metavar="NAME")
    p_cq.add_argument("--source", type=int, required=True, metavar="V")
    p_cq.add_argument("--k", type=int, default=None, metavar="K")
    p_cq.add_argument("--seed", type=int, default=0, metavar="N")
    p_cq.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the frame as a self-contained schedule file "
        "(graph + columnar v2 payload)",
    )
    p_cv = corpus_sub.add_parser(
        "verify", help="check digests and re-validate a seeded sample"
    )
    p_cv.add_argument("file", metavar="FILE", help="corpus file")
    p_cv.add_argument(
        "--sample", type=int, default=8, metavar="N",
        help="frames to re-validate (default 8)",
    )
    p_cv.add_argument("--seed", type=int, default=0, metavar="N")
    p_cv.add_argument(
        "--engine", choices=("reference", "fast", "batch", "auto"),
        default="reference",
        help="validation engine for the sample (default reference — "
        "the oracle)",
    )
    p_cs = corpus_sub.add_parser("stats", help="print the footer summary")
    p_cs.add_argument("file", metavar="FILE", help="corpus file")
    return parser


def _cmd_list() -> int:
    for spec in registry.all_experiments():
        print(f"{spec.name}: {spec.title}")
    return 0


def _cmd_export_csv(directory: str) -> int:
    from repro.analysis.sweeps import export_all_series

    written = export_all_series(directory)
    for fname, count in sorted(written.items()):
        print(f"wrote {fname}: {count} rows")
    return 0


def _cmd_clean_cache(cache_dir: str) -> int:
    removed = ExperimentRunner(cache_dir=cache_dir).clean_cache()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro import api
    from repro.graphs.specs import spec_names
    from repro.schedulers import registry as sched_registry
    from repro.types import ReproError

    if args.list:
        for spec in sched_registry.all_schedulers():
            print(f"{spec.name}: {spec.title}")
        return 0
    if args.graph is None:
        print(
            "schedule needs --graph SPEC (or --list); known families: "
            + ", ".join(sorted(spec_names())),
            file=sys.stderr,
        )
        return 2
    params: dict = {}
    if args.restarts is not None:
        params["restarts"] = args.restarts
    if args.n_messages is not None:
        params["n_messages"] = args.n_messages
    try:
        graph = api.build_graph(args.graph)
        result = api.schedule(
            graph,
            args.scheduler,
            source=args.source,
            k=args.k,
            rounds=args.rounds,
            seed=args.seed,
            params=params,
        )
        if args.out is not None and result.frame is not None:
            from repro.io import save_schedule

            save_schedule(args.out, graph, result.frame, k=args.k)
    except (ReproError, OSError, KeyError) as exc:
        return _fail("schedule", exc)
    row = {
        "scheduler": result.scheduler,
        "graph": args.graph,
        "n": graph.n_vertices,
        "source": result.source,
        "k": args.k if args.k is not None else "inf",
        "found": result.found,
        "rounds": result.rounds if result.rounds is not None else "-",
        "calls": result.frame.n_calls if result.frame is not None else "-",
        "max_len": (
            result.frame.max_call_length() if result.frame is not None else "-"
        ),
        "valid": result.valid if result.valid is not None else "-",
        "seconds": f"{result.seconds:.3f}",
    }
    print(format_table([row], title=f"[SCHEDULE] {result.scheduler} on {args.graph}"))
    if args.out is not None and result.frame is not None:
        print(f"wrote {args.out}")
    return 0 if result.found and result.valid is not False else 1


def _cmd_validate_file(args: argparse.Namespace) -> int:
    """Validate one schedule file through the repro.api facade."""
    import time

    from repro import api
    from repro.io import load_schedule
    from repro.types import ReproError

    sweep_flags = [
        ("--n", args.n is not None),
        ("--m", args.m is not None),
        ("--thresholds", args.thresholds is not None),
        ("--all-sources", args.all_sources),
    ]
    conflicting = [flag for flag, given in sweep_flags if given]
    if conflicting:
        print(
            f"--schedule FILE cannot be combined with {conflicting[0]} "
            "(construction-sweep flags)",
            file=sys.stderr,
        )
        return 2
    engine = args.engine if args.engine is not None else "auto"
    if engine == "loop":
        print(
            "--engine loop applies to construction sweeps; "
            "--schedule FILE takes auto, reference, fast, or batch",
            file=sys.stderr,
        )
        return 2
    try:
        graph, frame, k_file = load_schedule(args.schedule)
        k_eff = args.k if args.k is not None else k_file
        if k_eff is None:
            k_eff = max(1, graph.n_vertices - 1)  # unbounded call length
        t0 = time.perf_counter()
        report = api.validate(
            graph,
            frame,
            k_eff,
            engine=engine,
            require_minimum_time=not args.no_min_time,
        )
        seconds = time.perf_counter() - t0
    except (ReproError, OSError) as exc:
        return _fail("validate", exc)
    row = {
        "file": args.schedule,
        "N": graph.n_vertices,
        "source": frame.source,
        "rounds": frame.n_rounds,
        "calls": frame.n_calls,
        "max call len": frame.max_call_length(),
        f"valid (≤{k_eff})": report.ok,
        "engine": engine,
        "seconds": f"{seconds:.3f}",
    }
    print(format_table([row], title="[VALIDATE] schedule file"))
    for error in report.errors[:5]:
        print(f"error: {error}")
    if len(report.errors) > 5:
        print(f"... and {len(report.errors) - 5} more")
    return 0 if report.ok else 1


def _construction_spec(args: argparse.Namespace) -> str:
    """Map the validate flags onto one ``sparse:...`` construction spec.

    All parsing/validation of the construction itself lives in
    :func:`repro.api.construction`; this only translates flag spellings
    and preserves the historical ``--k``/``--thresholds`` cross-checks.
    """
    from repro.types import InvalidParameterError

    if args.thresholds is not None:
        if args.k is None:
            raise InvalidParameterError("--thresholds requires --k")
        parts = args.thresholds.split(",")
        if args.k != len(parts) + 1:
            raise InvalidParameterError(
                f"k={args.k} needs {args.k - 1} thresholds "
                f"(n_1..n_{{k-1}}), got {len(parts)}"
            )
        return f"sparse:{args.n}:" + ":".join(p.strip() for p in parts)
    if args.k is not None and args.k != 2:
        raise InvalidParameterError(
            f"--k {args.k} requires --thresholds (only the k=2 base "
            "construction can be built from --m alone)"
        )
    if args.m is not None:
        return f"sparse:{args.n}:{args.m}"
    return f"sparse:{args.n}"


def _cmd_validate(args: argparse.Namespace) -> int:
    import time

    from repro import api
    from repro.analysis.common import sample_sources
    from repro.types import ReproError

    if args.schedule is not None:
        return _cmd_validate_file(args)
    if args.n is None:
        print(
            "validate needs --n N (construction sweep) or --schedule FILE",
            file=sys.stderr,
        )
        return 2
    engine = args.engine if args.engine is not None else "batch"
    if engine not in ("batch", "loop"):
        print(
            f"--engine {engine} applies to --schedule FILE mode; "
            "construction sweeps take batch or loop",
            file=sys.stderr,
        )
        return 2
    try:
        sh = api.construction(_construction_spec(args))
    except (ReproError, ValueError) as exc:
        return _fail("validate", exc)
    n_vertices = sh.n_vertices
    srcs = (
        list(range(n_vertices))
        if args.all_sources
        else sample_sources(n_vertices, args.sources_cap)
    )
    t0 = time.perf_counter()
    if engine == "batch":
        from repro.engine.batch import validate_all_sources

        outcome = validate_all_sources(sh, k=sh.k, sources=srcs)
        ok = outcome.all_ok and all(r == sh.n for r in outcome.rounds)
        max_len = outcome.max_call_length
        provenance = f"{outcome.n_cosets} cosets, {outcome.n_stacks} stacks"
    else:
        from repro.core.broadcast import broadcast_schedule
        from repro.engine.cache import fast_validator_for

        validator = fast_validator_for(sh.graph)
        ok, max_len = True, 0
        for s in srcs:
            sched = broadcast_schedule(sh, s)
            rep = validator.validate(sched, sh.k)
            ok = ok and rep.ok and len(sched.rounds) == sh.n
            max_len = max(max_len, rep.max_call_length)
        provenance = "per-source loop"
    seconds = time.perf_counter() - t0
    row = {
        "construct": f"Construct({sh.k}, n={sh.n}, {sh.thresholds})",
        "N": n_vertices,
        "Δ": sh.degree_formula(),
        "sources": len(srcs),
        "rounds": sh.n,
        "max call len": max_len,
        f"valid (≤{sh.k})": ok,
        "engine": f"{engine} ({provenance})",
        "seconds": f"{seconds:.3f}",
    }
    print(format_table([row], title=f"[VALIDATE] Broadcast_{sh.k} source sweep"))
    return 0 if ok else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.analysis import campaigns
    from repro.analysis.tables import campaign_summary
    from repro.types import ReproError

    if args.campaign_action is None:
        print(
            "campaign needs an action: list, run, or merge "
            "(e.g. `repro campaign run paper-grid --shard 0/2`)",
            file=sys.stderr,
        )
        return 2
    if args.campaign_action == "list":
        for name in campaigns.builtin_campaign_names():
            spec = campaigns.BUILTIN_CAMPAIGNS[name]
            print(f"{name}: {spec.title} ({spec.n_scenarios} scenarios)")
        return 0
    try:
        spec = campaigns.load_campaign(args.spec)
        if args.campaign_action == "run":
            shard = campaigns.parse_shard(args.shard)
            if args.jobs < 1:
                print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
                return 2
            if args.maxtasksperchild is not None and args.maxtasksperchild < 1:
                print(
                    f"--maxtasksperchild must be >= 1, got {args.maxtasksperchild}",
                    file=sys.stderr,
                )
                return 2
            chunk, manifest, rows = campaigns.run_campaign_shard(
                spec,
                shard=shard,
                out_dir=args.out_dir,
                jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                maxtasksperchild=args.maxtasksperchild,
                retry=_retry_from_args(args),
            )
            print(
                format_table(
                    campaign_summary(rows),
                    title=f"[CAMPAIGN] {spec.name} shard {shard[0]}/{shard[1]} "
                    f"({manifest['executed']} executed, "
                    f"{manifest['cache_hits']} cached, "
                    f"{manifest['seconds']:.2f}s)",
                )
            )
            print(f"chunk: {chunk}")
            if shard == (0, 1):
                print(f"artifact: {campaigns.artifact_path(args.out_dir, spec)}")
            return 0
        # merge
        target, rows = campaigns.merge_chunks(spec, args.out_dir)
        print(
            format_table(
                campaign_summary(rows),
                title=f"[CAMPAIGN] {spec.name} merged ({len(rows)} scenarios)",
            )
        )
        print(f"artifact: {target}")
        return 0
    except (ReproError, OSError) as exc:
        return _fail("campaign", exc)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import all_rules, lint_paths
    from repro.devtools.analyzer import format_text
    from repro.types import ReproError

    if args.list:
        for lint_rule in all_rules():
            print(
                f"{lint_rule.rule_id} [{lint_rule.severity}] "
                f"{lint_rule.name}: {lint_rule.summary}"
            )
        return 0
    try:
        report = lint_paths(args.paths, rule_id=args.rule)
    except (ReproError, OSError) as exc:
        return _fail("lint", exc)
    if args.format == "json":
        print(report.to_json())
    else:
        print(format_text(report))
    return 0 if report.ok else 1


def _retry_from_args(args: argparse.Namespace) -> "RetryPolicy | None":
    """The :class:`RetryPolicy` for ``--retries``/``--task-timeout``.

    ``None`` when neither knob is set, so callees use their defaults;
    bad values raise :class:`~repro.types.InvalidParameterError` (caught
    by each command's ReproError handler).
    """
    from repro.util.retry import RetryPolicy

    if args.retries is None and args.task_timeout is None:
        return None
    return RetryPolicy.from_knobs(
        retries=args.retries, task_timeout=args.task_timeout
    )


def _cmd_run(
    names: list[str],
    *,
    jobs: int,
    cache: bool,
    cache_dir: str,
    retry: "RetryPolicy | None" = None,
) -> int:
    known = registry.experiment_ids()
    if not names:
        names = known
    bad = [n for n in names if n.lower() not in known]
    if bad:
        print(f"unknown experiment {bad[0]!r}; use 'repro list'", file=sys.stderr)
        return 2
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    from repro.types import ReproError

    runner = ExperimentRunner(
        jobs=jobs, cache_dir=cache_dir if cache else None, retry=retry
    )
    try:
        results = runner.run([n.lower() for n in names])
    except (ReproError, OSError) as exc:
        # execution-layer faults (exhausted retry budget, bad
        # REPRO_CHAOS spec, cache IO): one line, never a traceback
        return _fail("run", exc)
    for res in results:
        origin = "cache" if res.cached else f"{res.seconds:.2f}s"
        title = f"[{res.name.upper()}] {res.title}  ({origin})"
        print(format_table(res.rows, title=title))
        print()
    stats = runner.stats
    print(
        f"ran {stats.executed} experiment(s), {stats.cache_hits} cache hit(s), "
        f"{stats.seconds:.2f}s total (jobs={jobs})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.types import ReproError

    try:
        from repro.service import serve_forever

        return serve_forever(
            host=args.host,
            port=args.port,
            workers=args.workers,
            corpus=args.corpus,
            max_connections=args.max_connections,
            max_keepalive=args.max_keepalive,
        )
    except (ReproError, OSError) as exc:
        return _fail("serve", exc)


def _corpus_graph(graph_spec: str, scheduler: str) -> "Graph":
    """The graph a corpus group's frames live on (spec-kind aware)."""
    from repro import api

    if scheduler == "scheme":
        return api.construction(graph_spec).graph
    return api.build_graph(graph_spec)


def _cmd_corpus(args: argparse.Namespace) -> int:
    import json

    from repro.types import ReproError

    if args.corpus_action is None:
        print(
            "corpus needs an action: build, query, verify, or stats "
            "(e.g. `repro corpus build --out F.corpus --graph sparse:6:2`)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.corpus_action == "build":
            from repro.corpus import build_corpus

            sources = None
            if args.sources is not None:
                sources = [int(s) for s in args.sources.split(",") if s.strip()]
            n = build_corpus(
                args.out,
                args.graph,
                args.scheduler,
                k=args.k,
                seed=args.seed,
                sources=sources,
            )
            print(f"wrote {args.out}: {n} frames ({args.scheduler} on {args.graph})")
            return 0
        if args.corpus_action == "query":
            from repro.corpus import CorpusReader

            with CorpusReader(args.file) as reader:
                frame = reader.get(
                    args.graph,
                    args.scheduler,
                    args.source,
                    k=args.k,
                    seed=args.seed,
                )
                if args.out is not None:
                    from repro.io import save_schedule

                    graph = _corpus_graph(args.graph, args.scheduler)
                    save_schedule(args.out, graph, frame, k=args.k)
            row = {
                "corpus": args.file,
                "graph": args.graph,
                "scheduler": args.scheduler,
                "source": frame.source,
                "k": args.k if args.k is not None else "inf",
                "rounds": frame.n_rounds,
                "calls": frame.n_calls,
                "max_len": frame.max_call_length(),
            }
            print(format_table([row], title=f"[CORPUS] query {args.graph}"))
            if args.out is not None:
                print(f"wrote {args.out}")
            return 0
        if args.corpus_action == "verify":
            from repro.corpus import verify_corpus
            from repro.errors import CorpusIntegrityError

            report = verify_corpus(
                args.file, sample=args.sample, seed=args.seed, engine=args.engine
            )
            print(json.dumps(report.to_wire(), indent=2, sort_keys=True))
            if not report.ok:
                raise CorpusIntegrityError(
                    f"{args.file}: {report.errors[0]}"
                    + (
                        f" (+{len(report.errors) - 1} more)"
                        if len(report.errors) > 1
                        else ""
                    )
                )
            return 0
        # stats
        from repro.corpus import CorpusReader

        with CorpusReader(args.file) as reader:
            print(json.dumps(reader.stats(), indent=2, sort_keys=True))
        return 0
    except (ReproError, OSError, ValueError) as exc:
        return _fail("corpus", exc)


def _warn_legacy(legacy: str, modern: str) -> None:
    import warnings

    warnings.warn(
        f"the legacy CLI spelling {legacy!r} is deprecated; "
        f"use {modern!r} (see the migration table in CONTRIBUTING.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def _legacy_argv(argv: list[str]) -> list[str] | None:
    """Map the pre-subcommand CLI onto the new one (None = not legacy).

    Each rewrite emits a :class:`DeprecationWarning` naming the modern
    spelling; a bare ``python -m repro`` (no arguments at all) is the
    documented default, not a legacy form, and stays silent.
    """
    if argv and argv[0] in _SUBCOMMANDS:
        return None  # explicit subcommand — never rewrite
    if "--list" in argv:
        _warn_legacy("--list", "repro list")
        return ["list"]
    if "--export-csv" in argv:
        idx = argv.index("--export-csv")
        if idx + 1 < len(argv):
            _warn_legacy("--export-csv DIR", "repro export-csv DIR")
            return ["export-csv", argv[idx + 1]]
        return None
    if argv and not argv[0].startswith("-"):
        targets = [] if argv == ["all"] else argv
        modern = "repro run" + ("" if not targets else " " + " ".join(targets))
        _warn_legacy(" ".join(argv), modern)
        return ["run", *targets]
    if not argv:
        return ["run"]
    return None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    legacy = _legacy_argv(argv)
    if legacy is not None:
        argv = legacy
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "export-csv":
        return _cmd_export_csv(args.dir)
    if args.command == "clean-cache":
        return _cmd_clean_cache(args.cache_dir)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "corpus":
        return _cmd_corpus(args)
    # "run"
    names = list(args.experiments)
    if args.all:
        names = []
    cache = args.cache or args.cache_dir is not None  # --cache-dir implies --cache
    cache_dir = str(DEFAULT_CACHE_DIR) if args.cache_dir is None else args.cache_dir
    from repro.types import ReproError

    try:
        retry = _retry_from_args(args)
    except ReproError as exc:
        return _fail("run", exc)
    return _cmd_run(
        names,
        jobs=args.jobs,
        cache=cache,
        cache_dir=cache_dir,
        retry=retry,
    )


if __name__ == "__main__":
    raise SystemExit(main())
