"""Command-line experiment runner: ``python -m repro <experiment|all>``.

Regenerates the paper's figures/examples/theorem tables (E01–E16, see
DESIGN.md) and prints them as text tables.  The same builders back the
pytest benchmarks; the CLI exists so a reader can reproduce any single
table without the test machinery.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    experiment_e01_theorem1,
    experiment_e02_lower_bounds,
    experiment_e04_labelings,
    experiment_e05_lambda_m,
    experiment_e06_g42,
    experiment_e07_g153,
    experiment_e08_fig4,
    experiment_e09_broadcast2,
    experiment_e10_theorem5,
    experiment_e11_rec742,
    experiment_e12_broadcastk,
    experiment_e13_theorem7,
    experiment_e14_topology_compare,
    experiment_e15_congestion,
    experiment_e16_baseline_k1,
    experiment_e17_gossip,
    experiment_e18_diameter,
    experiment_e19_faults,
    experiment_e20_vertex_disjoint,
    experiment_e21_wormhole,
    experiment_e22_multimessage,
    format_table,
)

EXPERIMENTS = {
    "e01": (experiment_e01_theorem1, "Fig. 1 + Theorem 1: Δ≤3 trees"),
    "e02": (experiment_e02_lower_bounds, "Theorems 2–3: degree lower bounds"),
    "e04": (experiment_e04_labelings, "Example 1: optimal labelings of Q2/Q3"),
    "e05": (experiment_e05_lambda_m, "Lemma 2: λ_m bounds"),
    "e06": (experiment_e06_g42, "Example 2 / Figs. 2–3: G_{4,2}"),
    "e07": (experiment_e07_g153, "Example 3: G_{15,3}"),
    "e08": (experiment_e08_fig4, "Example 4 / Fig. 4: broadcast from 0000"),
    "e09": (experiment_e09_broadcast2, "Theorem 4: Broadcast_2 sweep"),
    "e10": (experiment_e10_theorem5, "Theorem 5: k=2 degree bound"),
    "e11": (experiment_e11_rec742, "Examples 5–6 / Fig. 5: Construct_REC(7,4,2)"),
    "e12": (experiment_e12_broadcastk, "Theorem 6: Broadcast_k sweep"),
    "e13": (experiment_e13_theorem7, "Theorem 7 + corollaries: general k"),
    "e14": (experiment_e14_topology_compare, "Topology comparison (context)"),
    "e15": (experiment_e15_congestion, "Section 5: congestion / bandwidth"),
    "e16": (experiment_e16_baseline_k1, "k=1 store-and-forward baseline"),
    "e17": (experiment_e17_gossip, "Section 5: gossip under the k-line model"),
    "e18": (experiment_e18_diameter, "Footnote 1: diameters vs k·log2 N"),
    "e19": (experiment_e19_faults, "Robustness: edge failures + repair"),
    "e20": (experiment_e20_vertex_disjoint, "Section 5: vertex-disjoint calls"),
    "e21": (experiment_e21_wormhole, "Wormhole cycle cost: degree vs latency"),
    "e22": (experiment_e22_multimessage, "Multiple messages broadcasting ([24])"),
}


def run_experiment(name: str) -> None:
    fn, description = EXPERIMENTS[name]
    t0 = time.perf_counter()
    rows = fn()
    dt = time.perf_counter() - t0
    print(format_table(rows, title=f"[{name.upper()}] {description}  ({dt:.2f}s)"))
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables (E01–E22).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (e01..e22) or 'all' (default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--export-csv",
        metavar="DIR",
        help="write the degree/asymptotic series as CSV files to DIR and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name}: {description}")
        return 0
    if args.export_csv:
        from repro.analysis.sweeps import export_all_series

        written = export_all_series(args.export_csv)
        for fname, count in sorted(written.items()):
            print(f"wrote {fname}: {count} rows")
        return 0
    targets = args.experiments
    if targets == ["all"] or targets == []:
        targets = list(EXPERIMENTS)
    for name in targets:
        key = name.lower()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        run_experiment(key)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
