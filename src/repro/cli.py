"""Command-line experiment runner: ``python -m repro run --all``.

Subcommands (all backed by the experiment registry and the parallel
runner — see :mod:`repro.analysis.registry` / :mod:`repro.analysis.runner`):

``run``
    Execute experiments and print their tables.  ``--all`` selects every
    registered experiment, ``--jobs N`` fans out over N worker
    processes, ``--cache`` memoizes results as JSON under ``--cache-dir``
    so a repeat invocation executes nothing.

``list``
    Show every registered experiment id and title.

``clean-cache``
    Delete the result cache.

``export-csv``
    Write the degree/asymptotic series as CSV files.

``schedule``
    Run one registered scheduler on a named graph family:
    ``repro schedule --graph hypercube:3 --scheduler search --k 2``.
    ``--list`` shows every scheduler in the registry
    (:mod:`repro.schedulers.registry`); results are validated by the
    reference validator before being reported.

Legacy spellings from the sequential CLI era keep working:
``python -m repro e06``, ``python -m repro all``, ``--list`` and
``--export-csv DIR``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table, registry
from repro.analysis.runner import DEFAULT_CACHE_DIR, ExperimentRunner

_SUBCOMMANDS = ("run", "list", "clean-cache", "export-csv", "schedule")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables (E01–E23).",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="run experiments and print their tables")
    p_run.add_argument("experiments", nargs="*", help="experiment ids (e01..e23)")
    p_run.add_argument("--all", action="store_true", help="run every experiment")
    p_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = sequential)",
    )
    p_run.add_argument(
        "--cache", action="store_true",
        help="memoize results as JSON keyed on the parameter hash",
    )
    p_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"cache location (default {DEFAULT_CACHE_DIR}); implies --cache",
    )

    sub.add_parser("list", help="list available experiments")

    p_clean = sub.add_parser("clean-cache", help="delete the result cache")
    p_clean.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR), metavar="DIR",
        help=f"cache location (default {DEFAULT_CACHE_DIR})",
    )

    p_csv = sub.add_parser("export-csv", help="write series CSVs and exit")
    p_csv.add_argument("dir", metavar="DIR", help="output directory")

    p_sched = sub.add_parser(
        "schedule", help="run a registered scheduler on a graph family"
    )
    p_sched.add_argument(
        "--graph", metavar="SPEC", default=None,
        help="graph spec, e.g. hypercube:3, theorem1:2, path:16, "
        "random-tree:24:7 (see --list for schedulers)",
    )
    p_sched.add_argument(
        "--scheduler", default="greedy", metavar="NAME",
        help="registry name (default greedy); see --list",
    )
    p_sched.add_argument("--source", type=int, default=0, metavar="V")
    p_sched.add_argument(
        "--k", type=int, default=None, metavar="K",
        help="call-length bound (default: unbounded)",
    )
    p_sched.add_argument(
        "--rounds", type=int, default=None, metavar="R",
        help="round budget (default: the minimum ⌈log₂N⌉)",
    )
    p_sched.add_argument("--seed", type=int, default=0, metavar="N")
    p_sched.add_argument(
        "--restarts", type=int, default=None, metavar="N",
        help="greedy restart budget",
    )
    p_sched.add_argument(
        "--n-messages", type=int, default=None, metavar="M",
        help="message count for multimsg_search",
    )
    p_sched.add_argument(
        "--list", action="store_true", help="list registered schedulers"
    )
    return parser


def _cmd_list() -> int:
    for spec in registry.all_experiments():
        print(f"{spec.name}: {spec.title}")
    return 0


def _cmd_export_csv(directory: str) -> int:
    from repro.analysis.sweeps import export_all_series

    written = export_all_series(directory)
    for fname, count in sorted(written.items()):
        print(f"wrote {fname}: {count} rows")
    return 0


def _cmd_clean_cache(cache_dir: str) -> int:
    removed = ExperimentRunner(cache_dir=cache_dir).clean_cache()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.graphs.specs import graph_from_spec, spec_names
    from repro.schedulers import registry as sched_registry
    from repro.types import ReproError

    if args.list:
        for spec in sched_registry.all_schedulers():
            print(f"{spec.name}: {spec.title}")
        return 0
    if args.graph is None:
        print(
            "schedule needs --graph SPEC (or --list); known families: "
            + ", ".join(sorted(spec_names())),
            file=sys.stderr,
        )
        return 2
    params: dict = {}
    if args.restarts is not None:
        params["restarts"] = args.restarts
    if args.n_messages is not None:
        params["n_messages"] = args.n_messages
    try:
        graph = graph_from_spec(args.graph)
        request = sched_registry.ScheduleRequest(
            graph=graph,
            source=args.source,
            k=args.k,
            rounds=args.rounds,
            seed=args.seed,
            params=params,
        )
        result = sched_registry.run_scheduler(args.scheduler, request)
    except (ReproError, KeyError) as exc:
        print(f"schedule failed: {exc}", file=sys.stderr)
        return 2
    row = {
        "scheduler": result.scheduler,
        "graph": args.graph,
        "n": graph.n_vertices,
        "source": result.source,
        "k": args.k if args.k is not None else "inf",
        "found": result.found,
        "rounds": result.rounds if result.rounds is not None else "-",
        "calls": result.schedule.num_calls if result.schedule else "-",
        "max_len": result.schedule.max_call_length() if result.schedule else "-",
        "valid": result.valid if result.valid is not None else "-",
        "seconds": f"{result.seconds:.3f}",
    }
    print(format_table([row], title=f"[SCHEDULE] {result.scheduler} on {args.graph}"))
    return 0 if result.found and result.valid is not False else 1


def _cmd_run(names: list[str], *, jobs: int, cache: bool, cache_dir: str) -> int:
    known = registry.experiment_ids()
    if not names:
        names = known
    bad = [n for n in names if n.lower() not in known]
    if bad:
        print(
            f"unknown experiment {bad[0]!r}; use 'repro list'", file=sys.stderr
        )
        return 2
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir if cache else None)
    results = runner.run([n.lower() for n in names])
    for res in results:
        origin = "cache" if res.cached else f"{res.seconds:.2f}s"
        print(format_table(res.rows, title=f"[{res.name.upper()}] {res.title}  ({origin})"))
        print()
    stats = runner.stats
    print(
        f"ran {stats.executed} experiment(s), {stats.cache_hits} cache hit(s), "
        f"{stats.seconds:.2f}s total (jobs={jobs})"
    )
    return 0


def _legacy_argv(argv: list[str]) -> list[str] | None:
    """Map the pre-subcommand CLI onto the new one (None = not legacy)."""
    if argv and argv[0] in _SUBCOMMANDS:
        return None  # explicit subcommand — never rewrite
    if "--list" in argv:
        return ["list"]
    if "--export-csv" in argv:
        idx = argv.index("--export-csv")
        if idx + 1 < len(argv):
            return ["export-csv", argv[idx + 1]]
        return None
    if argv and not argv[0].startswith("-"):
        targets = [] if argv == ["all"] else argv
        return ["run", *targets]
    if not argv:
        return ["run"]
    return None


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    legacy = _legacy_argv(argv)
    if legacy is not None:
        argv = legacy
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "export-csv":
        return _cmd_export_csv(args.dir)
    if args.command == "clean-cache":
        return _cmd_clean_cache(args.cache_dir)
    if args.command == "schedule":
        return _cmd_schedule(args)
    # "run"
    names = list(args.experiments)
    if args.all:
        names = []
    cache = args.cache or args.cache_dir is not None  # --cache-dir implies --cache
    return _cmd_run(
        names,
        jobs=args.jobs,
        cache=cache,
        cache_dir=args.cache_dir if args.cache_dir is not None else str(DEFAULT_CACHE_DIR),
    )


if __name__ == "__main__":
    raise SystemExit(main())
