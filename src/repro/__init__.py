"""repro — Sparse Hypercube: minimal k-line broadcast graphs.

A full reproduction of S. Fujita and A. M. Farley, *Sparse Hypercube — a
minimal k-line broadcast graph* (IPPS/SPDP'99; journal version Discrete
Applied Mathematics 127 (2003) 431–446).

Quickstart
----------
>>> import repro
>>> sh = repro.construct_base(10, repro.theorem5_m_star(10))   # a 2-mlbg
>>> sh.degree_formula()                                        # Δ(G) « 10
5
>>> sched = repro.broadcast_schedule(sh, source=0)
>>> len(sched.rounds)                                          # ⌈log₂ N⌉
10
>>> repro.validate_broadcast(sh.graph, sched, k=2).ok
True

Package map
-----------
``repro.api``         the public facade: build_graph/schedule/validate/…
``repro.frame``       columnar ScheduleFrame — the canonical interchange
``repro.core``        constructions, schemes, bounds (the paper's results)
``repro.graphs``      graph kernel, Q_n, classic topologies, trees
``repro.domination``  Condition-A labelings / domatic machinery
``repro.coding``      GF(2) + Hamming codes (the optimal labeling engine)
``repro.model``       the k-line communication model: simulator + validator
``repro.schedulers``  exact/heuristic/baseline schedulers
``repro.flows``       Dinic max-flow (round packing substrate)
``repro.analysis``    experiment harness (tables E01–E16)
"""

from repro import api
from repro.core import (
    SparseHypercube,
    broadcast_2,
    broadcast_k,
    broadcast_schedule,
    construct,
    construct_base,
    construct_rec,
    degree_lower_bound,
    theorem1_tree,
    theorem5_m_star,
    theorem7_params,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.frame import ScheduleBuilder, ScheduleFrame
from repro.graphs import Graph, hypercube
from repro.model import (
    LineNetworkSimulator,
    assert_valid_broadcast,
    validate_broadcast,
    verify_k_mlbg_via_scheme,
)
from repro.types import Call, Round, Schedule

__version__ = "1.0.0"

__all__ = [
    "api",
    "SparseHypercube",
    "Graph",
    "Call",
    "Round",
    "Schedule",
    "ScheduleFrame",
    "ScheduleBuilder",
    "hypercube",
    "construct_base",
    "construct_rec",
    "construct",
    "broadcast_2",
    "broadcast_k",
    "broadcast_schedule",
    "theorem1_tree",
    "theorem5_m_star",
    "theorem7_params",
    "degree_lower_bound",
    "upper_bound_theorem5",
    "upper_bound_theorem7",
    "LineNetworkSimulator",
    "validate_broadcast",
    "assert_valid_broadcast",
    "verify_k_mlbg_via_scheme",
    "__version__",
]
