"""Deterministic fault injection: ``REPRO_CHAOS`` and :class:`ChaosPolicy`.

The fault-tolerant execution layer (crash-safe :class:`~repro.util.pool.
WorkerPool`, shm transport degradation, campaign crash-checkpointing)
is only trustworthy if its failure paths run in CI on every push.  This
module injects the failures *deterministically*: a spec string names
exactly which chunk dies, which worker cannot attach shared memory,
which cache entry is corrupted — so a chaos test replays byte-for-byte
and an assertion failure is a regression, never flake.

Spec grammar (``REPRO_CHAOS`` environment variable)::

    event[;event...]        events are independent; ';' separates
    event = kind[:key=value...]

Supported events:

``kill:chunk=K[:attempt=A]``
    SIGKILL the worker process right before it executes pool chunk
    ``K`` — only on attempt ``A`` (default 0), so the retry of the same
    chunk survives and the recovery path is what gets tested.
``delay:chunk=K:ms=M[:attempt=A]``
    Sleep ``M`` milliseconds before executing chunk ``K`` (any attempt
    when ``attempt`` is omitted) — drives task-timeout detection.
``attach-fail:worker=W`` / ``attach-fail:all``
    :meth:`repro.engine.shm.PlaneHandle.attach` raises
    :class:`~repro.errors.ShmAttachError` in worker slot ``W`` (or in
    every process) — drives the pickled-copy/serial degradation tiers.
``export-fail:nth=N`` / ``export-fail:all``
    The ``N``-th ``PlaneRegistry.export`` call in this process raises
    (0-indexed) — drives the parent-side export fallback.
``corrupt-cache:nth=N``
    The ``N``-th campaign cache-entry read in this process first has
    its file overwritten with garbage — drives the corrupt-entry
    re-execution path.

A global ``seed=S`` event seeds :func:`repro.util.retry.seeded_jitter`
-style probabilistic gates (``p=`` on kill/delay events), for soak runs
that still replay deterministically.  Hooks are no-ops (one cached
``None`` check) when ``REPRO_CHAOS`` is unset, so production paths pay
nothing.  Together with :mod:`repro.util.retry` this is a sanctioned
``time.sleep`` boundary (lint rule RL010).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

from repro.types import InvalidParameterError
from repro.util.retry import seeded_jitter

__all__ = [
    "ChaosEvent",
    "ChaosPolicy",
    "active_policy",
    "set_worker_slot",
    "reset",
    "on_chunk",
    "should_fail_attach",
    "should_fail_export",
    "corrupt_cache_entry",
]

_KINDS = ("kill", "delay", "attach-fail", "export-fail", "corrupt-cache", "seed")

_CORRUPT_BYTES = b'{"chaos": "corrupted entry"'  # deliberately torn JSON


@dataclass(frozen=True)
class ChaosEvent:
    """One parsed injection directive."""

    kind: str
    params: dict[str, str] = field(default_factory=dict)

    def int_param(self, key: str, default: int | None = None) -> int | None:
        raw = self.params.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise InvalidParameterError(
                f"REPRO_CHAOS: {self.kind}:{key} must be an integer, got {raw!r}"
            ) from None


_INT_PARAMS = ("chunk", "ms", "attempt", "nth", "worker")


def _validate_event(event: ChaosEvent) -> None:
    """Reject malformed values at parse time, not mid-injection."""
    for key in _INT_PARAMS:
        if key in event.params and event.params[key] != "all":
            event.int_param(key)  # raises InvalidParameterError if bad
    p = event.params.get("p")
    if p is not None:
        try:
            float(p)
        except ValueError:
            raise InvalidParameterError(
                f"REPRO_CHAOS: p must be a float, got {p!r}"
            ) from None


class ChaosPolicy:
    """All parsed events of one ``REPRO_CHAOS`` spec."""

    def __init__(self, events: tuple[ChaosEvent, ...], *, seed: int = 0) -> None:
        self.events = events
        self.seed = seed

    @classmethod
    def parse(cls, spec: str) -> ChaosPolicy:
        events: list[ChaosEvent] = []
        seed = 0
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            head, *rest = raw.split(":")
            if head.startswith("seed="):
                # the global seed event: spelled seed=S, no colon params
                value = head.partition("=")[2]
                try:
                    seed = int(value)
                except ValueError:
                    raise InvalidParameterError(
                        f"REPRO_CHAOS: seed must be an integer, got {value!r}"
                    ) from None
                continue
            if head not in _KINDS or head == "seed":
                raise InvalidParameterError(
                    f"REPRO_CHAOS: unknown event kind {head!r}; "
                    f"known: {', '.join(_KINDS)}"
                )
            params: dict[str, str] = {}
            for part in rest:
                key, sep, value = part.partition("=")
                if not sep or not key:
                    if part == "all":  # bare flag: attach-fail:all etc.
                        params["all"] = ""
                        continue
                    raise InvalidParameterError(
                        f"REPRO_CHAOS: malformed parameter {part!r} in {raw!r} "
                        "(expected key=value)"
                    )
                params[key] = value
            event = ChaosEvent(head, params)
            _validate_event(event)
            events.append(event)
        return cls(tuple(events), seed=seed)

    def _gate(self, event: ChaosEvent, site: str) -> bool:
        """The optional probabilistic gate ``p=`` (seeded, replayable)."""
        raw = event.params.get("p")
        if raw is None:
            return True
        try:
            p = float(raw)
        except ValueError:
            raise InvalidParameterError(
                f"REPRO_CHAOS: p must be a float, got {raw!r}"
            ) from None
        return seeded_jitter(self.seed, site, 0) < p

    # -- decisions ---------------------------------------------------------

    def chunk_actions(
        self, chunk_id: int, attempt: int
    ) -> tuple[bool, float]:
        """(kill?, delay-seconds) for one chunk execution."""
        kill = False
        delay = 0.0
        for event in self.events:
            if event.kind == "kill":
                want_attempt = event.int_param("attempt", 0)
                if (
                    event.int_param("chunk") == chunk_id
                    and attempt == want_attempt
                    and self._gate(event, f"kill:{chunk_id}:{attempt}")
                ):
                    kill = True
            elif event.kind == "delay":
                want_attempt = event.int_param("attempt")
                if event.int_param("chunk") == chunk_id and (
                    want_attempt is None or attempt == want_attempt
                ):
                    ms = event.int_param("ms", 0) or 0
                    if self._gate(event, f"delay:{chunk_id}:{attempt}"):
                        delay += ms / 1000.0
        return kill, delay

    def fails_attach(self, worker_slot: int | None) -> bool:
        for event in self.events:
            if event.kind != "attach-fail":
                continue
            if "all" in event.params or event.params.get("worker") == "all":
                return True
            want = event.int_param("worker")
            if want is not None and worker_slot == want:
                return True
        return False

    def fails_export(self, nth: int) -> bool:
        for event in self.events:
            if event.kind != "export-fail":
                continue
            if "all" in event.params:
                return True
            if event.int_param("nth") == nth:
                return True
        return False

    def corrupts_cache(self, nth: int) -> bool:
        return any(
            event.kind == "corrupt-cache" and event.int_param("nth") == nth
            for event in self.events
        )


# -- per-process state -------------------------------------------------------

# (spec, policy) cache: re-parsed only when the env value changes, so
# monkeypatched tests see their spec and production pays one dict read.
_CACHED: tuple[str, ChaosPolicy | None] | None = None
_WORKER_SLOT: int | None = None
_EXPORT_COUNT = 0
_CACHE_LOAD_COUNT = 0


def active_policy() -> ChaosPolicy | None:
    """The process's policy, or ``None`` when ``REPRO_CHAOS`` is unset."""
    global _CACHED
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if _CACHED is not None and _CACHED[0] == spec:
        return _CACHED[1]
    policy = ChaosPolicy.parse(spec) if spec else None
    _CACHED = (spec, policy)
    return policy


def set_worker_slot(slot: int | None) -> None:
    """Record this process's pool worker slot (parent = ``None``)."""
    global _WORKER_SLOT
    _WORKER_SLOT = slot


def reset() -> None:
    """Clear cached policy and counters (test isolation)."""
    global _CACHED, _WORKER_SLOT, _EXPORT_COUNT, _CACHE_LOAD_COUNT
    _CACHED = None
    _WORKER_SLOT = None
    _EXPORT_COUNT = 0
    _CACHE_LOAD_COUNT = 0


# -- hooks (called from the execution layer) ---------------------------------


def on_chunk(chunk_id: int, attempt: int) -> None:
    """Worker-side hook before executing a chunk: may delay or die."""
    policy = active_policy()
    if policy is None:
        return
    kill, delay = policy.chunk_actions(chunk_id, attempt)
    if delay > 0:
        time.sleep(delay)
    if kill:
        os.kill(os.getpid(), signal.SIGKILL)


def should_fail_attach() -> bool:
    """Shm-attach hook: inject an attach failure in this process?"""
    policy = active_policy()
    return policy is not None and policy.fails_attach(_WORKER_SLOT)


def should_fail_export() -> bool:
    """Shm-export hook: inject an export failure for this call?"""
    global _EXPORT_COUNT
    policy = active_policy()
    if policy is None:
        return False
    nth = _EXPORT_COUNT
    _EXPORT_COUNT += 1
    return policy.fails_export(nth)


def corrupt_cache_entry(path: str | os.PathLike[str]) -> None:
    """Cache-read hook: maybe scribble garbage over the entry first.

    Corruption is a torn-JSON prefix, which the cache loaders must
    treat as a miss (re-execute) — never a crash, never a stale row.
    """
    global _CACHE_LOAD_COUNT
    policy = active_policy()
    if policy is None:
        return
    nth = _CACHE_LOAD_COUNT
    _CACHE_LOAD_COUNT += 1
    if policy.corrupts_cache(nth):
        with open(os.fspath(path), "wb") as fh:
            fh.write(_CORRUPT_BYTES)
