"""Declarative lint-rule registry (mirrors :mod:`repro.schedulers.registry`).

Every rule registers itself with the :func:`rule` decorator under a
stable id (``RL001``..) and is a plain function from a
:class:`~repro.devtools.analyzer.FileContext` to an iterable of
``(line, col, message)`` findings; the framework attaches the rule id,
severity, and suppression handling around it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.types import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.analyzer import FileContext

__all__ = [
    "Finding",
    "LintRule",
    "RuleFn",
    "SEVERITIES",
    "all_rules",
    "get_rule",
    "load_all",
    "rule",
    "rule_ids",
]

# A finding is (line, col, message); the framework wraps it into a
# Violation carrying the rule id and severity.
Finding = tuple[int, int, str]
RuleFn = Callable[["FileContext"], Iterable[Finding]]

SEVERITIES = ("error", "warning")

_RULE_ID_RE = re.compile(r"^RL\d{3}$")


@dataclass(frozen=True)
class LintRule:
    """One registered rule: id, one-line summary, severity, callable."""

    rule_id: str
    name: str
    summary: str
    fn: RuleFn
    severity: str = "error"
    module: str = field(default="")


_REGISTRY: dict[str, LintRule] = {}


def rule(
    rule_id: str, name: str, summary: str, *, severity: str = "error"
) -> Callable[[RuleFn], RuleFn]:
    """Register a rule under ``rule_id`` (double registration raises)."""
    if not _RULE_ID_RE.match(rule_id):
        raise InvalidParameterError(f"rule id must look like RL001, got {rule_id!r}")
    if severity not in SEVERITIES:
        raise InvalidParameterError(
            f"unknown severity {severity!r}; known: {', '.join(SEVERITIES)}"
        )

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise InvalidParameterError(
                f"lint rule {rule_id!r} registered twice "
                f"({_REGISTRY[rule_id].module} and {fn.__module__})"
            )
        _REGISTRY[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            summary=summary,
            fn=fn,
            severity=severity,
            module=fn.__module__,
        )
        return fn

    return decorate


def load_all() -> None:
    """Import every rule module (idempotent); registration happens at
    import time, exactly as for the scheduler registry."""
    from repro.devtools import rules  # noqa: F401


def rule_ids() -> list[str]:
    """All registered rule ids, sorted."""
    load_all()
    return sorted(_REGISTRY)


def all_rules() -> list[LintRule]:
    load_all()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> LintRule:
    load_all()
    key = rule_id.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]
