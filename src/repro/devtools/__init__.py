"""Project-specific static analysis: machine-checked engine invariants.

The library's correctness story rests on conventions that ordinary
linters do not know about: verdicts must be byte-identical across
engines, sharded campaign merges must be byte-identical to unsharded
runs, schedulers must never touch module-global ``random`` state, and
frozen :class:`~repro.frame.ScheduleFrame` / ``Schedule`` objects must
never be mutated.  Each of those conventions has had a real bug behind
it (PR 2 fixed a scheduler reading module-global ``random``; PR 5 fixed
silent mutation of a frozen schedule's rounds).  ``repro lint`` turns
them into AST-checked rules so the next violation is a CI failure, not
a debugging session.

Layout (mirrors the scheduler registry architecture):

:mod:`repro.devtools.registry`
    ``@rule`` decorator, :class:`LintRule` specs, severity levels.
:mod:`repro.devtools.analyzer`
    the framework: per-file AST pass, ``# repro-lint: disable=RULE``
    suppression comments (line-scoped) with an unused-suppression
    check, deterministic violation ordering, text/JSON reporting.
:mod:`repro.devtools.rules`
    the project rules (RL001..RL011) — see each rule's docstring for
    the invariant and the bug story behind it.

CLI: ``repro lint [PATHS] [--rule ID] [--format text|json] [--list]``.
Exit 0 = clean, 1 = violations found, 2 = usage error (one line on
stderr, matching the CLI contract pinned by the subprocess tests).
"""

from repro.devtools.analyzer import LintReport, Violation, lint_paths
from repro.devtools.registry import (
    LintRule,
    all_rules,
    get_rule,
    rule,
    rule_ids,
)

__all__ = [
    "LintRule",
    "LintReport",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "rule",
    "rule_ids",
]
