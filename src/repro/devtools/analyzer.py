"""The lint framework: file discovery, AST pass, suppressions, reporting.

One :class:`FileContext` is built per file (source, AST, import tables,
comment-derived suppressions); every registered rule runs over it and
yields ``(line, col, message)`` findings, which the framework wraps into
:class:`Violation` records.

Suppressions are line-scoped comments::

    json.dump(payload, fh)  # repro-lint: disable=RL002 (v1 bytes pinned)

Several ids may be given (``disable=RL002,RL003``); anything after the
id list is free-form justification.  A suppression that silences
nothing is itself reported (rule id ``RL000``) so stale allowlists
cannot accumulate — exactly the unused-``noqa`` discipline, applied to
the project rules.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.registry import LintRule, all_rules, get_rule
from repro.types import InvalidParameterError

__all__ = [
    "UNUSED_SUPPRESSION_ID",
    "FileContext",
    "LintReport",
    "Violation",
    "format_text",
    "lint_file",
    "lint_paths",
]

UNUSED_SUPPRESSION_ID = "RL000"

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class _Suppression:
    line: int
    rule_ids: tuple[str, ...]
    used: set[str] = field(default_factory=set)


@dataclass
class FileContext:
    """Everything a rule needs to analyze one file."""

    path: Path
    source: str
    tree: ast.Module
    # alias -> module for ``import X [as Y]`` (``np`` -> ``numpy``)
    module_aliases: dict[str, str]
    # local name -> dotted origin for ``from X import Y [as Z]``
    from_imports: dict[str, str]

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    @property
    def is_test_file(self) -> bool:
        """Test code is exempt from rules scoped to library code."""
        parts = self.path.parts
        return (
            "tests" in parts
            or self.path.name.startswith("test_")
            or self.path.name == "conftest.py"
        )

    def in_module(self, *suffixes: str) -> bool:
        """True iff the file path ends with any of the given suffixes
        (posix, e.g. ``"repro/frame.py"``)."""
        return any(self.posix.endswith(s) for s in suffixes)

    def in_package(self, *fragments: str) -> bool:
        """True iff any path fragment (e.g. ``"repro/schedulers/"``)
        occurs in the file's posix path."""
        return any(f in self.posix for f in fragments)

    def resolve(self, node: ast.AST) -> str | None:
        """The dotted origin of a Name/Attribute chain, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        file holds ``import numpy as np``; a bare ``dumps`` resolves to
        ``json.dumps`` under ``from json import dumps``.  Chains rooted
        in anything other than an imported module (locals, attributes of
        ``self``) resolve to None — rules only ever match real module
        access, never same-named local variables.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = cur.id
        parts.reverse()
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        if root in self.from_imports:
            return ".".join([self.from_imports[root], *parts])
        return None

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


def _collect_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                from_imports[local] = f"{node.module}.{alias.name}"
    return module_aliases, from_imports


def _collect_suppressions(source: str) -> list[_Suppression]:
    suppressions: list[_Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if match is None:
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            suppressions.append(_Suppression(line=tok.start[0], rule_ids=ids))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return suppressions


def build_context(path: Path, source: str) -> FileContext:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise InvalidParameterError(
            f"cannot lint {path}: syntax error at line {exc.lineno}: {exc.msg}"
        ) from exc
    module_aliases, from_imports = _collect_imports(tree)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        module_aliases=module_aliases,
        from_imports=from_imports,
    )


def lint_file(path: Path, rules: Sequence[LintRule]) -> list[Violation]:
    """Run ``rules`` over one file; suppressed findings are dropped and
    suppressions that silence nothing are reported as RL000."""
    source = path.read_text(encoding="utf-8")
    ctx = build_context(path, source)
    suppressions = _collect_suppressions(source)
    by_line: dict[int, list[_Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.line, []).append(sup)

    violations: list[Violation] = []
    ran_ids = {r.rule_id for r in rules}
    for lint_rule in rules:
        for line, col, message in lint_rule.fn(ctx):
            suppressed = False
            for sup in by_line.get(line, ()):
                if lint_rule.rule_id in sup.rule_ids:
                    sup.used.add(lint_rule.rule_id)
                    suppressed = True
            if not suppressed:
                violations.append(
                    Violation(
                        path=str(path),
                        line=line,
                        col=col,
                        rule_id=lint_rule.rule_id,
                        severity=lint_rule.severity,
                        message=message,
                    )
                )
    for sup in suppressions:
        for rule_id in sup.rule_ids:
            if rule_id in ran_ids and rule_id not in sup.used:
                violations.append(
                    Violation(
                        path=str(path),
                        line=sup.line,
                        col=0,
                        rule_id=UNUSED_SUPPRESSION_ID,
                        severity="error",
                        message=(
                            f"unused suppression: {rule_id} is not "
                            "triggered on this line"
                        ),
                    )
                )
    return violations


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    n_files: int
    rule_ids: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not any(v.severity == "error" for v in self.violations)

    def as_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files": self.n_files,
            "rules": list(self.rule_ids),
            "violations": [v.as_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def _discover(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise InvalidParameterError(f"no such file or directory: {path}")
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise InvalidParameterError(f"not a Python file: {path}")
    # deterministic order, no duplicates
    seen: set[Path] = set()
    unique: list[Path] = []
    for p in files:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


def lint_paths(
    paths: Iterable[str | Path], *, rule_id: str | None = None
) -> LintReport:
    """Lint files/directories; directories are walked for ``*.py``.

    ``rule_id`` restricts the run to one rule (its suppressions still
    get the unused check; other rules' suppressions are left alone).
    """
    if rule_id is not None:
        try:
            rules = [get_rule(rule_id)]
        except KeyError as exc:
            raise InvalidParameterError(exc.args[0] if exc.args else str(exc)) from exc
    else:
        rules = all_rules()
    files = _discover(paths)
    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path, rules))
    violations.sort()
    return LintReport(
        violations=violations,
        n_files=len(files),
        rule_ids=tuple(r.rule_id for r in rules),
    )


def format_text(report: LintReport) -> str:
    """Human-readable report, one line per violation."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} [{v.severity}] {v.message}"
        for v in report.violations
    ]
    noun = "file" if report.n_files == 1 else "files"
    if report.violations:
        n = len(report.violations)
        lines.append(f"{n} violation{'s' if n != 1 else ''} in {report.n_files} {noun}")
    else:
        lines.append(f"clean: {report.n_files} {noun} checked")
    return "\n".join(lines)
