"""The project lint rules (RL001..RL011).

Each rule machine-checks one invariant the engine's correctness story
depends on.  Most are grounded in a real past bug (noted per rule); the
rest pin contracts that PR 4/PR 5 established by convention.  Rules are
deliberately import-resolved — ``np.random.rand`` only matches when the
file really imports NumPy as ``np`` — so a local variable that happens
to be called ``random`` never trips them.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.analyzer import FileContext
from repro.devtools.registry import Finding, rule

__all__: list[str] = []

# -- shared helpers ---------------------------------------------------------

_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)

# random-module helpers that read or write the hidden module-global state;
# the class constructors (Random/SystemRandom) are handled separately.
_RANDOM_CLASSES = frozenset({"Random", "SystemRandom"})
_NUMPY_RNG_SAFE = frozenset({"Generator", "SeedSequence", "BitGenerator"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _calls(ctx: FileContext) -> Iterator[ast.Call]:
    for node in ctx.walk():
        if isinstance(node, ast.Call):
            yield node


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_const_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _direct_children(fn: ast.AST, *types: type) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function/class
    scopes, yielding nodes of the requested types."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, types):
            yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _function_defs(ctx: FileContext) -> Iterator[ast.FunctionDef]:
    for node in ctx.walk():
        if isinstance(node, ast.FunctionDef):
            yield node


# -- RL001: module-global RNG ----------------------------------------------


@rule(
    "RL001",
    "no-global-rng",
    "no module-global RNG (random.*, np.random.*, unseeded Random()) "
    "outside tests",
)
def rl001_no_global_rng(ctx: FileContext) -> Iterable[Finding]:
    """Schedulers must thread explicit seeded generators.

    A PR-2 scheduler read module-global ``random`` and produced different
    schedules per process; every RNG must now be a seeded
    ``random.Random(seed)`` / ``np.random.default_rng(seed)`` instance.
    """
    if ctx.is_test_file:
        return
    for call in _calls(ctx):
        resolved = ctx.resolve(call.func)
        if resolved is None:
            continue
        if resolved.startswith("random."):
            attr = resolved.split(".", 1)[1]
            if attr in _RANDOM_CLASSES:
                if not call.args and not call.keywords:
                    yield (
                        call.lineno,
                        call.col_offset,
                        f"unseeded {resolved}() is nondeterministic; "
                        "pass an explicit seed",
                    )
            elif "." not in attr:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"{resolved}() uses module-global RNG state; use a "
                    "seeded random.Random instance",
                )
        elif resolved.startswith("numpy.random."):
            attr = resolved.split(".", 2)[2]
            if attr in _NUMPY_RNG_SAFE:
                continue
            if attr in ("default_rng", "RandomState"):
                if not call.args and not call.keywords:
                    yield (
                        call.lineno,
                        call.col_offset,
                        f"unseeded {resolved}() is nondeterministic; "
                        "pass an explicit seed",
                    )
            else:
                yield (
                    call.lineno,
                    call.col_offset,
                    f"{resolved}() uses NumPy's module-global RNG; use "
                    "np.random.default_rng(seed)",
                )


# -- RL002: deterministic JSON ---------------------------------------------


@rule(
    "RL002",
    "json-sort-keys",
    "json.dump/json.dumps must pass sort_keys=True (artifact byte "
    "determinism)",
)
def rl002_json_sort_keys(ctx: FileContext) -> Iterable[Finding]:
    """Serialized dicts must not depend on insertion order.

    Sharded campaign merges are byte-compared against unsharded runs
    (PR 4's CI gate); an unsorted ``json.dumps`` makes that comparison
    depend on code paths, not data.  Deliberately pinned v1 writers are
    suppressed in place with a justification.
    """
    if ctx.is_test_file:
        return
    for call in _calls(ctx):
        resolved = ctx.resolve(call.func)
        if resolved not in ("json.dump", "json.dumps"):
            continue
        if not _is_const_true(_keyword(call, "sort_keys")):
            yield (
                call.lineno,
                call.col_offset,
                f"{resolved}() without sort_keys=True writes "
                "insertion-ordered JSON; pass sort_keys=True",
            )


# -- RL003: frozen-object mutation -----------------------------------------


@rule(
    "RL003",
    "no-frozen-mutation",
    "no object.__setattr__ or .rounds mutation on frozen schedule "
    "objects outside frame.py/types.py",
)
def rl003_no_frozen_mutation(ctx: FileContext) -> Iterable[Finding]:
    """Frozen ``ScheduleFrame`` / ``Schedule`` objects are immutable.

    PR 5 fixed a silent mutation of a frozen schedule's rounds list;
    ``object.__setattr__`` on anything but ``self`` (the frozen-dataclass
    ``__post_init__`` idiom) and in-place mutation of ``.rounds`` are now
    reserved for the builder modules.
    """
    if ctx.is_test_file or ctx.in_module("repro/frame.py", "repro/types.py"):
        return
    for node in ctx.walk():
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                first = node.args[0] if node.args else None
                if not (isinstance(first, ast.Name) and first.id == "self"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "object.__setattr__ on a non-self target bypasses "
                        "frozen-object protection; build via "
                        "frame.ScheduleBuilder",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "rounds"
                # self.rounds.append(...) is the builder pattern (a class
                # growing its own rounds); the bug is mutating another
                # object's rounds.
                and not (
                    isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"
                )
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f".rounds.{func.attr}() mutates a schedule in place; "
                    "use Schedule.append_round or a builder",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign) else [node.target])
            for target in targets:
                inner = target
                if isinstance(inner, ast.Subscript):
                    inner = inner.value
                if (
                    isinstance(inner, ast.Attribute)
                    and inner.attr == "rounds"
                    and not (
                        isinstance(inner.value, ast.Name)
                        and inner.value.id == "self"
                    )
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "assignment to .rounds mutates a schedule in "
                        "place; build a new Schedule instead",
                    )


# -- RL004: registry bypass -------------------------------------------------


# protected module prefix -> path fragment that owns it
_PROTECTED_IMPORTS = (
    ("repro.schedulers.", "repro/schedulers/"),
    ("repro.analysis.exp_", "repro/analysis/"),
    ("repro.analysis.scenarios", "repro/analysis/"),
)
# the sanctioned machine-readable surface, importable from anywhere
_IMPORT_EXEMPT = ("repro.schedulers.registry",)


@rule(
    "RL004",
    "registry-entry-points",
    "strategy/experiment/scenario modules are reached via their "
    "registries or package facade, not direct submodule imports",
)
def rl004_registry_entry_points(ctx: FileContext) -> Iterable[Finding]:
    """Cross-package reach-ins bypass registration-time validation.

    The registries attach parameter validation and provenance digests;
    importing ``repro.schedulers.greedy`` directly from analysis code
    skips both.  Import the ``repro.schedulers`` facade or call
    ``run_scheduler`` instead.
    """
    if ctx.is_test_file:
        return
    for node in ctx.walk():
        modules: list[tuple[str, int, int]] = []
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules.append((node.module, node.lineno, node.col_offset))
        elif isinstance(node, ast.Import):
            modules.extend(
                (alias.name, node.lineno, node.col_offset)
                for alias in node.names
            )
        for module, line, col in modules:
            if module in _IMPORT_EXEMPT:
                continue
            for prefix, owner in _PROTECTED_IMPORTS:
                if module.startswith(prefix) and not ctx.in_package(owner):
                    yield (
                        line,
                        col,
                        f"direct import of {module} outside {owner} "
                        "bypasses the registry; import the package "
                        "facade or go through the registry",
                    )


# -- RL005: fan_out picklability --------------------------------------------


@rule(
    "RL005",
    "fan-out-picklable",
    "functions dispatched via runner.fan_out must be module-level "
    "(picklable)",
)
def rl005_fan_out_picklable(ctx: FileContext) -> Iterable[Finding]:
    """``fan_out`` ships work to spawned processes via pickle.

    Lambdas, nested functions, and bound methods fail to pickle — but
    only when ``--jobs > 1``, so the bug hides in serial test runs.
    """
    if ctx.is_test_file:
        return
    top_level_defs = {
        n.name
        for n in ctx.tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    all_defs = {
        n.name
        for n in ctx.walk()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    nested_defs = all_defs - top_level_defs
    for call in _calls(ctx):
        func = call.func
        is_fan_out = (
            isinstance(func, ast.Name) and func.id == "fan_out"
        ) or (isinstance(func, ast.Attribute) and func.attr == "fan_out")
        if not is_fan_out or not call.args:
            continue
        worker = call.args[0]
        if isinstance(worker, ast.Lambda):
            yield (
                worker.lineno,
                worker.col_offset,
                "lambda passed to fan_out is not picklable; use a "
                "module-level function",
            )
        elif isinstance(worker, ast.Name) and worker.id in nested_defs:
            yield (
                worker.lineno,
                worker.col_offset,
                f"nested function {worker.id!r} passed to fan_out is not "
                "picklable; move it to module level",
            )
        elif isinstance(worker, ast.Attribute) and ctx.resolve(worker) is None:
            yield (
                worker.lineno,
                worker.col_offset,
                "bound method passed to fan_out is not picklable; use a "
                "module-level function",
            )


# -- RL006: wall-clock reads ------------------------------------------------


@rule(
    "RL006",
    "no-wall-clock",
    "no time.time()/datetime.now() in result-producing code "
    "(time.perf_counter for durations is fine)",
)
def rl006_no_wall_clock(ctx: FileContext) -> Iterable[Finding]:
    """Absolute timestamps make artifacts differ across identical runs.

    Cache keys, rows, and manifests must be pure functions of their
    inputs; relative timing via ``time.perf_counter()`` is allowed
    because duration fields are normalized out of byte comparisons.
    """
    if ctx.is_test_file:
        return
    for call in _calls(ctx):
        resolved = ctx.resolve(call.func)
        if resolved in _WALL_CLOCK:
            yield (
                call.lineno,
                call.col_offset,
                f"{resolved}() reads the wall clock; artifacts must be "
                "pure functions of their inputs",
            )


# -- RL007: writeable arrays escaping public APIs ---------------------------


def _numpy_call(ctx: FileContext, node: ast.expr | None) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = ctx.resolve(node.func)
    return resolved is not None and resolved.startswith("numpy.")


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_array_attrs(ctx: FileContext) -> tuple[set[str], set[str]]:
    """(attrs assigned from NumPy constructors, attrs frozen in-file).

    One level of local tracking per function: ``x = np.zeros(...);
    self._buf = x`` marks ``_buf`` as an array attr, and an
    ``x.setflags(...)`` / ``self._buf.setflags(...)`` call (or assignment
    via ``_frozen_array``) marks it frozen.
    """
    array_attrs: set[str] = set()
    frozen_attrs: set[str] = set()
    for fn in _function_defs(ctx):
        numpy_locals: set[str] = set()
        frozen_locals: set[str] = set()
        for node in _direct_children(fn, ast.Assign, ast.Call):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "setflags":
                    target = func.value
                    if isinstance(target, ast.Name):
                        frozen_locals.add(target.id)
                    attr = _self_attr(target)
                    if attr is not None:
                        frozen_attrs.add(attr)
                continue
            pairs: list[tuple[ast.expr, ast.expr]] = []
            for target in node.targets:
                if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                    pairs.extend(zip(target.elts, node.value.elts))
                else:
                    pairs.append((target, node.value))
            for target, value in pairs:
                is_frozen_ctor = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "_frozen_array"
                )
                attr = _self_attr(target)
                if attr is not None:
                    if is_frozen_ctor:
                        frozen_attrs.add(attr)
                    elif _numpy_call(ctx, value):
                        array_attrs.add(attr)
                    elif isinstance(value, ast.Name) and value.id in numpy_locals:
                        array_attrs.add(attr)
                        if value.id in frozen_locals:
                            frozen_attrs.add(attr)
                elif isinstance(target, ast.Name) and _numpy_call(ctx, value):
                    numpy_locals.add(target.id)
    return array_attrs, frozen_attrs


@rule(
    "RL007",
    "no-writeable-array-escape",
    "NumPy arrays stored on objects in engine/frame/graph code must "
    "not escape public APIs writeable",
)
def rl007_no_writeable_array_escape(ctx: FileContext) -> Iterable[Finding]:
    """A caller mutating a returned internal array corrupts every later
    read of the cache; frozen views (``setflags(write=False)``, the
    frame's ``_frozen_array``) or copies are required."""
    if ctx.is_test_file or not ctx.in_package(
        "repro/engine/", "repro/graphs/", "repro/frame.py"
    ):
        return
    array_attrs, frozen_attrs = _collect_array_attrs(ctx)
    unsafe = array_attrs - frozen_attrs
    if not unsafe:
        return
    for fn in _function_defs(ctx):
        if fn.name.startswith("_"):
            continue
        for ret in _direct_children(fn, ast.Return):
            value = ret.value
            elements = value.elts if isinstance(value, ast.Tuple) else [value]
            for element in elements:
                if element is None:
                    continue
                attr = _self_attr(element)
                if attr in unsafe:
                    yield (
                        ret.lineno,
                        ret.col_offset,
                        f"public {fn.name}() returns writeable internal "
                        f"array self.{attr}; return a copy or call "
                        "setflags(write=False)",
                    )


# -- RL008: unordered set iteration -----------------------------------------


def _is_set_expr(node: ast.expr | None) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


# builtins whose result does not depend on argument iteration order, so a
# set iterated inside them is harmless: sorted({...}) is the sanctioned fix
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "min", "max", "sum", "any", "all", "len"}
)


def _order_insensitive_subtrees(ctx: FileContext) -> set[int]:
    """ids of nodes living inside sorted()/min()/... call arguments."""
    exempt: set[int] = set()
    for call in _calls(ctx):
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in _ORDER_INSENSITIVE_CALLS
        ):
            for arg in call.args:
                exempt.update(id(n) for n in ast.walk(arg))
    return exempt


@rule(
    "RL008",
    "no-unordered-set-iteration",
    "iterating a set into ordered output requires an explicit sorted()",
)
def rl008_no_unordered_set_iteration(ctx: FileContext) -> Iterable[Finding]:
    """Set iteration order is arbitrary (hash-seed dependent for str
    keys); anything feeding rows, schedules, or files must sort first.
    """
    if ctx.is_test_file:
        return
    exempt = _order_insensitive_subtrees(ctx)

    def check(iter_node: ast.expr, set_vars: set[str]) -> Iterator[Finding]:
        if id(iter_node) in exempt:
            return
        direct_set = _is_set_expr(iter_node) or (
            isinstance(iter_node, ast.Name) and iter_node.id in set_vars
        )
        if direct_set:
            yield (
                iter_node.lineno,
                iter_node.col_offset,
                "iteration over a set has arbitrary order; wrap in "
                "sorted()",
            )

    for fn in list(_function_defs(ctx)) + [ctx.tree]:
        set_vars = {
            t.id
            for node in _direct_children(fn, ast.Assign)
            for t in node.targets
            if isinstance(t, ast.Name) and _is_set_expr(node.value)
        }
        for node in _direct_children(
            fn, ast.For, ast.ListComp, ast.GeneratorExp, ast.DictComp
        ):
            iters = (
                [node.iter]
                if isinstance(node, ast.For)
                else [gen.iter for gen in node.generators]
            )
            for iter_node in iters:
                yield from check(iter_node, set_vars)
        for call in _direct_children(fn, ast.Call):
            if (
                id(call) not in exempt
                and isinstance(call.func, ast.Name)
                and call.func.id in ("list", "tuple")
                and len(call.args) == 1
                and _is_set_expr(call.args[0])
            ):
                yield (
                    call.lineno,
                    call.col_offset,
                    f"{call.func.id}() over a set has arbitrary order; "
                    "wrap the set in sorted()",
                )


# -- RL009: shared-memory segments only via the managed registry ------------


@rule(
    "RL009",
    "shm-managed-registry",
    "SharedMemory segments are created only inside engine/shm.py's "
    "managed registry (unlink-leak hazard)",
)
def rl009_shm_managed_registry(ctx: FileContext) -> Iterable[Finding]:
    """A ``SharedMemory(create=True, ...)`` outside the registry leaks.

    POSIX shared-memory segments outlive the creating process unless
    explicitly unlinked; ``repro.engine.shm.PlaneRegistry`` is the one
    owner whose context manager guarantees that on every exit path
    (including errors).  Ad-hoc creation elsewhere has no such
    guarantee — a crash between create and unlink strands the segment
    in ``/dev/shm`` until reboot.  Attach-side use goes through
    ``PlaneHandle.attach()``, which never creates.
    """
    if ctx.is_test_file or ctx.in_module("repro/engine/shm.py"):
        return
    targets = (
        "multiprocessing.shared_memory.SharedMemory",
        "multiprocessing.shared_memory.ShareableList",
    )
    for call in _calls(ctx):
        resolved = ctx.resolve(call.func)
        if resolved in targets:
            short = resolved.rsplit(".", maxsplit=1)[1]
            yield (
                call.lineno,
                call.col_offset,
                f"{short} created outside repro.engine.shm's managed "
                "PlaneRegistry; export planes through a registry so the "
                "segment is guaranteed to unlink",
            )


# -- RL010: fault handling through the sanctioned boundaries -----------------

# The modules allowed to sleep and to catch broadly: the retry policy
# (every backoff is policy-driven and deterministic), the error
# taxonomy (capture/captured_call are the accounted catch-alls), and
# the chaos harness (injected delays are the point).
_RL010_BOUNDARIES = (
    "repro/util/retry.py",
    "repro/errors.py",
    "repro/devtools/chaos.py",
)


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """Does this handler swallow every exception type?"""
    if handler.type is None:
        return True  # bare `except:`
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(e, ast.Name) and e.id in ("Exception", "BaseException")
        for e in exprs
    )


@rule(
    "RL010",
    "fault-handling-boundaries",
    "no ad-hoc time.sleep or broad `except Exception` outside the "
    "retry/errors/chaos boundary modules",
)
def rl010_fault_handling_boundaries(ctx: FileContext) -> Iterable[Finding]:
    """Fault handling funnels through the PR-8 execution layer.

    Before the layer existed, transient faults were handled ad hoc:
    hand-rolled ``time.sleep`` retry loops (nondeterministic, unbounded)
    and bare ``except Exception`` blocks that silently swallowed worker
    crashes alongside real bugs (the pre-PR-8
    ``analysis/campaigns.py`` failure path).  Now every backoff is a
    :class:`repro.util.retry.RetryPolicy` decision and every broad
    catch goes through :func:`repro.errors.capture` /
    :func:`repro.errors.captured_call`, so swallowed exceptions are
    accounted for.  Genuinely unavoidable boundary catches elsewhere
    (e.g. optional-dependency probes) carry an inline suppression with
    a justification.
    """
    if ctx.is_test_file or ctx.in_module(*_RL010_BOUNDARIES):
        return
    for call in _calls(ctx):
        if ctx.resolve(call.func) == "time.sleep":
            yield (
                call.lineno,
                call.col_offset,
                "ad-hoc time.sleep; use repro.util.retry (RetryPolicy "
                "backoff / pause) so waits are policy-driven and "
                "deterministic",
            )
    for node in ctx.walk():
        if isinstance(node, ast.ExceptHandler) and _catches_broadly(node):
            yield (
                node.lineno,
                node.col_offset,
                "broad exception catch; route through repro.errors.capture/"
                "captured_call (or catch the specific exceptions) so "
                "swallowed failures are accounted for",
            )


# -- RL011: corpus binary access only inside repro/corpus/ -------------------

# The one package allowed to speak the repro-corpus/1 binary dialect.
# engine/shm.py keeps its np.memmap planes (a different file format
# with its own RL009-governed lifecycle).
_RL011_OWNER = "repro/corpus/"
_RL011_SHM = "repro/engine/shm.py"


@rule(
    "RL011",
    "corpus-format-containment",
    "raw struct/mmap/np.memmap corpus-file access only inside "
    "repro/corpus/ (mirrors RL009's shm containment)",
)
def rl011_corpus_format_containment(ctx: FileContext) -> Iterable[Finding]:
    """The packed corpus layout has exactly one reader and one writer.

    ``repro-corpus/1`` is a versioned binary format with golden-pinned
    bytes; a second ad-hoc ``struct.unpack``/``mmap.mmap`` path over a
    corpus file would fork the layout knowledge and silently rot when
    the version bumps.  All byte-level access therefore lives in
    :mod:`repro.corpus` (``format.py`` owns the structs, ``reader.py``
    the mapping) — everyone else goes through
    :class:`~repro.corpus.reader.CorpusReader` and
    :class:`~repro.corpus.writer.CorpusWriter`.
    ``repro/engine/shm.py`` keeps its ``np.memmap``-backed planes: that
    is the shm transport layer (RL009), not corpus access.
    """
    if ctx.is_test_file or ctx.in_package(_RL011_OWNER):
        return
    for call in _calls(ctx):
        resolved = ctx.resolve(call.func)
        if resolved is None:
            continue
        if resolved == "numpy.memmap" and ctx.in_module(_RL011_SHM):
            continue
        if (
            resolved.startswith(("struct.", "mmap."))
            or resolved == "numpy.memmap"
        ):
            yield (
                call.lineno,
                call.col_offset,
                f"{resolved} outside repro/corpus/; binary corpus access "
                "goes through CorpusReader/CorpusWriter so the format "
                "knowledge stays in one versioned place",
            )
