"""Experiment implementations E01–E16 (DESIGN.md per-experiment index).

Every function regenerates one artifact of the paper — a figure, a worked
example, or a theorem's quantitative content — and returns a list of row
dicts.  The benchmark modules time these functions and print the tables;
tests assert the substantive claims (the "paper vs measured" comparisons
recorded in EXPERIMENTS.md).

All functions are deterministic.
"""

from __future__ import annotations

import math

from repro.core.bounds import (
    degree_lower_bound,
    lower_bound_theorem2,
    lower_bound_theorem3,
    moore_degree_lower_bound,
    theorem1_minimum_k,
    upper_bound_corollary1,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base, construct_rec
from repro.core.params import (
    default_thresholds,
    degree_formula_for_thresholds,
    improved_params_k3,
    optimized_params,
    theorem5_m_star,
    theorem7_params,
)
from repro.core.tree_mlbg import theorem1_k, theorem1_tree, verify_theorem1_instance
from repro.domination.domatic import condition_a_max_labels
from repro.domination.labeling import (
    best_available_labeling,
    hamming_labeling,
    lemma2_labeling,
    lemma2_lower_bound,
    paper_example_labeling_q2,
    paper_example_labeling_q3,
)
from repro.graphs.hypercube import hypercube
from repro.graphs.properties import graph_stats
from repro.model.congestion import congestion_profile, min_feasible_bandwidth
from repro.model.simulator import LineNetworkSimulator
from repro.model.validator import validate_broadcast
from repro.schedulers.store_forward import binomial_hypercube_broadcast
from repro.util.bits import to_bitstring

__all__ = [
    "experiment_e01_theorem1",
    "experiment_e02_lower_bounds",
    "experiment_e04_labelings",
    "experiment_e05_lambda_m",
    "experiment_e06_g42",
    "experiment_e07_g153",
    "experiment_e08_fig4",
    "experiment_e09_broadcast2",
    "experiment_e10_theorem5",
    "experiment_e11_rec742",
    "experiment_e12_broadcastk",
    "experiment_e13_theorem7",
    "experiment_e14_topology_compare",
    "experiment_e15_congestion",
    "experiment_e16_baseline_k1",
    "experiment_e17_gossip",
    "experiment_e18_diameter",
    "experiment_e19_faults",
    "experiment_e20_vertex_disjoint",
    "experiment_e21_wormhole",
    "experiment_e22_multimessage",
    "paper_g42",
]


def _sample_sources(n_vertices: int, cap: int) -> list[int]:
    """Deterministic spread of source vertices (always includes 0 and N-1)."""
    if n_vertices <= cap:
        return list(range(n_vertices))
    step = max(1, n_vertices // cap)
    srcs = sorted({0, n_vertices - 1, *range(0, n_vertices, step)})
    return srcs[:cap] + [n_vertices - 1] if n_vertices - 1 not in srcs[:cap] else srcs[:cap]


# ---------------------------------------------------------------------------
# E01  Fig. 1 + Theorem 1
# ---------------------------------------------------------------------------

def experiment_e01_theorem1(*, max_h: int = 6, schedule_h: int = 5, sources_cap: int = 12) -> list[dict]:
    """Theorem 1: B_h structure for h ≤ max_h; minimum-time schedules
    machine-checked for h ≤ schedule_h (sampled sources above a cap)."""
    rows = []
    for h in range(1, max_h + 1):
        tree = theorem1_tree(h)
        n = tree.n_vertices
        row = {
            "h": h,
            "N=3·2^h−2": n,
            "Δ (≤3)": tree.max_degree(),
            "diam (≤2h)": tree.diameter(),
            "k=2h": theorem1_k(h),
            "thm1 min k for N": theorem1_minimum_k(n),
        }
        if h <= schedule_h:
            srcs = _sample_sources(n, sources_cap)
            rep = verify_theorem1_instance(h, sources=srcs)
            row["rounds=⌈log₂N⌉"] = rep["rounds"]
            row["sources checked"] = rep["sources_checked"]
            row["min-time verified"] = True
        else:
            row["rounds=⌈log₂N⌉"] = math.ceil(math.log2(n))
            row["sources checked"] = 0
            row["min-time verified"] = False
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E02/E03  Theorems 2 and 3 (lower bounds)
# ---------------------------------------------------------------------------

def experiment_e02_lower_bounds(*, n_values: tuple[int, ...] = (4, 9, 16, 25, 36, 49, 64)) -> list[dict]:
    """Degree lower bounds: paper closed forms vs the exact ball bound."""
    rows = []
    for n in n_values:
        row: dict = {"n (N=2^n)": n, "k=1 (Δ≥n)": n}
        for k in (2, 3, 4):
            row[f"k={k} thm2"] = lower_bound_theorem2(n, k)
            row[f"k={k} ball"] = moore_degree_lower_bound(n, k)
        for k in (5, 6):
            if n > k:
                row[f"k={k} thm3"] = lower_bound_theorem3(n, k)
            else:
                row[f"k={k} thm3"] = "-"
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E04  Example 1 labelings
# ---------------------------------------------------------------------------

def experiment_e04_labelings() -> list[dict]:
    """Example 1: the paper's labelings of Q₂ and Q₃ satisfy Condition A
    and are optimal (λ₂ = 2, λ₃ = 4, by exhaustive search)."""
    q2 = paper_example_labeling_q2()
    q3 = paper_example_labeling_q3()
    ham3 = hamming_labeling(3)
    # paper's Q3 labeling equals the Hamming syndrome labeling up to label renaming
    renaming_consistent = len(
        {(q3.label_of(u), ham3.label_of(u)) for u in range(8)}
    ) == 4
    rows = [
        {
            "labeling": "Example 1 Q₂ (parity)",
            "labels": q2.num_labels,
            "Condition A": q2.verify(),
            "optimal λ_m": condition_a_max_labels(2),
        },
        {
            "labeling": "Example 1 Q₃ (complement pairs)",
            "labels": q3.num_labels,
            "Condition A": q3.verify(),
            "optimal λ_m": condition_a_max_labels(3),
        },
        {
            "labeling": "Hamming syndrome Q₃",
            "labels": ham3.num_labels,
            "Condition A": ham3.verify(),
            "optimal λ_m": 4 if renaming_consistent else -1,
        },
    ]
    return rows


# ---------------------------------------------------------------------------
# E05  Lemma 2 (λ_m bounds)
# ---------------------------------------------------------------------------

def experiment_e05_lambda_m(*, max_m: int = 9, exact_max_m: int = 4) -> list[dict]:
    """λ_m: Lemma 2's bounds vs the library's constructed label counts,
    with exact values (domatic search) for small m."""
    rows = []
    for m in range(1, max_m + 1):
        lab = best_available_labeling(m)
        assert lab.verify()
        row = {
            "m": m,
            "Lemma2 lower ⌊m/2⌋+1": lemma2_lower_bound(m),
            "constructed labels": lab.num_labels,
            "upper m+1": m + 1,
            "labeling": lab.name,
            "exact λ_m": condition_a_max_labels(m) if m <= exact_max_m else "-",
        }
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E06  Example 2 / Figs. 2–3 (G_{4,2})
# ---------------------------------------------------------------------------

def paper_g42():
    """The exact G_{4,2} instance of Example 2 / Fig. 3 (paper labeling of
    Q₂, partition S₁={3}, S₂={4})."""
    return construct_base(
        4, 2, labeling=paper_example_labeling_q2(), partition=[(3,), (4,)]
    )


def experiment_e06_g42() -> list[dict]:
    """G_{4,2}: structure versus the values stated/drawable from Figs 2–3."""
    sh = paper_g42()
    g = sh.graph
    rule1_edges = sum(
        1 for (u, v) in g.edges() if (u ^ v) in (1, 2)
    )
    rule2_edges = g.n_edges - rule1_edges
    # Fig. 3 spot checks (paper coordinates, u_4u_3u_2u_1)
    fig3_pairs = [
        ("0011", "0111", True),   # dim 3 on label c1 (suffix 11)
        ("0000", "0100", True),   # dim 3 on label c1 (suffix 00)
        ("0001", "1001", True),   # dim 4 on label c2 (suffix 01)
        ("0000", "1000", False),  # dim 4 absent at label c1
        ("0011", "1011", False),  # dim 4 absent at label c1
    ]
    checks = all(
        g.has_edge(int(a, 2), int(b, 2)) == expected for a, b, expected in fig3_pairs
    )
    return [
        {
            "quantity": "N",
            "measured": g.n_vertices,
            "paper": 16,
            "match": g.n_vertices == 16,
        },
        {
            "quantity": "Rule-1 edges (Fig. 2)",
            "measured": rule1_edges,
            "paper": 16,
            "match": rule1_edges == 16,
        },
        {
            "quantity": "Rule-2 edges",
            "measured": rule2_edges,
            "paper": 8,
            "match": rule2_edges == 8,
        },
        {
            "quantity": "Δ(G_{4,2})",
            "measured": g.max_degree(),
            "paper": 3,
            "match": g.max_degree() == 3,
        },
        {
            "quantity": "Fig. 3 edge spot-checks",
            "measured": checks,
            "paper": True,
            "match": checks,
        },
    ]


# ---------------------------------------------------------------------------
# E07  Example 3 (G_{15,3})
# ---------------------------------------------------------------------------

def experiment_e07_g153(*, build_graph: bool = True) -> list[dict]:
    """G_{15,3}: Δ = 6 = 3 + 3, less than half of Δ(Q₁₅) = 15."""
    sh = construct_base(15, 3)
    rows = [
        {
            "quantity": "Δ(G_{15,3}) by formula",
            "measured": sh.degree_formula(),
            "paper": 6,
            "match": sh.degree_formula() == 6,
        },
        {
            "quantity": "Δ(Q_15)",
            "measured": 15,
            "paper": 15,
            "match": True,
        },
        {
            "quantity": "Δ(G)/Δ(Q) < 1/2",
            "measured": sh.degree_formula() / 15,
            "paper": "< 0.5",
            "match": sh.degree_formula() / 15 < 0.5,
        },
        {
            "quantity": "labels (λ₃)",
            "measured": sh.levels[0].num_labels,
            "paper": 4,
            "match": sh.levels[0].num_labels == 4,
        },
        {
            "quantity": "partition sizes",
            "measured": str([len(p) for p in sh.levels[0].partition]),
            "paper": "[3, 3, 3, 3]",
            "match": [len(p) for p in sh.levels[0].partition] == [3, 3, 3, 3],
        },
    ]
    if build_graph:
        g = sh.graph
        rows.append(
            {
                "quantity": "Δ(G_{15,3}) by graph",
                "measured": g.max_degree(),
                "paper": 6,
                "match": g.max_degree() == 6,
            }
        )
        rows.append(
            {
                "quantity": "|E| (vs n·2^{n-1} of Q_15)",
                "measured": g.n_edges,
                "paper": f"< {15 * (1 << 14)}",
                "match": g.n_edges < 15 * (1 << 14),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E08  Example 4 / Fig. 4
# ---------------------------------------------------------------------------

def experiment_e08_fig4() -> list[dict]:
    """Broadcast_2 in G_{4,2} from 0000: the paper's first two rounds,
    reproduced call for call."""
    sh = paper_g42()
    sched = broadcast_schedule(sh, 0)
    rep = validate_broadcast(sh.graph, sched, 2)

    def call_strs(idx: int) -> list[str]:
        return [
            "->".join(to_bitstring(v, 4) for v in c.path)
            for c in sched.rounds[idx]
        ]

    round1 = call_strs(0)
    round2 = call_strs(1)
    expected1 = ["0000->0010->1010"]
    expected2 = ["0000->0100", "1010->1011->1111"]
    return [
        {
            "artifact": "round 1 calls",
            "measured": "; ".join(round1),
            "paper": "0000 calls 1010 through 0010",
            "match": round1 == expected1,
        },
        {
            "artifact": "round 2 calls",
            "measured": "; ".join(round2),
            "paper": "0000→0100 ; 1010→1111 via 1011",
            "match": round2 == expected2,
        },
        {
            "artifact": "total rounds",
            "measured": len(sched.rounds),
            "paper": 4,
            "match": len(sched.rounds) == 4,
        },
        {
            "artifact": "valid 2-line schedule",
            "measured": rep.ok,
            "paper": True,
            "match": rep.ok,
        },
    ]


# ---------------------------------------------------------------------------
# E09  Theorem 4 (Broadcast_2 sweep)
# ---------------------------------------------------------------------------

def experiment_e09_broadcast2(
    *, n_values: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 10, 12), sources_cap: int = 16
) -> list[dict]:
    """Broadcast_2 validity sweep: all (n, m) with m < n ≤ 8 exhaustive in
    sources for small n, sampled above."""
    rows = []
    for n in n_values:
        for m in range(1, n):
            sh = construct_base(n, m)
            g = sh.graph
            srcs = _sample_sources(g.n_vertices, sources_cap)
            ok = True
            max_len = 0
            for s in srcs:
                sched = broadcast_schedule(sh, s)
                rep = validate_broadcast(g, sched, 2)
                ok = ok and rep.ok and len(sched.rounds) == n
                max_len = max(max_len, rep.max_call_length)
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "N": g.n_vertices,
                    "Δ": sh.degree_formula(),
                    "sources": len(srcs),
                    "rounds": n,
                    "max call len": max_len,
                    "valid (≤2)": ok,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E10  Theorem 5
# ---------------------------------------------------------------------------

def experiment_e10_theorem5(*, n_values: tuple[int, ...] = tuple(range(2, 65, 4))) -> list[dict]:
    """Δ of Construct_BASE(n, m*) vs Theorem 5's bound and the Theorem 2
    lower bound; plus the n = m(m+2) remark rows (Δ = 2m < 2√n)."""
    rows = []
    for n in n_values:
        m = theorem5_m_star(n)
        delta = degree_formula_for_thresholds(n, (m,))
        bound = upper_bound_theorem5(n)
        rows.append(
            {
                "n": n,
                "m*": m,
                "Δ measured": delta,
                "thm5 bound": bound,
                "Δ ≤ bound": delta <= bound,
                "lower ⌈√n⌉": lower_bound_theorem2(n, 2),
                "Δ(Q_n)": n,
                "case": "m*",
            }
        )
    # the remark: λ_m = m+1 (m = 2^p − 1) and n = m(m+2) give Δ = 2m < 2√n
    for m in (3, 7):
        n = m * (m + 2)
        delta = degree_formula_for_thresholds(n, (m,))
        rows.append(
            {
                "n": n,
                "m*": m,
                "Δ measured": delta,
                "thm5 bound": upper_bound_theorem5(n),
                "Δ ≤ bound": delta <= upper_bound_theorem5(n),
                "lower ⌈√n⌉": lower_bound_theorem2(n, 2),
                "Δ(Q_n)": n,
                "case": f"remark n=m(m+2), 2m={2*m} < 2√n={2*math.sqrt(n):.2f}",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E11  Examples 5–6 / Fig. 5 (LABEL and Construct_REC(7,4,2))
# ---------------------------------------------------------------------------

def experiment_e11_rec742() -> list[dict]:
    """Construct_REC(7,4,2) with the paper's labeling and partition:
    Example 5's labeling pattern and Example 6's incident edges of 0⁷."""
    sh = construct_rec(
        7,
        4,
        2,
        labelings=[paper_example_labeling_q2(), paper_example_labeling_q2()],
        partitions=[[(3,), (4,)], [(7, 6), (5,)]],
    )
    level3 = sh.levels[1]
    # Example 5: g(x00y) = g(x11y) = c1 and g(x01y) = g(x10y) = c2
    pattern_ok = True
    for x in range(8):
        for y in range(4):
            v00 = (x << 4) | (0b00 << 2) | y
            v11 = (x << 4) | (0b11 << 2) | y
            v01 = (x << 4) | (0b01 << 2) | y
            v10 = (x << 4) | (0b10 << 2) | y
            pattern_ok &= level3.label_of(v00) == level3.label_of(v11) == 0
            pattern_ok &= level3.label_of(v01) == level3.label_of(v10) == 1
    # Example 6: 0000000 connects to 0000100, 0000010, 0000001 (Rule 1)
    # and to 1000000, 0100000 (Rule 2, S1={7,6}, label c1)
    g = sh.graph
    expected_nbrs = {0b0000100, 0b0000010, 0b0000001, 0b1000000, 0b0100000}
    zero_nbrs = set(g.neighbors(0))
    return [
        {
            "artifact": "Example 5 labeling pattern",
            "measured": pattern_ok,
            "paper": True,
            "match": pattern_ok,
        },
        {
            "artifact": "S partition (Fig. 5 shape)",
            "measured": str([list(p) for p in level3.partition]),
            "paper": "[[7, 6], [5]]",
            "match": [list(p) for p in level3.partition] == [[7, 6], [5]],
        },
        {
            "artifact": "neighbours of 0000000",
            "measured": str(sorted(to_bitstring(v, 7) for v in zero_nbrs)),
            "paper": str(sorted(to_bitstring(v, 7) for v in expected_nbrs)),
            "match": zero_nbrs == expected_nbrs,
        },
        {
            "artifact": "Δ(G) (Lemma-1 analogue)",
            "measured": g.max_degree(),
            "paper": sh.degree_formula(),
            "match": g.max_degree() == sh.degree_formula(),
        },
    ]


# ---------------------------------------------------------------------------
# E12  Theorem 6 (Broadcast_k sweep)
# ---------------------------------------------------------------------------

def experiment_e12_broadcastk(
    *,
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (3, 7, (2, 4)),
        (3, 9, (2, 5)),
        (3, 11, (3, 6)),
        (4, 9, (2, 4, 6)),
        (4, 12, (2, 5, 8)),
        (5, 12, (2, 4, 7, 9)),
    ),
    sources_cap: int = 12,
) -> list[dict]:
    """Broadcast_k validity across k = 3, 4, 5 constructions."""
    rows = []
    for k, n, thresholds in cases:
        sh = construct(k, n, thresholds)
        g = sh.graph
        srcs = _sample_sources(g.n_vertices, sources_cap)
        ok = True
        max_len = 0
        for s in srcs:
            sched = broadcast_schedule(sh, s)
            rep = validate_broadcast(g, sched, k)
            ok = ok and rep.ok and len(sched.rounds) == n
            max_len = max(max_len, rep.max_call_length)
        rows.append(
            {
                "k": k,
                "n": n,
                "thresholds": str(thresholds),
                "N": g.n_vertices,
                "Δ": sh.degree_formula(),
                "sources": len(srcs),
                "max call len": max_len,
                "valid (≤k)": ok,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E13  Theorem 7 + Corollaries
# ---------------------------------------------------------------------------

def experiment_e13_theorem7(
    *, ks: tuple[int, ...] = (3, 4, 5), n_values: tuple[int, ...] = (8, 16, 24, 32, 48, 64)
) -> list[dict]:
    """Δ with Theorem 7's analytic parameters vs the bound, the improved
    k = 3 parameters, and the exhaustively optimized thresholds."""
    rows = []
    for k in ks:
        for n in n_values:
            if n <= k:
                continue
            analytic = theorem7_params(k, n)
            d_analytic = degree_formula_for_thresholds(n, analytic)
            bound = upper_bound_theorem7(n, k)
            opt = optimized_params(k, n, exhaustive_limit=60_000)
            d_opt = degree_formula_for_thresholds(n, opt)
            row = {
                "k": k,
                "n": n,
                "analytic n_i*": str(analytic),
                "Δ analytic": d_analytic,
                "thm7 bound": bound,
                "Δ ≤ bound": d_analytic <= bound,
                "Δ optimized": d_opt,
                "lower bound": degree_lower_bound(n, k),
            }
            if k == 3 and n >= 8:
                imp = improved_params_k3(n)
                row["Δ improved-k3"] = degree_formula_for_thresholds(n, imp)
            rows.append(row)
    # Corollary 1 row: k = ⌈log2 n⌉
    for n in (16, 32, 64):
        k = math.ceil(math.log2(n))
        if n > k >= 3:
            params = theorem7_params(k, n)
            rows.append(
                {
                    "k": k,
                    "n": n,
                    "analytic n_i*": str(params),
                    "Δ analytic": degree_formula_for_thresholds(n, params),
                    "thm7 bound": upper_bound_corollary1(n),
                    "Δ ≤ bound": degree_formula_for_thresholds(n, params)
                    <= upper_bound_corollary1(n),
                    "Δ optimized": "-",
                    "lower bound": degree_lower_bound(n, k),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E14  Topology comparison (Section 1/3 context)
# ---------------------------------------------------------------------------

def experiment_e14_topology_compare(*, n: int = 9) -> list[dict]:
    """Degree/diameter/edges across classic topologies at comparable order."""
    from repro.graphs.knodel import knodel_graph
    from repro.graphs.trees import balanced_ternary_core_tree, star
    from repro.graphs.variants import (
        crossed_cube,
        cube_connected_cycles,
        de_bruijn,
        folded_hypercube,
        mobius_cube,
    )

    entries: list[tuple[str, object]] = [
        (f"Q_{n} (1-mlbg)", hypercube(n)),
        (f"sparse k=2 (m*={theorem5_m_star(n)})", construct_base(n, theorem5_m_star(n)).graph),
        ("sparse k=3", construct(3, n, theorem7_params(3, n)).graph),
        (f"folded Q_{n}", folded_hypercube(n)),
        (f"crossed CQ_{n}", crossed_cube(n)),
        (f"Möbius MQ_{n}", mobius_cube(n)),
        (f"Knödel W_{{{n},2^{n}}} (min 1-mlbg)", knodel_graph(n, 1 << n)),
        ("CCC(6)", cube_connected_cycles(6)),
        ("de Bruijn(2,9)", de_bruijn(2, 9)),
        ("star K_{1,N-1}", star(1 << n)),
        ("Theorem-1 tree h=8", balanced_ternary_core_tree(8)),
    ]
    rows = []
    for name, g in entries:
        st = graph_stats(g, with_diameter=g.n_vertices <= (1 << 10))
        rows.append(
            {
                "topology": name,
                "N": st.n_vertices,
                "|E|": st.n_edges,
                "Δ": st.max_degree,
                "diam": st.diameter if st.diameter is not None else "-",
                "lower bound Δ (k=2)": lower_bound_theorem2(
                    max(1, math.ceil(math.log2(st.n_vertices))), 2
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E15  Congestion / bandwidth ablation (Section 5)
# ---------------------------------------------------------------------------

def experiment_e15_congestion(
    *, cases: tuple[tuple[int, int], ...] = ((8, 3), (10, 3), (12, 4))
) -> list[dict]:
    """Edge-load profile of Broadcast_2/k schedules and the bandwidth
    needed when two broadcasts are forced to share rounds."""
    rows = []
    for n, m in cases:
        sh = construct_base(n, m)
        g = sh.graph
        sched = broadcast_schedule(sh, 0)
        prof = congestion_profile(g, sched)
        # merge two broadcasts from different sources into shared rounds:
        # round i = calls of both schedules (conflicts intended)
        other = broadcast_schedule(sh, g.n_vertices - 1)
        from repro.types import Round, Schedule

        merged = Schedule(source=0)
        for r1, r2 in zip(sched.rounds, other.rounds):
            merged.rounds.append(Round(tuple(r1.calls + r2.calls)))
        needed = min_feasible_bandwidth(g, merged)
        # static conflict count: (round, edge) slots that exceed bandwidth 1
        # when the two broadcasts share rounds — the dilation Section 5 asks
        # about, measured without the confound of receiver collisions
        from collections import Counter

        conflicting_slots = 0
        for rnd in merged.rounds:
            load: Counter = Counter()
            for call in rnd:
                for e in call.edges():
                    load[e] += 1
            conflicting_slots += sum(1 for v in load.values() if v > 1)
        # a single valid broadcast never conflicts (the simulator confirms)
        sim = LineNetworkSimulator(g, k=sh.k, bandwidth=1, strict=False)
        solo_rejections = len(sim.run(sched).rejected)
        rows.append(
            {
                "graph": f"G_{{{n},{m}}}",
                "edges used": prof.used_edges,
                "|E|": prof.graph_edges,
                "utilization": round(prof.edge_utilization, 3),
                "peak edge load (valid sched)": prof.peak_concurrency,
                "max total load/edge": prof.max_total_load,
                "solo rejections @b=1": solo_rejections,
                "merged 2-src min bandwidth": needed,
                "merged conflicting edge-slots @b=1": conflicting_slots,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E16  k = 1 baseline
# ---------------------------------------------------------------------------

def experiment_e16_baseline_k1(*, n_values: tuple[int, ...] = (4, 6, 8, 10)) -> list[dict]:
    """Store-and-forward baseline: Q_n broadcasts in n rounds at k = 1;
    the sparse hypercube needs k = 2 (its schedule contains length-2
    calls, and at k = 1 the validator rejects it)."""
    rows = []
    for n in n_values:
        g = hypercube(n)
        sched = binomial_hypercube_broadcast(n, 0)
        rep1 = validate_broadcast(g, sched, 1)
        m = theorem5_m_star(n)
        sh = construct_base(n, m)
        sparse_sched = broadcast_schedule(sh, 0)
        rep_sparse_k1 = validate_broadcast(sh.graph, sparse_sched, 1)
        rep_sparse_k2 = validate_broadcast(sh.graph, sparse_sched, 2)
        rows.append(
            {
                "n": n,
                "Q_n binomial valid @k=1": rep1.ok,
                "Δ(Q_n)": n,
                "sparse Δ": sh.degree_formula(),
                "sparse sched valid @k=1": rep_sparse_k1.ok,
                "sparse sched valid @k=2": rep_sparse_k2.ok,
                "degree saving": f"{n}→{sh.degree_formula()}",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E17  §5 future work: gossip under the k-line model
# ---------------------------------------------------------------------------

def experiment_e17_gossip(*, cases: tuple[tuple[int, int], ...] = ((4, 2), (6, 2), (8, 3), (10, 3))) -> list[dict]:
    """Gossip round counts: Q_n dimension sweep (optimal) vs the sparse
    hypercube's relayed sweep — quantifying why §5 flags gossip as a
    separate problem."""
    from repro.gossip import (
        hypercube_gossip,
        minimum_gossip_rounds,
        sparse_hypercube_gossip,
        validate_gossip,
    )

    rows = []
    for n, m in cases:
        q = hypercube(n)
        q_sched = hypercube_gossip(n)
        q_rep = validate_gossip(q, q_sched, 1)

        sh = construct_base(n, m)
        s_sched = sparse_hypercube_gossip(sh)
        s_rep = validate_gossip(sh.graph, s_sched, 3)
        lam = sh.levels[0].num_labels
        rows.append(
            {
                "n": n,
                "m": m,
                "min rounds ⌈log₂N⌉": minimum_gossip_rounds(1 << n),
                "Q_n rounds (k=1)": q_sched.num_rounds,
                "Q_n valid+complete": q_rep.ok and q_rep.complete,
                "sparse rounds (k=3)": s_sched.num_rounds,
                "sparse valid+complete": s_rep.ok and s_rep.complete,
                "sparse slowdown": round(s_sched.num_rounds / n, 2),
                "λ (relay groups+1)": lam,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E18  footnote 1: diameters of the constructions vs k·log₂N
# ---------------------------------------------------------------------------

def experiment_e18_diameter(*, cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
    (2, 8, (3,)),
    (2, 10, (3,)),
    (3, 8, (2, 5)),
    (3, 10, (2, 5)),
    (4, 10, (2, 4, 7)),
)) -> list[dict]:
    """Footnote 1: any k-mlbg has diameter ≤ k·log₂N.  Measured diameters
    of the constructions sit far below the bound (and modestly above
    Q_n's n), locating the open problem the footnote raises."""
    rows = []
    for k, n, thr in cases:
        sh = construct(k, n, thr)
        g = sh.graph
        diam = g.diameter()
        rows.append(
            {
                "k": k,
                "n": n,
                "thresholds": str(thr),
                "Δ": g.max_degree(),
                "diam(G)": diam,
                "diam(Q_n)=n": n,
                "footnote bound k·n": k * n,
                "within bound": diam <= k * n,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E19  robustness ablation: random edge failures + repair
# ---------------------------------------------------------------------------

def experiment_e19_faults(
    *,
    n: int = 8,
    m: int = 3,
    failure_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    trials: int = 40,
) -> list[dict]:
    """Repair rate of Broadcast_2 under random edge failures (E19).

    For each failure count f: sample f edges, delete them, re-route with
    the failure-aware scheme, and validate against the surviving graph.
    Expected shape: monotone decay in f; repairs fail fast once core-cube
    edges start dying (they cannot be rerouted within call length 2).
    """
    from repro.model.faults import (
        attempt_broadcast_with_failures,
        failed_edge_sample,
        remove_edges,
    )

    sh = construct_base(n, m)
    g = sh.graph
    rows = []
    for f in failure_counts:
        repaired = 0
        valid = 0
        for trial in range(trials):
            failed = failed_edge_sample(g, f, seed=1000 * f + trial)
            sched = attempt_broadcast_with_failures(sh, 0, failed)
            if sched is None:
                continue
            repaired += 1
            survivor = remove_edges(g, failed)
            if validate_broadcast(survivor, sched, sh.k).ok:
                valid += 1
        rows.append(
            {
                "graph": f"G_{{{n},{m}}}",
                "|E|": g.n_edges,
                "failures f": f,
                "trials": trials,
                "repaired": repaired,
                "repair rate": round(repaired / trials, 3),
                "repaired & valid": valid,
                "soundness (valid/repaired)": "1.0" if repaired == valid else f"{valid}/{repaired}",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E20  §5 extension: the vertex-disjoint call model
# ---------------------------------------------------------------------------

def experiment_e20_vertex_disjoint(
    *,
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (2, 6, (2,)),
        (2, 8, (3,)),
        (3, 8, (2, 5)),
        (4, 9, (2, 4, 6)),
    ),
    sources_cap: int = 8,
) -> list[dict]:
    """§5 proposes extending the model to vertex-disjoint calls.  Result:
    the sparse-hypercube schemes *already* satisfy it (Phase-1 calls live
    in disjoint subcubes), so every construction is a k-mlbg under the
    stricter model too; the Theorem-1 tree scheme is not (its pump relays
    share intermediate vertices)."""
    from repro.core.tree_scheme import ternary_tree_schedule
    from repro.graphs.trees import balanced_ternary_core_tree

    rows = []
    for k, n, thr in cases:
        sh = construct(k, n, thr)
        g = sh.graph
        ok = True
        for s in _sample_sources(g.n_vertices, sources_cap):
            sched = broadcast_schedule(sh, s)
            rep = validate_broadcast(g, sched, k, vertex_disjoint=True)
            ok = ok and rep.ok
        rows.append(
            {
                "instance": f"Construct({k}, n={n})",
                "model": "vertex-disjoint k-line",
                "minimum time": ok,
                "note": "subcube-disjoint Phase 1 ⇒ vertex-disjoint",
            }
        )
    # contrast: the B_3 tree scheme shares relay vertices
    h = 3
    tree = balanced_ternary_core_tree(h)
    sched = ternary_tree_schedule(h, 0)
    strict = validate_broadcast(tree, sched, 2 * h, vertex_disjoint=True)
    loose = validate_broadcast(tree, sched, 2 * h)
    rows.append(
        {
            "instance": f"Theorem-1 tree h={h}",
            "model": "vertex-disjoint k-line",
            "minimum time": strict.ok,
            "note": f"edge-disjoint model: {loose.ok}; pump relays share vertices",
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E21  wormhole cycle cost: degree savings vs latency overhead
# ---------------------------------------------------------------------------

def experiment_e21_wormhole(
    *,
    n: int = 10,
    flit_sizes: tuple[int, ...] = (1, 4, 16, 64),
) -> list[dict]:
    """Cycle-accurate wormhole cost of broadcast: Q_n (k=1) vs sparse
    hypercubes (k=2, 3) across message sizes.

    The k-line model abstracts wormhole routing [7]; here we map the
    schedules back onto a flit-level simulator.  Expected shape: the
    sparse graphs pay (k−1) extra cycles per round — an overhead fraction
    that *vanishes* as messages grow, while the degree saving is constant.
    """
    from repro.schedulers.store_forward import binomial_hypercube_broadcast
    from repro.wormhole import schedule_latency

    q = hypercube(n)
    q_sched = binomial_hypercube_broadcast(n, 0)
    sh2 = construct_base(n, theorem5_m_star(n))
    sh2_sched = broadcast_schedule(sh2, 0)
    sh3 = construct(3, n, theorem7_params(3, n))
    sh3_sched = broadcast_schedule(sh3, 0)

    rows = []
    for flits in flit_sizes:
        lat_q = schedule_latency(q, q_sched, flits)
        lat_2 = schedule_latency(sh2.graph, sh2_sched, flits)
        lat_3 = schedule_latency(sh3.graph, sh3_sched, flits)
        rows.append(
            {
                "message flits": flits,
                "Q_n cycles (Δ=10)": lat_q.total_cycles,
                f"sparse k=2 cycles (Δ={sh2.degree_formula()})": lat_2.total_cycles,
                f"sparse k=3 cycles (Δ={sh3.degree_formula()})": lat_3.total_cycles,
                "k=2 overhead": f"{100 * (lat_2.total_cycles / lat_q.total_cycles - 1):.0f}%",
                "k=3 overhead": f"{100 * (lat_3.total_cycles / lat_q.total_cycles - 1):.0f}%",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E22  multi-message broadcast (the [24] extension)
# ---------------------------------------------------------------------------

def experiment_e22_multimessage() -> list[dict]:
    """Multiple messages from one source: pipelining the paper's scheme is
    impossible (saturated callers), but genuine multi-message schedules
    beat serial — exact results on small instances."""
    from repro.multimsg import minimal_valid_stagger
    from repro.schedulers.multimsg_search import (
        find_multimessage_schedule,
        multimessage_lower_bound,
        validate_multimessage,
    )

    rows = []
    # (a) scheme pipelining: d* always equals n (fully serial)
    for n, m in ((4, 2), (6, 3)):
        sh = construct_base(n, m)
        rows.append(
            {
                "instance": f"G_{{{n},{m}}} scheme pipeline (M=2)",
                "rounds": f"d*={minimal_valid_stagger(sh, 0)} → serial {2 * n}",
                "lower bound": multimessage_lower_bound(1 << n, 2),
                "note": "every vertex calls every round — no slack",
            }
        )
    # (b) exact multi-message schedules on small instances
    g3 = hypercube(3)
    assert find_multimessage_schedule(g3, 0, 1, 2, 4) is None
    found = find_multimessage_schedule(g3, 0, 1, 2, 5)
    assert found is not None and validate_multimessage(g3, found, 1) == []
    rows.append(
        {
            "instance": "Q_3, M=2, k=1 (exact search)",
            "rounds": "5 (4 refuted)",
            "lower bound": multimessage_lower_bound(8, 2),
            "note": "tight: bound = search; serial = 6",
        }
    )
    sh31 = construct_base(3, 1)
    found_sparse = find_multimessage_schedule(sh31.graph, 0, 2, 2, 5)
    ok = found_sparse is not None and validate_multimessage(sh31.graph, found_sparse, 2) == []
    rows.append(
        {
            "instance": "G_{3,1}, M=2, k=2 (exact search)",
            "rounds": "5" if ok else "not found",
            "lower bound": multimessage_lower_bound(8, 2),
            "note": "sparse graph matches Q_3's multi-message time",
        }
    )
    return rows
