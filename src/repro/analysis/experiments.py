"""Backward-compatible facade over the themed experiment modules.

The 1000-line monolith this module used to be is split by theme:

* :mod:`repro.analysis.exp_foundations` — trees, bounds, labelings
  (E01, E02, E04, E05);
* :mod:`repro.analysis.exp_constructions` — worked examples and
  structural comparisons (E06–E08, E11, E14, E18);
* :mod:`repro.analysis.exp_theorems` — the machine-checked theorem
  sweeps (E09, E10, E12, E13, E16);
* :mod:`repro.analysis.exp_extensions` — the Section-5 directions
  (E15, E17, E19–E22).

Each function registers itself with :mod:`repro.analysis.registry`; the
CLI and the parallel runner discover experiments there.  This module
keeps every historical import path (``from repro.analysis.experiments
import experiment_e09_broadcast2``) working.
"""

from __future__ import annotations

from repro.analysis.common import sample_sources
from repro.analysis.exp_constructions import (
    experiment_e06_g42,
    experiment_e07_g153,
    experiment_e08_fig4,
    experiment_e11_rec742,
    experiment_e14_topology_compare,
    experiment_e18_diameter,
    paper_g42,
)
from repro.analysis.exp_extensions import (
    experiment_e15_congestion,
    experiment_e17_gossip,
    experiment_e19_faults,
    experiment_e20_vertex_disjoint,
    experiment_e21_wormhole,
    experiment_e22_multimessage,
)
from repro.analysis.exp_foundations import (
    experiment_e01_theorem1,
    experiment_e02_lower_bounds,
    experiment_e04_labelings,
    experiment_e05_lambda_m,
)
from repro.analysis.exp_schedulers import (
    experiment_e23_scheduler_registry,
)
from repro.analysis.exp_theorems import (
    experiment_e09_broadcast2,
    experiment_e10_theorem5,
    experiment_e12_broadcastk,
    experiment_e13_theorem7,
    experiment_e16_baseline_k1,
)

# Historical private name, kept because external callers and the issue
# tracker reference it; new code should import ``sample_sources`` from
# ``repro.analysis.common``.
_sample_sources = sample_sources

__all__ = [
    "experiment_e01_theorem1",
    "experiment_e02_lower_bounds",
    "experiment_e04_labelings",
    "experiment_e05_lambda_m",
    "experiment_e06_g42",
    "experiment_e07_g153",
    "experiment_e08_fig4",
    "experiment_e09_broadcast2",
    "experiment_e10_theorem5",
    "experiment_e11_rec742",
    "experiment_e12_broadcastk",
    "experiment_e13_theorem7",
    "experiment_e14_topology_compare",
    "experiment_e15_congestion",
    "experiment_e16_baseline_k1",
    "experiment_e17_gossip",
    "experiment_e18_diameter",
    "experiment_e19_faults",
    "experiment_e20_vertex_disjoint",
    "experiment_e21_wormhole",
    "experiment_e22_multimessage",
    "experiment_e23_scheduler_registry",
    "paper_g42",
    "sample_sources",
]
