"""Declarative experiment registry.

Every experiment function registers itself with the :func:`experiment`
decorator, declaring its id (``e01`` … ``e22``) and a one-line title.
The registry is the single source of truth consumed by the CLI
(``repro run`` / ``repro list``), the parallel runner
(:mod:`repro.analysis.runner`), and the benchmarks — the old hand-kept
``EXPERIMENTS`` dict in ``cli.py`` is gone.

Experiments keep their keyword-only parameters; the registry introspects
the defaults so a run can be cached under a hash of the *effective*
parameters (defaults merged with overrides).
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.types import InvalidParameterError

__all__ = [
    "ExperimentSpec",
    "experiment",
    "get_experiment",
    "experiment_ids",
    "all_experiments",
    "default_params",
    "effective_params",
    "jsonable",
    "source_digest",
    "code_digest",
    "params_digest",
    "run_experiment",
    "load_all",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, title, callable, and module."""

    name: str
    title: str
    fn: Callable[..., list[dict]]
    module: str = field(default="")

    def __call__(self, **params) -> list[dict]:
        return self.fn(**params)


_REGISTRY: dict[str, ExperimentSpec] = {}


def experiment(name: str, title: str) -> Callable:
    """Register ``fn`` under experiment id ``name``.

    Ids are lowercase (``e01``).  Double registration of the same id is a
    programming error and raises immediately.
    """

    def decorate(fn: Callable[..., list[dict]]) -> Callable[..., list[dict]]:
        key = name.lower()
        if key in _REGISTRY:
            raise InvalidParameterError(
                f"experiment id {key!r} registered twice "
                f"({_REGISTRY[key].fn.__module__} and {fn.__module__})"
            )
        _REGISTRY[key] = ExperimentSpec(
            name=key, title=title, fn=fn, module=fn.__module__
        )
        return fn

    return decorate


def load_all() -> None:
    """Import every themed experiment module (idempotent).

    Registration happens at import time; anything that wants the full
    registry (CLI, runner, tests) calls this first.
    """
    from repro.analysis import (  # noqa: F401
        exp_constructions,
        exp_extensions,
        exp_foundations,
        exp_schedulers,
        exp_theorems,
    )


def experiment_ids() -> list[str]:
    """All registered ids in sorted (= numeric) order."""
    load_all()
    return sorted(_REGISTRY)


def all_experiments() -> list[ExperimentSpec]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_experiment(name: str) -> ExperimentSpec:
    load_all()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def default_params(spec: ExperimentSpec) -> dict:
    """The experiment's keyword defaults, introspected from its signature."""
    out = {}
    for pname, p in inspect.signature(spec.fn).parameters.items():
        if p.default is not inspect.Parameter.empty:
            out[pname] = p.default
    return out


def effective_params(spec: ExperimentSpec, overrides: dict | None = None) -> dict:
    """Defaults merged with ``overrides`` (unknown keys rejected)."""
    params = default_params(spec)
    for key, value in (overrides or {}).items():
        if key not in params:
            raise InvalidParameterError(
                f"experiment {spec.name!r} has no parameter {key!r} "
                f"(known: {', '.join(params) or 'none'})"
            )
        params[key] = value
    return params


def jsonable(value):
    """Canonical JSON-encodable form of a parameter value.

    Tuples become lists; sets are sorted by their JSON encoding so the
    digest is independent of iteration (hash-seed) order.
    """
    if isinstance(value, (tuple, list)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (jsonable(v) for v in value),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return value


def source_digest(obj, fallback: str) -> str:
    """Short hash of ``obj``'s source text (function or module).

    The one digest idiom shared by every code-version cache key — the
    experiment runner (:func:`code_digest`) and the campaign scenario
    cache (``campaigns.scenarios_code_digest``) — so invalidation
    semantics cannot silently diverge.  ``fallback`` is hashed instead
    when the source is unavailable (REPL, frozen builds) — weaker, but
    never wrong for on-disk modules.
    """
    try:
        source = inspect.getsource(obj)
    except (OSError, TypeError):
        source = fallback
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def code_digest(spec: ExperimentSpec) -> str:
    """Short hash of the experiment function's source text.

    Folded into the cache key so editing an experiment's *body* (not just
    its parameters) invalidates stale cache entries instead of silently
    serving rows computed by the old code.
    """
    return source_digest(spec.fn, f"{spec.fn.__module__}.{spec.fn.__qualname__}")


def params_digest(name: str, params: dict, *, code: str = "") -> str:
    """Stable short hash of (experiment id, effective params, code
    version) — the runner's cache key.  ``code`` is the
    :func:`code_digest` of the experiment (empty = ignore code version,
    the pre-PR-4 behaviour)."""
    blob = json.dumps(
        {"experiment": name, "params": jsonable(params), "code": code},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def run_experiment(name: str, overrides: dict | None = None) -> list[dict]:
    """Run one experiment by id with optional parameter overrides."""
    spec = get_experiment(name)
    params = effective_params(spec, overrides)
    return spec.fn(**params)
