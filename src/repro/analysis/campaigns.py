"""Declarative scenario campaigns: sharded sweeps that merge byte-identically.

A *campaign* is a cartesian grid over five axes — graph specs, scheduler
names, call-length bounds ``k``, source-sampling policies, and injected
conditions (:mod:`repro.analysis.scenarios`) — expanded into an indexed
scenario list with per-scenario seeds derived deterministically from the
campaign name and scenario identity.  Execution follows the experiment
runner's architecture (:mod:`repro.analysis.runner`): scenarios fan out
over the same ``multiprocessing`` pool policy (:func:`fan_out`) and each
scenario is a resumable JSON cache entry whose key folds in the scenario
definition **and** a code digest of the scenarios module, so editing
scenario semantics invalidates stale entries.

Sharding is deterministic: shard ``i`` of ``m`` owns the scenarios with
``index % m == i``, so independent invocations (CI matrix jobs, separate
machines) produce disjoint JSONL chunks.  :func:`merge_chunks` recombines
chunks into one artifact that is **byte-identical** to an unsharded run —
possible because scenario rows contain only values derived from the
scenario definition (never wall-clock or host state; timing lives in each
shard's provenance manifest).

Four built-in campaigns ship in :data:`BUILTIN_CAMPAIGNS`; custom grids
load from JSON files (:func:`load_campaign`).  The CLI surface is
``repro campaign run|merge|list`` (:mod:`repro.cli`).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from itertools import product
from pathlib import Path

from repro.analysis.scenarios import (
    SCHEME_SCHEDULER,
    Scenario,
    run_scenario,
    scenario_id,
    validate_scenario,
    warm_scenario_caches,
)
from repro.devtools import chaos
from repro.errors import ScenarioError, capture
from repro.types import InvalidParameterError, ReproError
from repro.util.pool import TaskFault, WorkerPool
from repro.util.retry import RetryPolicy

__all__ = [
    "CampaignExecutionError",
    "CampaignSpec",
    "ScenarioOutcome",
    "CampaignRunner",
    "BUILTIN_CAMPAIGNS",
    "builtin_campaign_names",
    "load_campaign",
    "expand_campaign",
    "parse_shard",
    "shard_scenarios",
    "campaign_digest",
    "scenarios_code_digest",
    "chunk_path",
    "manifest_path",
    "artifact_path",
    "write_chunk",
    "read_chunk_rows",
    "merge_chunks",
    "run_campaign_shard",
]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_-]*$")
_CHUNK_RE_TEMPLATE = r"^{name}-shard(\d+)of(\d+)\.jsonl$"

MANIFEST_FORMAT = "repro-campaign-manifest/1"


class CampaignExecutionError(ReproError):
    """One or more scenarios failed during campaign execution.

    Raised *after* every completed scenario of the batch has been
    cached and checkpointed, so fixing the cause and re-running resumes
    instead of restarting.  ``failures`` carries the scenarios whose own
    code raised (:class:`~repro.errors.ScenarioError` — deterministic,
    never retried); ``quarantined`` carries the poison-task reports
    (:class:`~repro.util.pool.TaskFault`) for scenarios that exhausted
    the retry budget on infrastructure faults.
    """

    def __init__(
        self,
        message: str,
        *,
        failures: tuple[ScenarioError, ...] = (),
        quarantined: tuple[TaskFault, ...] = (),
    ) -> None:
        super().__init__(message)
        self.failures = failures
        self.quarantined = quarantined


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: name, title, and the five grid axes."""

    name: str
    title: str
    graphs: tuple[str, ...]
    schedulers: tuple[str, ...]
    k_values: tuple[int | None, ...] = (None,)
    sources: tuple[str, ...] = ("sample:16",)
    conditions: tuple[str, ...] = ("none",)
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise InvalidParameterError(
                f"campaign name must match {_NAME_RE.pattern}: {self.name!r}"
            )
        for axis, values in (
            ("graphs", self.graphs),
            ("schedulers", self.schedulers),
            ("k_values", self.k_values),
            ("sources", self.sources),
            ("conditions", self.conditions),
        ):
            if not values:
                raise InvalidParameterError(
                    f"campaign {self.name!r}: axis {axis!r} must be non-empty"
                )

    @property
    def n_scenarios(self) -> int:
        return (
            len(self.graphs)
            * len(self.schedulers)
            * len(self.k_values)
            * len(self.sources)
            * len(self.conditions)
        )

    def axes(self) -> dict:
        """The grid axes as a JSON-encodable mapping (manifest payload)."""
        return {
            "graphs": list(self.graphs),
            "schedulers": list(self.schedulers),
            "k_values": list(self.k_values),
            "sources": list(self.sources),
            "conditions": list(self.conditions),
            "base_seed": self.base_seed,
        }


# -- built-in campaigns ------------------------------------------------------

BUILTIN_CAMPAIGNS: dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        CampaignSpec(
            name="paper-grid",
            title="Paper-regression grid: Theorem-1 trees, hypercubes, "
            "Knödel and sparse graphs x greedy/search x k",
            graphs=("theorem1:2", "hypercube:3", "knodel:3:8", "sparse:4:2"),
            schedulers=("greedy", "search"),
            # k = 1 rows double as the "not a 1-mlbg" check (found = 0 on
            # trees and sparse hypercubes); k >= 4 would blow the exact
            # searcher's node budget on the cyclic sparse graph.
            k_values=(1, 2),
            sources=("sample:3",),
            conditions=("none",),
        ),
        CampaignSpec(
            name="fault-robustness",
            title="Scheduler robustness under edge faults on sparse "
            "hypercubes (scheme repair vs greedy re-scheduling)",
            graphs=("sparse:5:2", "sparse:6:3"),
            schedulers=("scheme", "greedy"),
            k_values=(None,),
            sources=("sample:4",),
            conditions=("none", "edge-faults:1", "edge-faults:3"),
        ),
        CampaignSpec(
            name="congestion-sweep",
            title="Edge-congestion sweep: load profiles and bandwidth-B "
            "simulation across graph families",
            graphs=("hypercube:3", "theorem1:2", "knodel:3:8"),
            schedulers=("greedy",),
            k_values=(None,),
            sources=("sample:3",),
            conditions=("congestion:1", "congestion:2"),
        ),
        CampaignSpec(
            name="allsources-validation",
            title="All-sources validation grid: Broadcast_2 through the "
            "batch engine on every source of each sparse hypercube",
            graphs=("sparse:4:2", "sparse:5:2", "sparse:6:3"),
            schedulers=("scheme",),
            k_values=(None,),
            sources=("all",),
            conditions=("none",),
        ),
    )
}


def builtin_campaign_names() -> list[str]:
    return sorted(BUILTIN_CAMPAIGNS)


def load_campaign(ref: str) -> CampaignSpec:
    """Resolve ``ref`` to a campaign: a built-in name or a JSON spec file.

    The JSON format mirrors :class:`CampaignSpec`::

        {"name": "my-sweep", "title": "...",
         "graphs": ["hypercube:3"], "schedulers": ["greedy"],
         "k_values": [2, null], "sources": ["sample:4"],
         "conditions": ["none", "edge-faults:2"], "base_seed": 0}

    Axis values are validated upfront (graph specs, scheduler names,
    condition/sources grammars) so a bad grid fails before anything runs.
    """
    if ref in BUILTIN_CAMPAIGNS:
        return BUILTIN_CAMPAIGNS[ref]
    path = Path(ref)
    if path.suffix == ".json":
        if not path.exists():
            raise InvalidParameterError(f"campaign spec file not found: {ref}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"campaign spec {ref} is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise InvalidParameterError(f"campaign spec {ref} must be a JSON object")
        return _spec_from_payload(payload, origin=ref)
    raise InvalidParameterError(
        f"unknown campaign {ref!r}; built-ins: "
        + ", ".join(builtin_campaign_names())
        + " (or a path to a .json spec file)"
    )


def _spec_from_payload(payload: dict, *, origin: str) -> CampaignSpec:
    known = {
        "name",
        "title",
        "graphs",
        "schedulers",
        "k_values",
        "sources",
        "conditions",
        "base_seed",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise InvalidParameterError(f"campaign spec {origin}: unknown keys {unknown}")
    for req in ("name", "graphs", "schedulers"):
        if req not in payload:
            raise InvalidParameterError(
                f"campaign spec {origin}: missing required key {req!r}"
            )
    for key in ("name", "title"):
        if key in payload and not isinstance(payload[key], str):
            raise InvalidParameterError(
                f"campaign spec {origin}: {key!r} must be a string"
            )

    def str_tuple(key: str, default: tuple | None = None) -> tuple:
        if key not in payload:
            return default
        values = payload[key]
        ok = isinstance(values, list) and all(isinstance(v, str) for v in values)
        if not ok:
            raise InvalidParameterError(
                f"campaign spec {origin}: {key!r} must be a list of strings"
            )
        return tuple(values)

    k_values = payload.get("k_values", [None])
    if not isinstance(k_values, list) or not all(
        v is None or isinstance(v, int) for v in k_values
    ):
        raise InvalidParameterError(
            f"campaign spec {origin}: 'k_values' must be a list of "
            "integers or nulls"
        )
    base_seed = payload.get("base_seed", 0)
    if not isinstance(base_seed, int):
        raise InvalidParameterError(
            f"campaign spec {origin}: 'base_seed' must be an integer"
        )
    spec = CampaignSpec(
        name=payload["name"],
        title=payload.get("title", payload["name"]),
        graphs=str_tuple("graphs"),
        schedulers=str_tuple("schedulers"),
        k_values=tuple(k_values),
        sources=str_tuple("sources", ("sample:16",)),
        conditions=str_tuple("conditions", ("none",)),
        base_seed=base_seed,
    )
    expand_campaign(spec)  # validates every grid point upfront
    return spec


# -- expansion, seeds, digests ----------------------------------------------


def _scenario_seed(name: str, base_seed: int, sid: str) -> int:
    """Deterministic per-scenario seed: stable across shard layouts,
    machines, and processes (independent of PYTHONHASHSEED)."""
    blob = f"{name}:{base_seed}:{sid}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def expand_campaign(spec: CampaignSpec) -> list[Scenario]:
    """The full scenario list, in fixed grid order (graphs outermost,
    conditions innermost); every scenario is validated."""
    scenarios = []
    grid = product(
        spec.graphs, spec.schedulers, spec.k_values, spec.sources, spec.conditions
    )
    for index, (graph, sched, k, sources, condition) in enumerate(grid):
        sid = scenario_id(graph, sched, k, sources, condition)
        sc = Scenario(
            campaign=spec.name,
            index=index,
            graph=graph,
            scheduler=sched,
            k=k,
            sources=sources,
            condition=condition,
            seed=_scenario_seed(spec.name, spec.base_seed, sid),
        )
        validate_scenario(sc)
        scenarios.append(sc)
    return scenarios


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@functools.cache
def scenarios_code_digest() -> str:
    """Digest of the scenario executor's source — part of every scenario
    cache key, so editing :mod:`repro.analysis.scenarios` invalidates
    cached rows instead of silently serving results of the old code.
    The scope is deliberately the scenarios module alone (mirroring
    ``registry.code_digest``, which hashes the experiment function): a
    digest over every transitive callee would churn on unrelated edits.
    After editing deeper layers (schedulers, engine, model), clear the
    cache (``repro clean-cache``) before trusting warm campaign runs.

    Cached: the module source cannot change within a process, and the
    digest is consulted once per scenario on the run startup path.
    """
    from repro.analysis import scenarios as scenarios_module
    from repro.analysis.registry import source_digest

    return source_digest(scenarios_module, scenarios_module.__name__)


def campaign_digest(spec: CampaignSpec) -> str:
    """Identity of (axes, code version): names the campaign's cache
    entries and is recorded in every shard manifest so merge can refuse
    chunks produced by a different grid or code version."""
    blob = _canonical(
        {"name": spec.name, "axes": spec.axes(), "code": scenarios_code_digest()}
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _scenario_digest(spec: CampaignSpec, sc: Scenario) -> str:
    blob = _canonical(
        {
            "campaign": spec.name,
            "scenario": sc.scenario_id,
            "seed": sc.seed,
            "code": scenarios_code_digest(),
        }
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- sharding ----------------------------------------------------------------


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/m"`` into ``(i, m)``; i in [0, m), m >= 1."""
    match = re.match(r"^(\d+)/(\d+)$", text.strip())
    if not match:
        raise InvalidParameterError(
            f"shard must look like I/M (e.g. 0/2), got {text!r}"
        )
    i, m = int(match.group(1)), int(match.group(2))
    if m < 1:
        raise InvalidParameterError(f"shard count must be >= 1, got {text!r}")
    if not 0 <= i < m:
        raise InvalidParameterError(
            f"shard index {i} out of range [0, {m}) in {text!r}"
        )
    return i, m


def shard_scenarios(
    scenarios: list[Scenario], shard: tuple[int, int]
) -> list[Scenario]:
    """The scenarios shard ``(i, m)`` owns: ``index % m == i``.

    Round-robin keeps shard workloads balanced when expensive scenarios
    cluster (grid order groups by graph, the dominant cost factor).
    """
    i, m = shard
    if not 0 <= i < m:
        raise InvalidParameterError(f"shard index {i} out of range [0, {m})")
    return [sc for sc in scenarios if sc.index % m == i]


# -- artifact paths and IO ---------------------------------------------------


def chunk_path(out_dir: str | Path, spec: CampaignSpec, shard: tuple[int, int]) -> Path:
    i, m = shard
    return Path(out_dir) / f"{spec.name}-shard{i}of{m}.jsonl"


def manifest_path(
    out_dir: str | Path, spec: CampaignSpec, shard: tuple[int, int]
) -> Path:
    i, m = shard
    return Path(out_dir) / f"{spec.name}-shard{i}of{m}.manifest.json"


def artifact_path(out_dir: str | Path, spec: CampaignSpec) -> Path:
    return Path(out_dir) / f"{spec.name}.jsonl"


def _dump_rows(rows: list[dict]) -> str:
    return "".join(_canonical(row) + "\n" for row in rows)


def write_chunk(path: Path, rows: list[dict]) -> None:
    """Write rows as canonical JSONL (sorted keys, compact separators) —
    the byte format the merge determinism gate compares."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_dump_rows(rows))


def read_chunk_rows(path: Path) -> list[dict]:
    rows = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"corrupt chunk {path} at line {lineno}: {exc}"
            ) from None
    return rows


def merge_chunks(spec: CampaignSpec, out_dir: str | Path) -> tuple[Path, list[dict]]:
    """Recombine the campaign's shard chunks in ``out_dir`` into the
    merged artifact ``<name>.jsonl``.

    Requires one consistent shard layout, full scenario coverage, no
    duplicate indices, and fresh chunks: every row's scenario identity
    and seed must match the current grid expansion, and any sibling
    shard manifest must carry the current :func:`campaign_digest` —
    chunks written by an older grid or an older scenarios-module version
    are refused rather than silently interleaved.  The merged file is
    byte-identical to what an unsharded run writes, because rows are
    deterministic and the merge orders strictly by scenario index.
    """
    out_dir = Path(out_dir)
    pattern = re.compile(_CHUNK_RE_TEMPLATE.format(name=re.escape(spec.name)))
    chunks = sorted(
        p for p in out_dir.glob(f"{spec.name}-shard*of*.jsonl")
        if pattern.match(p.name)
    )
    if not chunks:
        raise InvalidParameterError(
            f"no chunks for campaign {spec.name!r} in {out_dir} "
            f"(expected {spec.name}-shardIofM.jsonl files)"
        )
    layouts = {int(pattern.match(p.name).group(2)) for p in chunks}
    if len(layouts) != 1:
        raise InvalidParameterError(
            f"mixed shard layouts in {out_dir}: found chunks for "
            f"m in {sorted(layouts)}; merge one layout at a time"
        )
    rows_by_index: dict[int, dict] = {}
    for path in chunks:
        for row in read_chunk_rows(path):
            idx = row.get("index")
            if not isinstance(idx, int):
                raise InvalidParameterError(
                    f"chunk {path} has a row without an integer 'index'"
                )
            if idx in rows_by_index:
                raise InvalidParameterError(
                    f"duplicate scenario index {idx} across chunks in {out_dir}"
                )
            rows_by_index[idx] = row
    expected = spec.n_scenarios
    missing = sorted(set(range(expected)) - set(rows_by_index))
    if missing:
        raise InvalidParameterError(
            f"incomplete campaign {spec.name!r}: missing scenario indices "
            f"{missing[:8]}{'...' if len(missing) > 8 else ''} "
            f"({len(missing)} of {expected}); run the remaining shards first"
        )
    extra = sorted(set(rows_by_index) - set(range(expected)))
    if extra:
        raise InvalidParameterError(
            f"chunks in {out_dir} contain unknown scenario indices {extra[:8]} "
            f"(campaign {spec.name!r} has {expected} scenarios — stale chunks "
            "from an older grid?)"
        )
    scenarios = expand_campaign(spec)
    for sc in scenarios:
        row = rows_by_index[sc.index]
        if row.get("scenario") != sc.scenario_id or row.get("seed") != sc.seed:
            raise InvalidParameterError(
                f"stale chunk row for scenario index {sc.index}: expected "
                f"{sc.scenario_id!r} (seed {sc.seed}), found "
                f"{row.get('scenario')!r} (seed {row.get('seed')}) — "
                "re-run the shards against the current grid"
            )
    digest = campaign_digest(spec)
    for path in chunks:
        mpath = path.with_name(path.name[: -len(".jsonl")] + ".manifest.json")
        if not mpath.exists():
            continue
        try:
            manifest = json.loads(mpath.read_text())
        except (json.JSONDecodeError, OSError):
            continue  # unreadable manifest: row identity above still gates
        found = manifest.get("digest")
        if found is not None and found != digest:
            raise InvalidParameterError(
                f"chunk {path.name} was produced by campaign digest {found} "
                f"but the current grid/code digest is {digest} — re-run the "
                "shards (the scenarios module or the grid changed)"
            )
    rows = [rows_by_index[i] for i in range(expected)]
    target = artifact_path(out_dir, spec)
    write_chunk(target, rows)
    return target, rows


# -- execution ---------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """One executed (or cache-served) scenario with provenance."""

    scenario: Scenario
    row: dict
    digest: str
    seconds: float
    cached: bool


@dataclass
class CampaignStats:
    executed: int = 0
    cache_hits: int = 0
    seconds: float = 0.0


def _execute_scenario(sc: Scenario) -> tuple[str, object, float]:
    """Worker entry point (top-level, picklable): run one scenario.

    Failures come back as values (:func:`repro.errors.capture`) instead
    of propagating, so the parent can cache every *completed* scenario
    before reporting — a crash in scenario 99 of 100 must not discard
    98 finished cache entries (the resumable-run contract).
    """
    t0 = time.perf_counter()
    status, payload = capture(run_scenario, sc)
    return status, payload, time.perf_counter() - t0


class _ShardCheckpoint:
    """Crash checkpoint for one shard: appended rows + an fsync'd cursor.

    Every completed scenario's canonical JSONL row is appended to
    ``<chunk>.partial.jsonl`` (flushed and fsync'd), then the cursor
    file ``<chunk>.cursor.json`` — ``{"digest", "count"}`` — is
    replaced atomically.  A SIGKILL at any instant leaves either a
    cursor that names a fully-written row prefix, or a torn final line
    *beyond* the cursor count that resume ignores; either way the next
    run serves the checkpointed rows without re-executing them and the
    final artifact stays byte-identical to an uninterrupted run (rows
    are re-sorted by scenario index at write time).  Checkpoints from a
    different grid or scenarios-module version (digest mismatch) are
    discarded, as is any row whose scenario identity or seed does not
    match the current expansion.
    """

    def __init__(self, chunk: Path, digest: str) -> None:
        stem = chunk.name[: -len(".jsonl")] if chunk.name.endswith(".jsonl") else chunk.name
        self.partial = chunk.with_name(stem + ".partial.jsonl")
        self.cursor = chunk.with_name(stem + ".cursor.json")
        self.digest = digest
        self.count = 0

    def load(self, expected: dict[int, Scenario]) -> dict[int, dict]:
        """Validated checkpointed rows (index-keyed); resets on mismatch.

        The partial file is rewritten to exactly the validated prefix so
        later appends continue from a known-good state.
        """
        rows: list[dict] = []
        if self.cursor.exists() and self.partial.exists():
            meta = None
            try:
                meta = json.loads(self.cursor.read_text())
            except (json.JSONDecodeError, OSError):
                meta = None
            count = meta.get("count") if isinstance(meta, dict) else None
            if (
                isinstance(meta, dict)
                and meta.get("digest") == self.digest
                and isinstance(count, int)
                and count >= 0
            ):
                lines = self.partial.read_text().splitlines()
                for line in lines[:count]:
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn line: keep the prefix before it
                    if not isinstance(row, dict):
                        break
                    sc = expected.get(row.get("index"))
                    if (
                        sc is None
                        or row.get("scenario") != sc.scenario_id
                        or row.get("seed") != sc.seed
                    ):
                        break  # stale row (older grid/seed): stop here
                    rows.append(row)
        self.partial.parent.mkdir(parents=True, exist_ok=True)
        self._write_file(self.partial, _dump_rows(rows))
        self.count = len(rows)
        self._write_cursor()
        return {row["index"]: row for row in rows}

    def append(self, row: dict) -> None:
        """Durably record one completed scenario (fsync'd, then cursor)."""
        with open(self.partial, "a") as fh:
            fh.write(_canonical(row) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self.count += 1
        self._write_cursor()

    def clear(self) -> None:
        """Remove the checkpoint files (the shard completed)."""
        self.partial.unlink(missing_ok=True)
        self.cursor.unlink(missing_ok=True)

    def _write_cursor(self) -> None:
        payload = _canonical({"digest": self.digest, "count": self.count})
        self._write_file(self.cursor, payload + "\n")

    @staticmethod
    def _write_file(path: Path, text: str) -> None:
        """Atomic durable write: tmp file, fsync, rename into place."""
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)


class CampaignRunner:
    """Run a campaign shard through the experiment runner's pool policy,
    with one resumable JSON cache entry per scenario.

    Cache entries use the experiment cache's naming scheme
    (``<prefix>-<16-hex-digest>.json`` under ``cache_dir``), so
    ``repro clean-cache`` sweeps them too.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        maxtasksperchild: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if jobs < 1:
            raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
        if maxtasksperchild is not None and maxtasksperchild < 1:
            raise InvalidParameterError(
                f"maxtasksperchild must be >= 1 or None, got {maxtasksperchild}"
            )
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.maxtasksperchild = maxtasksperchild
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = CampaignStats()

    def _cache_path(self, spec: CampaignSpec, sc: Scenario, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / (f"campaign-{spec.name}-s{sc.index:03d}-{digest}.json")

    def _cache_load(self, path: Path | None, digest: str) -> dict | None:
        if path is None or not path.exists():
            return None
        chaos.corrupt_cache_entry(path)  # no-op unless REPRO_CHAOS injects
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if not isinstance(payload, dict) or payload.get("digest") != digest:
            return None
        row = payload.get("row")
        return row if isinstance(row, dict) else None

    def _cache_store(
        self, path: Path | None, sc: Scenario, digest: str, row: dict
    ) -> None:
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "campaign": sc.campaign,
            "scenario": sc.scenario_id,
            "index": sc.index,
            "digest": digest,
            "row": row,
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)

    def run(
        self,
        spec: CampaignSpec,
        shard: tuple[int, int] = (0, 1),
        *,
        checkpoint: Path | None = None,
    ) -> list[ScenarioOutcome]:
        """Execute the shard's scenarios; returns outcomes in index order.

        ``checkpoint`` names the shard's chunk path: completed rows are
        flushed incrementally to ``<chunk>.partial.jsonl`` with an
        fsync'd cursor, so a killed run resumes from the cursor instead
        of re-executing finished scenarios (see :class:`_ShardCheckpoint`).
        Scenario-code failures and quarantined poison tasks are both
        collected and raised *after* everything else completed, cached,
        and checkpointed.
        """
        t_start = time.perf_counter()
        owned = shard_scenarios(expand_campaign(spec), shard)
        digests = {sc.index: _scenario_digest(spec, sc) for sc in owned}
        ckpt: _ShardCheckpoint | None = None
        ckpt_rows: dict[int, dict] = {}
        if checkpoint is not None:
            ckpt = _ShardCheckpoint(checkpoint, campaign_digest(spec))
            ckpt_rows = ckpt.load({sc.index: sc for sc in owned})
        outcomes: dict[int, ScenarioOutcome] = {}
        to_run: list[Scenario] = []
        for sc in owned:
            digest = digests[sc.index]
            row = self._cache_load(self._cache_path(spec, sc, digest), digest)
            if row is None and sc.index in ckpt_rows:
                # served from the crash checkpoint: promote it into the
                # JSON cache so later runs resume from either store
                row = ckpt_rows[sc.index]
                self._cache_store(
                    self._cache_path(spec, sc, digest), sc, digest, row
                )
            if row is not None:
                self.stats.cache_hits += 1
                outcomes[sc.index] = ScenarioOutcome(
                    scenario=sc, row=row, digest=digest, seconds=0.0, cached=True
                )
            else:
                to_run.append(sc)
        # Warm each worker once (pool initializer; in-process for
        # jobs == 1): the graph/construction instances and the per-graph
        # engine validators the shard will touch.  Sorted tuple: small,
        # picklable, deterministic (RL008).
        warm_pairs = tuple(
            sorted({(sc.graph, sc.scheduler == SCHEME_SCHEDULER) for sc in to_run})
        )

        def flush(indices: list[int], values: list[tuple[str, object, float]]) -> None:
            # streaming checkpoint hook: runs in the parent, in chunk
            # completion order, before the map returns
            if ckpt is None:
                return
            for status, payload, _seconds in values:
                if status == "ok" and isinstance(payload, dict):
                    ckpt.append(payload)

        results: list[tuple[str, object, float] | None] = []
        task_faults: list[TaskFault] = []
        if to_run:
            with WorkerPool(
                min(self.jobs, len(to_run)),
                initializer=warm_scenario_caches,
                initargs=(warm_pairs,),
                maxtasksperchild=self.maxtasksperchild,
                retry=self.retry,
            ) as pool:
                results, task_faults = pool.map_quarantine(
                    _execute_scenario, to_run, on_result=flush
                )
        failures: list[ScenarioError] = []
        for sc, result in zip(to_run, results):
            if result is None:
                continue  # quarantined: reported via task_faults below
            status, payload, seconds = result
            if status == "error":
                failures.append(ScenarioError(sc.scenario_id, str(payload)))
                continue
            row = payload
            digest = digests[sc.index]
            self.stats.executed += 1
            self._cache_store(self._cache_path(spec, sc, digest), sc, digest, row)
            outcomes[sc.index] = ScenarioOutcome(
                scenario=sc, row=row, digest=digest, seconds=seconds, cached=False
            )
        self.stats.seconds += time.perf_counter() - t_start
        if failures or task_faults:
            # every completed scenario is cached and checkpointed above,
            # so the re-run after a fix only executes the failed ones
            parts = []
            if failures:
                more = f" (+{len(failures) - 1} more)" if len(failures) > 1 else ""
                parts.append(f"failed: {failures[0]}{more}")
            for fault in task_faults:
                sc = to_run[fault.index]
                parts.append(
                    f"quarantined after {fault.attempts} attempts: scenario "
                    f"{sc.index} ({sc.scenario_id}) — {fault.message}"
                )
            raise CampaignExecutionError(
                "; ".join(parts),
                failures=tuple(failures),
                quarantined=tuple(task_faults),
            )
        if ckpt is not None:
            ckpt.clear()
        return [outcomes[sc.index] for sc in owned]


def run_campaign_shard(
    spec: CampaignSpec,
    *,
    shard: tuple[int, int] = (0, 1),
    out_dir: str | Path = "campaign-results",
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    maxtasksperchild: int | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[Path, dict, list[dict]]:
    """Execute one shard end-to-end: run, write the JSONL chunk and the
    provenance manifest, and — for an unsharded run — also write the
    merged artifact directly (byte-identical to ``merge_chunks`` output).

    Completed scenarios are checkpointed incrementally beside the chunk
    (``<chunk>.partial.jsonl`` + fsync'd cursor), so a killed run
    resumes from the checkpoint and still produces byte-identical
    artifacts.  Returns ``(chunk_path, manifest, rows)`` — the rows just
    written, so callers (the CLI summary) need not re-read the chunk
    from disk.
    """
    runner = CampaignRunner(
        jobs=jobs,
        cache_dir=cache_dir,
        maxtasksperchild=maxtasksperchild,
        retry=retry,
    )
    chunk_target = chunk_path(out_dir, spec, shard)
    outcomes = runner.run(spec, shard, checkpoint=chunk_target)
    rows = [o.row for o in outcomes]
    chunk = chunk_target
    write_chunk(chunk, rows)
    manifest = {
        "format": MANIFEST_FORMAT,
        "campaign": spec.name,
        "title": spec.title,
        "digest": campaign_digest(spec),
        "shard": list(shard),
        "axes": spec.axes(),
        "n_scenarios_total": spec.n_scenarios,
        "n_scenarios_shard": len(outcomes),
        "jobs": jobs,
        "executed": runner.stats.executed,
        "cache_hits": runner.stats.cache_hits,
        "seconds": round(runner.stats.seconds, 6),
        "scenarios": [
            {
                "index": o.scenario.index,
                "id": o.scenario.scenario_id,
                "seed": o.scenario.seed,
                "digest": o.digest,
                "seconds": round(o.seconds, 6),
                "cached": o.cached,
            }
            for o in outcomes
        ],
    }
    mpath = manifest_path(out_dir, spec, shard)
    mpath.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    if shard == (0, 1):
        write_chunk(artifact_path(out_dir, spec), rows)
    return chunk, manifest, rows
