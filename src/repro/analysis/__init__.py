"""Experiment harness: registry, parallel runner, and table builders.

Each ``experiment_eXX`` function regenerates one artifact of the paper
(see DESIGN.md's per-experiment index) and returns plain rows
(``list[dict]``) so the same code backs the pytest benchmarks, the CLI
(``python -m repro``), and EXPERIMENTS.md.

Experiments live in four themed modules (``exp_foundations``,
``exp_constructions``, ``exp_theorems``, ``exp_extensions``) and declare
themselves to :mod:`repro.analysis.registry`; the CLI and
:mod:`repro.analysis.runner` (parallel execution + result caching)
consume the registry rather than hand-kept tables.
"""

from repro.analysis.common import sample_sources
from repro.analysis.experiments import (
    experiment_e01_theorem1,
    experiment_e02_lower_bounds,
    experiment_e04_labelings,
    experiment_e05_lambda_m,
    experiment_e06_g42,
    experiment_e07_g153,
    experiment_e08_fig4,
    experiment_e09_broadcast2,
    experiment_e10_theorem5,
    experiment_e11_rec742,
    experiment_e12_broadcastk,
    experiment_e13_theorem7,
    experiment_e14_topology_compare,
    experiment_e15_congestion,
    experiment_e16_baseline_k1,
    experiment_e17_gossip,
    experiment_e18_diameter,
    experiment_e19_faults,
    experiment_e20_vertex_disjoint,
    experiment_e21_wormhole,
    experiment_e22_multimessage,
    paper_g42,
)
from repro.analysis.registry import (
    ExperimentSpec,
    all_experiments,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.analysis.tables import format_table

__all__ = [
    "format_table",
    "sample_sources",
    "ExperimentSpec",
    "all_experiments",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "paper_g42",
    "experiment_e01_theorem1",
    "experiment_e02_lower_bounds",
    "experiment_e04_labelings",
    "experiment_e05_lambda_m",
    "experiment_e06_g42",
    "experiment_e07_g153",
    "experiment_e08_fig4",
    "experiment_e09_broadcast2",
    "experiment_e10_theorem5",
    "experiment_e11_rec742",
    "experiment_e12_broadcastk",
    "experiment_e13_theorem7",
    "experiment_e14_topology_compare",
    "experiment_e15_congestion",
    "experiment_e16_baseline_k1",
    "experiment_e17_gossip",
    "experiment_e18_diameter",
    "experiment_e19_faults",
    "experiment_e20_vertex_disjoint",
    "experiment_e21_wormhole",
    "experiment_e22_multimessage",
]
