"""Construction experiments: the paper's worked examples and structural
comparisons (E06–E08, E11, E14, E18).

Split out of the old ``analysis/experiments.py`` monolith; every function
registers itself with the experiment registry.
"""

from __future__ import annotations

import math

from repro.analysis.registry import experiment
from repro.core.bounds import lower_bound_theorem2
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base, construct_rec
from repro.core.params import theorem5_m_star, theorem7_params
from repro.domination.labeling import paper_example_labeling_q2
from repro.graphs.hypercube import hypercube
from repro.graphs.properties import graph_stats
from repro.model.validator import validate_broadcast
from repro.util.bits import to_bitstring

__all__ = [
    "paper_g42",
    "experiment_e06_g42",
    "experiment_e07_g153",
    "experiment_e08_fig4",
    "experiment_e11_rec742",
    "experiment_e14_topology_compare",
    "experiment_e18_diameter",
]


# ---------------------------------------------------------------------------
# E06  Example 2 / Figs. 2–3 (G_{4,2})
# ---------------------------------------------------------------------------

def paper_g42():
    """The exact G_{4,2} instance of Example 2 / Fig. 3 (paper labeling of
    Q₂, partition S₁={3}, S₂={4})."""
    return construct_base(
        4, 2, labeling=paper_example_labeling_q2(), partition=[(3,), (4,)]
    )


@experiment("e06", "Example 2 / Figs. 2–3: G_{4,2}")
def experiment_e06_g42() -> list[dict]:
    """G_{4,2}: structure versus the values stated/drawable from Figs 2–3."""
    sh = paper_g42()
    g = sh.graph
    rule1_edges = sum(1 for (u, v) in g.edges() if (u ^ v) in (1, 2))
    rule2_edges = g.n_edges - rule1_edges
    # Fig. 3 spot checks (paper coordinates, u_4u_3u_2u_1)
    fig3_pairs = [
        ("0011", "0111", True),   # dim 3 on label c1 (suffix 11)
        ("0000", "0100", True),   # dim 3 on label c1 (suffix 00)
        ("0001", "1001", True),   # dim 4 on label c2 (suffix 01)
        ("0000", "1000", False),  # dim 4 absent at label c1
        ("0011", "1011", False),  # dim 4 absent at label c1
    ]
    checks = all(
        g.has_edge(int(a, 2), int(b, 2)) == expected for a, b, expected in fig3_pairs
    )
    return [
        {
            "quantity": "N",
            "measured": g.n_vertices,
            "paper": 16,
            "match": g.n_vertices == 16,
        },
        {
            "quantity": "Rule-1 edges (Fig. 2)",
            "measured": rule1_edges,
            "paper": 16,
            "match": rule1_edges == 16,
        },
        {
            "quantity": "Rule-2 edges",
            "measured": rule2_edges,
            "paper": 8,
            "match": rule2_edges == 8,
        },
        {
            "quantity": "Δ(G_{4,2})",
            "measured": g.max_degree(),
            "paper": 3,
            "match": g.max_degree() == 3,
        },
        {
            "quantity": "Fig. 3 edge spot-checks",
            "measured": checks,
            "paper": True,
            "match": checks,
        },
    ]


# ---------------------------------------------------------------------------
# E07  Example 3 (G_{15,3})
# ---------------------------------------------------------------------------

@experiment("e07", "Example 3: G_{15,3}")
def experiment_e07_g153(*, build_graph: bool = True) -> list[dict]:
    """G_{15,3}: Δ = 6 = 3 + 3, less than half of Δ(Q₁₅) = 15."""
    sh = construct_base(15, 3)
    rows = [
        {
            "quantity": "Δ(G_{15,3}) by formula",
            "measured": sh.degree_formula(),
            "paper": 6,
            "match": sh.degree_formula() == 6,
        },
        {
            "quantity": "Δ(Q_15)",
            "measured": 15,
            "paper": 15,
            "match": True,
        },
        {
            "quantity": "Δ(G)/Δ(Q) < 1/2",
            "measured": sh.degree_formula() / 15,
            "paper": "< 0.5",
            "match": sh.degree_formula() / 15 < 0.5,
        },
        {
            "quantity": "labels (λ₃)",
            "measured": sh.levels[0].num_labels,
            "paper": 4,
            "match": sh.levels[0].num_labels == 4,
        },
        {
            "quantity": "partition sizes",
            "measured": str([len(p) for p in sh.levels[0].partition]),
            "paper": "[3, 3, 3, 3]",
            "match": [len(p) for p in sh.levels[0].partition] == [3, 3, 3, 3],
        },
    ]
    if build_graph:
        g = sh.graph
        rows.append(
            {
                "quantity": "Δ(G_{15,3}) by graph",
                "measured": g.max_degree(),
                "paper": 6,
                "match": g.max_degree() == 6,
            }
        )
        rows.append(
            {
                "quantity": "|E| (vs n·2^{n-1} of Q_15)",
                "measured": g.n_edges,
                "paper": f"< {15 * (1 << 14)}",
                "match": g.n_edges < 15 * (1 << 14),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E08  Example 4 / Fig. 4
# ---------------------------------------------------------------------------

@experiment("e08", "Example 4 / Fig. 4: broadcast from 0000")
def experiment_e08_fig4() -> list[dict]:
    """Broadcast_2 in G_{4,2} from 0000: the paper's first two rounds,
    reproduced call for call."""
    sh = paper_g42()
    sched = broadcast_schedule(sh, 0)
    rep = validate_broadcast(sh.graph, sched, 2)

    def call_strs(idx: int) -> list[str]:
        return [
            "->".join(to_bitstring(v, 4) for v in c.path)
            for c in sched.rounds[idx]
        ]

    round1 = call_strs(0)
    round2 = call_strs(1)
    expected1 = ["0000->0010->1010"]
    expected2 = ["0000->0100", "1010->1011->1111"]
    return [
        {
            "artifact": "round 1 calls",
            "measured": "; ".join(round1),
            "paper": "0000 calls 1010 through 0010",
            "match": round1 == expected1,
        },
        {
            "artifact": "round 2 calls",
            "measured": "; ".join(round2),
            "paper": "0000→0100 ; 1010→1111 via 1011",
            "match": round2 == expected2,
        },
        {
            "artifact": "total rounds",
            "measured": len(sched.rounds),
            "paper": 4,
            "match": len(sched.rounds) == 4,
        },
        {
            "artifact": "valid 2-line schedule",
            "measured": rep.ok,
            "paper": True,
            "match": rep.ok,
        },
    ]


# ---------------------------------------------------------------------------
# E11  Examples 5–6 / Fig. 5 (LABEL and Construct_REC(7,4,2))
# ---------------------------------------------------------------------------

@experiment("e11", "Examples 5–6 / Fig. 5: Construct_REC(7,4,2)")
def experiment_e11_rec742() -> list[dict]:
    """Construct_REC(7,4,2) with the paper's labeling and partition:
    Example 5's labeling pattern and Example 6's incident edges of 0⁷."""
    sh = construct_rec(
        7,
        4,
        2,
        labelings=[paper_example_labeling_q2(), paper_example_labeling_q2()],
        partitions=[[(3,), (4,)], [(7, 6), (5,)]],
    )
    level3 = sh.levels[1]
    # Example 5: g(x00y) = g(x11y) = c1 and g(x01y) = g(x10y) = c2
    pattern_ok = True
    for x in range(8):
        for y in range(4):
            v00 = (x << 4) | (0b00 << 2) | y
            v11 = (x << 4) | (0b11 << 2) | y
            v01 = (x << 4) | (0b01 << 2) | y
            v10 = (x << 4) | (0b10 << 2) | y
            pattern_ok &= level3.label_of(v00) == level3.label_of(v11) == 0
            pattern_ok &= level3.label_of(v01) == level3.label_of(v10) == 1
    # Example 6: 0000000 connects to 0000100, 0000010, 0000001 (Rule 1)
    # and to 1000000, 0100000 (Rule 2, S1={7,6}, label c1)
    g = sh.graph
    expected_nbrs = {0b0000100, 0b0000010, 0b0000001, 0b1000000, 0b0100000}
    zero_nbrs = set(g.neighbors(0))
    return [
        {
            "artifact": "Example 5 labeling pattern",
            "measured": pattern_ok,
            "paper": True,
            "match": pattern_ok,
        },
        {
            "artifact": "S partition (Fig. 5 shape)",
            "measured": str([list(p) for p in level3.partition]),
            "paper": "[[7, 6], [5]]",
            "match": [list(p) for p in level3.partition] == [[7, 6], [5]],
        },
        {
            "artifact": "neighbours of 0000000",
            "measured": str(sorted(to_bitstring(v, 7) for v in zero_nbrs)),
            "paper": str(sorted(to_bitstring(v, 7) for v in expected_nbrs)),
            "match": zero_nbrs == expected_nbrs,
        },
        {
            "artifact": "Δ(G) (Lemma-1 analogue)",
            "measured": g.max_degree(),
            "paper": sh.degree_formula(),
            "match": g.max_degree() == sh.degree_formula(),
        },
    ]


# ---------------------------------------------------------------------------
# E14  Topology comparison (Section 1/3 context)
# ---------------------------------------------------------------------------

@experiment("e14", "Topology comparison (context)")
def experiment_e14_topology_compare(*, n: int = 9) -> list[dict]:
    """Degree/diameter/edges across classic topologies at comparable order."""
    from repro.graphs.knodel import knodel_graph
    from repro.graphs.trees import balanced_ternary_core_tree, star
    from repro.graphs.variants import (
        crossed_cube,
        cube_connected_cycles,
        de_bruijn,
        folded_hypercube,
        mobius_cube,
    )

    entries: list[tuple[str, object]] = [
        (f"Q_{n} (1-mlbg)", hypercube(n)),
        (
            f"sparse k=2 (m*={theorem5_m_star(n)})",
            construct_base(n, theorem5_m_star(n)).graph,
        ),
        ("sparse k=3", construct(3, n, theorem7_params(3, n)).graph),
        (f"folded Q_{n}", folded_hypercube(n)),
        (f"crossed CQ_{n}", crossed_cube(n)),
        (f"Möbius MQ_{n}", mobius_cube(n)),
        (f"Knödel W_{{{n},2^{n}}} (min 1-mlbg)", knodel_graph(n, 1 << n)),
        ("CCC(6)", cube_connected_cycles(6)),
        ("de Bruijn(2,9)", de_bruijn(2, 9)),
        ("star K_{1,N-1}", star(1 << n)),
        ("Theorem-1 tree h=8", balanced_ternary_core_tree(8)),
    ]
    rows = []
    for name, g in entries:
        st = graph_stats(g, with_diameter=g.n_vertices <= (1 << 10))
        rows.append(
            {
                "topology": name,
                "N": st.n_vertices,
                "|E|": st.n_edges,
                "Δ": st.max_degree,
                "diam": st.diameter if st.diameter is not None else "-",
                "lower bound Δ (k=2)": lower_bound_theorem2(
                    max(1, math.ceil(math.log2(st.n_vertices))), 2
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E18  footnote 1: diameters of the constructions vs k·log₂N
# ---------------------------------------------------------------------------

@experiment("e18", "Footnote 1: diameters vs k·log2 N")
def experiment_e18_diameter(
    *,
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (2, 8, (3,)),
        (2, 10, (3,)),
        (3, 8, (2, 5)),
        (3, 10, (2, 5)),
        (4, 10, (2, 4, 7)),
    ),
) -> list[dict]:
    """Footnote 1: any k-mlbg has diameter ≤ k·log₂N.  Measured diameters
    of the constructions sit far below the bound (and modestly above
    Q_n's n), locating the open problem the footnote raises."""
    rows = []
    for k, n, thr in cases:
        sh = construct(k, n, thr)
        g = sh.graph
        diam = g.diameter()
        rows.append(
            {
                "k": k,
                "n": n,
                "thresholds": str(thr),
                "Δ": g.max_degree(),
                "diam(G)": diam,
                "diam(Q_n)=n": n,
                "footnote bound k·n": k * n,
                "within bound": diam <= k * n,
            }
        )
    return rows
