"""Theorem-checking experiments: the machine-checked sweeps behind
Theorems 4–7 and the k = 1 baseline (E09, E10, E12, E13, E16).

These are the validation-bound hot paths, so the source sweeps (E09,
E12) run the batch all-sources engine (:mod:`repro.engine.batch`):
schedules are generated once per coset of the construction's translation
group and XOR-translated to the sampled sources, then validated as
stacked arrays — per-source verdicts are identical to the per-source
``broadcast_schedule`` + fast-validator loop by construction (and pinned
by the property tests); the reference validator stays the oracle in the
test suite.  Single-schedule checks (E16) share per-graph validators
through the process-wide kernel cache (:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import math

from repro.analysis.common import sample_sources
from repro.analysis.registry import experiment
from repro.core.bounds import (
    degree_lower_bound,
    lower_bound_theorem2,
    upper_bound_corollary1,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.params import (
    degree_formula_for_thresholds,
    improved_params_k3,
    optimized_params,
    theorem5_m_star,
    theorem7_params,
)
from repro.engine.batch import validate_all_sources
from repro.engine.cache import fast_validator_for
from repro.graphs.hypercube import hypercube
from repro.schedulers.registry import ScheduleRequest, run_scheduler

__all__ = [
    "experiment_e09_broadcast2",
    "experiment_e10_theorem5",
    "experiment_e12_broadcastk",
    "experiment_e13_theorem7",
    "experiment_e16_baseline_k1",
]


# ---------------------------------------------------------------------------
# E09  Theorem 4 (Broadcast_2 sweep)
# ---------------------------------------------------------------------------

@experiment("e09", "Theorem 4: Broadcast_2 sweep")
def experiment_e09_broadcast2(
    *, n_values: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 10, 12), sources_cap: int = 16
) -> list[dict]:
    """Broadcast_2 validity sweep: all (n, m) with m < n ≤ 8 exhaustive in
    sources for small n, sampled above."""
    rows = []
    for n in n_values:
        for m in range(1, n):
            sh = construct_base(n, m)
            g = sh.graph
            srcs = sample_sources(g.n_vertices, sources_cap)
            outcome = validate_all_sources(sh, k=2, sources=srcs)
            ok = outcome.all_ok and all(r == n for r in outcome.rounds)
            max_len = outcome.max_call_length
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "N": g.n_vertices,
                    "Δ": sh.degree_formula(),
                    "sources": len(srcs),
                    "rounds": n,
                    "max call len": max_len,
                    "valid (≤2)": ok,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E10  Theorem 5
# ---------------------------------------------------------------------------

@experiment("e10", "Theorem 5: k=2 degree bound")
def experiment_e10_theorem5(
    *, n_values: tuple[int, ...] = tuple(range(2, 65, 4))
) -> list[dict]:
    """Δ of Construct_BASE(n, m*) vs Theorem 5's bound and the Theorem 2
    lower bound; plus the n = m(m+2) remark rows (Δ = 2m < 2√n)."""
    rows = []
    for n in n_values:
        m = theorem5_m_star(n)
        delta = degree_formula_for_thresholds(n, (m,))
        bound = upper_bound_theorem5(n)
        rows.append(
            {
                "n": n,
                "m*": m,
                "Δ measured": delta,
                "thm5 bound": bound,
                "Δ ≤ bound": delta <= bound,
                "lower ⌈√n⌉": lower_bound_theorem2(n, 2),
                "Δ(Q_n)": n,
                "case": "m*",
            }
        )
    # the remark: λ_m = m+1 (m = 2^p − 1) and n = m(m+2) give Δ = 2m < 2√n
    for m in (3, 7):
        n = m * (m + 2)
        delta = degree_formula_for_thresholds(n, (m,))
        rows.append(
            {
                "n": n,
                "m*": m,
                "Δ measured": delta,
                "thm5 bound": upper_bound_theorem5(n),
                "Δ ≤ bound": delta <= upper_bound_theorem5(n),
                "lower ⌈√n⌉": lower_bound_theorem2(n, 2),
                "Δ(Q_n)": n,
                "case": f"remark n=m(m+2), 2m={2*m} < 2√n={2*math.sqrt(n):.2f}",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E12  Theorem 6 (Broadcast_k sweep)
# ---------------------------------------------------------------------------

@experiment("e12", "Theorem 6: Broadcast_k sweep")
def experiment_e12_broadcastk(
    *,
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (3, 7, (2, 4)),
        (3, 9, (2, 5)),
        (3, 11, (3, 6)),
        (4, 9, (2, 4, 6)),
        (4, 12, (2, 5, 8)),
        (5, 12, (2, 4, 7, 9)),
    ),
    sources_cap: int = 12,
) -> list[dict]:
    """Broadcast_k validity across k = 3, 4, 5 constructions."""
    rows = []
    for k, n, thresholds in cases:
        sh = construct(k, n, thresholds)
        g = sh.graph
        srcs = sample_sources(g.n_vertices, sources_cap)
        outcome = validate_all_sources(sh, k=k, sources=srcs)
        ok = outcome.all_ok and all(r == n for r in outcome.rounds)
        max_len = outcome.max_call_length
        rows.append(
            {
                "k": k,
                "n": n,
                "thresholds": str(thresholds),
                "N": g.n_vertices,
                "Δ": sh.degree_formula(),
                "sources": len(srcs),
                "max call len": max_len,
                "valid (≤k)": ok,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E13  Theorem 7 + Corollaries
# ---------------------------------------------------------------------------

@experiment("e13", "Theorem 7 + corollaries: general k")
def experiment_e13_theorem7(
    *,
    ks: tuple[int, ...] = (3, 4, 5),
    n_values: tuple[int, ...] = (8, 16, 24, 32, 48, 64),
) -> list[dict]:
    """Δ with Theorem 7's analytic parameters vs the bound, the improved
    k = 3 parameters, and the exhaustively optimized thresholds."""
    rows = []
    for k in ks:
        for n in n_values:
            if n <= k:
                continue
            analytic = theorem7_params(k, n)
            d_analytic = degree_formula_for_thresholds(n, analytic)
            bound = upper_bound_theorem7(n, k)
            opt = optimized_params(k, n, exhaustive_limit=60_000)
            d_opt = degree_formula_for_thresholds(n, opt)
            row = {
                "k": k,
                "n": n,
                "analytic n_i*": str(analytic),
                "Δ analytic": d_analytic,
                "thm7 bound": bound,
                "Δ ≤ bound": d_analytic <= bound,
                "Δ optimized": d_opt,
                "lower bound": degree_lower_bound(n, k),
            }
            if k == 3 and n >= 8:
                imp = improved_params_k3(n)
                row["Δ improved-k3"] = degree_formula_for_thresholds(n, imp)
            rows.append(row)
    # Corollary 1 row: k = ⌈log2 n⌉
    for n in (16, 32, 64):
        k = math.ceil(math.log2(n))
        if n > k >= 3:
            params = theorem7_params(k, n)
            rows.append(
                {
                    "k": k,
                    "n": n,
                    "analytic n_i*": str(params),
                    "Δ analytic": degree_formula_for_thresholds(n, params),
                    "thm7 bound": upper_bound_corollary1(n),
                    "Δ ≤ bound": degree_formula_for_thresholds(n, params)
                    <= upper_bound_corollary1(n),
                    "Δ optimized": "-",
                    "lower bound": degree_lower_bound(n, k),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E16  k = 1 baseline
# ---------------------------------------------------------------------------

@experiment("e16", "k=1 store-and-forward baseline")
def experiment_e16_baseline_k1(
    *, n_values: tuple[int, ...] = (4, 6, 8, 10)
) -> list[dict]:
    """Store-and-forward baseline: Q_n broadcasts in n rounds at k = 1;
    the sparse hypercube needs k = 2 (its schedule contains length-2
    calls, and at k = 1 the validator rejects it)."""
    rows = []
    for n in n_values:
        g = hypercube(n)
        sched = run_scheduler(
            "store_forward",
            ScheduleRequest(graph=g, source=0),
            validate=False,
        ).schedule
        rep1 = fast_validator_for(g).validate(sched, 1)
        m = theorem5_m_star(n)
        sh = construct_base(n, m)
        sparse_sched = broadcast_schedule(sh, 0)
        sparse_validator = fast_validator_for(sh.graph)
        rep_sparse_k1 = sparse_validator.validate(sparse_sched, 1)
        rep_sparse_k2 = sparse_validator.validate(sparse_sched, 2)
        rows.append(
            {
                "n": n,
                "Q_n binomial valid @k=1": rep1.ok,
                "Δ(Q_n)": n,
                "sparse Δ": sh.degree_formula(),
                "sparse sched valid @k=1": rep_sparse_k1.ok,
                "sparse sched valid @k=2": rep_sparse_k2.ok,
                "degree saving": f"{n}→{sh.degree_formula()}",
            }
        )
    return rows
