"""Parameter sweeps and series artifacts (CSV writers).

The paper has no plots, but its theorems describe curves — Δ(n) for each
k, the asymptotic ratio Δ/ᵏ√n (Corollary 2), gossip and wormhole costs.
These helpers produce the series as plain data and write CSV artifacts so
downstream users can plot them with anything.

All sweeps use the degree *formula* (no graph materialization), so they
scale to n in the hundreds instantly.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Mapping, Sequence

from repro.core.bounds import (
    degree_lower_bound,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.params import (
    default_thresholds,
    degree_formula_for_thresholds,
    improved_params_k3,
    optimized_params,
)
from repro.types import InvalidParameterError

__all__ = [
    "degree_series",
    "asymptotic_ratio_series",
    "write_csv",
    "export_all_series",
]


def degree_series(k: int, n_values: Sequence[int]) -> list[dict]:
    """Δ(n) for one k: analytic, optimized, paper bound, lower bound."""
    rows = []
    for n in n_values:
        if n <= k:
            continue
        analytic = default_thresholds(k, n)
        row = {
            "k": k,
            "n": n,
            "delta_analytic": degree_formula_for_thresholds(n, analytic),
            "delta_optimized": degree_formula_for_thresholds(
                n, optimized_params(k, n, exhaustive_limit=20_000)
            ),
            "upper_bound": (
                upper_bound_theorem5(n) if k == 2 else upper_bound_theorem7(n, k)
            ),
            "lower_bound": degree_lower_bound(n, k),
            "hypercube_degree": n,
        }
        if k == 3 and n >= 4:
            row["delta_improved_k3"] = degree_formula_for_thresholds(
                n, improved_params_k3(n)
            )
        rows.append(row)
    return rows


def asymptotic_ratio_series(k: int, n_values: Sequence[int]) -> list[dict]:
    """The Corollary-2 ratio Δ/ᵏ√n along n — bounded for constant k."""
    rows = []
    for n in n_values:
        if n <= k:
            continue
        delta = degree_formula_for_thresholds(n, default_thresholds(k, n))
        root = n ** (1.0 / k)
        rows.append(
            {
                "k": k,
                "n": n,
                "delta": delta,
                "kth_root_n": round(root, 4),
                "ratio": round(delta / root, 4),
                "paper_coefficient": 2 * k - 1,
            }
        )
    return rows


def write_csv(rows: Iterable[Mapping[str, object]], path: str) -> int:
    """Write rows (uniform keys) to CSV; returns the row count."""
    rows = list(rows)
    if not rows:
        raise InvalidParameterError("no rows to write")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def export_all_series(out_dir: str, *, max_n: int = 128) -> dict[str, int]:
    """Write every series to ``out_dir``; returns {filename: rows}."""
    n_values = list(range(4, max_n + 1, 4))
    written: dict[str, int] = {}
    for k in (2, 3, 4, 5):
        rows = degree_series(k, n_values)
        name = f"degree_series_k{k}.csv"
        written[name] = write_csv(rows, os.path.join(out_dir, name))
        ratios = asymptotic_ratio_series(k, n_values)
        name = f"asymptotic_ratio_k{k}.csv"
        written[name] = write_csv(ratios, os.path.join(out_dir, name))
    return written
