"""One scenario of a campaign: graph × scheduler × k × sources × condition.

A :class:`Scenario` is a single point of a campaign grid
(:mod:`repro.analysis.campaigns`): a textual graph spec
(:mod:`repro.graphs.specs`), a scheduler — any registry name from
:mod:`repro.schedulers.registry` plus the pseudo-scheduler ``scheme``
(the paper's own ``Broadcast_k`` construction scheme, executed through
the batch all-sources engine) — a call-length bound ``k``, a
source-sampling policy, and an injected *condition*:

``none``
    run on the intact graph;
``edge-faults:F``
    delete ``F`` seeded-random edges first (:mod:`repro.model.faults`);
    for ``scheme`` scenarios the failure-aware re-router
    (:func:`attempt_broadcast_with_failures`) measures the repair rate,
    for registry schedulers the strategy simply faces the survivor graph;
``congestion:B``
    schedule on the intact graph, then account edge congestion
    (:mod:`repro.model.congestion`) and re-execute under per-edge
    bandwidth ``B`` with the simulator, recording rejections.

:func:`run_scenario` returns **one deterministic row** of JSON scalars —
no wall-clock, no environment — which is what lets sharded campaign runs
merge byte-identically (timing lives in the campaign manifest instead).
Every found schedule is reference-validated: registry schedulers via
``run_scheduler(validate=True)``, scheme scenarios via the batch
validator (reference-equal by construction) or
:func:`validate_broadcast` directly on the survivor graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.specs import parse_spec, validate_spec
from repro.types import InvalidParameterError, ReproError

__all__ = [
    "Scenario",
    "SCHEME_SCHEDULER",
    "parse_condition",
    "parse_sources_policy",
    "sources_for",
    "scenario_id",
    "validate_scenario",
    "run_scenario",
    "cached_graph",
    "cached_construct",
    "scenario_cache_info",
    "clear_scenario_caches",
    "warm_scenario_caches",
]

SCHEME_SCHEDULER = "scheme"

_CONDITION_KINDS = ("none", "edge-faults", "congestion")


@dataclass(frozen=True)
class Scenario:
    """One grid point, fully determined by its fields (plus the seed the
    campaign derived from them)."""

    campaign: str
    index: int
    graph: str
    scheduler: str
    k: int | None
    sources: str
    condition: str
    seed: int

    @property
    def scenario_id(self) -> str:
        return scenario_id(
            self.graph, self.scheduler, self.k, self.sources, self.condition
        )


def scenario_id(
    graph: str, scheduler: str, k: int | None, sources: str, condition: str
) -> str:
    """Stable human-readable identity of a grid point (no campaign name,
    no index) — the unit both seeds and cache keys derive from."""
    k_part = "inf" if k is None else str(k)
    return f"g={graph};s={scheduler};k={k_part};src={sources};cond={condition}"


def parse_condition(condition: str) -> tuple[str, int]:
    """Split ``condition`` into ``(kind, argument)``.

    ``none`` has argument 0; ``edge-faults:F`` needs F >= 1; and
    ``congestion:B`` needs bandwidth B >= 1 (default 1).
    """
    kind, _, rest = condition.partition(":")
    kind = kind.strip().lower()
    if kind not in _CONDITION_KINDS:
        raise InvalidParameterError(
            f"unknown condition {condition!r}; known kinds: "
            + ", ".join(_CONDITION_KINDS)
        )
    if kind == "none":
        if rest:
            raise InvalidParameterError(
                f"condition 'none' takes no argument, got {condition!r}"
            )
        return kind, 0
    if not rest:
        if kind == "congestion":
            return kind, 1
        raise InvalidParameterError(
            f"condition {condition!r} needs an argument (e.g. 'edge-faults:2')"
        )
    try:
        arg = int(rest)
    except ValueError:
        raise InvalidParameterError(
            f"condition argument must be an integer: {condition!r}"
        ) from None
    if arg < 1:
        raise InvalidParameterError(f"condition argument must be >= 1: {condition!r}")
    return kind, arg


def parse_sources_policy(policy: str) -> tuple[str, int]:
    """Split a sources policy into ``(kind, argument)``.

    ``first`` (source 0 only), ``sample:CAP`` (deterministic spread via
    :func:`repro.analysis.common.sample_sources`), ``all`` (every
    vertex).
    """
    kind, _, rest = policy.partition(":")
    kind = kind.strip().lower()
    if kind == "first":
        if rest:
            raise InvalidParameterError(
                f"sources policy 'first' takes no argument, got {policy!r}"
            )
        return kind, 0
    if kind == "all":
        if rest:
            raise InvalidParameterError(
                f"sources policy 'all' takes no argument, got {policy!r}"
            )
        return kind, 0
    if kind == "sample":
        try:
            cap = int(rest) if rest else 16
        except ValueError:
            raise InvalidParameterError(
                f"sample cap must be an integer: {policy!r}"
            ) from None
        if cap < 2:
            raise InvalidParameterError(f"sample cap must be >= 2: {policy!r}")
        return kind, cap
    raise InvalidParameterError(
        f"unknown sources policy {policy!r}; known: first, sample:CAP, all"
    )


def sources_for(policy: str, n_vertices: int) -> list[int]:
    """The concrete source list a policy selects on an N-vertex graph."""
    from repro.analysis.common import sample_sources

    kind, arg = parse_sources_policy(policy)
    if kind == "first":
        return [0]
    if kind == "all":
        return list(range(n_vertices))
    return sample_sources(n_vertices, arg)


def validate_scenario(sc: Scenario) -> None:
    """Reject malformed scenarios without running anything.

    Checks the graph spec (family + arity), the scheduler name against
    the registry (plus ``scheme``, which additionally requires a
    ``sparse:N:M`` graph), and the sources/condition grammars.  Campaign
    expansion calls this for the whole grid upfront so a bad axis value
    fails the run before the first scenario executes.
    """
    validate_spec(sc.graph)
    parse_sources_policy(sc.sources)
    parse_condition(sc.condition)
    if sc.scheduler == SCHEME_SCHEDULER:
        family, _args = parse_spec(sc.graph)
        if family != "sparse":
            raise InvalidParameterError(
                f"scheduler 'scheme' needs a sparse:N:M graph spec, "
                f"got {sc.graph!r}"
            )
    else:
        from repro.schedulers import registry as sched_registry

        if sc.scheduler not in sched_registry.scheduler_names():
            raise InvalidParameterError(
                f"unknown scheduler {sc.scheduler!r}; known: "
                + ", ".join([*sched_registry.scheduler_names(), SCHEME_SCHEDULER])
            )
    if sc.k is not None and sc.k < 1:
        raise InvalidParameterError(f"k must be >= 1 or None, got {sc.k}")


# -- per-process instance caches ---------------------------------------------
#
# A campaign grid reuses a handful of graph specs across many scenarios,
# but scenarios execute independently (possibly in pool workers), so
# without memoization every scenario rebuilds its graph/construction from
# scratch — and, because the engine cache (repro.engine.cache) is
# identity-keyed on the graph object, it misses every time too.  These
# spec-keyed caches make repeated scenarios on one graph share a single
# frozen instance per process; warm_scenario_caches is the pool
# initializer that pays the build cost once per worker, before the first
# task lands.

_GRAPH_CACHE: dict[str, object] = {}
_CONSTRUCT_CACHE: dict[str, object] = {}
_CACHE_HITS = {"graph": 0, "construct": 0}
_CACHE_MISSES = {"graph": 0, "construct": 0}


def cached_graph(spec: str):
    """The frozen graph for ``spec``, built at most once per process."""
    from repro.graphs.specs import graph_from_spec

    graph = _GRAPH_CACHE.get(spec)
    if graph is None:
        _CACHE_MISSES["graph"] += 1
        graph = graph_from_spec(spec)
        _GRAPH_CACHE[spec] = graph
    else:
        _CACHE_HITS["graph"] += 1
    return graph


def cached_construct(spec: str):
    """The ``construct_base`` instance for ``spec`` (scheme scenarios),
    built at most once per process."""
    from repro.core.construct import construct_base

    sh = _CONSTRUCT_CACHE.get(spec)
    if sh is None:
        _CACHE_MISSES["construct"] += 1
        _family, args = parse_spec(spec)
        sh = construct_base(*args)
        _ = sh.graph  # materialize (and freeze) eagerly
        _CONSTRUCT_CACHE[spec] = sh
    else:
        _CACHE_HITS["construct"] += 1
    return sh


def scenario_cache_info() -> dict:
    """Hit/miss counters of this process's scenario instance caches."""
    return {
        "graph_entries": len(_GRAPH_CACHE),
        "construct_entries": len(_CONSTRUCT_CACHE),
        "graph_hits": _CACHE_HITS["graph"],
        "graph_misses": _CACHE_MISSES["graph"],
        "construct_hits": _CACHE_HITS["construct"],
        "construct_misses": _CACHE_MISSES["construct"],
    }


def clear_scenario_caches() -> None:
    """Drop the caches and zero the counters (tests)."""
    _GRAPH_CACHE.clear()
    _CONSTRUCT_CACHE.clear()
    for key in _CACHE_HITS:
        _CACHE_HITS[key] = 0
        _CACHE_MISSES[key] = 0


def warm_scenario_caches(pairs: tuple[tuple[str, bool], ...]) -> None:
    """Pool initializer: pre-build instances + kernels once per worker.

    ``pairs`` is a sorted tuple of ``(graph_spec, is_scheme)`` — small
    and picklable, per the pool policy.  For each pair the graph (or
    construction) is built into the spec-keyed cache and the per-graph
    validators are built into the engine cache, so the worker's first
    scenario starts hot instead of paying the whole build cost inside
    its task.  Runs in-process for ``jobs == 1``, keeping serial and
    parallel campaign executions on the same warm path.
    """
    from repro.engine.cache import batch_validator_for, fast_validator_for

    for spec, is_scheme in pairs:
        if is_scheme:
            sh = cached_construct(spec)
            batch_validator_for(sh.graph)
        else:
            graph = cached_graph(spec)
            fast_validator_for(graph)


# -- execution ---------------------------------------------------------------


def _scheme_rows(sc: Scenario, cond_kind: str, cond_arg: int) -> dict:
    """Execute a ``scheme`` scenario: the paper's Broadcast_k scheme on a
    sparse hypercube, through the batch engine where possible."""
    sh = cached_construct(sc.graph)
    graph = sh.graph
    k_eff = sc.k if sc.k is not None else sh.k
    srcs = sources_for(sc.sources, graph.n_vertices)
    agg = _Aggregate()

    if cond_kind == "edge-faults":
        from repro.api import validate as api_validate
        from repro.model.faults import attempt_broadcast_with_failures, faulted_graph

        survivor, failed = faulted_graph(graph, cond_arg, sc.seed)
        for s in srcs:
            sched = attempt_broadcast_with_failures(sh, s, set(failed))
            if sched is None:
                continue
            # The repaired schedule is frame-backed; engine "auto" routes
            # to the fast validator (reference-identical verdicts) so the
            # row derives from columnar arrays, never per-call objects.
            report = api_validate(survivor, sched.to_frame(), k_eff)
            agg.record(
                sched.num_rounds,
                sched.num_calls,
                sched.max_call_length(),
                report.ok,
            )
        row = agg.row(sc, graph, srcs)
        row["failed_edges"] = len(failed)
        row["survivor_edges"] = survivor.n_edges
        row["survivor_connected"] = survivor.is_connected()
        return row

    if cond_kind == "congestion":
        from repro.core.broadcast import broadcast_schedule
        from repro.engine.cache import fast_validator_for

        validator = fast_validator_for(graph)
        congestion = _CongestionAggregate(graph, bandwidth=cond_arg, k=k_eff)
        for s in srcs:
            sched = broadcast_schedule(sh, s)
            ok = validator.validate(sched, k_eff).ok
            agg.record(
                sched.num_rounds,
                sched.num_calls,
                sched.max_call_length(),
                ok,
            )
            congestion.record(sched)
        row = agg.row(sc, graph, srcs)
        row.update(congestion.row())
        return row

    # condition 'none': the batch all-sources pipeline end-to-end
    from repro.engine.batch import validate_all_sources

    outcome = validate_all_sources(sh, k=k_eff, sources=srcs)
    zipped = zip(outcome.ok, outcome.rounds, outcome.max_call_lengths)
    for ok, rounds, max_len in zipped:
        agg.record(rounds, None, max_len, ok)
    row = agg.row(sc, graph, srcs)
    row["calls"] = -1  # stacked validation does not materialize call counts
    row["n_cosets"] = outcome.n_cosets
    return row


def _registry_rows(sc: Scenario, cond_kind: str, cond_arg: int) -> dict:
    """Execute a registry-scheduler scenario through ``run_scheduler``."""
    from repro.schedulers.registry import ScheduleRequest, run_scheduler

    graph = cached_graph(sc.graph)
    run_graph = graph
    failed: tuple = ()
    if cond_kind == "edge-faults":
        from repro.model.faults import faulted_graph

        run_graph, failed = faulted_graph(graph, cond_arg, sc.seed)
    srcs = sources_for(sc.sources, graph.n_vertices)
    params = {"restarts": 100} if sc.scheduler == "greedy" else {}
    agg = _Aggregate()
    congestion = (
        _CongestionAggregate(run_graph, bandwidth=cond_arg, k=sc.k)
        if cond_kind == "congestion"
        else None
    )
    for s in srcs:
        request = ScheduleRequest(
            graph=run_graph,
            source=s,
            k=sc.k,
            seed=sc.seed + s,
            params=params,
        )
        try:
            result = run_scheduler(sc.scheduler, request)
        except ReproError:
            agg.errors += 1
            continue
        if result.schedule is None:
            continue
        agg.record(
            result.rounds,
            result.schedule.num_calls,
            result.schedule.max_call_length(),
            result.valid is True,
        )
        if congestion is not None:
            congestion.record(result.schedule)
    row = agg.row(sc, graph, srcs)
    if cond_kind == "edge-faults":
        row["failed_edges"] = len(failed)
        row["survivor_edges"] = run_graph.n_edges
        row["survivor_connected"] = run_graph.is_connected()
    if congestion is not None:
        row.update(congestion.row())
    return row


class _Aggregate:
    """Accumulates per-source outcomes into one deterministic row."""

    def __init__(self) -> None:
        self.found = 0
        self.valid = 0
        self.errors = 0
        self.rounds: list[int] = []
        self.calls = 0
        self.calls_known = False
        self.max_call_length = 0

    def record(self, rounds: int, calls: int | None, max_len: int, ok: bool) -> None:
        self.found += 1
        if ok:
            self.valid += 1
        self.rounds.append(rounds)
        if calls is not None:
            self.calls += calls
            self.calls_known = True
        self.max_call_length = max(self.max_call_length, max_len)

    def row(self, sc: Scenario, graph, srcs: list[int]) -> dict:
        return {
            "index": sc.index,
            "campaign": sc.campaign,
            "scenario": sc.scenario_id,
            "graph": sc.graph,
            "scheduler": sc.scheduler,
            "k": sc.k,
            "sources_policy": sc.sources,
            "condition": sc.condition,
            "seed": sc.seed,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "n_sources": len(srcs),
            "found": self.found,
            "valid": self.valid,
            "errors": self.errors,
            "rounds_min": min(self.rounds, default=-1),
            "rounds_max": max(self.rounds, default=-1),
            "calls": self.calls if self.calls_known else -1,
            "max_call_length": self.max_call_length,
        }


class _CongestionAggregate:
    """Congestion metrics across a scenario's found schedules."""

    def __init__(self, graph, *, bandwidth: int, k: int | None) -> None:
        self.graph = graph
        self.bandwidth = bandwidth
        self.k = k
        self.peak_concurrency = 0
        self.min_bandwidth = 0
        self.utilization: list[float] = []
        self.rejected = 0

    def record(self, sched) -> None:
        from repro.model.congestion import congestion_profile, min_feasible_bandwidth
        from repro.model.simulator import LineNetworkSimulator

        profile = congestion_profile(self.graph, sched).as_row()
        peak = profile["peak_concurrency"]
        self.peak_concurrency = max(self.peak_concurrency, peak)
        needed = min_feasible_bandwidth(self.graph, sched)
        self.min_bandwidth = max(self.min_bandwidth, needed)
        self.utilization.append(profile["edge_utilization"])
        if self.k is not None:
            k_eff = self.k
        else:
            k_eff = max(1, self.graph.n_vertices - 1)
        sim = LineNetworkSimulator(
            self.graph, k=k_eff, bandwidth=self.bandwidth, strict=False
        )
        self.rejected += len(sim.run(sched).rejected)

    def row(self) -> dict:
        if self.utilization:
            mean_util = sum(self.utilization) / len(self.utilization)
        else:
            mean_util = 0.0
        return {
            "bandwidth": self.bandwidth,
            "peak_concurrency": self.peak_concurrency,
            "min_bandwidth": self.min_bandwidth,
            "edge_utilization": round(mean_util, 4),
            "rejected_calls": self.rejected,
        }


def run_scenario(sc: Scenario) -> dict:
    """Execute one scenario and return its deterministic result row.

    The row contains only JSON scalars derived from the scenario fields
    (graph structure, schedule outcomes, validator verdicts) — never
    wall-clock time or host state — so re-running the same scenario in a
    different shard, process, or machine reproduces the bytes exactly.
    """
    validate_scenario(sc)
    cond_kind, cond_arg = parse_condition(sc.condition)
    if sc.scheduler == SCHEME_SCHEDULER:
        return _scheme_rows(sc, cond_kind, cond_arg)
    return _registry_rows(sc, cond_kind, cond_arg)
