"""Shared helpers for the experiment modules.

Kept separate from the registry so the themed experiment modules can use
them without importing each other.
"""

from __future__ import annotations

from repro.types import InvalidParameterError

__all__ = ["sample_sources"]


def sample_sources(n_vertices: int, cap: int) -> list[int]:
    """Deterministic spread of at most ``cap`` source vertices.

    Always includes both ``0`` and ``n_vertices - 1`` so every sweep
    exercises the two extreme bit patterns; the remaining slots are an
    evenly spaced sample.  The result never exceeds ``cap`` entries.
    """
    if n_vertices <= cap:
        return list(range(n_vertices))
    if cap < 2:
        raise InvalidParameterError(
            f"cap must be >= 2 to include both endpoints, got {cap}"
        )
    step = max(1, n_vertices // cap)
    srcs = sorted({0, n_vertices - 1, *range(0, n_vertices, step)})
    if len(srcs) <= cap:
        return srcs
    # Respect the cap while keeping both endpoints: trim the interior.
    interior = [s for s in srcs if s not in (0, n_vertices - 1)]
    return [0, *interior[: cap - 2], n_vertices - 1]
