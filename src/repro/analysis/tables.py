"""Plain-text table rendering for experiment output.

No dependencies; produces aligned monospace tables from ``list[dict]``
rows, matching the shape of the tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "print_table", "campaign_summary"]


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table.

    Column order: explicit ``columns`` if given, else insertion order of
    the first row.  Values are str()-ed; floats get 4 significant digits.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = columns if columns is not None else list(rows[0].keys())

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        if isinstance(v, bool):
            return "yes" if v else "no"
        return str(v)

    table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append(sep)
    for row in table:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def campaign_summary(rows: Iterable[Mapping[str, object]]) -> list[dict]:
    """Compress campaign scenario rows into one summary row per
    (scheduler, condition) group.

    The shape printed after ``repro campaign run``/``merge``: scenario
    and source-run counts, found/valid/error totals, and the observed
    round-count range, aggregated over the graph and k axes.
    """
    groups: dict[tuple, dict] = {}
    for row in rows:
        key = (str(row.get("scheduler")), str(row.get("condition")))
        agg = groups.get(key)
        if agg is None:
            agg = groups[key] = {
                "scheduler": key[0],
                "condition": key[1],
                "scenarios": 0,
                "graphs": set(),
                "sources": 0,
                "found": 0,
                "valid": 0,
                "errors": 0,
                "rounds_min": None,
                "rounds_max": None,
            }
        agg["scenarios"] += 1
        agg["graphs"].add(str(row.get("graph")))
        agg["sources"] += int(row.get("n_sources", 0))
        agg["found"] += int(row.get("found", 0))
        agg["valid"] += int(row.get("valid", 0))
        agg["errors"] += int(row.get("errors", 0))
        rmin, rmax = row.get("rounds_min", -1), row.get("rounds_max", -1)
        if isinstance(rmin, int) and rmin >= 0:
            agg["rounds_min"] = (
                rmin if agg["rounds_min"] is None else min(agg["rounds_min"], rmin)
            )
        if isinstance(rmax, int) and rmax >= 0:
            agg["rounds_max"] = (
                rmax if agg["rounds_max"] is None else max(agg["rounds_max"], rmax)
            )
    out = []
    for key in sorted(groups):
        agg = groups[key]
        rounds = (
            "-"
            if agg["rounds_min"] is None
            else f"{agg['rounds_min']}..{agg['rounds_max']}"
        )
        out.append(
            {
                "scheduler": agg["scheduler"],
                "condition": agg["condition"],
                "scenarios": agg["scenarios"],
                "graphs": len(agg["graphs"]),
                "sources": agg["sources"],
                "found": agg["found"],
                "valid": agg["valid"],
                "errors": agg["errors"],
                "rounds": rounds,
            }
        )
    return out


def print_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
) -> None:
    print(format_table(rows, columns=columns, title=title))
