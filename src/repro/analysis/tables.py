"""Plain-text table rendering for experiment output.

No dependencies; produces aligned monospace tables from ``list[dict]``
rows, matching the shape of the tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_table", "print_table"]


def format_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table.

    Column order: explicit ``columns`` if given, else insertion order of
    the first row.  Values are str()-ed; floats get 4 significant digits.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = columns if columns is not None else list(rows[0].keys())

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        if isinstance(v, bool):
            return "yes" if v else "no"
        return str(v)

    table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append(sep)
    for row in table:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Iterable[Mapping[str, object]],
    *,
    columns: list[str] | None = None,
    title: str | None = None,
) -> None:
    print(format_table(rows, columns=columns, title=title))
