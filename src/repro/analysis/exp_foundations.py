"""Foundations experiments: trees, lower bounds, labelings (E01–E05).

Split out of the old ``analysis/experiments.py`` monolith; every function
registers itself with the experiment registry and still returns plain
``list[dict]`` rows.
"""

from __future__ import annotations

import math

from repro.analysis.common import sample_sources
from repro.analysis.registry import experiment
from repro.core.bounds import (
    lower_bound_theorem2,
    lower_bound_theorem3,
    moore_degree_lower_bound,
    theorem1_minimum_k,
)
from repro.core.tree_mlbg import theorem1_k, theorem1_tree, verify_theorem1_instance
from repro.domination.domatic import condition_a_max_labels
from repro.domination.labeling import (
    best_available_labeling,
    hamming_labeling,
    lemma2_lower_bound,
    paper_example_labeling_q2,
    paper_example_labeling_q3,
)

__all__ = [
    "experiment_e01_theorem1",
    "experiment_e02_lower_bounds",
    "experiment_e04_labelings",
    "experiment_e05_lambda_m",
]


# ---------------------------------------------------------------------------
# E01  Fig. 1 + Theorem 1
# ---------------------------------------------------------------------------

@experiment("e01", "Fig. 1 + Theorem 1: Δ≤3 trees")
def experiment_e01_theorem1(
    *, max_h: int = 6, schedule_h: int = 5, sources_cap: int = 12
) -> list[dict]:
    """Theorem 1: B_h structure for h ≤ max_h; minimum-time schedules
    machine-checked for h ≤ schedule_h (sampled sources above a cap)."""
    rows = []
    for h in range(1, max_h + 1):
        tree = theorem1_tree(h)
        n = tree.n_vertices
        row = {
            "h": h,
            "N=3·2^h−2": n,
            "Δ (≤3)": tree.max_degree(),
            "diam (≤2h)": tree.diameter(),
            "k=2h": theorem1_k(h),
            "thm1 min k for N": theorem1_minimum_k(n),
        }
        if h <= schedule_h:
            srcs = sample_sources(n, sources_cap)
            rep = verify_theorem1_instance(h, sources=srcs)
            row["rounds=⌈log₂N⌉"] = rep["rounds"]
            row["sources checked"] = rep["sources_checked"]
            row["min-time verified"] = True
        else:
            row["rounds=⌈log₂N⌉"] = math.ceil(math.log2(n))
            row["sources checked"] = 0
            row["min-time verified"] = False
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E02/E03  Theorems 2 and 3 (lower bounds)
# ---------------------------------------------------------------------------

@experiment("e02", "Theorems 2–3: degree lower bounds")
def experiment_e02_lower_bounds(
    *, n_values: tuple[int, ...] = (4, 9, 16, 25, 36, 49, 64)
) -> list[dict]:
    """Degree lower bounds: paper closed forms vs the exact ball bound."""
    rows = []
    for n in n_values:
        row: dict = {"n (N=2^n)": n, "k=1 (Δ≥n)": n}
        for k in (2, 3, 4):
            row[f"k={k} thm2"] = lower_bound_theorem2(n, k)
            row[f"k={k} ball"] = moore_degree_lower_bound(n, k)
        for k in (5, 6):
            if n > k:
                row[f"k={k} thm3"] = lower_bound_theorem3(n, k)
            else:
                row[f"k={k} thm3"] = "-"
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E04  Example 1 labelings
# ---------------------------------------------------------------------------

@experiment("e04", "Example 1: optimal labelings of Q2/Q3")
def experiment_e04_labelings() -> list[dict]:
    """Example 1: the paper's labelings of Q₂ and Q₃ satisfy Condition A
    and are optimal (λ₂ = 2, λ₃ = 4, by exhaustive search)."""
    q2 = paper_example_labeling_q2()
    q3 = paper_example_labeling_q3()
    ham3 = hamming_labeling(3)
    # paper's Q3 labeling equals the Hamming syndrome labeling up to label renaming
    renaming_consistent = len(
        {(q3.label_of(u), ham3.label_of(u)) for u in range(8)}
    ) == 4
    rows = [
        {
            "labeling": "Example 1 Q₂ (parity)",
            "labels": q2.num_labels,
            "Condition A": q2.verify(),
            "optimal λ_m": condition_a_max_labels(2),
        },
        {
            "labeling": "Example 1 Q₃ (complement pairs)",
            "labels": q3.num_labels,
            "Condition A": q3.verify(),
            "optimal λ_m": condition_a_max_labels(3),
        },
        {
            "labeling": "Hamming syndrome Q₃",
            "labels": ham3.num_labels,
            "Condition A": ham3.verify(),
            "optimal λ_m": 4 if renaming_consistent else -1,
        },
    ]
    return rows


# ---------------------------------------------------------------------------
# E05  Lemma 2 (λ_m bounds)
# ---------------------------------------------------------------------------

@experiment("e05", "Lemma 2: λ_m bounds")
def experiment_e05_lambda_m(*, max_m: int = 9, exact_max_m: int = 4) -> list[dict]:
    """λ_m: Lemma 2's bounds vs the library's constructed label counts,
    with exact values (domatic search) for small m."""
    rows = []
    for m in range(1, max_m + 1):
        lab = best_available_labeling(m)
        assert lab.verify()
        row = {
            "m": m,
            "Lemma2 lower ⌊m/2⌋+1": lemma2_lower_bound(m),
            "constructed labels": lab.num_labels,
            "upper m+1": m + 1,
            "labeling": lab.name,
            "exact λ_m": condition_a_max_labels(m) if m <= exact_max_m else "-",
        }
        rows.append(row)
    return rows
