"""E23: scheduler-registry cross-check.

Runs every requested registry scheduler on a shared set of small
(graph, k) instances and reports round counts, validity, and agreement —
the machine check that the engine-backed strategies are interchangeable
where their domains overlap: whenever the greedy heuristic finds a
schedule, the exact search must find one of the same (minimum) length,
and every returned schedule must pass the reference validator.

Schedulers are selected **by registry name** (the ``schedulers``
parameter), so the experiment doubles as an integration test of the
registry plumbing used by ``repro schedule``.
"""

from __future__ import annotations

from repro.analysis.registry import experiment
from repro.graphs.specs import graph_from_spec
from repro.schedulers.registry import ScheduleRequest, run_scheduler

__all__ = ["experiment_e23_scheduler_registry"]

# (graph spec, k or None=unbounded) — small enough for the exact search.
_DEFAULT_CASES = (
    ("path:8", 2),
    ("path:8", None),
    ("star:8", 2),
    ("theorem1:2", 4),
    ("hypercube:2", 1),
    ("hypercube:3", 1),
    ("hypercube:3", 2),
)


@experiment("e23", "Scheduler registry cross-check")
def experiment_e23_scheduler_registry(
    *,
    cases: tuple = _DEFAULT_CASES,
    schedulers: tuple[str, ...] = ("greedy", "search"),
    seed: int = 0,
    restarts: int = 100,
) -> list[dict]:
    rows: list[dict] = []
    for spec, k in cases:
        graph = graph_from_spec(spec)
        row: dict = {
            "graph": spec,
            "n": graph.n_vertices,
            "k": "inf" if k is None else k,
        }
        found_rounds: list[int] = []
        all_valid = True
        for name in schedulers:
            params = {"restarts": restarts} if name == "greedy" else {}
            result = run_scheduler(
                name,
                ScheduleRequest(graph=graph, source=0, k=k, seed=seed, params=params),
            )
            row[f"rounds_{name}"] = (
                result.rounds if result.schedule is not None else -1
            )
            if result.schedule is not None:
                found_rounds.append(result.rounds)
                if result.valid is not True:
                    all_valid = False
        # Registry contract: every found schedule is reference-valid, and
        # all schedulers that succeed agree on the (minimum) round count.
        row["valid"] = all_valid
        row["agree"] = len(set(found_rounds)) <= 1
        assert all_valid, f"invalid schedule on {spec} (k={k})"
        assert row["agree"], f"round-count disagreement on {spec} (k={k})"
        rows.append(row)
    return rows
