"""Parallel experiment runner with params-keyed result caching.

The registry (:mod:`repro.analysis.registry`) says *what* can run; this
module says *how*: fan experiments out over a ``multiprocessing`` pool
and memoize each result as JSON keyed on a hash of the experiment id and
its effective parameters.  A re-run with unchanged parameters is a pure
cache read — zero experiment executions — which is what makes repeated
``repro run --all --cache`` invocations (CI, sweep drivers) cheap.

Every experiment returns ``list[dict]`` rows of JSON scalars, so the
cache round-trips losslessly and byte-identically (object key order is
preserved by ``json``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import registry

# The pool policy (chunking, persistent pools, worker initializers,
# bounded worker lifetime) lives in repro.util.pool; fan_out is
# re-exported here because analysis code historically imported it from
# the runner module.
from repro.util.pool import fan_out
from repro.util.retry import RetryPolicy

__all__ = [
    "RunResult",
    "RunnerStats",
    "ExperimentRunner",
    "DEFAULT_CACHE_DIR",
    "fan_out",
]

DEFAULT_CACHE_DIR = Path(".repro-cache")


@dataclass
class RunResult:
    """One experiment's outcome: rows plus provenance."""

    name: str
    title: str
    rows: list[dict]
    params: dict
    digest: str
    seconds: float
    cached: bool


@dataclass
class RunnerStats:
    """Counters for one :meth:`ExperimentRunner.run` call (cumulative)."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    per_experiment: dict[str, float] = field(default_factory=dict)


def _execute(task: tuple[str, dict]) -> tuple[str, list[dict], float]:
    """Worker entry point: run one experiment (picklable, top level)."""
    name, params = task
    spec = registry.get_experiment(name)
    t0 = time.perf_counter()
    rows = spec.fn(**params)
    return name, rows, time.perf_counter() - t0


class ExperimentRunner:
    """Run experiments sequentially or across ``jobs`` worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process, which is
        also the fallback when only one experiment is requested.
    cache_dir:
        When set, each result is stored as
        ``<cache_dir>/<name>-<digest>.json`` and subsequent runs with the
        same effective parameters are served from disk without executing
        the experiment.
    retry:
        The :class:`~repro.util.retry.RetryPolicy` governing worker
        crash/timeout recovery for the parallel path (default: the
        policy defaults — bounded retries, no task deadline).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.retry = retry
        self.stats = RunnerStats()

    # -- cache -------------------------------------------------------------

    def _cache_path(self, name: str, digest: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{name}-{digest}.json"

    def _cache_load(self, name: str, digest: str) -> list[dict] | None:
        path = self._cache_path(name, digest)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            rows = payload["rows"]
            columns = payload["columns"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            return None  # truncated/corrupt entry — treat as a miss
        if not isinstance(payload, dict) or payload.get("digest") != digest:
            return None  # stale entry
        # the entry is written sort_keys=True (byte determinism), so each
        # row's display column order is restored from the stored list
        try:
            return [
                {key: row[key] for key in cols}
                for row, cols in zip(rows, columns, strict=True)
            ]
        except (KeyError, TypeError, ValueError):
            return None  # columns out of sync with rows — treat as a miss

    def _cache_store(
        self, name: str, digest: str, params: dict, rows: list[dict]
    ) -> None:
        path = self._cache_path(name, digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment": name,
            "digest": digest,
            "params": registry.jsonable(params),
            # sort_keys normalizes the bytes below; column order is table
            # semantics, so it is recorded as data rather than dict order
            "columns": [list(row) for row in rows],
            "rows": rows,
        }
        # atomic write: an interrupted run must not leave a torn entry
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)

    def clean_cache(self) -> int:
        """Delete all cache entries; returns the number removed.

        Only files matching the runner's ``<name>-<16-hex-digest>.json``
        naming scheme are touched — pointing ``--cache-dir`` at a
        directory with unrelated JSON files must not eat them.
        """
        if self.cache_dir is None or not self.cache_dir.exists():
            return 0

        def is_entry_name(stem: str) -> bool:
            prefix, _, digest = stem.rpartition("-")
            return bool(prefix) and len(digest) == 16 and all(
                c in "0123456789abcdef" for c in digest
            )

        removed = 0
        for path in sorted(self.cache_dir.glob("*.json")):
            if is_entry_name(path.name[: -len(".json")]):
                path.unlink()
                removed += 1
        # also sweep orphaned temp files from interrupted writes
        for path in sorted(self.cache_dir.glob("*.json.tmp")):
            if is_entry_name(path.name[: -len(".json.tmp")]):
                path.unlink()
        return removed

    # -- execution ---------------------------------------------------------

    def run(
        self,
        names: list[str] | None = None,
        *,
        overrides: dict[str, dict] | None = None,
    ) -> list[RunResult]:
        """Run the named experiments (all registered ones when ``None``).

        ``overrides`` maps experiment id → parameter overrides.  Results
        come back in request order regardless of worker scheduling.
        """
        t_start = time.perf_counter()
        if names is None:
            names = registry.experiment_ids()
        specs = [registry.get_experiment(name) for name in names]
        plan: list[tuple[str, dict, str]] = []
        for spec in specs:
            params = registry.effective_params(spec, (overrides or {}).get(spec.name))
            digest = registry.params_digest(
                spec.name, params, code=registry.code_digest(spec)
            )
            plan.append((spec.name, params, digest))

        results: dict[int, RunResult] = {}
        to_run: list[tuple[int, str, dict, str]] = []
        for idx, (name, params, digest) in enumerate(plan):
            rows = self._cache_load(name, digest)
            if rows is not None:
                self.stats.cache_hits += 1
                results[idx] = RunResult(
                    name=name,
                    title=registry.get_experiment(name).title,
                    rows=rows,
                    params=params,
                    digest=digest,
                    seconds=0.0,
                    cached=True,
                )
            else:
                if self.cache_dir is not None:
                    self.stats.cache_misses += 1
                to_run.append((idx, name, params, digest))

        if to_run:
            tasks = [(name, params) for _, name, params, _ in to_run]
            outcomes = fan_out(_execute, tasks, self.jobs, retry=self.retry)
            paired = zip(to_run, outcomes)
            for (idx, name, params, digest), (_, rows, seconds) in paired:
                self.stats.executed += 1
                self.stats.per_experiment[name] = seconds
                self._cache_store(name, digest, params, rows)
                results[idx] = RunResult(
                    name=name,
                    title=registry.get_experiment(name).title,
                    rows=rows,
                    params=params,
                    digest=digest,
                    seconds=seconds,
                    cached=False,
                )

        self.stats.seconds += time.perf_counter() - t_start
        return [results[idx] for idx in range(len(plan))]
