"""Extension experiments: the Section-5 directions beyond the paper
(E15, E17, E19–E22).

Split out of the old ``analysis/experiments.py`` monolith; every function
registers itself with the experiment registry.
"""

from __future__ import annotations

from repro.analysis.common import sample_sources
from repro.analysis.registry import experiment
from repro.core.broadcast import broadcast_schedule
from repro.core.construct import construct, construct_base
from repro.core.params import theorem5_m_star, theorem7_params
from repro.engine.batch import validate_all_sources
from repro.graphs.hypercube import hypercube
from repro.model.congestion import congestion_profile, min_feasible_bandwidth
from repro.model.simulator import LineNetworkSimulator
from repro.model.validator import validate_broadcast

__all__ = [
    "experiment_e15_congestion",
    "experiment_e17_gossip",
    "experiment_e19_faults",
    "experiment_e20_vertex_disjoint",
    "experiment_e21_wormhole",
    "experiment_e22_multimessage",
]


# ---------------------------------------------------------------------------
# E15  Congestion / bandwidth ablation (Section 5)
# ---------------------------------------------------------------------------

@experiment("e15", "Section 5: congestion / bandwidth")
def experiment_e15_congestion(
    *, cases: tuple[tuple[int, int], ...] = ((8, 3), (10, 3), (12, 4))
) -> list[dict]:
    """Edge-load profile of Broadcast_2/k schedules and the bandwidth
    needed when two broadcasts are forced to share rounds."""
    rows = []
    for n, m in cases:
        sh = construct_base(n, m)
        g = sh.graph
        sched = broadcast_schedule(sh, 0)
        prof = congestion_profile(g, sched)
        # merge two broadcasts from different sources into shared rounds:
        # round i = calls of both schedules (conflicts intended)
        other = broadcast_schedule(sh, g.n_vertices - 1)
        from repro.types import Schedule

        merged = Schedule(source=0)
        for r1, r2 in zip(sched.rounds, other.rounds):
            merged.append_round(r1.calls + r2.calls)
        needed = min_feasible_bandwidth(g, merged)
        # static conflict count: (round, edge) slots that exceed bandwidth 1
        # when the two broadcasts share rounds — the dilation Section 5 asks
        # about, measured without the confound of receiver collisions
        from collections import Counter

        conflicting_slots = 0
        for rnd in merged.rounds:
            load: Counter = Counter()
            for call in rnd:
                for e in call.edges():
                    load[e] += 1
            conflicting_slots += sum(1 for v in load.values() if v > 1)
        # a single valid broadcast never conflicts (the simulator confirms)
        sim = LineNetworkSimulator(g, k=sh.k, bandwidth=1, strict=False)
        solo_rejections = len(sim.run(sched).rejected)
        rows.append(
            {
                "graph": f"G_{{{n},{m}}}",
                "edges used": prof.used_edges,
                "|E|": prof.graph_edges,
                "utilization": round(prof.edge_utilization, 3),
                "peak edge load (valid sched)": prof.peak_concurrency,
                "max total load/edge": prof.max_total_load,
                "solo rejections @b=1": solo_rejections,
                "merged 2-src min bandwidth": needed,
                "merged conflicting edge-slots @b=1": conflicting_slots,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E17  §5 future work: gossip under the k-line model
# ---------------------------------------------------------------------------

@experiment("e17", "Section 5: gossip under the k-line model")
def experiment_e17_gossip(
    *, cases: tuple[tuple[int, int], ...] = ((4, 2), (6, 2), (8, 3), (10, 3))
) -> list[dict]:
    """Gossip round counts: Q_n dimension sweep (optimal) vs the sparse
    hypercube's relayed sweep — quantifying why §5 flags gossip as a
    separate problem."""
    from repro.gossip import (
        hypercube_gossip,
        minimum_gossip_rounds,
        sparse_hypercube_gossip,
        validate_gossip,
    )

    rows = []
    for n, m in cases:
        q = hypercube(n)
        q_sched = hypercube_gossip(n)
        q_rep = validate_gossip(q, q_sched, 1)

        sh = construct_base(n, m)
        s_sched = sparse_hypercube_gossip(sh)
        s_rep = validate_gossip(sh.graph, s_sched, 3)
        lam = sh.levels[0].num_labels
        rows.append(
            {
                "n": n,
                "m": m,
                "min rounds ⌈log₂N⌉": minimum_gossip_rounds(1 << n),
                "Q_n rounds (k=1)": q_sched.num_rounds,
                "Q_n valid+complete": q_rep.ok and q_rep.complete,
                "sparse rounds (k=3)": s_sched.num_rounds,
                "sparse valid+complete": s_rep.ok and s_rep.complete,
                "sparse slowdown": round(s_sched.num_rounds / n, 2),
                "λ (relay groups+1)": lam,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E19  robustness ablation: random edge failures + repair
# ---------------------------------------------------------------------------

@experiment("e19", "Robustness: edge failures + repair")
def experiment_e19_faults(
    *,
    n: int = 8,
    m: int = 3,
    failure_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    trials: int = 40,
) -> list[dict]:
    """Repair rate of Broadcast_2 under random edge failures (E19).

    For each failure count f: sample f edges, delete them, re-route with
    the failure-aware scheme, and validate against the surviving graph.
    Expected shape: monotone decay in f; repairs fail fast once core-cube
    edges start dying (they cannot be rerouted within call length 2).
    """
    from repro.model.faults import (
        attempt_broadcast_with_failures,
        failed_edge_sample,
        remove_edges,
    )

    sh = construct_base(n, m)
    g = sh.graph
    rows = []
    for f in failure_counts:
        repaired = 0
        valid = 0
        for trial in range(trials):
            failed = failed_edge_sample(g, f, seed=1000 * f + trial)
            sched = attempt_broadcast_with_failures(sh, 0, failed)
            if sched is None:
                continue
            repaired += 1
            survivor = remove_edges(g, failed)
            if validate_broadcast(survivor, sched, sh.k).ok:
                valid += 1
        sound = "1.0" if repaired == valid else f"{valid}/{repaired}"
        rows.append(
            {
                "graph": f"G_{{{n},{m}}}",
                "|E|": g.n_edges,
                "failures f": f,
                "trials": trials,
                "repaired": repaired,
                "repair rate": round(repaired / trials, 3),
                "repaired & valid": valid,
                "soundness (valid/repaired)": sound,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E20  §5 extension: the vertex-disjoint call model
# ---------------------------------------------------------------------------

@experiment("e20", "Section 5: vertex-disjoint calls")
def experiment_e20_vertex_disjoint(
    *,
    cases: tuple[tuple[int, int, tuple[int, ...]], ...] = (
        (2, 6, (2,)),
        (2, 8, (3,)),
        (3, 8, (2, 5)),
        (4, 9, (2, 4, 6)),
    ),
    sources_cap: int = 8,
) -> list[dict]:
    """§5 proposes extending the model to vertex-disjoint calls.  Result:
    the sparse-hypercube schemes *already* satisfy it (Phase-1 calls live
    in disjoint subcubes), so every construction is a k-mlbg under the
    stricter model too; the Theorem-1 tree scheme is not (its pump relays
    share intermediate vertices)."""
    from repro.core.tree_scheme import ternary_tree_schedule
    from repro.graphs.trees import balanced_ternary_core_tree

    rows = []
    for k, n, thr in cases:
        sh = construct(k, n, thr)
        g = sh.graph
        srcs = sample_sources(g.n_vertices, sources_cap)
        ok = validate_all_sources(sh, k=k, sources=srcs, vertex_disjoint=True).all_ok
        rows.append(
            {
                "instance": f"Construct({k}, n={n})",
                "model": "vertex-disjoint k-line",
                "minimum time": ok,
                "note": "subcube-disjoint Phase 1 ⇒ vertex-disjoint",
            }
        )
    # contrast: the B_3 tree scheme shares relay vertices
    h = 3
    tree = balanced_ternary_core_tree(h)
    sched = ternary_tree_schedule(h, 0)
    strict = validate_broadcast(tree, sched, 2 * h, vertex_disjoint=True)
    loose = validate_broadcast(tree, sched, 2 * h)
    rows.append(
        {
            "instance": f"Theorem-1 tree h={h}",
            "model": "vertex-disjoint k-line",
            "minimum time": strict.ok,
            "note": f"edge-disjoint model: {loose.ok}; pump relays share vertices",
        }
    )
    return rows


# ---------------------------------------------------------------------------
# E21  wormhole cycle cost: degree savings vs latency overhead
# ---------------------------------------------------------------------------

@experiment("e21", "Wormhole cycle cost: degree vs latency")
def experiment_e21_wormhole(
    *,
    n: int = 10,
    flit_sizes: tuple[int, ...] = (1, 4, 16, 64),
) -> list[dict]:
    """Cycle-accurate wormhole cost of broadcast: Q_n (k=1) vs sparse
    hypercubes (k=2, 3) across message sizes.

    The k-line model abstracts wormhole routing [7]; here we map the
    schedules back onto a flit-level simulator.  Expected shape: the
    sparse graphs pay (k−1) extra cycles per round — an overhead fraction
    that *vanishes* as messages grow, while the degree saving is constant.
    """
    from repro.schedulers.registry import ScheduleRequest, run_scheduler
    from repro.wormhole import schedule_latency

    q = hypercube(n)
    q_sched = run_scheduler(
        "store_forward", ScheduleRequest(graph=q, source=0), validate=False
    ).schedule
    sh2 = construct_base(n, theorem5_m_star(n))
    sh2_sched = broadcast_schedule(sh2, 0)
    sh3 = construct(3, n, theorem7_params(3, n))
    sh3_sched = broadcast_schedule(sh3, 0)

    rows = []
    for flits in flit_sizes:
        lat_q = schedule_latency(q, q_sched, flits)
        lat_2 = schedule_latency(sh2.graph, sh2_sched, flits)
        lat_3 = schedule_latency(sh3.graph, sh3_sched, flits)
        base = lat_q.total_cycles
        rows.append(
            {
                "message flits": flits,
                "Q_n cycles (Δ=10)": lat_q.total_cycles,
                f"sparse k=2 cycles (Δ={sh2.degree_formula()})": lat_2.total_cycles,
                f"sparse k=3 cycles (Δ={sh3.degree_formula()})": lat_3.total_cycles,
                "k=2 overhead": f"{100 * (lat_2.total_cycles / base - 1):.0f}%",
                "k=3 overhead": f"{100 * (lat_3.total_cycles / base - 1):.0f}%",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E22  multi-message broadcast (the [24] extension)
# ---------------------------------------------------------------------------

@experiment("e22", "Multiple messages broadcasting ([24])")
def experiment_e22_multimessage() -> list[dict]:
    """Multiple messages from one source: pipelining the paper's scheme is
    impossible (saturated callers), but genuine multi-message schedules
    beat serial — exact results on small instances."""
    from repro.multimsg import minimal_valid_stagger
    from repro.schedulers import (
        find_multimessage_schedule,
        multimessage_lower_bound,
        validate_multimessage,
    )

    rows = []
    # (a) scheme pipelining: d* always equals n (fully serial)
    for n, m in ((4, 2), (6, 3)):
        sh = construct_base(n, m)
        rows.append(
            {
                "instance": f"G_{{{n},{m}}} scheme pipeline (M=2)",
                "rounds": f"d*={minimal_valid_stagger(sh, 0)} → serial {2 * n}",
                "lower bound": multimessage_lower_bound(1 << n, 2),
                "note": "every vertex calls every round — no slack",
            }
        )
    # (b) exact multi-message schedules on small instances
    g3 = hypercube(3)
    assert find_multimessage_schedule(g3, 0, 1, 2, 4) is None
    found = find_multimessage_schedule(g3, 0, 1, 2, 5)
    assert found is not None and validate_multimessage(g3, found, 1) == []
    rows.append(
        {
            "instance": "Q_3, M=2, k=1 (exact search)",
            "rounds": "5 (4 refuted)",
            "lower bound": multimessage_lower_bound(8, 2),
            "note": "tight: bound = search; serial = 6",
        }
    )
    sh31 = construct_base(3, 1)
    found_sparse = find_multimessage_schedule(sh31.graph, 0, 2, 2, 5)
    ok = (
        found_sparse is not None
        and validate_multimessage(sh31.graph, found_sparse, 2) == []
    )
    rows.append(
        {
            "instance": "G_{3,1}, M=2, k=2 (exact search)",
            "rounds": "5" if ok else "not found",
            "lower bound": multimessage_lower_bound(8, 2),
            "note": "sparse graph matches Q_3's multi-message time",
        }
    )
    return rows
