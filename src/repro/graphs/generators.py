"""Random graph generators used by the test-suite and property tests.

All generators take an explicit ``seed`` and are deterministic given it,
per the repository's determinism policy (DESIGN.md, decision 6).
"""

from __future__ import annotations

import random

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = ["random_tree", "random_connected_graph", "random_spanning_tree_of"]


def random_tree(n: int, seed: int) -> Graph:
    """A uniformly random labelled tree on ``n`` vertices (Prüfer decode)."""
    if n < 1:
        raise InvalidParameterError(f"tree needs >= 1 vertex, got {n}")
    if n == 1:
        return Graph(1).freeze()
    if n == 2:
        return Graph(2, [(0, 1)]).freeze()
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    g = Graph(n)
    # classic O(n log n)-ish decode with a sorted leaf pool
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, x)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g.freeze()


def random_connected_graph(n: int, extra_edges: int, seed: int) -> Graph:
    """A random connected graph: random tree plus ``extra_edges`` chords."""
    if n < 1:
        raise InvalidParameterError(f"graph needs >= 1 vertex, got {n}")
    rng = random.Random(seed ^ 0x5EED)
    tree = random_tree(n, seed)
    g = tree.copy()
    existing = set(tree.edges())
    max_extra = n * (n - 1) // 2 - len(existing)
    budget = min(extra_edges, max_extra)
    attempts = 0
    while budget > 0 and attempts < 50 * (budget + 1):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e in existing:
            continue
        existing.add(e)
        g.add_edge(u, v)
        budget -= 1
    return g.freeze()


def random_spanning_tree_of(g: Graph, seed: int) -> Graph:
    """A random spanning tree of a connected graph (randomized DFS)."""
    if not g.is_connected():
        raise InvalidParameterError("graph must be connected")
    rng = random.Random(seed ^ 0x7EE5)
    n = g.n_vertices
    tree = Graph(n)
    seen = [False] * n
    start = rng.randrange(n)
    seen[start] = True
    stack = [start]
    while stack:
        u = stack[-1]
        nbrs = [w for w in g.neighbors(u) if not seen[w]]
        if not nbrs:
            stack.pop()
            continue
        w = rng.choice(sorted(nbrs))
        seen[w] = True
        tree.add_edge(u, w)
        stack.append(w)
    return tree.freeze()
