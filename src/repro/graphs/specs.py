"""Textual graph specs for the CLI and experiment parameterization.

A spec is ``name`` or ``name:arg1:arg2...`` with integer arguments —
``hypercube:4``, ``theorem1:3``, ``path:16``, ``random-tree:24:7`` — so a
graph family can be named in a shell command (``repro schedule --graph
hypercube:3 ...``), a cached experiment parameter, or a benchmark id
without importing builders.  Specs are deterministic: the same string
always builds the same (frozen) graph.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = ["graph_from_spec", "parse_spec", "spec_names", "validate_spec"]


def _sparse(n: int, m: int) -> Graph:
    from repro.core.construct import construct_base

    return construct_base(n, m).graph


def _hypercube(n: int) -> Graph:
    from repro.graphs.hypercube import hypercube

    return hypercube(n)


def _theorem1(h: int) -> Graph:
    from repro.graphs.trees import balanced_ternary_core_tree

    return balanced_ternary_core_tree(h)


def _path(n: int) -> Graph:
    from repro.graphs.trees import path_graph

    return path_graph(n)


def _star(n: int) -> Graph:
    from repro.graphs.trees import star

    return star(n)


def _cycle(n: int) -> Graph:
    from repro.graphs.variants import cycle_graph

    return cycle_graph(n)


def _complete_binary(h: int) -> Graph:
    from repro.graphs.trees import complete_binary_tree

    return complete_binary_tree(h)


def _random_tree(n: int, seed: int = 0) -> Graph:
    from repro.graphs.generators import random_tree

    return random_tree(n, seed=seed)


def _random_graph(n: int, extra_edges: int, seed: int = 0) -> Graph:
    from repro.graphs.generators import random_connected_graph

    return random_connected_graph(n, extra_edges, seed=seed)


def _knodel(delta: int, n: int) -> Graph:
    from repro.graphs.knodel import knodel_graph

    return knodel_graph(delta, n)


# name -> (builder, usage string); builders take the spec's int arguments.
_BUILDERS: dict[str, tuple[Callable[..., Graph], str]] = {
    "hypercube": (_hypercube, "hypercube:N_DIMS"),
    "theorem1": (_theorem1, "theorem1:H"),
    "path": (_path, "path:N"),
    "star": (_star, "star:N"),
    "cycle": (_cycle, "cycle:N"),
    "complete-binary": (_complete_binary, "complete-binary:HEIGHT"),
    "random-tree": (_random_tree, "random-tree:N[:SEED]"),
    "random-graph": (_random_graph, "random-graph:N:EXTRA_EDGES[:SEED]"),
    "sparse": (_sparse, "sparse:N_DIMS:M"),
    "knodel": (_knodel, "knodel:DELTA:N"),
}


def spec_names() -> list[str]:
    """Known spec family names with their usage strings."""
    return [usage for _fn, usage in _BUILDERS.values()]


def parse_spec(spec: str) -> tuple[str, list[int]]:
    """Split ``spec`` into its family name and integer arguments.

    Raises :class:`InvalidParameterError` for unknown families and
    non-integer arguments; does **not** build the graph, so callers (the
    campaign expander) can reject a whole grid of bad specs upfront.
    """
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if name not in _BUILDERS:
        raise InvalidParameterError(
            f"unknown graph spec {spec!r}; known: {', '.join(sorted(_BUILDERS))}"
        )
    usage = _BUILDERS[name][1]
    try:
        args = [int(a) for a in rest.split(":")] if rest else []
    except ValueError:
        raise InvalidParameterError(
            f"graph spec arguments must be integers: {spec!r} (usage: {usage})"
        ) from None
    return name, args


def validate_spec(spec: str) -> None:
    """Check ``spec`` names a known family with a plausible argument count.

    A build-free sanity check: family and integer parsing via
    :func:`parse_spec`, arity against the builder's signature.  Value
    errors (e.g. a hypercube dimension of -3) still surface at build
    time.
    """
    name, args = parse_spec(spec)
    fn, usage = _BUILDERS[name]
    params = inspect.signature(fn).parameters
    required = sum(1 for p in params.values() if p.default is inspect.Parameter.empty)
    if not required <= len(args) <= len(params):
        raise InvalidParameterError(
            f"wrong argument count in {spec!r} (usage: {usage})"
        )


def graph_from_spec(spec: str) -> Graph:
    """Build the graph named by ``spec`` (``family[:int[:int...]]``)."""
    name, args = parse_spec(spec)
    fn, usage = _BUILDERS[name]
    try:
        return fn(*args)
    except TypeError:
        raise InvalidParameterError(
            f"wrong argument count in {spec!r} (usage: {usage})"
        ) from None
