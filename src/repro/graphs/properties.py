"""Structural statistics reported in the experiment tables.

Everything here is a pure function of a :class:`repro.graphs.base.Graph`.
The experiment harness (``repro.analysis``) calls these to build the
degree/diameter comparison tables (E07, E10, E13, E14).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.base import Graph

__all__ = ["GraphStats", "graph_stats", "is_regular", "is_vertex_transitive_sample"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph as reported in the tables."""

    n_vertices: int
    n_edges: int
    max_degree: int
    min_degree: int
    mean_degree: float
    diameter: int | None  # None when skipped for size
    connected: bool

    def as_row(self) -> dict[str, object]:
        return {
            "N": self.n_vertices,
            "|E|": self.n_edges,
            "Δ": self.max_degree,
            "δ": self.min_degree,
            "avg deg": round(self.mean_degree, 3),
            "diam": self.diameter if self.diameter is not None else "-",
            "conn": self.connected,
        }


def graph_stats(
    g: Graph, *, with_diameter: bool = True, diameter_cap: int = 1 << 14
) -> GraphStats:
    """Compute :class:`GraphStats`; skips the O(N·E) diameter above the cap."""
    n = g.n_vertices
    connected = g.is_connected()
    diameter: int | None = None
    if with_diameter and connected and n <= diameter_cap:
        diameter = g.diameter()
    mean = (2.0 * g.n_edges / n) if n else 0.0
    return GraphStats(
        n_vertices=n,
        n_edges=g.n_edges,
        max_degree=g.max_degree(),
        min_degree=g.min_degree(),
        mean_degree=mean,
        diameter=diameter,
        connected=connected,
    )


def is_regular(g: Graph) -> bool:
    """True iff every vertex has the same degree."""
    if g.n_vertices == 0:
        return True
    return g.max_degree() == g.min_degree()


def is_vertex_transitive_sample(g: Graph, sample: int = 8) -> bool:
    """A cheap *necessary* condition for vertex transitivity: the sampled
    vertices all have identical degree and eccentricity.  Used only as a
    sanity check on the classic topologies; not a proof of transitivity.
    """
    if g.n_vertices == 0:
        return True
    idx = range(0, g.n_vertices, max(1, g.n_vertices // sample))
    degs = {g.degree(v) for v in idx}
    if len(degs) != 1:
        return False
    eccs = {g.eccentricity(v) for v in idx}
    return len(eccs) == 1
