"""Tree families used by the paper's Theorem 1 and by baseline experiments.

The key family is :func:`balanced_ternary_core_tree` — the paper's Fig. 1
graph: a centre vertex with three complete binary trees of height ``h - 1``
attached, giving ``N = 3·2^h − 2`` vertices, maximum degree 3 and diameter
at most ``2h``.  Theorem 1 shows this tree is a k-mlbg for every
``k ≥ 2⌈log₂((N+2)/3)⌉``.

Also provided: stars (the fewest-edge k-mlbg for k ≥ 2, per Section 2),
paths, spiders and complete binary trees, used as scheduler baselines and
in property tests.
"""

from __future__ import annotations

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = [
    "path_graph",
    "star",
    "spider",
    "complete_binary_tree",
    "balanced_ternary_core_tree",
    "ternary_core_tree_order",
    "is_tree",
    "tree_center",
]


def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise InvalidParameterError(f"path needs >= 1 vertex, got {n}")
    return Graph(n, ((i, i + 1) for i in range(n - 1))).freeze()


def star(n: int) -> Graph:
    """The star ``K_{1,n-1}`` with centre 0.

    Section 2 of the paper: this is the graph with the fewest edges that is
    a k-mlbg for every k ≥ 2 (the centre relays every call).
    """
    if n < 1:
        raise InvalidParameterError(f"star needs >= 1 vertex, got {n}")
    return Graph(n, ((0, i) for i in range(1, n))).freeze()


def spider(leg_lengths: list[int]) -> Graph:
    """A spider: centre 0 with legs (paths) of the given lengths."""
    if not leg_lengths or any(length < 1 for length in leg_lengths):
        raise InvalidParameterError(f"leg lengths must be >= 1: {leg_lengths}")
    n = 1 + sum(leg_lengths)
    g = Graph(n)
    nxt = 1
    for length in leg_lengths:
        prev = 0
        for _ in range(length):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
    return g.freeze()


def complete_binary_tree(height: int) -> Graph:
    """Complete binary tree of the given height (root 0, heap indexing).

    ``height = 0`` is a single vertex; height ``h`` has ``2^{h+1} - 1``
    vertices.  Children of vertex ``v`` are ``2v+1`` and ``2v+2``.
    """
    if height < 0:
        raise InvalidParameterError(f"height must be >= 0, got {height}")
    n = (1 << (height + 1)) - 1
    g = Graph(n)
    for v in range(n):
        for c in (2 * v + 1, 2 * v + 2):
            if c < n:
                g.add_edge(v, c)
    return g.freeze()


def ternary_core_tree_order(h: int) -> int:
    """``N = 3·2^h − 2``, the order of the Theorem-1 tree with parameter h."""
    if h < 1:
        raise InvalidParameterError(f"h must be >= 1, got {h}")
    return 3 * (1 << h) - 2


def balanced_ternary_core_tree(h: int) -> Graph:
    """The paper's Fig. 1 / Theorem 1 tree for parameter ``h >= 1``.

    Structure: centre vertex 0; three complete binary trees of height
    ``h - 1`` whose roots are adjacent to the centre.  Properties proved in
    Theorem 1 and verified by the test-suite:

    * ``Δ(G) = 3`` (for h ≥ 2; ``h = 1`` gives the star K_{1,3}),
    * ``max dist ≤ 2h`` (leaf → centre is h, so leaf → leaf ≤ 2h),
    * ``|V| = 3·2^h − 2``.

    Vertex layout: 0 is the centre; branch ``b ∈ {0,1,2}`` occupies the
    block ``1 + b·(2^h − 1) .. 1 + (b+1)·(2^h − 1) - 1`` with heap indexing
    inside the block (block-local root at offset 0).
    """
    if h < 1:
        raise InvalidParameterError(f"h must be >= 1, got {h}")
    block = (1 << h) - 1  # vertices per branch: complete binary tree height h-1
    n = 1 + 3 * block
    g = Graph(n)
    for b in range(3):
        base = 1 + b * block
        g.add_edge(0, base)  # centre to branch root
        for local in range(block):
            for child in (2 * local + 1, 2 * local + 2):
                if child < block:
                    g.add_edge(base + local, base + child)
    assert n == ternary_core_tree_order(h)
    return g.freeze()


def is_tree(g: Graph) -> bool:
    """True iff ``g`` is connected and has exactly N-1 edges."""
    return g.is_connected() and g.n_edges == g.n_vertices - 1


def tree_center(g: Graph) -> list[int]:
    """The 1- or 2-vertex centre of a tree (iterative leaf stripping)."""
    if not is_tree(g):
        raise InvalidParameterError("tree_center requires a tree")
    n = g.n_vertices
    if n <= 2:
        return list(range(n))
    deg = [g.degree(v) for v in range(n)]
    layer = [v for v in range(n) if deg[v] == 1]
    remaining = n
    removed = [False] * n
    while remaining > 2:
        remaining -= len(layer)
        nxt = []
        for leaf in layer:
            removed[leaf] = True
            for w in g.neighbors(leaf):
                if not removed[w]:
                    deg[w] -= 1
                    if deg[w] == 1:
                        nxt.append(w)
        layer = nxt
    return sorted(v for v in range(n) if not removed[v])
