"""The binary n-cube ``Q_n`` and structural helpers specific to it.

``Q_n`` is the Cayley graph on ``V = {0,1}^n`` with ``{u, v} ∈ E`` iff
``v = ⊕_i u`` for some dimension ``i`` (paper, Section 3).  It has
``Δ(Q_n) = n`` and ``n · 2^{n-1}`` edges, and is the graph the sparse
hypercube constructions *delete edges from*.

Edge generation is vectorized: for each dimension we emit the ``2^{n-1}``
edges ``{u, u ^ (1 << (i-1))}`` with ``u``'s i-th bit clear, in one NumPy
expression per dimension.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.types import InvalidParameterError
from repro.util.bits import all_vertices

__all__ = [
    "hypercube",
    "hypercube_edge_array",
    "dimension_of_edge",
    "subcube_vertices",
]


def hypercube_edge_array(n: int) -> np.ndarray:
    """All edges of ``Q_n`` as an ``(n * 2^{n-1}, 2)`` uint64 array.

    Row order: dimension 1 edges first (sorted by lower endpoint), then
    dimension 2, etc.  Each row is ``(u, u ^ 2^{i-1})`` with ``u < v``.
    """
    if n < 0 or n > 24:
        raise InvalidParameterError(f"hypercube dimension out of range [0, 24]: {n}")
    verts = all_vertices(n)
    rows = []
    for i in range(1, n + 1):
        mask = np.uint64(1 << (i - 1))
        lower = verts[(verts & mask) == 0]
        rows.append(np.stack([lower, lower | mask], axis=1))
    if not rows:
        return np.empty((0, 2), dtype=np.uint64)
    return np.concatenate(rows, axis=0)


def hypercube(n: int) -> Graph:
    """The complete binary n-cube ``Q_n`` on ``2^n`` vertices (frozen)."""
    if n < 0 or n > 24:
        raise InvalidParameterError(f"hypercube dimension out of range [0, 24]: {n}")
    g = Graph(1 << n)
    for u, v in hypercube_edge_array(n):
        g.add_edge(int(u), int(v))
    return g.freeze()


def dimension_of_edge(u: int, v: int) -> int:
    """The dimension ``i`` (1-indexed) such that ``v = ⊕_i u``.

    Raises if ``{u, v}`` is not a hypercube edge (Hamming distance ≠ 1).
    """
    x = u ^ v
    if x == 0 or (x & (x - 1)) != 0:
        raise InvalidParameterError(
            f"({u}, {v}) is not a hypercube edge: endpoints differ in "
            f"{int(x).bit_count()} bits"
        )
    return x.bit_length()


def subcube_vertices(n: int, fixed_prefix: int, m: int) -> np.ndarray:
    """Vertices of the m-subcube of ``Q_n`` with prefix value ``fixed_prefix``.

    The subcube consists of all vertices ``u`` with ``u >> m == fixed_prefix``;
    these are the vertex sets the paper's Phase 1/Phase 2 argument partitions
    the cube into.
    """
    if not (0 <= m <= n):
        raise InvalidParameterError(f"need 0 <= m <= n, got m={m}, n={n}")
    if not (0 <= fixed_prefix < (1 << (n - m))):
        raise InvalidParameterError(
            f"prefix {fixed_prefix} out of range for n-m = {n - m} bits"
        )
    base = np.uint64(fixed_prefix << m)
    return base + all_vertices(m)
