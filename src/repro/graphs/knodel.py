"""Knödel graphs — the classic *minimum broadcast graphs* of class G₁.

Section 2 of the paper surveys class G₁ (1-mlbgs) and the literature on
minimum broadcast graphs [5,6,8,9,13,15,18,19,23].  The Knödel graph
``W_{Δ, N}`` (N even, 1 ≤ Δ ≤ ⌊log₂N⌋) is the canonical family:
``W_{⌊log₂N⌋, N}`` is a 1-mlbg for every even N, and for ``N = 2^ℓ`` it is
a *minimum* broadcast graph (fewest edges among 1-mlbgs).  At ``N = 2^ℓ``
its degree and edge count equal Q_ℓ's, but unlike the hypercube it remains
a 1-mlbg at every even order — the property the tests exercise.

Definition used (standard): vertices ``(i, j)`` with ``i ∈ {1, 2}`` and
``j ∈ {0, …, N/2 − 1}``; for ``d = 0..Δ−1``, vertex ``(1, j)`` is adjacent
to ``(2, (j + 2^d − 1) mod N/2)``.  We encode ``(i, j)`` as
``(i − 1)·N/2 + j``.

The natural broadcast scheme: in round ``r`` (1-based), every informed
vertex calls across dimension ``d = (r − 1) mod Δ``.  For N = 2^ℓ this
doubles the informed set every round from any source (verified by the
validator in tests — Knödel graphs are vertex-transitive enough for the
scheme to work from every source).
"""

from __future__ import annotations

from repro.graphs.base import Graph
from repro.types import Call, InvalidParameterError, Schedule

__all__ = ["knodel_graph", "knodel_dimension_neighbor", "knodel_broadcast"]


def knodel_dimension_neighbor(vertex: int, d: int, n_vertices: int) -> int:
    """The dimension-d neighbour of ``vertex`` in ``W_{Δ, n_vertices}``."""
    half = n_vertices // 2
    i, j = divmod(vertex, half)
    if i == 0:  # paper's i = 1
        return half + (j + (1 << d) - 1) % half
    return (j - (1 << d) + 1) % half


def knodel_graph(delta: int, n_vertices: int) -> Graph:
    """The Knödel graph ``W_{delta, n_vertices}`` (n_vertices even)."""
    if n_vertices < 2 or n_vertices % 2:
        raise InvalidParameterError(f"Knödel graphs need even N >= 2, got {n_vertices}")
    if not (1 <= delta <= (n_vertices).bit_length() - 1):
        raise InvalidParameterError(
            f"need 1 <= Δ <= ⌊log2 N⌋ = {(n_vertices).bit_length() - 1}, "
            f"got Δ={delta}"
        )
    g = Graph(n_vertices)
    half = n_vertices // 2
    for j in range(half):
        for d in range(delta):
            g.add_edge(j, half + (j + (1 << d) - 1) % half)
    return g.freeze()


def knodel_broadcast(delta: int, n_vertices: int, source: int) -> Schedule:
    """The dimension-sweep broadcast schedule on ``W_{Δ, N}``.

    Round r uses dimension (r−1) mod Δ; every informed vertex calls its
    neighbour across that dimension, skipping calls to already-informed
    vertices (needed when N is not a power of two).  Produces ⌈log₂N⌉
    rounds; validity and minimum time are checked by the test-suite, not
    assumed.
    """
    import math

    if not (0 <= source < n_vertices):
        raise InvalidParameterError(f"source {source} out of range")
    rounds = math.ceil(math.log2(n_vertices))
    schedule = Schedule(source=source)
    informed = [source]
    informed_set = {source}
    for r in range(rounds):
        d = r % delta
        calls = []
        claimed: set[int] = set()
        for w in sorted(informed):
            v = knodel_dimension_neighbor(w, d, n_vertices)
            if v in informed_set or v in claimed:
                continue
            calls.append(Call.direct(w, v))
            claimed.add(v)
        schedule.append_round(calls)
        informed.extend(claimed)
        informed_set |= claimed
    return schedule
