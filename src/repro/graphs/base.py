"""A small, fast undirected-graph kernel over integer vertices.

Vertices are the integers ``0 .. N-1``.  The structure is immutable once
``freeze()`` has been called (all factory functions in this package return
frozen graphs); mutation during construction goes through ``add_edge``.

The kernel keeps adjacency both as Python sets (O(1) ``has_edge``, cheap
iteration) and, lazily, as a CSR-style pair of NumPy arrays for vectorized
breadth-first sweeps.  This follows the HPC guide's advice: keep the code
legible, vectorize only the measured hot paths (BFS over all sources
dominates diameter computation).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.types import Edge, InvalidParameterError, Vertex, canonical_edge

__all__ = ["Graph"]

_UNREACHED = -1


class Graph:
    """Undirected simple graph on vertices ``0 .. n_vertices - 1``."""

    def __init__(self, n_vertices: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n_vertices < 0:
            raise InvalidParameterError(f"n_vertices must be >= 0, got {n_vertices}")
        self._n = int(n_vertices)
        self._adj: list[set[int]] = [set() for _ in range(self._n)]
        self._frozen = False
        self._csr_indptr: np.ndarray | None = None
        self._csr_indices: np.ndarray | None = None
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}`` (idempotent)."""
        if self._frozen:
            raise InvalidParameterError("graph is frozen; cannot add edges")
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise InvalidParameterError(f"self-loops are not allowed (vertex {u})")
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}``; KeyError if absent."""
        if self._frozen:
            raise InvalidParameterError("graph is frozen; cannot remove edges")
        self._adj[u].remove(v)
        self._adj[v].remove(u)

    def freeze(self) -> "Graph":
        """Mark the graph immutable and return ``self`` (for chaining)."""
        self._frozen = True
        return self

    def copy(self, *, frozen: bool = False) -> "Graph":
        """An independent copy (unfrozen by default, so it can be edited)."""
        g = Graph(self._n)
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    g.add_edge(u, v)
        if frozen:
            g.freeze()
        return g

    def _check_vertex(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise InvalidParameterError(f"vertex {u} out of range [0, {self._n})")

    # -- basic queries -----------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return sum(len(a) for a in self._adj) // 2

    @property
    def frozen(self) -> bool:
        return self._frozen

    def vertices(self) -> range:
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def neighbors(self, u: int) -> frozenset[int]:
        self._check_vertex(u)
        return frozenset(self._adj[u])

    def sorted_neighbors(self, u: int) -> list[int]:
        """Neighbours of ``u`` in ascending order (deterministic iteration)."""
        self._check_vertex(u)
        return sorted(self._adj[u])

    def degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._adj[u])

    def degrees(self) -> np.ndarray:
        return np.array([len(a) for a in self._adj], dtype=np.int64)

    def max_degree(self) -> int:
        """The paper's Δ(G)."""
        return max((len(a) for a in self._adj), default=0)

    def min_degree(self) -> int:
        return min((len(a) for a in self._adj), default=0)

    def edges(self) -> Iterator[Edge]:
        """All edges in canonical (u < v) order, sorted lexicographically."""
        for u in range(self._n):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set[Edge]:
        return set(self.edges())

    def __contains__(self, edge: tuple[int, int]) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:  # frozen graphs can key caches
        if not self._frozen:
            raise TypeError("only frozen graphs are hashable")
        return hash((self._n, frozenset(self.edges())))

    def __repr__(self) -> str:
        return f"Graph(n_vertices={self._n}, n_edges={self.n_edges})"

    # -- CSR view (lazy, built on first vectorized sweep) -------------------

    def _ensure_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr_indptr is None or not self._frozen:
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            for u in range(self._n):
                indptr[u + 1] = indptr[u] + len(self._adj[u])
            indices = np.empty(indptr[-1], dtype=np.int64)
            for u in range(self._n):
                nbrs = sorted(self._adj[u])
                indices[indptr[u] : indptr[u + 1]] = nbrs
            if self._frozen:
                # the cached arrays are handed out by csr_arrays(); freeze
                # them so a caller cannot corrupt every later validation
                indptr.setflags(write=False)
                indices.setflags(write=False)
                self._csr_indptr, self._csr_indices = indptr, indices
            return indptr, indices
        return self._csr_indptr, self._csr_indices

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The adjacency as CSR ``(indptr, indices)`` NumPy arrays.

        Neighbours of ``u`` are ``indices[indptr[u]:indptr[u+1]]``, sorted
        ascending.  Cached on frozen graphs; rebuilt per call otherwise.
        Callers must not mutate the returned arrays.
        """
        return self._ensure_csr()

    @staticmethod
    def from_csr(indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Rebuild a frozen graph from ``csr_arrays()`` output.

        The inverse of :meth:`csr_arrays` for frozen graphs: the adjacency
        sets are reconstructed and — when the passed arrays are already
        read-only ``int64`` (e.g. shared-memory views attached by
        :mod:`repro.engine.shm`) — they are installed directly as the CSR
        cache, so later vectorized sweeps in workers reuse the shared
        planes with zero copies.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0 or indptr[0] != 0:
            raise InvalidParameterError("indptr must be 1-D with indptr[0] == 0")
        if indices.ndim != 1 or int(indptr[-1]) != indices.size:
            raise InvalidParameterError("indices length must equal indptr[-1]")
        n = indptr.size - 1
        g = Graph(n)
        for u in range(n):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < int(v):
                    g.add_edge(u, int(v))
        g.freeze()
        if not indptr.flags.writeable and not indices.flags.writeable:
            g._csr_indptr, g._csr_indices = indptr, indices
        return g

    # -- traversal ----------------------------------------------------------

    def bfs_distances(self, source: int) -> np.ndarray:
        """Distances from ``source`` to every vertex (-1 if unreachable)."""
        self._check_vertex(source)
        indptr, indices = self._ensure_csr()
        dist = np.full(self._n, _UNREACHED, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            # gather all neighbours of the frontier in one vectorized sweep
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            counts = ends - starts
            if counts.sum() == 0:
                break
            gather = np.concatenate([indices[s:e] for s, e in zip(starts, ends)])
            fresh = gather[dist[gather] == _UNREACHED]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            dist[fresh] = d
            frontier = fresh
        return dist

    def bfs_tree(self, source: int) -> list[int]:
        """Parent array of a BFS tree rooted at ``source`` (-1 at the root
        and at unreachable vertices).  Deterministic: neighbours explored in
        ascending order."""
        self._check_vertex(source)
        parent = [_UNREACHED] * self._n
        seen = [False] * self._n
        seen[source] = True
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            for v in sorted(self._adj[u]):
                if not seen[v]:
                    seen[v] = True
                    parent[v] = u
                    queue.append(v)
        return parent

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance; -1 if disconnected."""
        self._check_vertex(v)
        if u == v:
            return 0
        # early-exit bidirectional-ish BFS kept simple: plain BFS with stop
        seen = {u: 0}
        queue: deque[int] = deque([u])
        while queue:
            w = queue.popleft()
            dw = seen[w]
            for x in self._adj[w]:
                if x not in seen:
                    if x == v:
                        return dw + 1
                    seen[x] = dw + 1
                    queue.append(x)
        return _UNREACHED

    def shortest_path(self, u: int, v: int) -> list[int] | None:
        """One shortest u→v path (deterministic tie-break), or None."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return [u]
        parent: dict[int, int] = {u: -1}
        queue: deque[int] = deque([u])
        while queue:
            w = queue.popleft()
            for x in sorted(self._adj[w]):
                if x not in parent:
                    parent[x] = w
                    if x == v:
                        path = [v]
                        while parent[path[-1]] != -1:
                            path.append(parent[path[-1]])
                        return path[::-1]
                    queue.append(x)
        return None

    def ball(self, u: int, radius: int) -> set[int]:
        """All vertices at distance ≤ ``radius`` from ``u`` (including u)."""
        self._check_vertex(u)
        if radius < 0:
            raise InvalidParameterError(f"radius must be >= 0, got {radius}")
        seen = {u}
        frontier = [u]
        for _ in range(radius):
            nxt = []
            for w in frontier:
                for x in self._adj[w]:
                    if x not in seen:
                        seen.add(x)
                        nxt.append(x)
            if not nxt:
                break
            frontier = nxt
        return seen

    def sphere(self, u: int, radius: int) -> set[int]:
        """Vertices at distance exactly ``radius`` from ``u``."""
        if radius == 0:
            return {u}
        return self.ball(u, radius) - self.ball(u, radius - 1)

    def is_connected(self) -> bool:
        if self._n == 0:
            return True
        return int((self.bfs_distances(0) != _UNREACHED).sum()) == self._n

    def eccentricity(self, u: int) -> int:
        dist = self.bfs_distances(u)
        if (dist == _UNREACHED).any():
            raise InvalidParameterError("eccentricity undefined: graph disconnected")
        return int(dist.max())

    def diameter(self) -> int:
        """Exact diameter via an all-sources BFS sweep.

        O(N · (N + E)); fine for the instance sizes in this repository
        (the benchmarks cap exact-diameter checks at N ≤ 2^14).
        """
        if self._n == 0:
            return 0
        best = 0
        for u in range(self._n):
            dist = self.bfs_distances(u)
            if (dist == _UNREACHED).any():
                raise InvalidParameterError("diameter undefined: graph disconnected")
            best = max(best, int(dist.max()))
        return best

    def radius_lower_bound(self, samples: Sequence[int]) -> int:
        """max over sampled sources of eccentricity — a diameter lower bound."""
        return max(self.eccentricity(u) for u in samples)

    # -- interop -------------------------------------------------------------

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (nodes 0..N-1)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @staticmethod
    def from_networkx(g) -> "Graph":
        """Build from a networkx graph whose nodes are 0..N-1 integers."""
        n = g.number_of_nodes()
        nodes = set(g.nodes())
        if nodes != set(range(n)):
            raise InvalidParameterError(
                "from_networkx requires nodes to be exactly 0..N-1"
            )
        out = Graph(n)
        for u, v in g.edges():
            out.add_edge(int(u), int(v))
        return out.freeze()

    @staticmethod
    def from_edge_list(n_vertices: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        return Graph(n_vertices, edges).freeze()

    def is_subgraph_of(self, other: "Graph") -> bool:
        """True iff every edge of ``self`` is an edge of ``other`` (same N)."""
        if self._n != other._n:
            return False
        return all(other.has_edge(u, v) for u, v in self.edges())

    def edge_difference(self, other: "Graph") -> set[Edge]:
        """Edges of ``self`` that are not edges of ``other``."""
        return self.edge_set() - other.edge_set()

    def degree_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for a in self._adj:
            hist[len(a)] = hist.get(len(a), 0) + 1
        return dict(sorted(hist.items()))

    def path_is_valid(self, path: Sequence[int]) -> bool:
        """True iff consecutive entries of ``path`` are edges of the graph."""
        if len(path) == 0:
            return False
        for a, b in zip(path, path[1:]):
            if not self.has_edge(a, b):
                return False
        return True

    def path_edges(self, path: Sequence[int]) -> list[Edge]:
        return [canonical_edge(a, b) for a, b in zip(path, path[1:])]

    def vertices_within(self, u: Vertex, k: int) -> set[int]:
        """Alias of :meth:`ball` named after Definition 1's distance bound."""
        return self.ball(u, k)
