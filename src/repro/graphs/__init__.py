"""Graph substrate: integer-vertex graphs, hypercubes, variants, trees.

This package deliberately implements its own small graph kernel
(:class:`repro.graphs.base.Graph`) instead of building on networkx: the
constructions in the paper are defined over vertex sets ``{0,1}^n`` that we
encode as integers, the hot loops (edge generation, BFS sweeps) are
vectorized with NumPy, and keeping the kernel minimal makes the validator's
checks auditable.  ``to_networkx``/``from_networkx`` converters are provided
for cross-checking and interop.
"""

from repro.graphs.base import Graph
from repro.graphs.hypercube import hypercube
from repro.graphs.trees import (
    balanced_ternary_core_tree,
    complete_binary_tree,
    path_graph,
    spider,
    star,
)
from repro.graphs.variants import (
    cube_connected_cycles,
    cycle_graph,
    de_bruijn,
    folded_hypercube,
    star_graph_permutation,
    torus,
)

__all__ = [
    "Graph",
    "hypercube",
    "folded_hypercube",
    "cube_connected_cycles",
    "de_bruijn",
    "star_graph_permutation",
    "torus",
    "cycle_graph",
    "complete_binary_tree",
    "balanced_ternary_core_tree",
    "path_graph",
    "star",
    "spider",
]
