"""Hypercube variants and classic interconnection topologies.

Section 1 and Section 3 of the paper situate the sparse hypercube among the
classic degree/diameter trade-off topologies: cube-connected cycles,
folded hypercubes, de Bruijn graphs, star graphs, tori, cycles.  We
implement the ones used by experiment E14's comparison table.  Each is a
from-scratch construction over integer vertex ids with an explicit,
documented vertex encoding.
"""

from __future__ import annotations

from itertools import permutations

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = [
    "cycle_graph",
    "torus",
    "folded_hypercube",
    "cube_connected_cycles",
    "de_bruijn",
    "star_graph_permutation",
    "crossed_cube",
    "mobius_cube",
]


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (n >= 3)."""
    if n < 3:
        raise InvalidParameterError(f"cycle needs >= 3 vertices, got {n}")
    return Graph(n, ((i, (i + 1) % n) for i in range(n))).freeze()


def torus(rows: int, cols: int) -> Graph:
    """The 2-D torus (wrap-around mesh).  Vertex ``(r, c)`` is ``r*cols + c``.

    Degenerate wrap edges that would duplicate (2-long rings) are kept
    simple: rows/cols must be >= 3.
    """
    if rows < 3 or cols < 3:
        raise InvalidParameterError(f"torus needs dims >= 3, got {rows}x{cols}")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g.freeze()


def folded_hypercube(n: int) -> Graph:
    """``Q_n`` plus all complement edges ``{u, ~u}`` (El-Amawy & Latifi).

    Degree ``n + 1``, diameter ``⌈n/2⌉``: the classic "shorter diameter by
    adding edges" variant the paper contrasts with its "smaller degree by
    deleting edges" approach.
    """
    from repro.graphs.hypercube import hypercube

    if n < 1:
        raise InvalidParameterError(f"folded hypercube needs n >= 1, got {n}")
    base = hypercube(n).copy()
    full = (1 << n) - 1
    for u in range(1 << (n - 1)):
        base.add_edge(u, u ^ full)
    return base.freeze()


def cube_connected_cycles(n: int) -> Graph:
    """CCC(n): each ``Q_n`` vertex is replaced by an n-cycle (Preparata &
    Vuillemin).  Vertex ``(u, i)`` — cube position ``u``, cycle position
    ``i ∈ [0, n)`` — is encoded as ``u * n + i``.

    Degree 3 for n >= 3: the classic constant-degree hypercube derivative
    the paper cites as prior degree-reduction work (at the cost of a larger
    diameter; the sparse hypercube instead preserves minimum *broadcast
    time* under k-line calls).
    """
    if n < 3:
        raise InvalidParameterError(f"CCC needs n >= 3, got {n}")
    g = Graph(n * (1 << n))
    for u in range(1 << n):
        for i in range(n):
            v = u * n + i
            g.add_edge(v, u * n + (i + 1) % n)  # cycle edge
            w = u ^ (1 << i)
            if u < w:  # cube edge in dimension i+1
                g.add_edge(v, w * n + i)
    return g.freeze()


def de_bruijn(symbols: int, length: int) -> Graph:
    """Undirected de Bruijn graph ``UB(symbols, length)``.

    Vertices are length-``length`` strings over ``symbols`` letters
    (encoded base-``symbols``); ``u`` and ``v`` are adjacent iff one is a
    shift of the other (ignoring direction, dropping self-loops and
    parallel edges).  Degree ≤ 2·symbols.
    """
    if symbols < 2 or length < 1:
        raise InvalidParameterError(
            f"de Bruijn needs symbols >= 2, length >= 1, got {symbols}, {length}"
        )
    n = symbols**length
    g = Graph(n)
    for u in range(n):
        shifted = (u * symbols) % n
        for a in range(symbols):
            v = shifted + a
            if u != v:
                g.add_edge(u, v)
    return g.freeze()


def crossed_cube(n: int) -> Graph:
    """The crossed cube ``CQ_n`` (Efe 1991) — n-regular, diameter ⌈(n+1)/2⌉.

    Another of the §3 "shorter diameter by replacing edges" variants.
    Definition (Efe): pairs of bits ``(u_{2i}, u_{2i-1})`` and
    ``(v_{2i}, v_{2i-1})`` are *pair related* iff equal or complementary
    (00~00, 10~10, 01~11, 11~01); ``u`` and ``v`` are adjacent across
    "dimension" d iff they agree above d, differ at d, all lower bit
    pairs are pair related, and (for even d) ``u_{d-1} = v_{d-1}``.

    Implemented literally from the definition; O(N²·n) construction, so
    keep n ≤ 12.
    """
    if n < 1 or n > 12:
        raise InvalidParameterError(f"crossed cube supported for 1 <= n <= 12, got {n}")

    def pair_related(a: int, b: int) -> bool:
        # Efe's relation R = {(00,00),(10,10),(01,11),(11,01)} on 2-bit
        # values: equal when the low bit is 0, complementary-in-the-high-
        # bit when the low bit is 1
        if a == b:
            return (a & 1) == 0
        return {a, b} == {1, 3}

    def adjacent(u: int, v: int) -> bool:
        x = u ^ v
        if x == 0:
            return False
        d = x.bit_length()  # highest differing dimension (1-indexed)
        # bits above d must agree (they do by construction of d)
        # check lower pairs: bits 1..d-1 grouped in pairs from the bottom
        if d % 2 == 0:
            # u_{d-1} must equal v_{d-1}
            if ((u >> (d - 2)) & 1) != ((v >> (d - 2)) & 1):
                return False
            top_pairs = (d - 2) // 2
        else:
            top_pairs = (d - 1) // 2
        for i in range(top_pairs):
            ua = (u >> (2 * i)) & 3
            va = (v >> (2 * i)) & 3
            if not pair_related(ua, va):
                return False
        return True

    g = Graph(1 << n)
    for u in range(1 << n):
        for v in range(u + 1, 1 << n):
            if adjacent(u, v):
                g.add_edge(u, v)
    return g.freeze()


def mobius_cube(n: int) -> Graph:
    """The 0-Möbius cube (Cull & Larson) — a twisted-cube-family variant.

    Vertex ``u`` connects across dimension i to ``u`` with bit i flipped
    when bit i+1 of u is 0 (plain hypercube edge), and to ``u`` with bits
    1..i all flipped when bit i+1 is 1.  n-regular, diameter ≈ (n+2)/2 —
    included as the twisted-cube representative from the paper's §3
    variant survey [1,12,21].
    """
    if n < 1 or n > 16:
        raise InvalidParameterError(f"möbius cube supported for 1 <= n <= 16, got {n}")
    g = Graph(1 << n)
    for u in range(1 << n):
        for i in range(1, n + 1):
            above = (u >> i) & 1 if i < n else 0  # bit i+1 (0 for i = n)
            if above == 0:
                v = u ^ (1 << (i - 1))
            else:
                v = u ^ ((1 << i) - 1)  # flip bits 1..i
            if u != v:
                g.add_edge(u, v)
    return g.freeze()


def star_graph_permutation(n: int) -> Graph:
    """The star graph ``S_n`` on permutations of ``{0..n-1}`` (Akers et al.).

    Adjacent iff one permutation is the other with positions 0 and ``i``
    swapped (i ≥ 1).  Degree ``n - 1``; ``n!`` vertices.  Included as the
    representative "Cayley graph with sublogarithmic degree" topology from
    the paper's Section 1 survey.  Vertex ids are the lexicographic ranks
    of the permutations.
    """
    if n < 2 or n > 7:
        raise InvalidParameterError(f"star graph supported for 2 <= n <= 7, got {n}")
    perms = sorted(permutations(range(n)))
    rank = {p: i for i, p in enumerate(perms)}
    g = Graph(len(perms))
    for p, u in rank.items():
        for i in range(1, n):
            q = list(p)
            q[0], q[i] = q[i], q[0]
            v = rank[tuple(q)]
            if u < v:
                g.add_edge(u, v)
    return g.freeze()
