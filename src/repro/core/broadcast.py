"""Schemes ``Broadcast_2`` (Section 3) and ``Broadcast_k`` (Section 4).

The recursive description in the paper unrolls to a flat n-round loop
(one round per dimension, highest first):

* **Rounds for dimension i > n_1** — Phase 1 at the level owning ``i``
  (and, via the recursion, Phase 1 of every inner scheme): every informed
  vertex ``w`` places the call :func:`repro.core.routing.reach_and_flip`
  ``(w, i)`` — direct if ``w`` owns the i-dimensional edge, otherwise
  relayed through label-fixing block flips.  The newly informed vertex
  agrees with ``w`` above bit ``i`` and has bit ``i`` flipped, so after
  the round the informed set realizes every prefix of bits ``n..i``
  exactly once (the doubling invariant of Theorem 4's proof).

* **Rounds for dimension i ≤ n_1** — Phase 2 of the innermost scheme:
  every informed vertex calls ``⊕_i w`` directly (those edges always
  exist in the complete core cube); the classic binomial-tree broadcast
  within each core subcube.

Total: exactly ``n = log₂ N`` rounds — minimum time.  Validity (edge- and
receiver-disjointness, call length ≤ k) is *not* assumed: every schedule
the test-suite and benchmarks produce is checked by
:mod:`repro.model.validator` against Definition 1.
"""

from __future__ import annotations

from heapq import merge

from repro.core.routing import reach_and_flip
from repro.core.sparse_hypercube import SparseHypercube
from repro.types import Call, InvalidParameterError, Schedule
from repro.util.bits import flip_dim

__all__ = ["broadcast_schedule", "broadcast_2", "broadcast_k", "phase1_round_calls"]


def phase1_round_calls(
    sh: SparseHypercube, informed: list[int], dim: int
) -> list[Call]:
    """The calls of the Phase-1 round for ``dim`` (> n_1), one per informed
    vertex, in iteration order.

    Callers must pass ``informed`` already sorted ascending (as
    :func:`broadcast_schedule` maintains across rounds) to get the
    deterministic sorted-source call order the schemes promise; the old
    per-round ``sorted()`` re-sort was a hot-path cost on an
    already-sorted list.
    """
    calls = []
    for w in informed:
        path = reach_and_flip(sh, w, dim)
        calls.append(Call.via(path))
    return calls


def _merge_receivers(informed: list[int], calls: list[Call]) -> list[int]:
    """The informed list after a round, kept sorted: merge the (sorted)
    old list with the round's receivers instead of re-sorting everything.
    The receivers at most double the list, so this is O(N log m) per
    round against the old O(N log N) full sort."""
    return list(merge(informed, sorted(c.receiver for c in calls)))


def broadcast_schedule(sh: SparseHypercube, source: int) -> Schedule:
    """The minimum-time k-line broadcast schedule from ``source``.

    Implements ``Broadcast_2`` when ``sh.k == 2`` and ``Broadcast_k``
    otherwise (they coincide structurally; see module docstring).
    """
    if not (0 <= source < sh.n_vertices):
        raise InvalidParameterError(
            f"source {source} out of range [0, {sh.n_vertices})"
        )
    schedule = Schedule(source=source)
    informed = [source]  # kept sorted ascending across rounds
    # Phase 1 rounds: dimensions n down to n_1 + 1
    for dim in range(sh.n, sh.base_dims, -1):
        calls = phase1_round_calls(sh, informed, dim)
        schedule.append_round(calls)
        informed = _merge_receivers(informed, calls)
    # Phase 2 rounds: dimensions n_1 down to 1 (binomial in core cubes)
    for dim in range(sh.base_dims, 0, -1):
        calls = [Call.direct(w, flip_dim(w, dim)) for w in informed]
        schedule.append_round(calls)
        informed = _merge_receivers(informed, calls)
    assert len(informed) == sh.n_vertices, (
        f"broadcast reached {len(informed)} of {sh.n_vertices} vertices"
    )
    return schedule


def broadcast_2(sh: SparseHypercube, source: int) -> Schedule:
    """Scheme ``Broadcast_2(s)`` — requires a base construction (k = 2)."""
    if sh.k != 2:
        raise InvalidParameterError(
            f"Broadcast_2 applies to Construct_BASE graphs (k=2), got k={sh.k}"
        )
    return broadcast_schedule(sh, source)


def broadcast_k(sh: SparseHypercube, source: int) -> Schedule:
    """Scheme ``Broadcast_k(s)`` for the recursive construction (any k ≥ 2)."""
    return broadcast_schedule(sh, source)
