"""A constructive minimum-time scheme for the Theorem-1 trees.

The paper proves Theorem 1 by citing Farley's line-broadcast theorem [14];
searching for schedules works for small h but the instances become
genuinely tight as h grows (the last-entered branch must sustain the
maximal growth rate ``x → 2x + 1`` every round).  This module gives an
explicit scheme, built from two primitives on complete binary trees that
we prove-by-validation in the test-suite:

**Pump P(s)** — tree ``T_s`` (height s, ``2^{s+1} − 1`` vertices), nothing
informed, an external *helper* adjacent to the root places one call into
the tree every round.  Round ``i`` (1-based) informs exactly level
``i − 1``:

* the helper calls the all-right vertex ``right^{i-1}(root)`` along the
  right spine;
* every informed vertex ``a`` at level ``ℓ ≤ i − 3`` calls
  ``(a.left · right^{i-3-ℓ}).right`` — one step left, then down the right
  chain;
* every vertex at level ``i − 2`` calls its left child.

Each call descends, and the (left-step, right-chain) decomposition of a
target's parent is unique, so calls are pairwise edge-disjoint; the
helper's pure right spine is disjoint from all chains (they start with a
left step).  ``T_s`` completes in ``s + 1`` rounds — the minimum.

**Root-fed Q(s)** — ``T_s`` with only the root informed, no helper.
Round 1: root calls its left child.  Rounds 2..s+1: the left subtree runs
``Q(s-1)`` while the root *pumps* the right subtree as the helper of
``P(s-1)``.  Completes in ``s + 1`` rounds — also the minimum, and the
right subtree is exactly the tight pump case.

**Composition on B_h** (centre c, three branches ``T_{h-1}``), budget
``⌈log₂(3·2^h − 2)⌉ = h + 2`` rounds (h ≥ 2):

* source = centre: round 1 ``c→r₁`` (branch 1 then runs Q), round 2
  ``c→r₂`` (branch 2 runs Q), rounds 3..h+2: c pumps branch 3 via P.
* source in a branch at depth d: round 1 ``s→c`` (length d ≤ h), round 2
  ``s→r_b`` (up its own branch) after which branch b runs Q; the centre
  seeds one other branch at round 2 and pumps the last one from round 3.

Every call has length ≤ h < 2h, so the scheme actually certifies
membership in ``G_h``, strictly stronger than Theorem 1's ``G_{2h}``
claim (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.graphs.trees import balanced_ternary_core_tree
from repro.types import Call, InvalidParameterError, Schedule

__all__ = ["pump_calls", "rootfed_calls", "ternary_tree_schedule"]


class _HeapTree:
    """Local coordinates of a complete binary tree of height ``s``:
    index 0 is the root, children of i are 2i+1 / 2i+2."""

    def __init__(self, height: int, to_global) -> None:
        self.s = height
        self.size = (1 << (height + 1)) - 1
        self.to_global = to_global

    def level(self, i: int) -> int:
        return (i + 1).bit_length() - 1

    def level_range(self, ell: int) -> range:
        return range((1 << ell) - 1, (1 << (ell + 1)) - 1)

    def left(self, i: int) -> int:
        return 2 * i + 1

    def right(self, i: int) -> int:
        return 2 * i + 2

    def right_chain(self, i: int, steps: int) -> list[int]:
        out = [i]
        for _ in range(steps):
            out.append(self.right(out[-1]))
        return out


def pump_calls(
    tree: _HeapTree, helper_prefix: list[int], pump_round: int
) -> list[tuple[int, ...]]:
    """The calls (as global-vertex paths) of P's round ``pump_round``.

    ``helper_prefix`` is the global path from the helper vertex up to (but
    excluding) the tree's root; the helper call is
    ``helper_prefix + [root, right, …, right^{i-1}]``.
    """
    i = pump_round
    if not (1 <= i <= tree.s + 1):
        raise InvalidParameterError(f"pump round {i} out of range 1..{tree.s + 1}")
    calls: list[tuple[int, ...]] = []
    # helper: right spine down to level i-1
    spine = tree.right_chain(0, i - 1)
    calls.append(tuple(helper_prefix + [tree.to_global(x) for x in spine]))
    # levels ℓ <= i-3: left step, right chain, then the right child
    for ell in range(0, i - 2):
        for a in tree.level_range(ell):
            chain = tree.right_chain(tree.left(a), i - 3 - ell)
            path = [a] + chain + [tree.right(chain[-1])]
            calls.append(tuple(tree.to_global(x) for x in path))
    # level i-2: left child directly
    if i >= 2:
        for a in tree.level_range(i - 2):
            calls.append((tree.to_global(a), tree.to_global(tree.left(a))))
    return calls


def rootfed_calls(tree: _HeapTree, q_round: int) -> list[tuple[int, ...]]:
    """The calls of Q's round ``q_round`` (root informed, no helper).

    Implemented by unrolling the recursion: Q(s) round 1 is root→left;
    round j ≥ 2 is Q(s-1) round j-1 on the left subtree plus P(s-1) round
    j-1 on the right subtree with the root as helper.
    """
    j = q_round
    if tree.s == 0:
        return []
    if not (1 <= j <= tree.s + 1):
        raise InvalidParameterError(f"Q round {j} out of range 1..{tree.s + 1}")
    if j == 1:
        return [(tree.to_global(0), tree.to_global(tree.left(0)))]
    calls: list[tuple[int, ...]] = []
    left_sub = _HeapTree(tree.s - 1, lambda x: tree.to_global(_embed(x, tree.left(0))))
    right_sub = _HeapTree(
        tree.s - 1, lambda x: tree.to_global(_embed(x, tree.right(0)))
    )
    calls.extend(rootfed_calls(left_sub, j - 1))
    calls.extend(pump_calls(right_sub, [tree.to_global(0)], j - 1))
    return calls


def _embed(local: int, sub_root: int) -> int:
    """Map a heap index within a subtree to the heap index in the parent
    tree whose subtree root has index ``sub_root``."""
    # walk the path bits of `local` starting from sub_root
    if local == 0:
        return sub_root
    path = []
    i = local
    while i > 0:
        path.append(i % 2)  # 1 => left child (i = 2p+1), 0 => right (i = 2p+2)
        i = (i - 1) // 2
    node = sub_root
    for bit in reversed(path):
        node = 2 * node + 1 if bit == 1 else 2 * node + 2
    return node


def ternary_tree_schedule(h: int, source: int) -> Schedule:
    """The constructive minimum-time schedule on B_h from any source.

    Completes in ``⌈log₂(3·2^h − 2)⌉`` rounds with every call of length at
    most ``max(2, h)``; validated against Definition 1 by the callers in
    tests/benches.
    """
    if h < 1:
        raise InvalidParameterError(f"h must be >= 1, got {h}")
    graph = balanced_ternary_core_tree(h)
    n = graph.n_vertices
    if not (0 <= source < n):
        raise InvalidParameterError(f"source {source} not a vertex of B_{h}")
    block = (1 << h) - 1
    roots = [1 + b * block for b in range(3)]

    if h == 1:  # K_{1,3}: 2 rounds, handled directly
        schedule = Schedule(source=source)
        if source == 0:
            r1, r2, r3 = roots
            schedule.append_round([Call.direct(0, r1)])
            schedule.append_round([Call.direct(0, r2), Call.via((r1, 0, r3))])
        else:
            others = [r for r in roots if r != source]
            schedule.append_round([Call.direct(source, 0)])
            schedule.append_round(
                [Call.via((source, 0, others[0])), Call.direct(0, others[1])]
            )
        return schedule

    def branch_tree(b: int) -> _HeapTree:
        base = roots[b]
        return _HeapTree(h - 1, lambda x, base=base: base + x)

    total_rounds = h + 2
    rounds: list[list[tuple[int, ...]]] = [[] for _ in range(total_rounds)]

    if source == 0:
        # r1: c→r1 (branch 0 runs Q from round 2)
        rounds[0].append((0, roots[0]))
        for j in range(1, h + 1):
            rounds[j].extend(rootfed_calls(branch_tree(0), j))
        # r2: c→r2 (branch 1 runs Q from round 3)
        rounds[1].append((0, roots[1]))
        for j in range(1, h + 1):
            rounds[j + 1].extend(rootfed_calls(branch_tree(1), j))
        # rounds 3..h+2: centre pumps branch 2
        for j in range(1, h + 1):
            rounds[j + 1].extend(pump_calls(branch_tree(2), [0], j))
    else:
        b_src = (source - 1) // block
        others = [b for b in range(3) if b != b_src]
        # r1: s→c (up the branch, then the centre edge)
        up_path = _path_to_root(source, roots[b_src])
        rounds[0].append(tuple(up_path + [0]))
        # source's own branch: reach its root at r2 (if needed), then Q.
        # Q covers every non-root branch vertex, including the source —
        # drop the one call that would re-inform it (the source simply
        # starts participating at its scheduled Q slot).
        if source == roots[b_src]:
            for j in range(1, h + 1):
                rounds[j].extend(
                    p for p in rootfed_calls(branch_tree(b_src), j) if p[-1] != source
                )
        else:
            rounds[1].append(tuple(up_path))
            for j in range(1, h + 1):
                rounds[j + 1].extend(
                    p for p in rootfed_calls(branch_tree(b_src), j) if p[-1] != source
                )
        # r2: c seeds the first other branch, which runs Q from r3
        rounds[1].append((0, roots[others[0]]))
        for j in range(1, h + 1):
            rounds[j + 1].extend(rootfed_calls(branch_tree(others[0]), j))
        # rounds 3..h+2: c pumps the second other branch
        for j in range(1, h + 1):
            rounds[j + 1].extend(pump_calls(branch_tree(others[1]), [0], j))

    schedule = Schedule(source=source)
    for call_paths in rounds:
        schedule.append_round([Call.via(p) for p in call_paths])
    return schedule


def _path_to_root(v: int, branch_root: int) -> list[int]:
    """Global path from ``v`` up to its branch root (heap parent walk)."""
    base = branch_root
    local = v - base
    path = [v]
    while local != 0:
        local = (local - 1) // 2
        path.append(base + local)
    return path
