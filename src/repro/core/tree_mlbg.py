"""Theorem 1: bounded-degree trees are k-mlbgs for large k.

The construction (Fig. 1): a centre vertex with three complete binary
trees of height ``h − 1`` attached — ``N = 3·2^h − 2`` vertices, Δ = 3,
every pairwise distance ≤ 2h.  Since the graph is a tree, every call uses
the unique path between its endpoints, so for ``k ≥ 2h`` the call-length
constraint never binds and Theorem 1 states the tree lies in ``G_{2h}``.

The paper proves existence by citing the line-broadcast theorem of [14];
here we *find* the schedules: exact branch-and-bound for small h,
randomized capacity-aware heuristic above that, both independently
validated against Definition 1 (DESIGN.md, decision 5).
"""

from __future__ import annotations

from repro.graphs.base import Graph
from repro.graphs.trees import balanced_ternary_core_tree, ternary_core_tree_order
from repro.model.validator import assert_valid_broadcast, minimum_broadcast_rounds
from repro.schedulers.registry import ScheduleRequest, run_scheduler
from repro.types import InvalidParameterError, ReproError, Schedule

__all__ = [
    "theorem1_tree",
    "theorem1_k",
    "theorem1_tree_broadcast",
    "verify_theorem1_instance",
]


def theorem1_tree(h: int) -> Graph:
    """The Theorem-1 tree for parameter ``h ≥ 1`` (alias of the generator
    in :mod:`repro.graphs.trees`, re-exported here as part of the core
    API)."""
    return balanced_ternary_core_tree(h)


def theorem1_k(h: int) -> int:
    """The call length for which Theorem 1 claims membership: ``k = 2h``
    (= the tree's diameter bound)."""
    if h < 1:
        raise InvalidParameterError(f"h must be >= 1, got {h}")
    return 2 * h


def theorem1_tree_broadcast(
    tree: Graph,
    source: int,
    *,
    h: int | None = None,
    k: int | None = None,
    exact_limit: int = 10,
    restarts: int = 600,
    seed: int = 0,
) -> Schedule:
    """A minimum-time k-line broadcast schedule on a Theorem-1 tree.

    When ``h`` is given (the tree is ``B_h``), uses the explicit
    constructive scheme of :mod:`repro.core.tree_scheme` — valid for every
    source and every h, with calls of length ≤ max(2, h).  Otherwise falls
    back to exact search (tiny trees) or the randomized heuristic.  The
    returned schedule is always validated before being handed back.
    """
    k_eff = k if k is not None else tree.n_vertices - 1
    schedule: Schedule | None
    if h is not None:
        from repro.core.tree_scheme import ternary_tree_schedule

        schedule = ternary_tree_schedule(h, source)
    elif tree.n_vertices <= exact_limit:
        schedule = run_scheduler(
            "search",
            ScheduleRequest(graph=tree, source=source, k=k_eff),
            validate=False,
        ).schedule
    else:
        schedule = run_scheduler(
            "greedy",
            ScheduleRequest(
                graph=tree,
                source=source,
                k=k_eff,
                seed=seed,
                params={"restarts": restarts},
            ),
            validate=False,
        ).schedule
    if schedule is None:
        raise ReproError(
            f"no minimum-time schedule found (N={tree.n_vertices}, "
            f"source={source}, k={k_eff}); Theorem 1 guarantees existence — "
            f"increase the search budget"
        )
    assert_valid_broadcast(tree, schedule, k_eff)
    return schedule


def verify_theorem1_instance(
    h: int, *, sources: list[int] | None = None, seed: int = 0
) -> dict:
    """Machine-check Theorem 1 for one ``h``: structure + schedules.

    Returns a report dict used by experiment E01:
    ``{'h', 'n_vertices', 'max_degree', 'diameter', 'k', 'rounds',
    'sources_checked'}``.
    """
    tree = theorem1_tree(h)
    k = theorem1_k(h)
    n = tree.n_vertices
    if n != ternary_core_tree_order(h):
        raise ReproError(f"order mismatch at h={h}")
    diameter = tree.diameter()
    if diameter > 2 * h:
        raise ReproError(f"diameter {diameter} exceeds 2h={2*h} at h={h}")
    if tree.max_degree() > 3:
        raise ReproError(f"max degree {tree.max_degree()} exceeds 3 at h={h}")
    srcs = sources if sources is not None else list(range(n))
    rounds = minimum_broadcast_rounds(n)
    for s in srcs:
        schedule = theorem1_tree_broadcast(tree, s, h=h, k=k, seed=seed)
        if len(schedule.rounds) != rounds:
            raise ReproError(
                f"schedule from {s} used {len(schedule.rounds)} rounds, "
                f"minimum is {rounds}"
            )
    return {
        "h": h,
        "n_vertices": n,
        "max_degree": tree.max_degree(),
        "diameter": diameter,
        "k": k,
        "rounds": rounds,
        "sources_checked": len(srcs),
    }
