"""The paper's analytic bounds as checkable functions.

Lower bounds (on Δ of any k-mlbg of order N = 2^n):

* Theorem 2 (k = 2, 3, 4): ``Δ ≥ ⌈ᵏ√n⌉``.
* Theorem 3 (k ≥ 5): ``Δ ≥ ⌈ᵏ√(n/3 + 1) + 1⌉`` (and Δ ≥ 3, via the
  cycle argument ``2^{n-1} > kn``).
* :func:`moore_degree_lower_bound` — the exact ball-counting bound both
  theorems relax: the source must reach n distinct vertices within
  distance k, and a degree-Δ graph has at most
  ``Δ·Σ_{i=0}^{k-1}(Δ-1)^i`` vertices within distance k.

Upper bounds (achieved by constructions in this repository):

* Theorem 1 (trees, large k): Δ ≤ 3 once ``k ≥ 2⌈log₂((N+2)/3)⌉``.
* Theorem 5 (k = 2): ``Δ ≤ 2⌈√(2n+4)⌉ − 4``.
* Theorem 7 (k ≥ 3): ``Δ ≤ (2k−1)⌈ᵏ√(n−k)⌉``.
* Corollary 1 (k ≥ ⌈log₂ n⌉): ``Δ ≤ 4⌈log₂ n⌉ − 2``.

All roots are exact integer arithmetic; no floats anywhere near a fence.
"""

from __future__ import annotations

import math

from repro.core.params import ceil_root_of_power
from repro.types import InvalidParameterError

__all__ = [
    "ball_size_bound",
    "moore_degree_lower_bound",
    "lower_bound_theorem2",
    "lower_bound_theorem3",
    "cycle_exclusion_holds",
    "degree_lower_bound",
    "theorem1_minimum_k",
    "upper_bound_theorem5",
    "upper_bound_theorem7",
    "upper_bound_corollary1",
    "asymptotic_upper_coefficient",
]


def ball_size_bound(delta: int, k: int) -> int:
    """``Δ·Σ_{i=0}^{k-1}(Δ−1)^i`` — the maximum number of vertices at
    distance 1..k from a vertex in a graph of maximum degree Δ (the count
    used in the proofs of Theorems 2 and 3)."""
    if delta < 0 or k < 1:
        raise InvalidParameterError(f"need Δ >= 0 and k >= 1, got ({delta}, {k})")
    if delta == 0:
        return 0
    if delta == 1:
        return 1
    return delta * sum((delta - 1) ** i for i in range(k))


def moore_degree_lower_bound(n: int, k: int) -> int:
    """Exact ball-counting lower bound: the least Δ with
    ``ball_size_bound(Δ, k) ≥ n``.

    In any minimum-time broadcast of ``N = 2^n`` the informed count must
    exactly double every round, so the source alone must call n distinct
    vertices within distance k — hence Δ of any k-mlbg satisfies this.
    """
    if n < 1 or k < 1:
        raise InvalidParameterError(f"need n, k >= 1, got ({n}, {k})")
    delta = 1
    while ball_size_bound(delta, k) < n:
        delta += 1
    return delta


def lower_bound_theorem2(n: int, k: int) -> int:
    """Theorem 2: ``Δ ≥ ⌈ᵏ√n⌉`` for k ∈ {2, 3, 4} (order N = 2^n)."""
    if k not in (2, 3, 4):
        raise InvalidParameterError(f"Theorem 2 covers k = 2, 3, 4, got {k}")
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    return ceil_root_of_power(n, 1, k)


def cycle_exclusion_holds(n: int, k: int) -> bool:
    """Theorem 3's cycle argument: ``2^{n-1} > k·n`` rules out Δ = 2.

    True whenever a Δ=2 graph (a cycle) cannot be a k-mlbg of order 2^n.
    The paper observes this holds for all n > k ≥ 5 (e.g. k=5, n=6:
    32 > 30).
    """
    if n < 1 or k < 1:
        raise InvalidParameterError(f"need n, k >= 1, got ({n}, {k})")
    return (1 << (n - 1)) > k * n


def lower_bound_theorem3(n: int, k: int) -> int:
    """Theorem 3: for n > k ≥ 5, ``Δ ≥ ⌈ᵏ√(n/3 + 1) + 1⌉`` (with Δ ≥ 3).

    Computed exactly: the least Δ ≥ 3 with ``3((Δ−1)^k − 1) ≥ n`` — the
    inequality the closed form relaxes.
    """
    if k < 5:
        raise InvalidParameterError(f"Theorem 3 covers k >= 5, got {k}")
    if n <= k:
        raise InvalidParameterError(f"Theorem 3 needs n > k, got n={n}, k={k}")
    delta = 3
    while 3 * ((delta - 1) ** k - 1) < n:
        delta += 1
    return delta


def degree_lower_bound(n: int, k: int) -> int:
    """The best lower bound the paper proves for each regime.

    k = 1: Δ ≥ n (the source must call n distinct neighbours — this is
    why Q_n is degree-optimal under store-and-forward).
    k = 2..4: Theorem 2.  k ≥ 5 with n > k: Theorem 3.  Other (n, k):
    the generic ball bound.
    """
    if k == 1:
        return n
    if k in (2, 3, 4):
        return lower_bound_theorem2(n, k)
    if k >= 5 and n > k:
        return lower_bound_theorem3(n, k)
    return moore_degree_lower_bound(n, k)


def theorem1_minimum_k(n_vertices: int) -> int:
    """Theorem 1's threshold ``2⌈log₂((N+2)/3)⌉``: for any k at least this,
    a Δ ≤ 3 k-mlbg with N vertices exists (the ternary-core tree)."""
    if n_vertices < 1:
        raise InvalidParameterError(f"need N >= 1, got {n_vertices}")
    # ⌈log2((N+2)/3)⌉ computed exactly: least h with 3·2^h >= N + 2
    h = 0
    while 3 * (1 << h) < n_vertices + 2:
        h += 1
    return 2 * h


def upper_bound_theorem5(n: int) -> int:
    """Theorem 5: a 2-mlbg of order 2^n exists with
    ``Δ ≤ 2⌈√(2n+4)⌉ − 4`` (n ≥ 1)."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    r = math.isqrt(2 * n + 4)
    if r * r != 2 * n + 4:
        r += 1
    return 2 * r - 4


def upper_bound_theorem7(n: int, k: int) -> int:
    """Theorem 7: for n > k ≥ 3, a k-mlbg of order 2^n exists with
    ``Δ ≤ (2k−1)⌈ᵏ√(n−k)⌉``."""
    if k < 3:
        raise InvalidParameterError(f"Theorem 7 covers k >= 3, got {k}")
    if n <= k:
        raise InvalidParameterError(f"Theorem 7 needs n > k, got n={n}, k={k}")
    return (2 * k - 1) * ceil_root_of_power(n - k, 1, k)


def upper_bound_corollary1(n: int) -> int:
    """Corollary 1: for k ≥ ⌈log₂ n⌉ (and n ≥ k), Δ ≤ 4⌈log₂ log₂ N⌉ − 2
    — degree *doubly* logarithmic in the order."""
    if n < 2:
        raise InvalidParameterError(f"need n >= 2, got {n}")
    return 4 * math.ceil(math.log2(n)) - 2


def asymptotic_upper_coefficient(k: int) -> float:
    """The improved asymptotic coefficient ``2k / ᵏ√2`` from Section 4's
    closing remark (≈ 4.7623 for k = 3): Δ ≤ (2k/ᵏ√2)·ᵏ√n + o(ᵏ√n)."""
    if k < 2:
        raise InvalidParameterError(f"need k >= 2, got {k}")
    return 2 * k / (2 ** (1 / k))
