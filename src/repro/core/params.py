"""Parameter selections for the constructions (Theorems 5 and 7).

The constructions are parameterized by the threshold vector
``(n_1, …, n_{k-1})``; the theorems pick specific values:

* Theorem 5 (k = 2): ``m* = ⌈√(2n+4)⌉ − 2`` yields
  ``Δ ≤ 2⌈√(2n+4)⌉ − 4``.
* Theorem 7 (k ≥ 3): ``n_i* = ⌈(n−k)^{i/k}⌉ + i − 1`` yields
  ``Δ ≤ (2k−1)⌈ᵏ√(n−k)⌉``.
* Section 4 closing remark (k = 3, improved constants):
  ``n_1 = ⌈∛(4n)⌉, n_2 = ⌈∛(2n²)⌉`` gives
  ``Δ ≤ 3·∛4·∛n + o(∛n) ≈ 4.762 ∛n``.

All roots are computed with exact integer arithmetic
(:func:`ceil_root_of_power`) to avoid floating-point fence-post errors.

``optimized_params`` goes beyond the paper: it searches the threshold
space for the vector minimizing the *exact* degree formula — experiment
E13 uses it as an ablation showing how much the analytic choice leaves on
the table.
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.types import InvalidParameterError

__all__ = [
    "isqrt_ceil",
    "ceil_root_of_power",
    "theorem5_m_star",
    "theorem7_params",
    "improved_params_k3",
    "degree_formula_for_thresholds",
    "optimized_params",
    "default_thresholds",
]


def isqrt_ceil(x: int) -> int:
    """⌈√x⌉ with exact integer arithmetic."""
    if x < 0:
        raise InvalidParameterError(f"need x >= 0, got {x}")
    r = math.isqrt(x)
    return r if r * r == x else r + 1


def ceil_root_of_power(base: int, num: int, den: int) -> int:
    """``⌈base^(num/den)⌉`` exactly: smallest x ≥ 0 with x^den ≥ base^num."""
    if base < 0 or num < 0 or den <= 0:
        raise InvalidParameterError(f"bad root arguments ({base}, {num}, {den})")
    if base == 0:
        return 0
    target = base**num
    x = max(1, int(round(target ** (1.0 / den))))
    while x**den >= target:
        x -= 1
    x += 1
    while x**den < target:
        x += 1
    return x


def theorem5_m_star(n: int) -> int:
    """Theorem 5's choice ``m* = ⌈√(2n+4)⌉ − 2`` (valid: 1 ≤ m* < n for n ≥ 2)."""
    if n < 2:
        raise InvalidParameterError(f"Theorem 5's m* needs n >= 2, got {n}")
    m = isqrt_ceil(2 * n + 4) - 2
    if not (1 <= m < n):  # pragma: no cover - guaranteed by the theorem
        raise AssertionError(f"m*={m} out of range for n={n}")
    return m


def theorem7_params(k: int, n: int) -> tuple[int, ...]:
    """Theorem 7's thresholds ``n_i* = ⌈(n−k)^{i/k}⌉ + i − 1`` (ascending).

    Valid for ``n > k ≥ 3``; returns ``(n_1*, …, n_{k-1}*)``.
    """
    if k < 3:
        raise InvalidParameterError(f"Theorem 7 needs k >= 3, got {k}")
    if n <= k:
        raise InvalidParameterError(f"Theorem 7 needs n > k, got n={n}, k={k}")
    m = n - k
    out = tuple(ceil_root_of_power(m, i, k) + i - 1 for i in range(1, k))
    seq = (0,) + out + (n,)
    if any(a >= b for a, b in zip(seq, seq[1:])):  # pragma: no cover
        raise AssertionError(f"theorem7 params not strictly increasing: {out}")
    return out


def improved_params_k3(n: int) -> tuple[int, int]:
    """Section 4's improved k = 3 choice ``(n_1, n_2) = (⌈∛(4n)⌉, ⌈∛(2n²)⌉)``.

    Asymptotically ``Δ ≤ 3·∛4·∛n + o(∛n)``.  For small n the two values
    can collide or exceed n; we nudge them into validity (the asymptotic
    claim is unaffected), raising only if no valid nudge exists.
    """
    if n < 4:
        raise InvalidParameterError(f"improved k=3 params need n >= 4, got {n}")
    n1 = ceil_root_of_power(4 * n, 1, 3)
    n2 = ceil_root_of_power(2 * n * n, 1, 3)
    n2 = min(max(n2, n1 + 1), n - 1)
    n1 = min(n1, n2 - 1)
    if not (1 <= n1 < n2 < n):
        raise InvalidParameterError(
            f"no valid improved k=3 parameters for n={n} (got n1={n1}, n2={n2})"
        )
    return (n1, n2)


def _lambda_for_block(block_len: int) -> int:
    """Label count of the library's default labeling of Q_{block_len}.

    Closed form — the Hamming labeling gives ``m + 1`` when that is a
    power of two, the Lemma-2 tiling gives ``2^⌊log₂(m+1)⌋`` otherwise
    (both cases equal ``2^⌊log₂(m+1)⌋``).  Computing this analytically
    matters: parameter search sweeps block lengths far beyond what a
    materialized ``2^m`` labeling table could support.  The test-suite
    pins this against :func:`best_available_labeling` for buildable m.
    """
    if block_len < 1:
        raise InvalidParameterError(f"need block_len >= 1, got {block_len}")
    return 1 << ((block_len + 1).bit_length() - 1)


def degree_formula_for_thresholds(n: int, thresholds: tuple[int, ...]) -> int:
    """Exact Δ of ``construct(k, n, thresholds)`` without building anything.

    Δ = n_1 + Σ_t ⌈(n_t − n_{t-1}) / λ(n_{t-1} − n_{t-2})⌉ with the default
    labelings (see :meth:`SparseHypercube.degree_formula`; the test-suite
    checks formula == built graph).
    """
    seq = (0,) + tuple(thresholds) + (n,)
    if any(a >= b for a, b in zip(seq, seq[1:])):
        raise InvalidParameterError(
            f"thresholds must be strictly increasing below n: {thresholds}, n={n}"
        )
    total = seq[1]
    for idx in range(1, len(seq) - 1):
        block_len = seq[idx] - seq[idx - 1]
        q = seq[idx + 1] - seq[idx]
        total += -(-q // _lambda_for_block(block_len))
    return total


def default_thresholds(k: int, n: int) -> tuple[int, ...]:
    """The analytic parameter choice: Theorem 5's m* (k=2) / Theorem 7's n_i*."""
    if k == 2:
        return (theorem5_m_star(n),)
    return theorem7_params(k, n)


def optimized_params(
    k: int, n: int, *, exhaustive_limit: int = 200_000
) -> tuple[int, ...]:
    """Threshold vector minimizing the exact degree formula.

    Exhaustive over all ascending (k−1)-subsets of ``1..n−1`` when that
    space is at most ``exhaustive_limit``; otherwise coordinate-descent
    hill-climbing seeded from the analytic choice.  Deterministic.
    """
    if k < 2:
        raise InvalidParameterError(f"need k >= 2, got {k}")
    if n <= k:
        raise InvalidParameterError(f"need n > k, got n={n}, k={k}")
    space = math.comb(n - 1, k - 1)
    if space <= exhaustive_limit:
        best: tuple[int, ...] | None = None
        best_deg = None
        for combo in combinations(range(1, n), k - 1):
            deg = degree_formula_for_thresholds(n, combo)
            if best_deg is None or deg < best_deg or (deg == best_deg and combo < best):
                best, best_deg = combo, deg
        assert best is not None
        return best
    # hill climbing: move one threshold by ±1 while it improves
    current = list(default_thresholds(k, n))
    current_deg = degree_formula_for_thresholds(n, tuple(current))
    improved = True
    while improved:
        improved = False
        for i in range(k - 1):
            for delta in (-1, 1):
                cand = current[:]
                cand[i] += delta
                lo = cand[i - 1] if i > 0 else 0
                hi = cand[i + 1] if i < k - 2 else n
                if not (lo < cand[i] < hi):
                    continue
                deg = degree_formula_for_thresholds(n, tuple(cand))
                if deg < current_deg:
                    current, current_deg = cand, deg
                    improved = True
    return tuple(current)
