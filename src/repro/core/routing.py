"""Relay routing inside a sparse hypercube (the paper's Remark 1, made
constructive and recursive).

``reach_and_flip(sh, u, dim)`` returns the call path used by Phase 1 of
``Broadcast_k`` when an informed vertex ``u`` must flip dimension ``dim``:

* if the edge ``{u, ⊕_dim u}`` exists, the path is the direct call;
* otherwise the label of ``u`` at the level owning ``dim`` is wrong, and
  by Condition A some *single flip of a label-block bit* fixes it.  That
  block bit belongs to the next level down, so the fix is computed by a
  recursive ``reach_and_flip`` — bottoming out at the complete core cube,
  where every flip is one Rule-1 edge.

Guarantees (all verified by the test-suite):

* the returned path starts at ``u`` and is a real path in ``sh.graph``;
* its length is at most the level of ``dim`` (≤ k overall) — Remark 1's
  "length at most k − 1, plus the final hop";
* the endpoint equals the *second-to-last* vertex with ``dim`` flipped,
  and agrees with ``u`` on every bit above the level's threshold except
  ``dim`` itself (so Phase 1's prefix-doubling invariant holds).

Determinism: when several block-bit flips would fix the label, we choose
the one giving the **largest relay vertex id** (i.e. prefer setting a high
bit to 1).  This is the tie-break that reproduces the calls of the paper's
Example 4 / Fig. 4 verbatim (benchmark E08).
"""

from __future__ import annotations

from repro.core.sparse_hypercube import SparseHypercube
from repro.types import ConstructionError
from repro.util.bits import flip_dim

__all__ = ["reach_and_flip", "relay_candidates"]


def relay_candidates(sh: SparseHypercube, u: int, dim: int) -> list[int]:
    """Block dimensions whose flip gives ``u`` the label owning ``dim``.

    Precondition: the edge ``{u, ⊕_dim u}`` does **not** exist, i.e. the
    label of ``u`` at the owning level differs from the owner of ``dim``.
    Condition A guarantees the result is non-empty; an empty result means
    the labeling was corrupted and raises :class:`ConstructionError`.
    """
    level = sh.level_owning(dim)
    if level is None:
        raise ConstructionError(
            f"dimension {dim} is a core dimension; no relay is ever needed"
        )
    needed = level.dim_owner[dim]
    block = level.block_value(u)
    cands = []
    for e_local in range(level.block_len):
        if level.labeling.label_of(block ^ (1 << e_local)) == needed:
            cands.append(level.block_lo + e_local + 1)  # back to 1-indexed dims
    if not cands:
        raise ConstructionError(
            f"Condition A violated: no single block-bit flip gives vertex "
            f"{u} the label {needed} owning dimension {dim}"
        )
    return cands


def reach_and_flip(sh: SparseHypercube, u: int, dim: int) -> tuple[int, ...]:
    """The Phase-1 call path for informed vertex ``u`` and dimension ``dim``.

    Returns a tuple of vertices ``(u, …, z)`` where ``z`` is the newly
    informed vertex; every consecutive pair is an edge of ``sh``.
    """
    level = sh.level_owning(dim)
    if level is None or level.owns_edge(u, dim):
        return (u, flip_dim(u, dim))
    cands = relay_candidates(sh, u, dim)
    # deterministic tie-break: largest relay vertex id (see module docstring)
    e = max(cands, key=lambda d: flip_dim(u, d))
    sub_path = reach_and_flip(sh, u, e)
    v = sub_path[-1]
    if not level.owns_edge(v, dim):  # pragma: no cover - structural invariant
        raise ConstructionError(
            f"relay endpoint {v} does not own dimension {dim}; "
            "level blocks are not nested as required"
        )
    return sub_path + (flip_dim(v, dim),)
