"""The paper's primary contribution: sparse hypercubes and their schemes.

Public surface:

* :func:`construct_base` — Procedure ``Construct_BASE(n, m)`` (Section 3).
* :func:`construct` — Procedure ``Construct(k, (n, n_{k-1}, …, n_1))``
  (Section 4); ``construct_rec`` is the documented k = 3 special case.
* :class:`SparseHypercube` — the constructed graph plus the recursion
  metadata (labelings, dimension partitions) that the broadcast scheme
  needs.
* :func:`broadcast_2` / :func:`broadcast_k` — Schemes ``Broadcast_2`` and
  ``Broadcast_k`` producing explicit validated :class:`repro.types.Schedule`s.
* :mod:`repro.core.bounds` — Theorems 1, 2, 3, 5, 7 and Corollaries 1–2 as
  checkable functions.
* :mod:`repro.core.params` — the parameter selections used in the proofs
  (m*, n_i*) and the improved k = 3 parameters from Section 4's closing
  remark.
* :mod:`repro.core.tree_mlbg` — Theorem 1's bounded-degree tree family.
"""

from repro.core.broadcast import broadcast_2, broadcast_k, broadcast_schedule
from repro.core.bounds import (
    degree_lower_bound,
    lower_bound_theorem2,
    lower_bound_theorem3,
    moore_degree_lower_bound,
    theorem1_minimum_k,
    upper_bound_corollary1,
    upper_bound_theorem5,
    upper_bound_theorem7,
)
from repro.core.construct import construct, construct_base, construct_rec
from repro.core.params import (
    improved_params_k3,
    optimized_params,
    theorem5_m_star,
    theorem7_params,
)
from repro.core.routing import reach_and_flip
from repro.core.sparse_hypercube import Level, SparseHypercube
from repro.core.tree_mlbg import theorem1_tree, theorem1_tree_broadcast

__all__ = [
    "SparseHypercube",
    "Level",
    "construct_base",
    "construct_rec",
    "construct",
    "broadcast_2",
    "broadcast_k",
    "broadcast_schedule",
    "reach_and_flip",
    "theorem5_m_star",
    "theorem7_params",
    "improved_params_k3",
    "optimized_params",
    "degree_lower_bound",
    "moore_degree_lower_bound",
    "lower_bound_theorem2",
    "lower_bound_theorem3",
    "theorem1_minimum_k",
    "upper_bound_theorem5",
    "upper_bound_theorem7",
    "upper_bound_corollary1",
    "theorem1_tree",
    "theorem1_tree_broadcast",
]
