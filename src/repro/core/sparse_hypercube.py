"""The :class:`SparseHypercube` structure: graph + recursion metadata.

A sparse hypercube ``Construct(k, (n, n_{k-1}, …, n_1))`` admits a *flat*
description that this class records (DESIGN.md, decision 4).  Write
``n_0 = 0`` and ``n_k = n``.  Then for every vertex ``u ∈ {0,1}^n``:

* **Base dimensions** ``1 ≤ i ≤ n_1``: the edge ``{u, ⊕_i u}`` always
  exists (Rule 1 applied recursively bottoms out in the complete ``Q_{n_1}``
  of ``Construct_BASE``).

* **Level-t dimensions** ``n_{t-1} < i ≤ n_t`` (for ``t = 2 .. k``): the
  edge ``{u, ⊕_i u}`` exists iff the *level-t label* of ``u`` owns
  dimension ``i``.  The level-t label is ``f*_t`` applied to the bit block
  ``(n_{t-2}, n_{t-1}]`` of ``u``  (for t = 2 this is the length-``n_1``
  suffix, exactly Construct_BASE's ``g``), and ownership is given by the
  level's partition ``S_1, …, S_{λ_t}`` of ``{n_{t-1}+1, …, n_t}``.

This is literally the paper's Rule 1 / Rule 2 pair unrolled across the
recursion: Rule 1 at level t copies the level-(t−1) graph into each
``n_{t-1}``-suffix subcube, and since each level's label depends only on
suffix bits, the lifted rules coincide with the flat rules above.  The
test-suite verifies flat-vs-recursive equality explicitly.

Both endpoints of a level-t edge share the label block (they differ only in
bit ``i > n_{t-1}``), so the edge rule is symmetric — the paper's remark
that ``g(u) = g(⊕_i u)`` for Rule-2 edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.domination.labeling import ConditionALabeling
from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = ["Level", "SparseHypercube"]


@dataclass(frozen=True)
class Level:
    """Level ``t`` of the flattened construction (t = 2 .. k).

    Attributes
    ----------
    t:
        The level index (equals the ``k`` of the recursive call that
        created this level; level 2 is ``Construct_BASE``'s own level).
    top:
        ``n_t`` — the highest dimension this level connects.
    threshold:
        ``n_{t-1}`` — dimensions ``threshold+1 .. top`` are this level's
        Rule-2 dimensions.
    block_lo:
        ``n_{t-2}`` — the level's label block is bits
        ``block_lo+1 .. threshold``.
    labeling:
        A Condition-A labeling of ``Q_{threshold - block_lo}``.
    partition:
        ``S_1, …, S_λ`` as a tuple of tuples of dimensions; entry ``j``
        (0-based) lists the dimensions owned by label ``j``.  Subset sizes
        differ by at most one (Step 2/3 of the procedures); empty subsets
        are allowed when there are fewer dimensions than labels.
    """

    t: int
    top: int
    threshold: int
    block_lo: int
    labeling: ConditionALabeling
    partition: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not (0 <= self.block_lo < self.threshold < self.top):
            raise InvalidParameterError(
                f"level {self.t}: need 0 <= block_lo < threshold < top, got "
                f"({self.block_lo}, {self.threshold}, {self.top})"
            )
        block_len = self.threshold - self.block_lo
        if self.labeling.m != block_len:
            raise InvalidParameterError(
                f"level {self.t}: labeling is of Q_{self.labeling.m}, "
                f"block has length {block_len}"
            )
        if len(self.partition) != self.labeling.num_labels:
            raise InvalidParameterError(
                f"level {self.t}: partition has {len(self.partition)} parts, "
                f"labeling has {self.labeling.num_labels} labels"
            )
        dims = sorted(d for part in self.partition for d in part)
        expected = list(range(self.threshold + 1, self.top + 1))
        if dims != expected:
            raise InvalidParameterError(
                f"level {self.t}: partition covers dims {dims}, expected {expected}"
            )
        sizes = [len(p) for p in self.partition]
        if max(sizes) - min(sizes) > 1:
            raise InvalidParameterError(
                f"level {self.t}: partition sizes {sizes} differ by more than 1"
            )

    @cached_property
    def dim_owner(self) -> dict[int, int]:
        """Map dimension → 0-based label index owning it."""
        return {d: j for j, part in enumerate(self.partition) for d in part}

    @property
    def block_len(self) -> int:
        return self.threshold - self.block_lo

    @property
    def num_labels(self) -> int:
        return self.labeling.num_labels

    @property
    def rule2_dims(self) -> range:
        return range(self.threshold + 1, self.top + 1)

    def block_value(self, u: int) -> int:
        """The label block ``u_{threshold} … u_{block_lo+1}`` as an int."""
        return (u >> self.block_lo) & ((1 << self.block_len) - 1)

    def label_of(self, u: int) -> int:
        """The level label ``g_t(u)`` (0-based; paper's ``c_j`` is j-1)."""
        return self.labeling.label_of(self.block_value(u))

    def owns_edge(self, u: int, dim: int) -> bool:
        """Rule 2: does the edge ``{u, ⊕_dim u}`` exist at this level?"""
        if dim not in self.dim_owner:
            raise InvalidParameterError(
                f"dimension {dim} is not a level-{self.t} dimension "
                f"({self.threshold + 1}..{self.top})"
            )
        return self.dim_owner[dim] == self.label_of(u)

    def max_owned(self) -> int:
        """``max_j |S_j|`` — this level's contribution to Δ(G)."""
        return max(len(p) for p in self.partition)


@dataclass
class SparseHypercube:
    """A constructed sparse hypercube with its full recursion metadata.

    Attributes
    ----------
    n:
        Number of dimensions; the graph has ``2^n`` vertices.
    k:
        The call-length parameter the construction targets (the graph is a
        k-mlbg; Theorems 4 and 6).
    thresholds:
        ``(n_1, n_2, …, n_{k-1})`` — strictly increasing, all < n.
    levels:
        ``k - 1`` :class:`Level` records, levels[0] being level 2 (the
        base) and levels[-1] being level k (the outermost).
    """

    n: int
    k: int
    thresholds: tuple[int, ...]
    levels: list[Level] = field(repr=False)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise InvalidParameterError(f"need k >= 2, got {self.k}")
        if len(self.thresholds) != self.k - 1:
            raise InvalidParameterError(
                f"k={self.k} needs {self.k - 1} thresholds, got {self.thresholds}"
            )
        seq = (0,) + self.thresholds + (self.n,)
        if any(a >= b for a, b in zip(seq, seq[1:])):
            raise InvalidParameterError(
                f"thresholds must satisfy 0 < n_1 < … < n_{{k-1}} < n, got "
                f"{self.thresholds} with n={self.n}"
            )
        if len(self.levels) != self.k - 1:
            raise InvalidParameterError(
                f"expected {self.k - 1} levels, got {len(self.levels)}"
            )

    # -- structure ----------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return 1 << self.n

    @property
    def base_dims(self) -> int:
        """``n_1`` — the dimensions of the complete core cube."""
        return self.thresholds[0]

    def level_owning(self, dim: int) -> Level | None:
        """The level whose Rule-2 range contains ``dim``; None for base dims."""
        if not (1 <= dim <= self.n):
            raise InvalidParameterError(f"dimension {dim} out of range 1..{self.n}")
        if dim <= self.base_dims:
            return None
        for level in self.levels:
            if level.threshold < dim <= level.top:
                return level
        raise AssertionError("unreachable: levels cover all dims")  # pragma: no cover

    def has_edge_rule(self, u: int, dim: int) -> bool:
        """Flat edge rule: does ``{u, ⊕_dim u}`` exist?"""
        level = self.level_owning(dim)
        if level is None:
            return True  # complete core cube
        return level.owns_edge(u, dim)

    def degree_formula(self) -> int:
        """Exact Δ(G) from the metadata (Lemma 1 generalized).

        Δ(G) = n_1 + Σ_t max_j |S_j^{(t)}|: the per-level label blocks
        occupy disjoint bit ranges, so some vertex simultaneously carries a
        maximizing label at every level.  Verified against the built graph
        in the test-suite.
        """
        return self.base_dims + sum(level.max_owned() for level in self.levels)

    def degree_of(self, u: int) -> int:
        """Degree of vertex ``u`` from the metadata (no graph needed)."""
        return self.base_dims + sum(
            len(level.partition[level.label_of(u)]) for level in self.levels
        )

    def edge_count_formula(self) -> int:
        """|E(G)| from the metadata: sum of degrees / 2."""
        total = self.n_vertices * self.base_dims
        for level in self.levels:
            # each label class has (2^block_len / num block values)… count
            # exactly: vertices with label j: (class size / 2^block_len) * 2^n
            block_total = 1 << level.block_len
            for j, part in enumerate(level.partition):
                class_size = len(level.labeling.class_of(j))
                n_vertices_with_label = (self.n_vertices // block_total) * class_size
                total += n_vertices_with_label * len(part)
        return total // 2

    # -- graph materialization ------------------------------------------------

    @cached_property
    def graph(self) -> Graph:
        """Materialize the edge set as a :class:`Graph` (cached).

        Edge generation is vectorized per dimension (the construction's
        only hot loop): for each Rule-2 dimension we select, in one NumPy
        expression, the vertices whose label owns it.
        """
        import numpy as np

        g = Graph(self.n_vertices)
        verts = np.arange(self.n_vertices, dtype=np.int64)
        # base dimensions: complete subcubes over dims 1..n_1
        for i in range(1, self.base_dims + 1):
            bit = 1 << (i - 1)
            lower = verts[(verts & bit) == 0]
            for u in lower:
                g.add_edge(int(u), int(u) | bit)
        # level dimensions: Rule 2, one vectorized mask per dimension
        for level in self.levels:
            block_vals = (verts >> level.block_lo) & ((1 << level.block_len) - 1)
            vertex_labels = level.labeling.labels[block_vals]
            for dim in level.rule2_dims:
                j = level.dim_owner[dim]
                bit = 1 << (dim - 1)
                lower = verts[((verts & bit) == 0) & (vertex_labels == j)]
                for u in lower:
                    g.add_edge(int(u), int(u) | bit)
        return g.freeze()

    def label_summary(self) -> list[dict[str, object]]:
        """Human-readable per-level summary (used by examples and the CLI)."""
        rows = []
        for level in self.levels:
            rows.append(
                {
                    "level": level.t,
                    "dims": f"{level.threshold + 1}..{level.top}",
                    "label block bits": f"{level.block_lo + 1}..{level.threshold}",
                    "labels": level.num_labels,
                    "labeling": level.labeling.name,
                    "partition": [list(p) for p in level.partition],
                }
            )
        return rows

    def describe(self) -> str:
        lines = [
            f"SparseHypercube(n={self.n}, k={self.k}, "
            f"thresholds={self.thresholds}): N={self.n_vertices}, "
            f"Δ={self.degree_formula()} (vs Δ(Q_{self.n})={self.n})"
        ]
        for row in self.label_summary():
            lines.append(
                f"  level {row['level']}: dims {row['dims']} owned via "
                f"{row['labels']}-labeling ({row['labeling']}) of bits "
                f"{row['label block bits']}; partition {row['partition']}"
            )
        return "\n".join(lines)
