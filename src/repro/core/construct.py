"""The construction procedures of Sections 3 and 4.

``construct_base(n, m)``
    Procedure ``Construct_BASE(n, m)``: 2^{n-m} copies of the complete
    ``Q_m`` interconnected by Rule-2 edges according to a Condition-A
    labeling of the m-suffix.  Produces a 2-mlbg (Theorem 4).

``construct(k, n, thresholds)``
    Procedure ``Construct(k, (n, n_{k-1}, …, n_1))``: the recursive
    generalization.  Produces a k-mlbg (Theorem 6).  Implemented in the
    flat form documented in :mod:`repro.core.sparse_hypercube`; the
    recursive reference implementation
    :func:`recursive_edge_set_reference` exists purely so tests can verify
    flat == recursive.

``construct_rec(n, a, b)``
    Procedure ``Construct_REC(n, a, b)`` — the paper's pedagogical k = 3
    case; exactly ``construct(3, n, (b, a))``.

Determinism: nondeterministic steps of the paper (choice of optimal
labeling f*, partition of S) default to the Hamming/Lemma-2 labeling and
to *descending runs* (S_1 takes the largest dimensions, matching the
paper's Examples 3 and 6).  Both can be overridden per level.
"""

from __future__ import annotations

from typing import Sequence

from repro.domination.labeling import ConditionALabeling, best_available_labeling
from repro.core.sparse_hypercube import Level, SparseHypercube
from repro.types import ConstructionError, InvalidParameterError

__all__ = [
    "partition_dimensions",
    "construct_base",
    "construct_rec",
    "construct",
    "recursive_edge_set_reference",
]


def partition_dimensions(
    high: int, low: int, parts: int, *, style: str = "descending"
) -> tuple[tuple[int, ...], ...]:
    """Partition ``S = {high, high-1, …, low+1}`` into ``parts`` subsets.

    Sizes differ by at most one (Step 2 of the procedures).  Styles:

    * ``"descending"`` (default): S_1 takes the largest dimensions —
      matches the paper's Example 3 (S_1 = {15,14,13}) and Example 6
      (S_1 = {7,6}).
    * ``"ascending"``: S_1 takes the smallest dimensions — matches the
      paper's Example 2 (S_1 = {3}, S_2 = {4}).

    Some subsets may be empty when ``high - low < parts``.
    """
    if high <= low:
        raise InvalidParameterError(f"need high > low, got {high} <= {low}")
    if parts < 1:
        raise InvalidParameterError(f"need parts >= 1, got {parts}")
    if style == "descending":
        dims = list(range(high, low, -1))
    elif style == "ascending":
        dims = list(range(low + 1, high + 1))
    else:
        raise InvalidParameterError(f"unknown partition style {style!r}")
    q, r = divmod(len(dims), parts)
    out: list[tuple[int, ...]] = []
    pos = 0
    for j in range(parts):
        size = q + (1 if j < r else 0)
        out.append(tuple(dims[pos : pos + size]))
        pos += size
    return tuple(out)


def _normalize_partition(
    high: int,
    low: int,
    parts: int,
    partition: Sequence[Sequence[int]] | None,
    style: str,
) -> tuple[tuple[int, ...], ...]:
    if partition is None:
        return partition_dimensions(high, low, parts, style=style)
    norm = tuple(tuple(int(d) for d in p) for p in partition)
    if len(norm) != parts:
        raise InvalidParameterError(
            f"explicit partition has {len(norm)} parts, labeling has {parts} labels"
        )
    return norm


def construct_base(
    n: int,
    m: int,
    *,
    labeling: ConditionALabeling | None = None,
    partition: Sequence[Sequence[int]] | None = None,
    partition_style: str = "descending",
    verify_labeling: bool = True,
) -> SparseHypercube:
    """Procedure ``Construct_BASE(n, m)`` for ``n > m ≥ 1``.

    Returns a :class:`SparseHypercube` with k = 2.  The default labeling
    ``f*`` is :func:`repro.domination.labeling.best_available_labeling`;
    any Condition-A labeling of ``Q_m`` may be supplied (it is verified
    unless ``verify_labeling=False``).
    """
    if not (1 <= m < n):
        raise InvalidParameterError(
            f"Construct_BASE needs 1 <= m < n, got m={m}, n={n}"
        )
    f_star = labeling if labeling is not None else best_available_labeling(m)
    if f_star.m != m:
        raise InvalidParameterError(f"labeling is of Q_{f_star.m}, expected Q_{m}")
    if verify_labeling and not f_star.verify():
        raise ConstructionError(
            "supplied labeling violates Condition A; Broadcast_2 would fail"
        )
    part = _normalize_partition(n, m, f_star.num_labels, partition, partition_style)
    level = Level(t=2, top=n, threshold=m, block_lo=0, labeling=f_star, partition=part)
    return SparseHypercube(n=n, k=2, thresholds=(m,), levels=[level])


def construct(
    k: int,
    n: int,
    thresholds: Sequence[int],
    *,
    labelings: Sequence[ConditionALabeling | None] | None = None,
    partitions: Sequence[Sequence[Sequence[int]] | None] | None = None,
    partition_style: str = "descending",
    verify_labelings: bool = True,
) -> SparseHypercube:
    """Procedure ``Construct(k, (n, n_{k-1}, …, n_1))``.

    Parameters
    ----------
    k:
        Call-length parameter, ``k ≥ 2``.
    n:
        Cube dimension; the graph has ``2^n`` vertices; ``n > n_{k-1}``.
    thresholds:
        ``(n_1, n_2, …, n_{k-1})`` strictly increasing (ascending order —
        note the paper writes the tuple in the opposite order).
    labelings / partitions:
        Optional per-level overrides, index 0 = level 2 (the base).  A
        ``None`` entry means "use the default" for that level.

    Returns a :class:`SparseHypercube`; its ``.graph`` materializes the
    edge set on first use.
    """
    if k < 2:
        raise InvalidParameterError(f"need k >= 2, got {k}")
    thr = tuple(int(x) for x in thresholds)
    if len(thr) != k - 1:
        raise InvalidParameterError(
            f"k={k} needs {k - 1} thresholds (n_1..n_{{k-1}}), got {thr}"
        )
    seq = (0,) + thr + (n,)
    if any(a >= b for a, b in zip(seq, seq[1:])):
        raise InvalidParameterError(
            f"need 0 < n_1 < … < n_{{k-1}} < n, got thresholds={thr}, n={n}"
        )
    if labelings is not None and len(labelings) != k - 1:
        raise InvalidParameterError(
            f"labelings must have {k - 1} entries (level 2..k), got {len(labelings)}"
        )
    if partitions is not None and len(partitions) != k - 1:
        raise InvalidParameterError(
            f"partitions must have {k - 1} entries (level 2..k), got {len(partitions)}"
        )

    levels: list[Level] = []
    for idx in range(k - 1):  # idx 0 -> level t=2, …, idx k-2 -> level t=k
        t = idx + 2
        block_lo = seq[idx]  # n_{t-2}
        threshold = seq[idx + 1]  # n_{t-1}
        top = seq[idx + 2]  # n_t
        block_len = threshold - block_lo
        f_star = None
        if labelings is not None:
            f_star = labelings[idx]
        if f_star is None:
            f_star = best_available_labeling(block_len)
        if f_star.m != block_len:
            raise InvalidParameterError(
                f"level {t}: labeling is of Q_{f_star.m}, block length is {block_len}"
            )
        if verify_labelings and not f_star.verify():
            raise ConstructionError(
                f"level {t}: labeling violates Condition A; Broadcast_k would fail"
            )
        explicit = partitions[idx] if partitions is not None else None
        part = _normalize_partition(
            top, threshold, f_star.num_labels, explicit, partition_style
        )
        levels.append(
            Level(
                t=t,
                top=top,
                threshold=threshold,
                block_lo=block_lo,
                labeling=f_star,
                partition=part,
            )
        )
    return SparseHypercube(n=n, k=k, thresholds=thr, levels=levels)


def construct_rec(
    n: int,
    a: int,
    b: int,
    *,
    labelings: Sequence[ConditionALabeling | None] | None = None,
    partitions: Sequence[Sequence[Sequence[int]] | None] | None = None,
    partition_style: str = "descending",
) -> SparseHypercube:
    """Procedure ``Construct_REC(n, a, b)`` — the k = 3 case (Section 4.1).

    ``n > a > b ≥ 1``.  Copies of ``G_{a,b}`` are interconnected using the
    ``LABEL(n, a, b)`` labeling (a Condition-A labeling of the bit block
    ``b+1 .. a``).
    """
    return construct(
        3,
        n,
        (b, a),
        labelings=labelings,
        partitions=partitions,
        partition_style=partition_style,
    )


def recursive_edge_set_reference(sh: SparseHypercube) -> set[tuple[int, int]]:
    """The paper's *recursive* edge definition, computed literally.

    Builds ``Construct(k)`` by Rule 1 (copy the recursively-built
    ``Construct(k-1)`` graph into every suffix subcube) and Rule 2 (label
    owned dimensions), following the procedure text.  Used only by tests to
    certify that the flat edge rule of :class:`SparseHypercube` is the same
    graph; quadratic-ish and unoptimized on purpose.
    """
    def edges_of(level_idx: int) -> set[tuple[int, int]]:
        # level_idx = number of levels included; 0 = just the core Q_{n_1}
        if level_idx == 0:
            m = sh.base_dims
            out: set[tuple[int, int]] = set()
            for u in range(1 << m):
                for i in range(1, m + 1):
                    v = u ^ (1 << (i - 1))
                    if u < v:
                        out.add((u, v))
            return out
        level = sh.levels[level_idx - 1]
        inner = edges_of(level_idx - 1)
        size = 1 << level.top
        inner_size = 1 << level.threshold
        out = set()
        # Rule 1: copy the inner graph into each suffix subcube
        for base in range(0, size, inner_size):
            for (u, v) in inner:
                out.add((base + u, base + v))
        # Rule 2: label-owned dimensions
        for u in range(size):
            for dim in level.rule2_dims:
                if level.owns_edge(u, dim):
                    v = u ^ (1 << (dim - 1))
                    if u < v:
                        out.add((u, v))
        return out

    full = edges_of(len(sh.levels))
    # lift to the full 2^n vertex set (top level already spans it)
    assert sh.levels[-1].top == sh.n
    return full
